package tsm

import (
	"math"
	"strings"
	"testing"

	"tsm/internal/stream"
)

func testOpts() Options {
	return Options{Nodes: 4, Scale: 0.05, Seed: 9}
}

func TestWorkloadsAndExperiments(t *testing.T) {
	if len(Workloads()) != 10 {
		t.Fatalf("Workloads() = %v", Workloads())
	}
	if len(AllWorkloads()) != 12 {
		t.Fatalf("AllWorkloads() = %v", AllWorkloads())
	}
	if AllWorkloads()[10] != "mix" || AllWorkloads()[11] != "mix-sci-com" {
		t.Fatalf("AllWorkloads() should end with the mixes: %v", AllWorkloads())
	}
	if len(Experiments()) != 16 {
		t.Fatalf("Experiments() = %v", Experiments())
	}
}

func TestGenerateTraceUnknownWorkload(t *testing.T) {
	if _, _, err := GenerateTrace("nope", testOpts()); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestOptionsValidate(t *testing.T) {
	// Zero values select defaults and stay valid.
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options should validate, got %v", err)
	}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative nodes", Options{Nodes: -4}, "Nodes"},
		{"negative scale", Options{Scale: -0.5}, "Scale"},
		{"NaN scale", Options{Scale: math.NaN()}, "Scale"},
		{"infinite scale", Options{Scale: math.Inf(1)}, "Scale"},
		{"negative lookahead", Options{Lookahead: -8}, "Lookahead"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the bad field %q", c.name, err, c.want)
		}
	}
}

// TestOptionsValidationPropagates: every facade entry point that can report
// errors must reject invalid options instead of silently normalizing them.
func TestOptionsValidationPropagates(t *testing.T) {
	bad := Options{Nodes: -1}
	if _, _, err := GenerateTrace("em3d", bad); err == nil {
		t.Error("GenerateTrace should reject negative nodes")
	}
	if _, _, err := StreamTrace("em3d", bad, &stream.TraceSink{}); err == nil {
		t.Error("StreamTrace should reject negative nodes")
	}
	tr, gen, err := GenerateTrace("em3d", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTrace(t.TempDir()+"/x.tsm", tr, gen, bad); err == nil {
		t.Error("SaveTrace should reject negative nodes")
	}
	if _, err := EvaluateTSE(tr, gen, Options{Scale: -1}); err == nil {
		t.Error("EvaluateTSE should reject negative scale")
	}
	if _, err := ComparePrefetchers(tr, gen, Options{Lookahead: -2}); err == nil {
		t.Error("ComparePrefetchers should reject negative lookahead")
	}
	if _, err := EvaluateAll(tr, gen, bad); err == nil {
		t.Error("EvaluateAll should reject negative nodes")
	}
	if _, err := RunExperiment("table1", bad); err == nil {
		t.Error("RunExperiment should reject negative nodes")
	}
	if _, err := RunExperiments([]string{"table1"}, bad); err == nil {
		t.Error("RunExperiments should reject negative nodes")
	}
}

func TestGenerateAndEvaluateTSE(t *testing.T) {
	tr, gen, err := GenerateTrace("em3d", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConsumptionCount() < 500 {
		t.Fatalf("trace too small: %d consumptions", tr.ConsumptionCount())
	}
	rep, err := EvaluateTSE(tr, gen, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "TSE" || rep.Coverage < 0.5 || rep.Speedup <= 1.0 {
		t.Fatalf("unexpected em3d report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "speedup") {
		t.Fatal("report string should include the speedup")
	}
	if _, err := EvaluateTSE(nil, gen, testOpts()); err == nil {
		t.Fatal("nil trace should error")
	}
}

func TestComparePrefetchers(t *testing.T) {
	tr, gen, err := GenerateTrace("db2", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ComparePrefetchers(tr, gen, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4 (stride, G/DC, G/AC, TSE)", len(reports))
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Model] = r
	}
	if byName["TSE"].Coverage <= byName["Stride"].Coverage {
		t.Fatalf("TSE (%v) should beat stride (%v) on db2", byName["TSE"].Coverage, byName["Stride"].Coverage)
	}
	if _, err := ComparePrefetchers(nil, gen, testOpts()); err == nil {
		t.Fatal("nil trace should error")
	}
}

func TestCorrelationOpportunity(t *testing.T) {
	tr, _, err := GenerateTrace("moldyn", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	curve := CorrelationOpportunity(tr, testOpts())
	if len(curve) != 16 {
		t.Fatalf("curve has %d points, want 16", len(curve))
	}
	if curve[0] < 0.5 {
		t.Fatalf("moldyn correlation at ±1 = %v, want high", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatal("opportunity curve must be monotone")
		}
	}
}

func TestRunExperiment(t *testing.T) {
	out, err := RunExperiment("table1", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2D torus") {
		t.Fatalf("table1 output missing interconnect row:\n%s", out)
	}
	if _, err := RunExperiment("fig999", testOpts()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
