package tsm

import (
	"strings"
	"testing"
)

func testOpts() Options {
	return Options{Nodes: 4, Scale: 0.05, Seed: 9}
}

func TestWorkloadsAndExperiments(t *testing.T) {
	if len(Workloads()) != 7 {
		t.Fatalf("Workloads() = %v", Workloads())
	}
	if len(Experiments()) != 12 {
		t.Fatalf("Experiments() = %v", Experiments())
	}
}

func TestGenerateTraceUnknownWorkload(t *testing.T) {
	if _, _, err := GenerateTrace("nope", testOpts()); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestGenerateAndEvaluateTSE(t *testing.T) {
	tr, gen, err := GenerateTrace("em3d", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConsumptionCount() < 500 {
		t.Fatalf("trace too small: %d consumptions", tr.ConsumptionCount())
	}
	rep, err := EvaluateTSE(tr, gen, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "TSE" || rep.Coverage < 0.5 || rep.Speedup <= 1.0 {
		t.Fatalf("unexpected em3d report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "speedup") {
		t.Fatal("report string should include the speedup")
	}
	if _, err := EvaluateTSE(nil, gen, testOpts()); err == nil {
		t.Fatal("nil trace should error")
	}
}

func TestComparePrefetchers(t *testing.T) {
	tr, gen, err := GenerateTrace("db2", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ComparePrefetchers(tr, gen, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4 (stride, G/DC, G/AC, TSE)", len(reports))
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Model] = r
	}
	if byName["TSE"].Coverage <= byName["Stride"].Coverage {
		t.Fatalf("TSE (%v) should beat stride (%v) on db2", byName["TSE"].Coverage, byName["Stride"].Coverage)
	}
	if _, err := ComparePrefetchers(nil, gen, testOpts()); err == nil {
		t.Fatal("nil trace should error")
	}
}

func TestCorrelationOpportunity(t *testing.T) {
	tr, _, err := GenerateTrace("moldyn", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	curve := CorrelationOpportunity(tr, testOpts())
	if len(curve) != 16 {
		t.Fatalf("curve has %d points, want 16", len(curve))
	}
	if curve[0] < 0.5 {
		t.Fatalf("moldyn correlation at ±1 = %v, want high", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatal("opportunity curve must be monotone")
		}
	}
}

func TestRunExperiment(t *testing.T) {
	out, err := RunExperiment("table1", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2D torus") {
		t.Fatalf("table1 output missing interconnect row:\n%s", out)
	}
	if _, err := RunExperiment("fig999", testOpts()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
