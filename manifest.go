package tsm

// Run manifests: a deterministic JSON provenance record for every file
// replay or sweep. A BENCH number or a metrics snapshot is only as useful as
// the certainty about what produced it — which trace file (by content hash,
// not path), which codec version, which replay and TSE settings, which tool
// version — so the facade can emit exactly that alongside the results. The
// record's SHAPE is deterministic (fixed field order, sorted metric names);
// wall times naturally vary run to run and are diffed with generous
// thresholds (or ignored) by cmd/obsdiff.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"tsm/internal/obs"
	"tsm/internal/stream"
)

// ToolVersion identifies this build of the tsm engine in manifests and CLI
// output. Bump when the evaluation semantics or output formats change.
const ToolVersion = "0.8.0"

// TraceProvenance identifies the input trace by content, not just path.
type TraceProvenance struct {
	// Path is the trace file as given to the entry point.
	Path string `json:"path"`
	// SHA256 is the hex content hash of the file (computed at finalize, so
	// it reflects the bytes that were actually replayed).
	SHA256 string `json:"sha256,omitempty"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
	// CodecVersion is the stream codec version byte.
	CodecVersion int `json:"codec_version"`
	// Chunks and Events come from the version 3 chunk index (0 on unindexed
	// files, whose event count is unknown without a full decode).
	Chunks int    `json:"chunks,omitempty"`
	Events uint64 `json:"events,omitempty"`
	// Workload metadata embedded in the trace header.
	Workload string  `json:"workload,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Repeat   float64 `json:"repeat,omitempty"`
}

// ManifestStage is one timed stage of the run.
type ManifestStage struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

// ReplaySettings records the replay-side configuration of the run.
type ReplaySettings struct {
	// Op is the entry point ("replay-tse", "replay-all", "sweep").
	Op string `json:"op"`
	// Sweep is the sweep name for sweep runs.
	Sweep string `json:"sweep,omitempty"`
	// DecodeWorkers/From/To/Mmap mirror ReplayConfig.
	DecodeWorkers int    `json:"decode_workers,omitempty"`
	From          uint64 `json:"from,omitempty"`
	To            uint64 `json:"to,omitempty"`
	Mmap          bool   `json:"mmap,omitempty"`
}

// Manifest is the JSON shape of a run manifest.
type Manifest struct {
	// Tool and Version identify the producer.
	Tool    string `json:"tool"`
	Version string `json:"version"`
	// Command is the invoking command line, when the caller recorded one.
	Command []string `json:"command,omitempty"`
	// Trace identifies the input.
	Trace TraceProvenance `json:"trace"`
	// Replay records the run configuration.
	Replay ReplaySettings `json:"replay"`
	// Stages are the timed stages in execution order.
	Stages []ManifestStage `json:"stages"`
	// Metrics is the final engine metrics snapshot, when metrics were
	// attached to the run.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// RunManifest collects one run's provenance record. Create with
// NewRunManifest, attach via Instrumentation.Manifest, write with
// WriteJSON/WriteFile after the run returns. The nil *RunManifest is a valid
// no-op, like every other attachment. Safe for concurrent use.
type RunManifest struct {
	mu sync.Mutex
	m  Manifest
}

// NewRunManifest returns an empty manifest recorder.
func NewRunManifest() *RunManifest {
	return &RunManifest{m: Manifest{Tool: "tsm", Version: ToolVersion}}
}

// SetCommand records the invoking command line (e.g. os.Args). Nil-safe.
func (rm *RunManifest) SetCommand(args []string) {
	if rm == nil {
		return
	}
	rm.mu.Lock()
	rm.m.Command = append([]string(nil), args...)
	rm.mu.Unlock()
}

// begin records the run configuration and the input's header-level
// provenance. A describe error leaves the trace record at path+op only; the
// open stage will surface the real error to the caller.
func (rm *RunManifest) begin(op, path string, rc ReplayConfig, sweep string, info stream.FileInfo, descErr error) {
	if rm == nil {
		return
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.m.Replay = ReplaySettings{
		Op:            op,
		Sweep:         sweep,
		DecodeWorkers: rc.DecodeWorkers,
		From:          rc.From,
		To:            rc.To,
		Mmap:          rc.Mmap,
	}
	rm.m.Trace = TraceProvenance{Path: path}
	if descErr != nil {
		return
	}
	rm.m.Trace = TraceProvenance{
		Path:         path,
		Bytes:        info.Bytes,
		CodecVersion: info.Version,
		Chunks:       info.Chunks,
		Events:       info.Events,
		Workload:     info.Meta.Workload,
		Nodes:        info.Meta.Nodes,
		Scale:        info.Meta.Scale,
		Seed:         info.Meta.Seed,
		Repeat:       info.Meta.Repeat,
	}
}

// stage starts a timed stage; the returned func records its wall time.
// Nil-safe: on the nil recorder the returned func is a no-op.
func (rm *RunManifest) stage(name string) func() {
	if rm == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		rm.mu.Lock()
		rm.m.Stages = append(rm.m.Stages, ManifestStage{Name: name, WallNs: d.Nanoseconds()})
		rm.mu.Unlock()
	}
}

// finalize hashes the input file (timed as the "hash" stage) and attaches
// the final metrics snapshot. Called by the facade after the run completes.
func (rm *RunManifest) finalize(m *Metrics) {
	if rm == nil {
		return
	}
	rm.mu.Lock()
	path := rm.m.Trace.Path
	rm.mu.Unlock()
	var sum string
	done := rm.stage("hash")
	if path != "" {
		if h, err := hashFile(path); err == nil {
			sum = h
		}
	}
	done()
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.m.Trace.SHA256 = sum
	if m != nil {
		snap := m.Snapshot()
		rm.m.Metrics = &snap
	}
}

// hashFile returns the hex SHA-256 of a file's content.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Snapshot returns a copy of the manifest's current state.
func (rm *RunManifest) Snapshot() Manifest {
	if rm == nil {
		return Manifest{}
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	m := rm.m
	m.Command = append([]string(nil), rm.m.Command...)
	m.Stages = append([]ManifestStage(nil), rm.m.Stages...)
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (rm *RunManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rm.Snapshot())
}

// WriteFile writes the manifest as indented JSON to path, atomically (see
// obs.WriteFileAtomic): a killed run leaves the previous file or the
// complete new one, never truncated JSON.
func (rm *RunManifest) WriteFile(path string) error {
	return obs.WriteFileAtomic(path, rm.WriteJSON)
}
