package tsm

// File replay through the streamed pipeline. LoadTrace + EvaluateTSE
// materializes the whole event stream before evaluating it, which makes file
// replay memory-bound on large traces. The functions here instead drive the
// full TSE + timing stack directly from the trace file: every evaluation and
// every timing simulation is one bounded-memory pass over a stream.Source,
// and independent passes re-open the file rather than share a slice. The
// reports are bit-identical to the in-memory path — proven by tests and
// pinned by the golden-file harness in testdata/.

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/stream"
	"tsm/internal/timing"
)

// ReplayMeta reads just the generation metadata embedded in a trace file.
func ReplayMeta(path string) (TraceMeta, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return TraceMeta{}, err
	}
	meta := f.Meta()
	return meta, f.Close()
}

// replayContext rebuilds the generator, options and TSE configuration a
// trace file's metadata describes.
func replayContext(meta TraceMeta) (Generator, Options, error) {
	gen, err := GeneratorFor(meta)
	if err != nil {
		return nil, Options{}, err
	}
	return gen, OptionsFor(meta), nil
}

// simulateFile runs one timing simulation as a single streaming pass over
// the trace file.
func simulateFile(path string, p timing.Params) (timing.Result, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return timing.Result{}, err
	}
	res, err := timing.SimulateSource(f, p)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// EvaluateTSEFile evaluates the paper's TSE configuration on a saved trace
// through the streamed pipeline: three bounded-memory passes over the file
// (the trace-driven coverage model, the baseline timing model, and the TSE
// timing model), using the generation metadata embedded in the file. The
// trace is never materialized, and the Report is bit-identical to
// EvaluateTSE over LoadTrace's in-memory events.
func EvaluateTSEFile(path string) (Report, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return Report{}, err
	}
	gen, opts, err := replayContext(f.Meta())
	if err != nil {
		f.Close()
		return Report{}, err
	}
	cfg := tseConfig(gen, opts)
	cov, _, err := analysis.EvaluateTSEStream(cfg, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}

	params := timingParams(gen, opts)
	base, err := simulateFile(path, params)
	if err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	params.TSE = &cfg
	withTSE, err := simulateFile(path, params)
	if err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	return tseReport(cov, base, withTSE), nil
}

// EvaluateAllFile runs the Figure 12 comparison — stride, both GHB variants
// and TSE — on a saved trace through the streamed pipeline. Each model gets
// its own bounded-memory pass over the file, and the independent passes run
// in parallel over the worker pool. The reports are identical to EvaluateAll
// (and therefore to the serial ComparePrefetchers) over the loaded trace, in
// the same order.
func EvaluateAllFile(path string) ([]Report, error) {
	meta, err := ReplayMeta(path)
	if err != nil {
		return nil, err
	}
	gen, opts, err := replayContext(meta)
	if err != nil {
		return nil, err
	}
	cfg := tseConfig(gen, opts)
	specs := analysis.BaselineSpecs(opts.Nodes)
	return stream.RunOrdered(len(specs)+1, 0, func(i int) (Report, error) {
		f, err := stream.OpenFile(path)
		if err != nil {
			return Report{}, err
		}
		defer f.Close()
		if i < len(specs) {
			r, err := analysis.EvaluateModelStream(specs[i].New(), f)
			if err != nil {
				return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
			}
			return Report{
				Model: r.Name, Consumptions: r.Consumptions,
				Coverage: r.Coverage(), Discards: r.DiscardRate(),
			}, nil
		}
		cov, _, err := analysis.EvaluateTSEStream(cfg, f)
		if err != nil {
			return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
		}
		return Report{
			Model: cov.Name, Consumptions: cov.Consumptions,
			Coverage: cov.Coverage(), Discards: cov.DiscardRate(),
		}, nil
	})
}
