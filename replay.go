package tsm

// File replay through the streamed pipeline. LoadTrace + EvaluateTSE
// materializes the whole event stream before evaluating it, which makes file
// replay memory-bound on large traces. The functions here instead drive the
// full TSE + timing stack directly from the trace file in bounded memory,
// decoding each trace file exactly ONCE: a single decode pass is teed into
// every consumer (the coverage model, the baseline timing model, the TSE
// timing model, the Figure 12 baselines) by the fan-out engine in
// internal/pipeline, with each consumer on its own goroutine reading a
// cursor of the shared broadcast ring. The reports are bit-identical to the
// in-memory path and to the retained multipass reference implementations —
// proven by tests and pinned by the golden-file harness in testdata/. For
// whole sensitivity sweeps over one file, see sweep.go
// (EvaluateTSESweepFile): N configurations, still exactly one decode.

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/pipeline"
	"tsm/internal/stream"
	"tsm/internal/timing"
)

// ReplayMeta reads just the generation metadata embedded in a trace file.
func ReplayMeta(path string) (TraceMeta, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return TraceMeta{}, err
	}
	meta := f.Meta()
	return meta, f.Close()
}

// replayContext rebuilds the generator, options and TSE configuration a
// trace file's metadata describes.
func replayContext(meta TraceMeta) (Generator, Options, error) {
	gen, err := GeneratorFor(meta)
	if err != nil {
		return nil, Options{}, err
	}
	return gen, OptionsFor(meta), nil
}

// coverageReport converts a coverage summary into the facade Report shape.
func coverageReport(r analysis.CoverageResult) Report {
	return Report{
		Model: r.Name, Consumptions: r.Consumptions,
		Coverage: r.Coverage(), Discards: r.DiscardRate(),
	}
}

// EvaluateTSESource evaluates the paper's TSE configuration over a single
// pass of an event source: ONE decode of src is teed into the trace-driven
// coverage model, the baseline timing model and the TSE timing model, each
// running concurrently on its own goroutine over the fan-out engine's
// default ring broadcast. The events are never materialized, and the Report
// is bit-identical to EvaluateTSE over the equivalent in-memory trace. meta
// names the workload the source was generated from (as embedded in trace
// files).
func EvaluateTSESource(src EventSource, meta TraceMeta) (Report, error) {
	return evaluateTSESourceWith(pipeline.Config{}, src, meta)
}

// evaluateTSESourceWith is EvaluateTSESource under an explicit pipeline
// configuration — the seam the ring-vs-channels replay benchmarks use.
func evaluateTSESourceWith(pcfg pipeline.Config, src EventSource, meta TraceMeta) (Report, error) {
	gen, opts, err := replayContext(meta)
	if err != nil {
		return Report{}, err
	}
	if pcfg.ConsumerNames == nil {
		pcfg.ConsumerNames = tseConsumerNames()
	}
	cfg := tseConfig(gen, opts)
	cov := analysis.NewTSEConsumer(cfg)
	params := timingParams(gen, opts)
	base := timing.NewConsumer(params)
	tseParams := params
	tseParams.TSE = &cfg
	withTSE := timing.NewConsumer(tseParams)
	if err := pcfg.Run(src, cov, base, withTSE); err != nil {
		return Report{}, err
	}
	return tseReport(cov.Result, base.Result, withTSE.Result), nil
}

// EvaluateTSEFile evaluates the paper's TSE configuration on a saved trace
// through the fused streamed pipeline: the file is decoded exactly once and
// the single pass feeds all three consumers (see EvaluateTSESource), using
// the generation metadata embedded in the file. The trace is never
// materialized, and the Report is bit-identical to EvaluateTSE over
// LoadTrace's in-memory events and to EvaluateTSEFileMultipass. For parallel
// decode or ranged replay, see EvaluateTSEFileWith.
func EvaluateTSEFile(path string) (Report, error) {
	return EvaluateTSEFileWith(path, ReplayConfig{}, Instrumentation{})
}

// EvaluateAllSource runs the Figure 12 comparison — stride, both GHB
// variants and TSE — over a single pass of an event source: ONE decode of
// src is teed into all four models concurrently. The reports are identical
// to EvaluateAll (and therefore to the serial ComparePrefetchers) over the
// equivalent in-memory trace, in the same order.
func EvaluateAllSource(src EventSource, meta TraceMeta) ([]Report, error) {
	return evaluateAllSourceWith(pipeline.Config{}, src, meta)
}

// evaluateAllSourceWith is EvaluateAllSource under an explicit pipeline
// configuration — the observability seam. Consumers default to their model
// names in metrics and trace lanes.
func evaluateAllSourceWith(pcfg pipeline.Config, src EventSource, meta TraceMeta) ([]Report, error) {
	gen, opts, err := replayContext(meta)
	if err != nil {
		return nil, err
	}
	cfg := tseConfig(gen, opts)
	specs := analysis.BaselineSpecs(opts.Nodes)
	models := make([]*analysis.ModelConsumer, len(specs))
	consumers := make([]pipeline.Consumer, 0, len(specs)+1)
	names := make([]string, 0, len(specs)+1)
	for i, spec := range specs {
		models[i] = analysis.NewModelConsumer(spec.New())
		consumers = append(consumers, models[i])
		names = append(names, spec.Name)
	}
	tseCov := analysis.NewTSEConsumer(cfg)
	consumers = append(consumers, tseCov)
	if pcfg.ConsumerNames == nil {
		pcfg.ConsumerNames = append(names, "TSE")
	}
	if err := pcfg.Run(src, consumers...); err != nil {
		return nil, err
	}
	reports := make([]Report, 0, len(consumers))
	for _, m := range models {
		reports = append(reports, coverageReport(m.Result))
	}
	return append(reports, coverageReport(tseCov.Result)), nil
}

// EvaluateAllFile runs the Figure 12 comparison on a saved trace through the
// fused streamed pipeline: the file is decoded exactly once and the single
// pass feeds every model (see EvaluateAllSource). The reports are identical
// to EvaluateAll over the loaded trace, in the same order. For parallel
// decode or ranged replay, see EvaluateAllFileWith.
func EvaluateAllFile(path string) ([]Report, error) {
	return EvaluateAllFileWith(path, ReplayConfig{}, Instrumentation{})
}

// --- Multipass reference implementations ---------------------------------
//
// The pre-fusion replay paths — one decode pass per consumer, re-opening the
// file each time — are retained as differential-testing references: the
// parity tests, the fused-vs-multipass CI diff and BenchmarkFileReplay all
// compare the fused engine against them. They produce bit-identical reports
// by construction (same consumers, same event order) while costing one codec
// pass per consumer instead of one in total.

// simulateFile runs one timing simulation as a single streaming pass over
// the trace file.
func simulateFile(path string, p timing.Params) (timing.Result, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return timing.Result{}, err
	}
	res, err := timing.SimulateSource(f, p)
	return res, stream.CloseMerge(f, err)
}

// EvaluateTSEFileMultipass is the multipass reference for EvaluateTSEFile:
// three bounded-memory decode passes over the file (coverage, baseline
// timing, TSE timing), each re-opening it. Reports are bit-identical to the
// fused single-decode path.
func EvaluateTSEFileMultipass(path string) (Report, error) {
	f, err := stream.OpenFile(path)
	if err != nil {
		return Report{}, err
	}
	gen, opts, err := replayContext(f.Meta())
	if err != nil {
		f.Close()
		return Report{}, err
	}
	cfg := tseConfig(gen, opts)
	cov, _, err := analysis.EvaluateTSEStream(cfg, f)
	if err = stream.CloseMerge(f, err); err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}

	params := timingParams(gen, opts)
	base, err := simulateFile(path, params)
	if err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	params.TSE = &cfg
	withTSE, err := simulateFile(path, params)
	if err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	return tseReport(cov, base, withTSE), nil
}

// EvaluateAllFileMultipass is the multipass reference for EvaluateAllFile:
// each model gets its own decode pass over the file, the independent passes
// running in parallel over the worker pool. Reports are identical to the
// fused single-decode path, in the same order.
func EvaluateAllFileMultipass(path string) ([]Report, error) {
	meta, err := ReplayMeta(path)
	if err != nil {
		return nil, err
	}
	gen, opts, err := replayContext(meta)
	if err != nil {
		return nil, err
	}
	cfg := tseConfig(gen, opts)
	specs := analysis.BaselineSpecs(opts.Nodes)
	return stream.RunOrdered(len(specs)+1, 0, func(i int) (Report, error) {
		f, err := stream.OpenFile(path)
		if err != nil {
			return Report{}, err
		}
		var cov analysis.CoverageResult
		if i < len(specs) {
			cov, err = analysis.EvaluateModelStream(specs[i].New(), f)
		} else {
			cov, _, err = analysis.EvaluateTSEStream(cfg, f)
		}
		if err = stream.CloseMerge(f, err); err != nil {
			return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
		}
		return coverageReport(cov), nil
	})
}
