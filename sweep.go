package tsm

// Named TSE sweeps over trace files: an entire sensitivity study — many TSE
// configurations over the same access stream — evaluated as N concurrent
// consumers of ONE decode pass. The fan-out engine in internal/pipeline
// broadcasts the decoded chunks through a shared ring (one chunk copy,
// per-cell cursors, slowest-cursor backpressure), so a sweep over a trace
// file of any size runs in bounded memory and costs one codec pass in total,
// however many cells the sweep has. The per-cell reports are bit-identical
// to evaluating each configuration on its own (pinned by tests with a
// counting source asserting the single decode).

import (
	"fmt"
	"strings"

	"tsm/internal/analysis"
	"tsm/internal/experiments"
	"tsm/internal/pipeline"
	"tsm/internal/tse"
)

// SweepCell is one evaluated cell of a named TSE sweep: the swept parameter
// value and the cell's coverage report. Sweeps study coverage/discard
// sensitivity, so the timing-model fields (Speedup) are zero.
type SweepCell struct {
	// Label names the cell's swept parameter value ("streams=2", "LA=8",
	// "2KB").
	Label string
	// Report is the cell's coverage report.
	Report Report
}

// String renders the cell in one line.
func (c SweepCell) String() string { return fmt.Sprintf("%-10s %s", c.Label, c.Report) }

// TSESweeps lists the named sweeps EvaluateTSESweepFile understands, in
// presentation order: "streams" (the Figure 7 study — one to four compared
// streams, unconstrained hardware), "lookahead" (Figure 8 — stream lookahead
// 1 to 24, two compared streams) and "svb" (Figure 9 — SVB capacity from
// 512 bytes to unlimited, unlimited CMOB).
func TSESweeps() []string { return []string{"streams", "lookahead", "svb"} }

// sweepConfigs expands a named sweep into its cell labels and TSE
// configurations for the workload a trace's metadata describes. The cell
// axes are the experiment drivers' own, imported from internal/experiments
// (Fig8Lookaheads, Fig9SVBPoints, SweepBaseLookahead), so the trace-file
// sweeps cannot drift from the figures they reproduce.
func sweepConfigs(sweep string, gen Generator, opts Options) ([]string, []tse.Config, error) {
	base := tseConfig(gen, opts)
	// The opportunity/accuracy studies of Section 5.2 lift the hardware
	// restrictions to isolate the swept parameter.
	unconstrained := func(streams, lookahead int) tse.Config {
		cfg := base
		cfg.CMOBEntries = 0
		cfg.SVBEntries = 0
		cfg.StreamQueues = 64
		cfg.ComparedStreams = streams
		cfg.Lookahead = lookahead
		return cfg
	}
	var labels []string
	var cfgs []tse.Config
	switch strings.ToLower(strings.TrimSpace(sweep)) {
	case "streams":
		for streams := 1; streams <= 4; streams++ {
			labels = append(labels, fmt.Sprintf("streams=%d", streams))
			cfgs = append(cfgs, unconstrained(streams, experiments.SweepBaseLookahead))
		}
	case "lookahead":
		for _, la := range experiments.Fig8Lookaheads() {
			labels = append(labels, fmt.Sprintf("LA=%d", la))
			cfgs = append(cfgs, unconstrained(2, la))
		}
	case "svb":
		for _, p := range experiments.Fig9SVBPoints() {
			cfg := base
			cfg.Lookahead = experiments.SweepBaseLookahead // as fig9Configs pins it
			cfg.CMOBEntries = 0                            // isolate the SVB effect
			cfg.SVBEntries = p.Entries
			labels = append(labels, p.Label)
			cfgs = append(cfgs, cfg)
		}
	default:
		return nil, nil, fmt.Errorf("tsm: unknown sweep %q (known: %s)", sweep, strings.Join(TSESweeps(), ", "))
	}
	return labels, cfgs, nil
}

// EvaluateTSESweepSource runs a named TSE sweep over a single pass of an
// event source: ONE decode of src is broadcast to every sweep cell's TSE
// model by the ring fan-out engine, so the stream is walked once however
// many cells the sweep has, and memory stays bounded by the ring — never the
// stream length. meta names the workload the source was generated from (as
// embedded in trace files); the per-cell reports are bit-identical to
// evaluating each cell's configuration independently.
func EvaluateTSESweepSource(src EventSource, meta TraceMeta, sweep string) ([]SweepCell, error) {
	return evaluateTSESweepSourceWith(pipeline.Config{}, src, meta, sweep)
}

// evaluateTSESweepSourceWith is EvaluateTSESweepSource under an explicit
// pipeline configuration — the observability seam. Cell consumers default to
// their sweep labels in metrics and trace lanes.
func evaluateTSESweepSourceWith(pcfg pipeline.Config, src EventSource, meta TraceMeta, sweep string) ([]SweepCell, error) {
	gen, opts, err := replayContext(meta)
	if err != nil {
		return nil, err
	}
	labels, cfgs, err := sweepConfigs(sweep, gen, opts)
	if err != nil {
		return nil, err
	}
	if pcfg.ConsumerNames == nil {
		pcfg.ConsumerNames = labels
	}
	results, err := analysis.SweepWith(pcfg, cfgs, src)
	if err != nil {
		return nil, err
	}
	cells := make([]SweepCell, len(results))
	for i, r := range results {
		cells[i] = SweepCell{Label: labels[i], Report: coverageReport(r.Coverage)}
	}
	return cells, nil
}

// EvaluateTSESweepFile runs a named TSE sweep (see TSESweeps) over a saved
// trace with exactly one decode of the file: the whole sensitivity study —
// every cell of the sweep — rides a single bounded-memory pass through the
// ring fan-out engine, using the generation metadata embedded in the file.
// For parallel decode or ranged replay, see EvaluateTSESweepFileWith.
func EvaluateTSESweepFile(path, sweep string) ([]SweepCell, error) {
	return EvaluateTSESweepFileWith(path, sweep, ReplayConfig{}, Instrumentation{})
}
