package tsm

// Facade-level differential tests for the version 3 indexed codec: parallel
// per-chunk decode and ranged replay must produce reports bit-identical to
// the serial streaming path, for every workload and any worker count.

import (
	"os"
	"strings"
	"testing"

	"tsm/internal/stream"
)

// TestParallelFileReplayParityAllWorkloads is the tentpole's acceptance
// criterion: for EVERY workload, EvaluateTSEFileWith at 1, 4 and 8 decode
// workers produces a Report bit-identical to the serial streaming decode.
// Worker count is a performance knob, never a semantics knob.
func TestParallelFileReplayParityAllWorkloads(t *testing.T) {
	opts := Options{Nodes: 4, Scale: 0.03, Seed: 11}
	dir := t.TempDir()
	for _, name := range AllWorkloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, gen, err := GenerateTrace(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			path := dir + "/" + name + ".tsm"
			if err := SaveTrace(path, tr, gen, opts); err != nil {
				t.Fatal(err)
			}
			want, err := EvaluateTSEFile(path) // serial decode
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				got, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: workers}, Instrumentation{})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != want {
					t.Fatalf("workers=%d report %+v != serial report %+v", workers, got, want)
				}
			}
		})
	}
}

// TestParallelEvaluateAllAndSweep extends the parity to the other two replay
// entry points: the Figure 12 comparison and a named sweep, each decoded by
// 4 parallel workers, must match their serial-decode results cell for cell.
func TestParallelEvaluateAllAndSweep(t *testing.T) {
	path := writeTestTrace(t, "ocean")
	rc := ReplayConfig{DecodeWorkers: 4}

	wantAll, err := EvaluateAllFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotAll, err := EvaluateAllFileWith(path, rc, Instrumentation{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAll) != len(wantAll) {
		t.Fatalf("got %d reports, want %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if gotAll[i] != wantAll[i] {
			t.Fatalf("model %d: parallel report %+v != serial %+v", i, gotAll[i], wantAll[i])
		}
	}

	wantSweep, err := EvaluateTSESweepFile(path, "lookahead")
	if err != nil {
		t.Fatal(err)
	}
	gotSweep, err := EvaluateTSESweepFileWith(path, "lookahead", rc, Instrumentation{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSweep) != len(wantSweep) {
		t.Fatalf("got %d cells, want %d", len(gotSweep), len(wantSweep))
	}
	for i := range wantSweep {
		if gotSweep[i] != wantSweep[i] {
			t.Fatalf("cell %d: parallel %+v != serial %+v", i, gotSweep[i], wantSweep[i])
		}
	}
}

// TestRangedFileReplay replays [from, to) sub-ranges through the index and
// checks each matches evaluating the same slice of the loaded trace in
// memory — ranged replay is a seek, not a different computation.
func TestRangedFileReplay(t *testing.T) {
	path := writeTestTrace(t, "moldyn")
	loaded, meta, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(loaded.Events))
	if n < 100 {
		t.Fatalf("test trace too small: %d events", n)
	}
	ranges := [][2]uint64{
		{0, 0},             // full trace via the ranged path
		{0, n / 2},         // prefix
		{n / 3, 0},         // suffix
		{n / 4, 3 * n / 4}, // interior window
		{n - 1, n},         // single event
	}
	for _, rg := range ranges {
		from, to := rg[0], rg[1]
		hi := to
		if hi == 0 {
			hi = n
		}
		want, err := EvaluateTSESource(stream.NewSliceSource(loaded.Events[from:hi]), meta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: 4, From: from, To: to}, Instrumentation{})
		if err != nil {
			t.Fatalf("range [%d, %d): %v", from, to, err)
		}
		if got != want {
			t.Fatalf("range [%d, %d): ranged report %+v != in-memory slice report %+v", from, to, got, want)
		}
	}

	// An inverted range is an error, not an empty replay.
	if _, err := EvaluateTSEFileWith(path, ReplayConfig{From: 10, To: 5}, Instrumentation{}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestMmapFileReplayParity extends the parity to mmap-backed decode: an
// mmap replay must produce a Report bit-identical to the serial streaming
// decode at any worker count (0 selects the indexed default), and an mmap
// request on a pre-index file falls back to the serial decoder like any
// other parallel request. On platforms without mmap support the mapping
// degrades to ReadAt, so the parity holds everywhere.
func TestMmapFileReplayParity(t *testing.T) {
	path := writeTestTrace(t, "db2")
	want, err := EvaluateTSEFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 8} {
		got, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: workers, Mmap: true}, Instrumentation{})
		if err != nil {
			t.Fatalf("mmap workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("mmap workers=%d report %+v != serial report %+v", workers, got, want)
		}
	}

	v2 := rewriteAsV2(t, path)
	got, err := EvaluateTSEFileWith(v2, ReplayConfig{Mmap: true}, Instrumentation{})
	if err != nil {
		t.Fatalf("mmap request on v2 file should fall back, got: %v", err)
	}
	if got != want {
		t.Fatalf("v2 mmap fallback report %+v != v3 report %+v", got, want)
	}
}

// TestParallelRequestFallsBackOnV2 pins the compatibility contract: a
// parallel-decode request on a pre-index (version 2) file quietly falls back
// to the serial decoder and still produces the right report, while a RANGED
// request on the same file fails loudly — a silently ignored -from/-to would
// be a wrong answer.
func TestParallelRequestFallsBackOnV2(t *testing.T) {
	path := writeTestTrace(t, "em3d")
	want, err := EvaluateTSEFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v2 := rewriteAsV2(t, path)

	got, err := EvaluateTSEFileWith(v2, ReplayConfig{DecodeWorkers: 4}, Instrumentation{})
	if err != nil {
		t.Fatalf("parallel request on v2 file should fall back, got: %v", err)
	}
	if got != want {
		t.Fatalf("v2 fallback report %+v != v3 report %+v", got, want)
	}

	_, err = EvaluateTSEFileWith(v2, ReplayConfig{From: 1, To: 10}, Instrumentation{})
	if err == nil {
		t.Fatal("ranged replay of an unindexed file succeeded; the range would have been ignored")
	}
	if !strings.Contains(err.Error(), "index") {
		t.Fatalf("ranged-replay error should explain the missing index: %v", err)
	}
}

// writeTestTrace generates one small workload trace file for replay tests.
func writeTestTrace(t *testing.T, workload string) string {
	t.Helper()
	opts := Options{Nodes: 4, Scale: 0.03, Seed: 11}
	tr, gen, err := GenerateTrace(workload, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + workload + ".tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		t.Fatal(err)
	}
	return path
}

// rewriteAsV2 re-encodes a trace file with the pre-index codec version.
func rewriteAsV2(t *testing.T, path string) string {
	t.Helper()
	f, err := stream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := strings.TrimSuffix(path, ".tsm") + ".v2.tsm"
	of, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	w, err := stream.NewWriterVersion(of, f.Meta(), stream.VersionNoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Copy(w, f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := of.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}
