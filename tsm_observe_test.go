package tsm

// Facade tests for the PR 8 observability surfaces: per-run time-series
// sampled through the replay pipeline, and run manifests recording trace
// provenance, stage wall times and the final metrics snapshot.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"tsm/internal/stream"
)

// TestFileReplaySeries: an attached SeriesSet collects one series per
// consumer of the TSE replay, the sampling interval auto-sizes from the
// trace's indexed event count, and the final "coverage" sample carries
// exactly the coverage the Report states — the time-series lands on the
// end-of-run truth, not an approximation of it.
func TestFileReplaySeries(t *testing.T) {
	path := writeTestTrace(t, "db2")
	info, err := stream.Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSeriesSet()
	rep, err := EvaluateTSEFileWith(path, ReplayConfig{}, Instrumentation{Series: ss})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Interval() == 0 {
		t.Fatal("facade did not auto-size the sampling interval from the index")
	}
	snap := ss.Snapshot()
	for _, name := range tseConsumerNames() {
		if len(snap.Series[name].Points) == 0 {
			t.Fatalf("consumer %q collected no samples; snapshot has %v", name, snap.Series)
		}
	}
	pts := snap.Series["coverage"].Points
	last := pts[len(pts)-1]
	if last.Seq != info.Events-1 {
		t.Fatalf("final sample at seq %d, want last event %d", last.Seq, info.Events-1)
	}
	if got := last.Values["coverage"]; got != rep.Coverage {
		t.Fatalf("final sampled coverage %v != report coverage %v", got, rep.Coverage)
	}
	if got := last.Values["consumptions"]; got != float64(rep.Consumptions) {
		t.Fatalf("final sampled consumptions %v != report %d", got, rep.Consumptions)
	}
	// Monotonic cumulative counts: samples are ordered by seq and
	// consumptions never decrease.
	for i := 1; i < len(pts); i++ {
		if pts[i].Seq <= pts[i-1].Seq {
			t.Fatalf("sample seqs not increasing: %d then %d", pts[i-1].Seq, pts[i].Seq)
		}
		if pts[i].Values["consumptions"] < pts[i-1].Values["consumptions"] {
			t.Fatalf("cumulative consumptions decreased at sample %d", i)
		}
	}
	// The timing consumers sample per-epoch latency quantiles.
	tpts := snap.Series["timing-tse"].Points
	if v, ok := tpts[len(tpts)-1].Values["latency_p99"]; !ok || v <= 0 {
		t.Fatalf("timing series missing latency_p99: %v", tpts[len(tpts)-1].Values)
	}
}

// TestFileReplayManifest: the manifest records the trace's content identity
// (SHA-256, codec version, chunk/event counts, workload metadata), the
// replay settings, the timed stages in order, and the final metrics
// snapshot; WriteFile produces parseable JSON.
func TestFileReplayManifest(t *testing.T) {
	path := writeTestTrace(t, "ocean")
	info, err := stream.Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)

	rm := NewRunManifest()
	rm.SetCommand([]string{"tsesim", "-i", path})
	ins := Instrumentation{Metrics: NewMetrics(), Manifest: rm}
	if _, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: 2}, ins); err != nil {
		t.Fatal(err)
	}

	m := rm.Snapshot()
	if m.Tool != "tsm" || m.Version != ToolVersion {
		t.Fatalf("tool/version = %q/%q", m.Tool, m.Version)
	}
	if m.Trace.SHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("sha256 = %q, want %q", m.Trace.SHA256, hex.EncodeToString(sum[:]))
	}
	if m.Trace.CodecVersion != stream.Version || m.Trace.Chunks != info.Chunks || m.Trace.Events != info.Events {
		t.Fatalf("trace provenance %+v does not match Describe %+v", m.Trace, info)
	}
	if m.Trace.Workload != "ocean" || m.Trace.Nodes != 4 || m.Trace.Seed != 11 {
		t.Fatalf("workload metadata %+v", m.Trace)
	}
	if m.Replay.Op != "replay-tse" || m.Replay.DecodeWorkers != 2 {
		t.Fatalf("replay settings %+v", m.Replay)
	}
	var names []string
	for _, st := range m.Stages {
		names = append(names, st.Name)
		if st.WallNs < 0 {
			t.Fatalf("stage %q has negative wall time", st.Name)
		}
	}
	if len(names) != 3 || names[0] != "open" || names[1] != "replay" || names[2] != "hash" {
		t.Fatalf("stages = %v, want [open replay hash]", names)
	}
	if m.Metrics == nil {
		t.Fatal("manifest missing final metrics snapshot")
	}
	if n := m.Metrics.Counters["pipeline.events_decoded"]; n != info.Events {
		t.Fatalf("snapshot events_decoded = %d, want %d", n, info.Events)
	}

	out := t.TempDir() + "/manifest.json"
	if err := rm.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest file is not valid JSON: %v", err)
	}
	if back.Trace.SHA256 != m.Trace.SHA256 || len(back.Stages) != len(m.Stages) {
		t.Fatalf("round-tripped manifest %+v != %+v", back, m)
	}
}

// TestManifestDeterministicShape: two identical runs produce byte-identical
// manifests once the legitimately timing-dependent fields — stage wall
// times, the nanosecond/throughput metrics and the backpressure wait
// histograms, all functions of scheduling rather than of the evaluation —
// are cleared. The JSON shape, key order, trace provenance and every
// deterministic metric (event counts, per-consumer totals) are stable.
func TestManifestDeterministicShape(t *testing.T) {
	path := writeTestTrace(t, "moldyn")
	encode := func() []byte {
		rm := NewRunManifest()
		rm.SetCommand([]string{"tsesim", "-i", path})
		if _, err := EvaluateTSEFileWith(path, ReplayConfig{}, Instrumentation{Metrics: NewMetrics(), Manifest: rm}); err != nil {
			t.Fatal(err)
		}
		m := rm.Snapshot()
		for i := range m.Stages {
			m.Stages[i].WallNs = 0
		}
		m.Metrics.Histograms = nil
		for name := range m.Metrics.Counters {
			if strings.HasSuffix(name, "_ns") {
				delete(m.Metrics.Counters, name)
			}
		}
		for name := range m.Metrics.Gauges {
			if strings.HasSuffix(name, "_per_sec") {
				delete(m.Metrics.Gauges, name)
			}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("manifests differ between identical runs:\n%s\n---\n%s", a, b)
	}
}

// TestSweepSeriesAndManifest: a sweep run collects one series per cell
// (labelled like the trace lanes, e.g. "LA=8") and stamps the sweep name
// into the manifest.
func TestSweepSeriesAndManifest(t *testing.T) {
	path := writeTestTrace(t, "em3d")
	ss := NewSeriesSet()
	rm := NewRunManifest()
	cells, err := EvaluateTSESweepFileWith(path, "lookahead", ReplayConfig{}, Instrumentation{Series: ss, Manifest: rm})
	if err != nil {
		t.Fatal(err)
	}
	snap := ss.Snapshot()
	if len(snap.Series) != len(cells) {
		t.Fatalf("got %d series for %d sweep cells: %v", len(snap.Series), len(cells), snap.Series)
	}
	for _, c := range cells {
		pts := snap.Series[c.Label].Points
		if len(pts) == 0 {
			t.Fatalf("cell %q collected no samples", c.Label)
		}
		if got := pts[len(pts)-1].Values["coverage"]; got != c.Report.Coverage {
			t.Fatalf("cell %q final sampled coverage %v != report %v", c.Label, got, c.Report.Coverage)
		}
	}
	m := rm.Snapshot()
	if m.Replay.Op != "sweep" || m.Replay.Sweep != "lookahead" {
		t.Fatalf("sweep manifest replay settings %+v", m.Replay)
	}
}
