package tsm

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The facade half of the golden-file regression harness: one pinned TSE
// Report per workload (coverage, discards, timing-model speedup with CI),
// produced through BOTH pipelines — the in-memory path and the streamed
// file-replay path — which must agree byte for byte before being compared
// to the golden. Regenerate after an intentional change with:
//
//	go test -run TestGoldenReports -update .
var updateReports = flag.Bool("update", false, "rewrite the golden files with the current outputs")

func TestGoldenReports(t *testing.T) {
	opts := Options{Nodes: 4, Scale: 0.05, Seed: 9}
	dir := t.TempDir()
	var b strings.Builder
	fmt.Fprintf(&b, "# per-workload TSE reports, nodes=%d scale=%g seed=%d\n", opts.Nodes, opts.Scale, opts.Seed)
	for _, name := range Workloads() {
		tr, gen, err := GenerateTrace(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := EvaluateTSE(tr, gen, opts)
		if err != nil {
			t.Fatal(err)
		}

		// The streamed file replay must agree with the in-memory pipeline
		// before either is compared against the pinned numbers.
		path := dir + "/" + name + ".tsm"
		if err := SaveTrace(path, tr, gen, opts); err != nil {
			t.Fatal(err)
		}
		streamed, err := EvaluateTSEFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if streamed != rep {
			t.Fatalf("%s: streamed report %+v != in-memory report %+v", name, streamed, rep)
		}

		fmt.Fprintf(&b, "%-9s %s\n", name, rep)
	}
	got := b.String()

	golden := filepath.Join("testdata", "reports.golden")
	if *updateReports {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenReports -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("per-workload reports drifted from the pinned golden.\n--- got ---\n%s--- want ---\n%s"+
			"If the change is intentional, regenerate with -update and review the diff.", got, want)
	}
}
