package tsm

// Observability facade: metrics, stage tracing and progress reporting for
// the replay/sweep engine, re-exported from internal/obs so callers of the
// public API (and the CLIs) can attach instrumentation without importing
// internal packages. Everything is opt-in — the zero Instrumentation is a
// no-op and costs the un-instrumented paths nothing (a nil pointer check,
// pinned to zero allocations by the obs tests).

import (
	"io"
	"time"

	"tsm/internal/obs"
	"tsm/internal/pipeline"
)

// Metrics is a registry of atomic counters, gauges and log-bucket
// histograms. Attach one via Instrumentation to collect the replay engine's
// counters (see internal/pipeline's metric-name table); snapshot it with
// WriteJSON/WriteFile. Safe for concurrent use.
type Metrics = obs.Registry

// MetricsSnapshot is the JSON shape a Metrics registry snapshots to.
type MetricsSnapshot = obs.Snapshot

// Tracer records lightweight stage spans (decode pass, per-chunk decodes,
// per-consumer runs) and exports them in the Chrome trace-event format:
// load the file at chrome://tracing or https://ui.perfetto.dev. Safe for
// concurrent use.
type Tracer = obs.Tracer

// SeriesSet collects one windowed time-series per pipeline consumer: epoch
// samples of live cumulative state (coverage, occupancy, per-epoch latency
// quantiles), keyed by event sequence number. Attach one via Instrumentation
// and the replay engine pumps samples at chunk boundaries; export with
// WriteJSON/WriteFile. Safe for concurrent use.
type SeriesSet = obs.SeriesSet

// SeriesPoint is one epoch sample of a series.
type SeriesPoint = obs.SeriesPoint

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns an empty stage tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewSeriesSet returns an empty time-series set. The facade auto-sizes the
// sampling interval from the trace's event count when the file is indexed
// (targeting obs.DefaultSeriesPoints samples); SetInterval beforehand to
// override.
func NewSeriesSet() *SeriesSet { return obs.NewSeriesSet() }

// Instrumentation bundles the optional observability attachments of one
// replay or sweep call. The zero value disables everything; each field is
// independent, so any subset may be set.
type Instrumentation struct {
	// Metrics, when non-nil, collects the engine's counters, gauges and
	// backpressure histograms for the call.
	Metrics *Metrics
	// Tracer, when non-nil, records one span per pipeline stage.
	Tracer *Tracer
	// Progress, when non-nil, receives periodic one-line throughput/ETA
	// reports during the call (the CLIs pass os.Stderr, keeping stdout
	// reports byte-identical to un-instrumented runs).
	Progress io.Writer
	// ProgressInterval overrides the reporting period (default 2s).
	ProgressInterval time.Duration
	// Series, when non-nil, collects per-consumer time-series of live
	// cumulative state, sampled at chunk boundaries during the run.
	Series *SeriesSet
	// Manifest, when non-nil, records the run's provenance: trace identity
	// (content hash, codec version, workload metadata), replay settings,
	// per-stage wall times, and the final metrics snapshot when Metrics is
	// also set.
	Manifest *RunManifest
}

// pipelineConfig builds the engine configuration carrying the attachments.
// The returned registry is the one the engine will write to: normally
// ins.Metrics, but a Progress-only instrumentation gets a private registry
// so the meter has a decode counter to watch.
func (ins Instrumentation) pipelineConfig(names []string) (pipeline.Config, *Metrics) {
	m := ins.Metrics
	if m == nil && ins.Progress != nil {
		m = NewMetrics()
	}
	return pipeline.Config{Metrics: m, Tracer: ins.Tracer, Series: ins.Series, ConsumerNames: names}, m
}

// startProgress launches the progress meter when requested (nil otherwise —
// and the nil Progress handle's Stop is a no-op).
func (ins Instrumentation) startProgress(label string, m *Metrics, fraction func() float64) *obs.Progress {
	if ins.Progress == nil {
		return nil
	}
	return obs.StartProgress(obs.ProgressConfig{
		W:        ins.Progress,
		Label:    label,
		Events:   m.Counter("pipeline.events_decoded"),
		Fraction: fraction,
		Interval: ins.ProgressInterval,
	})
}

// tseConsumerNames labels the three consumers of the TSE evaluation fan-out
// in metrics and trace lanes.
func tseConsumerNames() []string { return []string{"coverage", "timing-base", "timing-tse"} }

// EvaluateTSEFileObserved is EvaluateTSEFile with instrumentation attached:
// the same fused single-decode replay, reporting what it did through the
// configured metrics registry, stage tracer and progress writer.
func EvaluateTSEFileObserved(path string, ins Instrumentation) (Report, error) {
	return EvaluateTSEFileWith(path, ReplayConfig{}, ins)
}

// EvaluateAllFileObserved is EvaluateAllFile with instrumentation attached
// (see EvaluateTSEFileObserved); the consumers are labelled with their
// model names.
func EvaluateAllFileObserved(path string, ins Instrumentation) ([]Report, error) {
	return EvaluateAllFileWith(path, ReplayConfig{}, ins)
}

// EvaluateTSESweepFileObserved is EvaluateTSESweepFile with instrumentation
// attached: per-cell consumer throughput lands in the metrics registry and
// one trace lane per sweep cell, labelled with the cell labels ("LA=8").
func EvaluateTSESweepFileObserved(path, sweep string, ins Instrumentation) ([]SweepCell, error) {
	return EvaluateTSESweepFileWith(path, sweep, ReplayConfig{}, ins)
}
