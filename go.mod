module tsm

go 1.24
