package tsm

import (
	"bytes"
	"strings"
	"testing"

	"tsm/internal/stream"
)

// TestStreamedTraceFileBytesMatchMaterialized is the tentpole's byte-level
// acceptance criterion: for EVERY registered workload (the ten-suite plus the
// mix), encoding the trace through the fully streamed pipeline — generator
// Emit → coherence engine → codec, no intermediate slice anywhere — must
// produce a .tsm byte stream identical to the materialized reference path
// (Generate → Run → SaveTrace). This is the in-process form of the
// `tracegen` vs `tracegen -materialize` byte-diff CI runs on a large
// workload.
func TestStreamedTraceFileBytesMatchMaterialized(t *testing.T) {
	opts := Options{Nodes: 4, Scale: 0.03, Seed: 11}
	for _, name := range AllWorkloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			// Streamed: no access slice, no event slice.
			var streamed bytes.Buffer
			w, err := stream.NewWriter(&streamed, stream.Meta{Workload: name, Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := StreamTrace(name, opts, w); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Materialized reference.
			tr, gen, err := GenerateTrace(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			var materialized bytes.Buffer
			mw, err := stream.NewWriter(&materialized, stream.Meta{Workload: strings.ToLower(gen.Name()), Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := stream.Copy(mw, stream.TraceSource(tr)); err != nil {
				t.Fatal(err)
			}
			if err := mw.Close(); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(streamed.Bytes(), materialized.Bytes()) {
				t.Fatalf("%s: streamed .tsm (%d bytes) differs from materialized .tsm (%d bytes)",
					name, streamed.Len(), materialized.Len())
			}
		})
	}
}

// TestStreamTraceMatchesGenerateTrace: the streaming generation path must
// emit exactly the events the materializing path produces.
func TestStreamTraceMatchesGenerateTrace(t *testing.T) {
	opts := testOpts()
	want, _, err := GenerateTrace("db2", opts)
	if err != nil {
		t.Fatal(err)
	}
	var sink stream.TraceSink
	_, n, err := StreamTrace("db2", opts, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != want.Len() || sink.Trace.Len() != want.Len() {
		t.Fatalf("streamed %d events (sink %d), want %d", n, sink.Trace.Len(), want.Len())
	}
	for i := range want.Events {
		if sink.Trace.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, sink.Trace.Events[i], want.Events[i])
		}
	}
	if _, _, err := StreamTrace("nope", opts, &sink); err == nil {
		t.Fatal("unknown workload should error")
	}
}

// TestTraceFileRoundTripReport is the cross-process acceptance path in
// miniature: generate→save→load→evaluate must reproduce the in-process
// Report bit for bit (coverage, discards, and the timing-model speedup).
func TestTraceFileRoundTripReport(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("em3d", opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateTSE(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/em3d.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Workload != "em3d" || meta.Nodes != opts.Nodes || meta.Scale != opts.Scale || meta.Seed != opts.Seed {
		t.Fatalf("meta = %+v, want the generation options", meta)
	}
	gen2, err := GeneratorFor(meta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateTSE(loaded, gen2, OptionsFor(meta))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("replayed report %+v != in-process report %+v", got, want)
	}

	if err := SaveTrace(path, nil, gen, opts); err == nil {
		t.Fatal("nil trace should error")
	}
	if _, err := GeneratorFor(TraceMeta{Workload: "bogus"}); err == nil {
		t.Fatal("bogus metadata should error")
	}
}

// TestFileReplayParityAllWorkloads is the PR's acceptance criterion: for
// EVERY workload — the paper's seven, the extended matrix and the
// cross-workload mix — all three file-replay pipelines must agree bit for bit: the fused single-decode
// fan-out engine (EvaluateTSEFile), the multipass reference that re-decodes
// the file per consumer (EvaluateTSEFileMultipass), and the in-memory
// pipeline over the loaded trace.
func TestFileReplayParityAllWorkloads(t *testing.T) {
	opts := Options{Nodes: 4, Scale: 0.03, Seed: 11}
	dir := t.TempDir()
	for _, name := range AllWorkloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, gen, err := GenerateTrace(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			path := dir + "/" + name + ".tsm"
			if err := SaveTrace(path, tr, gen, opts); err != nil {
				t.Fatal(err)
			}

			// In-memory pipeline (the reference).
			loaded, meta, err := LoadTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			gen2, err := GeneratorFor(meta)
			if err != nil {
				t.Fatal(err)
			}
			want, err := EvaluateTSE(loaded, gen2, OptionsFor(meta))
			if err != nil {
				t.Fatal(err)
			}

			// Fused streamed pipeline: one decode pass, three consumers.
			fused, err := EvaluateTSEFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if fused != want {
				t.Fatalf("fused report %+v != in-memory report %+v", fused, want)
			}

			// Multipass streamed pipeline: one decode pass per consumer.
			multipass, err := EvaluateTSEFileMultipass(path)
			if err != nil {
				t.Fatal(err)
			}
			if multipass != want {
				t.Fatalf("multipass report %+v != in-memory report %+v", multipass, want)
			}
		})
	}
}

// passCountingSource wraps a Source and counts Next calls, so a test can
// assert how many times a pipeline decoded the stream: a single full pass
// over an N-event trace is exactly N+1 calls (the events plus one io.EOF).
type passCountingSource struct {
	src   EventSource
	nexts int
}

func (c *passCountingSource) Next() (Event, error) {
	c.nexts++
	return c.src.Next()
}

// TestSingleDecodePass is the tentpole's acceptance criterion: the fused
// replay engine behind EvaluateTSEFile/EvaluateAllFile must decode the trace
// exactly ONCE — N events + one EOF read from the source — even though the
// TSE report needs three consumers and the Figure 12 comparison four, and
// the reports must match the in-memory pipeline bit for bit.
func TestSingleDecodePass(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("db2", opts)
	if err != nil {
		t.Fatal(err)
	}
	meta := TraceMeta{Workload: "db2", Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed}
	wantNexts := tr.Len() + 1

	want, err := EvaluateTSE(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := &passCountingSource{src: stream.TraceSource(tr)}
	got, err := EvaluateTSESource(src, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("single-pass report %+v != in-memory report %+v", got, want)
	}
	if src.nexts != wantNexts {
		t.Fatalf("EvaluateTSESource read the source %d times, want %d (one decode pass)", src.nexts, wantNexts)
	}

	wantAll, err := EvaluateAll(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	src = &passCountingSource{src: stream.TraceSource(tr)}
	gotAll, err := EvaluateAllSource(src, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAll) != len(wantAll) {
		t.Fatalf("got %d reports, want %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if gotAll[i] != wantAll[i] {
			t.Errorf("report %d: single-pass %+v, want %+v", i, gotAll[i], wantAll[i])
		}
	}
	if src.nexts != wantNexts {
		t.Fatalf("EvaluateAllSource read the source %d times, want %d (one decode pass)", src.nexts, wantNexts)
	}

	if _, err := EvaluateTSESource(stream.TraceSource(tr), TraceMeta{Workload: "bogus"}); err == nil {
		t.Fatal("bogus metadata should error")
	}
	if _, err := EvaluateAllSource(stream.TraceSource(tr), TraceMeta{Workload: "bogus"}); err == nil {
		t.Fatal("bogus metadata should error")
	}
}

// TestEvaluateAllFileMatchesEvaluateAll: the streamed Figure 12 comparison
// over a trace file — fused and multipass — must reproduce the in-memory
// comparison exactly.
func TestEvaluateAllFileMatchesEvaluateAll(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("memkv", opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/memkv.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateAll(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateAllFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("report %d: streamed %+v, want %+v", i, got[i], want[i])
		}
	}
	multipass, err := EvaluateAllFileMultipass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(multipass) != len(want) {
		t.Fatalf("multipass got %d reports, want %d", len(multipass), len(want))
	}
	for i := range want {
		if multipass[i] != want[i] {
			t.Errorf("report %d: multipass %+v, want %+v", i, multipass[i], want[i])
		}
	}
	if _, err := EvaluateAllFile(t.TempDir() + "/missing.tsm"); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := EvaluateAllFileMultipass(t.TempDir() + "/missing.tsm"); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := EvaluateTSEFileMultipass(t.TempDir() + "/missing.tsm"); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestReplayMeta: the metadata-only read must match what LoadTrace decodes.
func TestReplayMeta(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("cdn", opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cdn.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		t.Fatal(err)
	}
	meta, err := ReplayMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Workload != "cdn" || meta.Nodes != opts.Nodes || meta.Scale != opts.Scale || meta.Seed != opts.Seed {
		t.Fatalf("meta = %+v, want the generation options", meta)
	}
	if _, err := ReplayMeta(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestEvaluateAllMatchesComparePrefetchers: the parallel suite evaluation
// must reproduce the serial comparison exactly, in the same order.
func TestEvaluateAllMatchesComparePrefetchers(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("oracle", opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComparePrefetchers(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateAll(tr, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("report %d: parallel %+v, want serial %+v", i, got[i], want[i])
		}
	}
	if _, err := EvaluateAll(nil, gen, opts); err == nil {
		t.Fatal("nil trace should error")
	}
}

// TestRunExperimentsParallel: the batched parallel runner must render the
// same tables as the serial single-experiment API.
func TestRunExperimentsParallel(t *testing.T) {
	opts := testOpts()
	ids := []string{"table1", "fig6", "fig12"}
	tables, err := RunExperiments(ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(ids) {
		t.Fatalf("got %d tables, want %d", len(tables), len(ids))
	}
	for i, id := range ids {
		want, err := RunExperiment(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if tables[i] != want {
			t.Errorf("%s: parallel table differs from serial:\n%s\nvs\n%s", id, tables[i], want)
		}
		if !strings.Contains(tables[i], id) {
			t.Errorf("%s: table missing its id header", id)
		}
	}
	if _, err := RunExperiments([]string{"fig999"}, opts); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
