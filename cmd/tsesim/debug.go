package main

import (
	"fmt"
	"os"

	"tsm"
	"tsm/internal/obs"
)

// checkWritable verifies an output path can be created (or truncated) NOW,
// so a typo'd -metrics/-trace path fails before the run instead of after
// minutes of replay. The file is left in place for the post-run dump to
// overwrite.
func checkWritable(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("output not writable: %w", err)
	}
	return f.Close()
}

// servePprof starts the debug HTTP endpoint: net/http/pprof under
// /debug/pprof/ and a live metrics snapshot at /metrics.
func servePprof(addr string, reg *tsm.Metrics) (shutdown func(), err error) {
	_, shutdown, err = obs.ServeDebug(addr, reg)
	return shutdown, err
}
