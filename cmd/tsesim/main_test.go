package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsm"
	"tsm/internal/obs"
	"tsm/internal/stream"
)

// writeTestTrace generates a small trace file through the facade's streamed
// pipeline (the exact path tracegen uses) for the replay tests.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.tsm")
	if err := generateSmallTrace(path); err != nil {
		t.Fatalf("generating test trace: %v", err)
	}
	return path
}

// generateSmallTrace streams one tiny db2 trace into path.
func generateSmallTrace(path string) (err error) {
	return generateTraceScaled(path, 0.05)
}

// generateTraceScaled streams one db2 trace at the given scale into path.
func generateTraceScaled(path string, scale float64) (err error) {
	opts := tsm.Options{Nodes: 4, Scale: scale, Seed: 9}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = stream.CloseMerge(f, err) }()
	w, err := stream.NewWriter(f, stream.Meta{Workload: "db2", Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return err
	}
	if _, _, err := tsm.StreamTrace("db2", opts, w); err != nil {
		return err
	}
	return w.Close()
}

// TestRunMissingInput: a missing -i file must exit non-zero with a clear
// error on stderr, not panic or print an empty report.
func TestRunMissingInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", filepath.Join(t.TempDir(), "nope.tsm")}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("missing input exited 0\nstdout:\n%s", &stdout)
	}
	msg := stderr.String()
	if !strings.Contains(msg, "tsesim:") || !strings.Contains(msg, "nope.tsm") {
		t.Fatalf("stderr lacks a clear error naming the file:\n%s", msg)
	}
	if strings.Contains(stdout.String(), "coverage") {
		t.Fatalf("stdout contains a report despite the failure:\n%s", &stdout)
	}
}

// TestRunUnwritableMetrics: an unwritable -metrics path must fail fast,
// before the replay runs.
func TestRunUnwritableMetrics(t *testing.T) {
	path := writeTestTrace(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", path, "-metrics", filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unwritable -metrics exited 0\nstdout:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "not writable") {
		t.Fatalf("stderr lacks the writability error:\n%s", stderr.String())
	}
}

// TestRunBadFlagCombo: contradictory flags exit 2 (usage error).
func TestRunBadFlagCombo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-i", "x.tsm", "-inmem", "-multipass"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-inmem -multipass exited %d, want 2", code)
	}
	if code := run([]string{"-i", "x.tsm", "-sweep", "lookahead", "-compare"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-sweep -compare exited %d, want 2", code)
	}
}

// TestRunObservedReplay drives the acceptance-criteria command end to end:
// replay with -sweep, -metrics, -trace and -progress attached, then check
// both artifacts are valid JSON with the expected content.
func TestRunObservedReplay(t *testing.T) {
	path := writeTestTrace(t)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	traceOut := filepath.Join(dir, "t.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", path, "-sweep", "lookahead", "-metrics", metrics, "-trace", traceOut, "-progress"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("observed sweep exited %d\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "LA=") {
		t.Fatalf("sweep output lacks cells:\n%s", &stdout)
	}
	// Progress output (the meter's final line) goes to stderr only.
	if !strings.Contains(stderr.String(), "events") {
		t.Fatalf("stderr lacks the progress summary:\n%s", &stderr)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, raw)
	}
	decoded := snap.Counters["pipeline.events_decoded"]
	if decoded == 0 {
		t.Fatalf("metrics lack decode progress:\n%s", raw)
	}
	if snap.Gauges["pipeline.ring.occupancy_max"] <= 0 {
		t.Fatalf("metrics lack ring occupancy:\n%s", raw)
	}
	// Per-cell consumer counters, labelled with the sweep's cell labels.
	if got := snap.Counters["pipeline.consumer.LA=8.events"]; got != decoded {
		t.Fatalf("per-cell consumer counter = %d, want %d:\n%s", got, decoded, raw)
	}
	if _, ok := snap.Histograms["pipeline.consumer_wait_ns"]; !ok {
		t.Fatalf("metrics lack the consumer wait histogram:\n%s", raw)
	}

	rawTrace, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawTrace, &chrome); err != nil {
		t.Fatalf("trace file is not valid chrome JSON: %v\n%s", err, rawTrace)
	}
	var sawDecode, sawConsumer bool
	for _, e := range chrome.TraceEvents {
		if e.Ph == "X" && e.Name == "decode" {
			sawDecode = true
		}
		if e.Ph == "X" && strings.HasPrefix(e.Name, "LA=") {
			sawConsumer = true
		}
	}
	if !sawDecode || !sawConsumer {
		t.Fatalf("trace lacks decode/consumer spans (decode=%v consumer=%v):\n%s", sawDecode, sawConsumer, rawTrace)
	}
}

// TestRunExperimentMetrics: the experiment batch path reports per-cell
// consumer throughput through -metrics, labelled "<workload>/cell<i>".
func TestRunExperimentMetrics(t *testing.T) {
	metrics := filepath.Join(t.TempDir(), "m.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-experiment", "fig8", "-workloads", "db2",
		"-scale", "0.05", "-nodes", "4", "-quiet", "-metrics", metrics}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("experiment run exited %d\nstderr:\n%s", code, &stderr)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, raw)
	}
	if got := snap.Counters["pipeline.consumer.db2/cell0.events"]; got == 0 {
		t.Fatalf("metrics lack per-cell consumer counters:\n%s", raw)
	}
	if snap.Counters["pipeline.events_decoded"] == 0 {
		t.Fatalf("metrics lack decode counters:\n%s", raw)
	}
}

// TestRunObservedOutputsIdentical: attaching instrumentation must not change
// the report on stdout byte for byte.
func TestRunObservedOutputsIdentical(t *testing.T) {
	path := writeTestTrace(t)
	dir := t.TempDir()

	var plain, observed, stderr bytes.Buffer
	if code := run([]string{"-i", path, "-quiet"}, &plain, &stderr); code != 0 {
		t.Fatalf("plain replay exited %d\nstderr:\n%s", code, &stderr)
	}
	args := []string{"-i", path, "-quiet",
		"-metrics", filepath.Join(dir, "m.json"),
		"-trace", filepath.Join(dir, "t.json"),
		"-series", filepath.Join(dir, "s.json"),
		"-manifest", filepath.Join(dir, "run.json"),
		"-progress"}
	if code := run(args, &observed, &stderr); code != 0 {
		t.Fatalf("observed replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if plain.String() != observed.String() {
		t.Fatalf("instrumentation changed stdout:\nplain:\n%s\nobserved:\n%s", &plain, &observed)
	}
}

// TestRunSeriesAndManifest drives -series and -manifest end to end on a
// trace large enough for double-digit epoch counts: the series carries ≥10
// samples per consumer, the final "coverage" sample reproduces the report's
// coverage byte for byte (same %.1f%% rendering), and the manifest records
// the trace's provenance, the timed stages and the final metrics snapshot.
func TestRunSeriesAndManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db2.tsm")
	if err := generateTraceScaled(path, 0.1); err != nil {
		t.Fatalf("generating test trace: %v", err)
	}
	dir := t.TempDir()
	seriesOut := filepath.Join(dir, "s.json")
	manifestOut := filepath.Join(dir, "run.json")
	metricsOut := filepath.Join(dir, "m.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", path, "-quiet", "-series", seriesOut, "-manifest", manifestOut, "-metrics", metricsOut}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("observed replay exited %d\nstderr:\n%s", code, &stderr)
	}

	rawSeries, err := os.ReadFile(seriesOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.SeriesSnapshot
	if err := json.Unmarshal(rawSeries, &snap); err != nil {
		t.Fatalf("series file is not valid JSON: %v\n%s", err, rawSeries)
	}
	if snap.Interval == 0 {
		t.Fatalf("series interval not auto-sized:\n%s", rawSeries)
	}
	for _, name := range []string{"coverage", "timing-base", "timing-tse"} {
		if n := len(snap.Series[name].Points); n < 10 {
			t.Fatalf("consumer %q has %d samples, want >= 10:\n%s", name, n, rawSeries)
		}
	}

	rawManifest, err := os.ReadFile(manifestOut)
	if err != nil {
		t.Fatal(err)
	}
	var m tsm.Manifest
	if err := json.Unmarshal(rawManifest, &m); err != nil {
		t.Fatalf("manifest file is not valid JSON: %v\n%s", err, rawManifest)
	}
	if m.Tool != "tsm" || m.Version != tsm.ToolVersion {
		t.Fatalf("manifest tool/version = %q/%q:\n%s", m.Tool, m.Version, rawManifest)
	}
	if len(m.Trace.SHA256) != 64 || m.Trace.Events == 0 || m.Trace.Workload != "db2" {
		t.Fatalf("manifest trace provenance incomplete:\n%s", rawManifest)
	}
	if m.Replay.Op != "replay-tse" {
		t.Fatalf("manifest op = %q:\n%s", m.Replay.Op, rawManifest)
	}
	if m.Metrics == nil || m.Metrics.Counters["pipeline.events_decoded"] != m.Trace.Events {
		t.Fatalf("manifest metrics snapshot missing or wrong:\n%s", rawManifest)
	}

	// The final epoch sample IS the report: its cumulative coverage renders
	// to the same byte sequence the stdout report printed.
	pts := snap.Series["coverage"].Points
	last := pts[len(pts)-1]
	if last.Seq != m.Trace.Events-1 {
		t.Fatalf("final sample at seq %d, want last event %d", last.Seq, m.Trace.Events-1)
	}
	rendered := fmt.Sprintf("coverage=%.1f%%", 100*last.Values["coverage"])
	if !strings.Contains(stdout.String(), rendered) {
		t.Fatalf("stdout report does not contain the final sample's coverage %q:\n%s", rendered, &stdout)
	}
	if got := fmt.Sprintf("consumptions=%d", int64(last.Values["consumptions"])); !strings.Contains(stdout.String(), got) {
		t.Fatalf("stdout report does not contain the final sample's %q:\n%s", got, &stdout)
	}
}

// TestRunSeriesFlagCombos pins the CLI contract of -series/-manifest:
// replay-only (-i required) and fused-path-only (no -inmem/-multipass).
func TestRunSeriesFlagCombos(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{"-series", "s.json"},   // no -i
		{"-manifest", "m.json"}, // no -i
		{"-i", "x.tsm", "-series", "s.json", "-multipass"},
		{"-i", "x.tsm", "-manifest", "m.json", "-inmem"},
	}
	for _, args := range cases {
		stdout.Reset()
		stderr.Reset()
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("%v exited %d, want 2\nstderr:\n%s", args, code, &stderr)
		}
		if !strings.Contains(stderr.String(), "tsesim:") {
			t.Fatalf("%v: stderr lacks a usage error:\n%s", args, &stderr)
		}
	}
	// An unwritable -series path fails fast, before the replay runs.
	path := writeTestTrace(t)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-i", path, "-series", filepath.Join(t.TempDir(), "no", "dir", "s.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("unwritable -series exited %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "not writable") {
		t.Fatalf("stderr lacks the writability error:\n%s", &stderr)
	}
}

// TestRunDecodeWorkerFlags pins the CLI contract of the v3-index flags:
// replay-only (-i required), incompatible with the reference decode paths,
// and a -to at or below -from is a usage error.
func TestRunDecodeWorkerFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{"-decode-workers", "4"}, // no -i
		{"-from", "10"},          // no -i
		{"-mmap"},                // no -i
		{"-i", "x.tsm", "-decode-workers", "4", "-inmem"},
		{"-i", "x.tsm", "-from", "10", "-multipass"},
		{"-i", "x.tsm", "-mmap", "-inmem"},
		{"-i", "x.tsm", "-from", "10", "-to", "5"},
		{"-i", "x.tsm", "-from", "10", "-to", "10"},
	}
	for _, args := range cases {
		stdout.Reset()
		stderr.Reset()
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("%v exited %d, want 2\nstderr:\n%s", args, code, &stderr)
		}
		if !strings.Contains(stderr.String(), "tsesim:") {
			t.Fatalf("%v: stderr lacks a usage error:\n%s", args, &stderr)
		}
	}
}

// TestRunParallelDecodeMatchesSerial replays the same trace with and without
// parallel decode and requires byte-identical stdout reports — the worker
// count must never leak into results.
func TestRunParallelDecodeMatchesSerial(t *testing.T) {
	path := writeTestTrace(t)
	var serialOut, parallelOut, stderr bytes.Buffer
	if code := run([]string{"-i", path, "-quiet"}, &serialOut, &stderr); code != 0 {
		t.Fatalf("serial replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if code := run([]string{"-i", path, "-quiet", "-decode-workers", "4"}, &parallelOut, &stderr); code != 0 {
		t.Fatalf("parallel replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if serialOut.String() != parallelOut.String() {
		t.Fatalf("parallel decode changed the report\nserial:\n%s\nparallel:\n%s", &serialOut, &parallelOut)
	}
	if !strings.Contains(serialOut.String(), "TSE") {
		t.Fatalf("replay printed no report:\n%s", &serialOut)
	}
	var mmapOut bytes.Buffer
	if code := run([]string{"-i", path, "-quiet", "-mmap", "-decode-workers", "4"}, &mmapOut, &stderr); code != 0 {
		t.Fatalf("mmap replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if serialOut.String() != mmapOut.String() {
		t.Fatalf("mmap decode changed the report\nserial:\n%s\nmmap:\n%s", &serialOut, &mmapOut)
	}
}

// TestRunRangedReplay drives -from/-to end to end: a sub-range replays
// successfully and reports fewer consumptions than the whole trace.
func TestRunRangedReplay(t *testing.T) {
	path := writeTestTrace(t)
	var full, ranged, stderr bytes.Buffer
	if code := run([]string{"-i", path, "-quiet"}, &full, &stderr); code != 0 {
		t.Fatalf("full replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if code := run([]string{"-i", path, "-quiet", "-from", "100", "-to", "200"}, &ranged, &stderr); code != 0 {
		t.Fatalf("ranged replay exited %d\nstderr:\n%s", code, &stderr)
	}
	if ranged.String() == full.String() {
		t.Fatalf("ranged replay produced the full-trace report:\n%s", &ranged)
	}
	if !strings.Contains(ranged.String(), "TSE") {
		t.Fatalf("ranged replay printed no report:\n%s", &ranged)
	}
}
