// Command tsesim regenerates the paper's tables and figures on the synthetic
// workload suite, or replays a trace file produced by cmd/tracegen.
//
// Usage:
//
//	tsesim -experiment fig12                 # one experiment, all workloads
//	tsesim -experiment all -scale 0.25       # every table and figure, faster
//	tsesim -experiment suite -workloads memkv,pagerank,cdn
//	tsesim -experiment mix                   # cross-workload mix vs its parts
//	tsesim -experiment fig14 -workloads db2,oracle
//	tsesim -i db2.tsm                        # evaluate TSE on a trace file
//	tsesim -i db2.tsm -compare               # ...all Figure 12 models
//	tsesim -i db2.tsm -sweep lookahead       # whole sensitivity sweep, one decode
//	tsesim -i db2.tsm -decode-workers 4      # parallel per-chunk decode (v3 files)
//	tsesim -i db2.tsm -mmap                  # decode straight from mapped pages
//	tsesim -i db2.tsm -from 500000 -to 900000  # replay an event sub-range via the index
//	tsesim -i db2.tsm -metrics m.json -trace t.json -progress
//	tsesim -list                             # list experiments and workloads
//
// With -i the evaluation uses the generation metadata embedded in the trace
// file, so the report is identical to evaluating the trace in the process
// that generated it. Replay streams the file through the full TSE + timing
// pipeline in bounded memory — the trace is never materialized, so files of
// any size replay in constant space — and by default the file is decoded
// exactly ONCE: the single decode pass is teed into every consumer by the
// fan-out engine in internal/pipeline. -multipass restores the reference
// path that decodes the file once per consumer, and -inmem the materializing
// path (the reports are bit-identical in all three modes). -sweep runs an
// entire named sensitivity study (streams|lookahead|svb — the Figure 7/8/9
// sweeps) with every cell riding that same single decode through the ring
// fan-out, so a whole sweep costs one codec pass instead of one per cell.
// Version 3 trace files carry a chunk index: -decode-workers N decodes the
// file with N parallel per-chunk workers (identical reports, faster wall
// clock; -1 picks one worker per core), -mmap maps the file and lets the
// decode workers parse chunks directly from the mapped pages (no per-chunk
// read syscall or copy; quietly degrades to read() on platforms without mmap),
// and -from/-to replay only the events with sequence numbers in [from, to)
// without streaming the prefix. All fall back gracefully on pre-index files:
// a parallel or mmap request decodes serially, a ranged request fails (the
// range would otherwise be silently ignored).
// Batches of experiments run in parallel over a shared workspace (each
// workload's trace is generated exactly once); -serial restores the
// one-at-a-time path.
//
// Observability (all opt-in, stdout reports stay byte-identical):
//
//	-metrics out.json  dump the engine's metrics registry — events/chunks
//	                   decoded, ring occupancy, per-consumer throughput, lag
//	                   and stall time, backpressure wait histograms — as JSON
//	-trace out.json    dump per-stage spans (decode pass, per-chunk decodes,
//	                   one lane per consumer) in the Chrome trace-event
//	                   format; load at chrome://tracing or ui.perfetto.dev
//	-progress          periodic events/sec (and, with -i, percent + ETA)
//	                   lines on stderr during long runs
//	-series out.json   with -i: dump per-consumer time-series of live
//	                   cumulative state (coverage, SVB/CMOB occupancy,
//	                   per-epoch latency quantiles), sampled at chunk
//	                   boundaries, as JSON; the interval auto-sizes from the
//	                   trace's indexed event count
//	-manifest out.json with -i: dump a run manifest — trace SHA-256, codec
//	                   version, chunk/event counts, workload metadata, replay
//	                   settings, per-stage wall times and (with -metrics) the
//	                   final metrics snapshot — as JSON
//	-pprof addr        serve net/http/pprof on addr for the duration of the
//	                   run, plus GET /metrics for a live registry snapshot
//	                   (add ?format=prom for Prometheus text exposition)
//
// The output of each experiment is a plain-text table whose rows mirror the
// corresponding table or figure in the paper; EXPERIMENTS.md records a
// reference run next to the published values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tsm"
	"tsm/internal/experiments"
	"tsm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit (argument list, output
// streams, exit code as the return value) so the CLI's behaviour — flag
// errors, missing input files, unwritable outputs — is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experimentID  = fs.String("experiment", "all", "experiment id (fig6..fig14, table1..table3, suite) or \"all\"")
		workloads     = fs.String("workloads", "", "comma-separated workload subset (default: every registered workload)")
		nodes         = fs.Int("nodes", 16, "number of DSM nodes")
		scale         = fs.Float64("scale", 1.0, "workload scale factor")
		seed          = fs.Int64("seed", 1, "workload generation seed")
		input         = fs.String("i", "", "evaluate a trace file written by tracegen -o instead of running experiments")
		compare       = fs.Bool("compare", false, "with -i: evaluate all Figure 12 models, not just TSE")
		sweep         = fs.String("sweep", "", "with -i: run a named TSE sensitivity sweep (streams|lookahead|svb) over ONE decode of the file")
		inmem         = fs.Bool("inmem", false, "with -i: materialize the trace instead of streaming it (same reports)")
		multipass     = fs.Bool("multipass", false, "with -i: decode the file once per consumer instead of fusing into one pass (same reports)")
		decodeWorkers = fs.Int("decode-workers", 0, "with -i: parallel per-chunk decode workers over the v3 chunk index (0 = serial, -1 = one per core)")
		fromEvent     = fs.Uint64("from", 0, "with -i: replay from this event sequence number (inclusive; needs a v3 indexed file)")
		toEvent       = fs.Uint64("to", 0, "with -i: replay up to this event sequence number (exclusive; 0 = end of trace)")
		mmapFile      = fs.Bool("mmap", false, "with -i: mmap the trace file and decode chunks from the mapped pages (implies the indexed path; falls back to read() where unsupported)")
		serial        = fs.Bool("serial", false, "run experiments one at a time instead of in parallel")
		list          = fs.Bool("list", false, "list available experiments and workloads, then exit")
		quiet         = fs.Bool("quiet", false, "suppress progress messages")
		metricsOut    = fs.String("metrics", "", "write an engine metrics snapshot (JSON) to this file after the run")
		traceOut      = fs.String("trace", "", "write per-stage spans (Chrome trace-event JSON) to this file after the run")
		seriesOut     = fs.String("series", "", "with -i: write per-consumer time-series of live cumulative state (JSON) to this file after the run")
		manifestOut   = fs.String("manifest", "", "with -i: write a run manifest (trace provenance, stage wall times, final metrics; JSON) to this file after the run")
		progress      = fs.Bool("progress", false, "print periodic throughput/ETA lines to stderr during the run")
		pprofAddr     = fs.String("pprof", "", "serve net/http/pprof (plus /metrics) on this address for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "workloads:")
		for _, s := range workload.Registry() {
			fmt.Fprintf(stdout, "  %-8s %-11s %s\n", s.Name, s.Class.String(), s.Parameters)
		}
		return 0
	}

	// Observability attachments. The metrics registry exists whenever any
	// sink needs it (-metrics, or the /metrics endpoint of -pprof); the
	// writability of the output paths is validated before the run, so a
	// typo'd path fails in milliseconds, not after minutes of replay.
	var ins tsm.Instrumentation
	if *metricsOut != "" || *pprofAddr != "" {
		ins.Metrics = tsm.NewMetrics()
	}
	if *traceOut != "" {
		ins.Tracer = tsm.NewTracer()
	}
	if *progress {
		ins.Progress = stderr
	}
	if *seriesOut != "" || *manifestOut != "" {
		if *input == "" {
			fmt.Fprintln(stderr, "tsesim: -series and -manifest record trace-file replay and need -i")
			return 2
		}
		if *inmem || *multipass {
			fmt.Fprintln(stderr, "tsesim: -series and -manifest ride the fused streamed path and cannot combine with -inmem or -multipass")
			return 2
		}
		if *seriesOut != "" {
			ins.Series = tsm.NewSeriesSet()
		}
		if *manifestOut != "" {
			ins.Manifest = tsm.NewRunManifest()
			ins.Manifest.SetCommand(append([]string{"tsesim"}, args...))
		}
	}
	for _, out := range []string{*metricsOut, *traceOut, *seriesOut, *manifestOut} {
		if out == "" {
			continue
		}
		if err := checkWritable(out); err != nil {
			fmt.Fprintf(stderr, "tsesim: %v\n", err)
			return 1
		}
	}
	if *pprofAddr != "" {
		shutdown, err := servePprof(*pprofAddr, ins.Metrics)
		if err != nil {
			fmt.Fprintf(stderr, "tsesim: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "tsesim: pprof+metrics listening on %s\n", *pprofAddr)
		}
		defer shutdown()
	}
	// Dump the observability artifacts on every exit path once the run has
	// started — a failed replay still leaves the counters collected so far.
	dump := func() int {
		if *metricsOut != "" {
			if err := ins.Metrics.WriteFile(*metricsOut); err != nil {
				fmt.Fprintf(stderr, "tsesim: %v\n", err)
				return 1
			}
		}
		if *traceOut != "" {
			if err := ins.Tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintf(stderr, "tsesim: %v\n", err)
				return 1
			}
		}
		if *seriesOut != "" {
			if err := ins.Series.WriteFile(*seriesOut); err != nil {
				fmt.Fprintf(stderr, "tsesim: %v\n", err)
				return 1
			}
		}
		if *manifestOut != "" {
			if err := ins.Manifest.WriteFile(*manifestOut); err != nil {
				fmt.Fprintf(stderr, "tsesim: %v\n", err)
				return 1
			}
		}
		return 0
	}

	rc := tsm.ReplayConfig{DecodeWorkers: *decodeWorkers, From: *fromEvent, To: *toEvent, Mmap: *mmapFile}
	rcSet := rc.DecodeWorkers != 0 || rc.From != 0 || rc.To != 0 || rc.Mmap
	if rcSet && *input == "" {
		fmt.Fprintln(stderr, "tsesim: -decode-workers, -from, -to and -mmap configure trace-file replay and need -i")
		return 2
	}

	if *input != "" {
		if *inmem && *multipass {
			fmt.Fprintln(stderr, "tsesim: -inmem and -multipass are mutually exclusive (both are alternatives to the fused streamed path)")
			return 2
		}
		if rcSet && (*inmem || *multipass) {
			fmt.Fprintln(stderr, "tsesim: -decode-workers, -from, -to and -mmap ride the fused streamed path and cannot combine with -inmem or -multipass")
			return 2
		}
		if rc.To != 0 && rc.To <= rc.From {
			fmt.Fprintf(stderr, "tsesim: invalid event range [%d, %d): -to must exceed -from\n", rc.From, rc.To)
			return 2
		}
		if *sweep != "" {
			if *compare || *inmem || *multipass {
				fmt.Fprintln(stderr, "tsesim: -sweep runs on the fused single-decode path and cannot combine with -compare, -inmem or -multipass")
				return 2
			}
			if err := sweepTrace(stdout, *input, *sweep, *quiet, rc, ins); err != nil {
				fmt.Fprintf(stderr, "tsesim: %v\n", err)
				dump()
				return 1
			}
			return dump()
		}
		if err := replayTrace(stdout, *input, *compare, *inmem, *multipass, *quiet, rc, ins); err != nil {
			fmt.Fprintf(stderr, "tsesim: %v\n", err)
			dump()
			return 1
		}
		return dump()
	}

	opts := experiments.Options{Nodes: *nodes, Scale: *scale, Seed: *seed}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if _, ok := workload.ByName(name); !ok {
				fmt.Fprintf(stderr, "tsesim: unknown workload %q (known: %s)\n",
					name, strings.Join(workload.AllNames(), ", "))
				return 2
			}
			opts.Workloads = append(opts.Workloads, name)
		}
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*experimentID, "all") {
		selected = experiments.All()
	} else {
		exp, ok := experiments.ByID(*experimentID)
		if !ok {
			fmt.Fprintf(stderr, "tsesim: unknown experiment %q (known: %s)\n",
				*experimentID, strings.Join(experiments.IDs(), ", "))
			return 2
		}
		selected = []experiments.Experiment{exp}
	}

	w := experiments.NewWorkspace(opts)
	// Every figure's one-walk sweep batch reports per-cell consumer
	// throughput through the attached registry/tracer.
	w.Observe(ins.Metrics, ins.Tracer)
	if !*serial && len(selected) > 1 {
		start := time.Now()
		tables, err := experiments.RunAll(w, selected)
		if err != nil {
			fmt.Fprintf(stderr, "tsesim: %v\n", err)
			dump()
			return 1
		}
		for _, tbl := range tables {
			fmt.Fprintln(stdout, tbl.String())
		}
		if !*quiet {
			fmt.Fprintf(stdout, "(%d experiments completed in parallel in %v)\n",
				len(tables), time.Since(start).Round(time.Millisecond))
		}
		return dump()
	}
	for _, exp := range selected {
		start := time.Now()
		tbl, err := exp.Run(w)
		if err != nil {
			fmt.Fprintf(stderr, "tsesim: %s failed: %v\n", exp.ID, err)
			dump()
			return 1
		}
		fmt.Fprintln(stdout, tbl.String())
		if !*quiet {
			fmt.Fprintf(stdout, "(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return dump()
}

// sweepTrace runs one named TSE sensitivity sweep over a trace file: every
// cell of the sweep is a concurrent consumer of a SINGLE decode pass through
// the ring fan-out engine, so the whole study costs one codec pass and
// bounded memory however wide the sweep is. The per-cell reports are
// bit-identical to evaluating each configuration on its own.
func sweepTrace(stdout io.Writer, path, sweep string, quiet bool, rc tsm.ReplayConfig, ins tsm.Instrumentation) error {
	start := time.Now()
	meta, err := tsm.ReplayMeta(path)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(stdout, "trace: %s (sweep %s, fused single decode%s)\n", meta, sweep, replayModeSuffix(rc))
	}
	cells, err := tsm.EvaluateTSESweepFileWith(path, sweep, rc, ins)
	if err != nil {
		return err
	}
	for _, c := range cells {
		fmt.Fprintln(stdout, c)
	}
	if !quiet {
		fmt.Fprintf(stdout, "(%d-cell sweep completed in %v, one decode pass)\n", len(cells), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// replayTrace evaluates a trace file through the public facade, using the
// embedded metadata to rebuild the generator, so the reports match the
// generating process bit for bit. The default path streams the file through
// the full TSE + timing pipeline in bounded memory with exactly one decode
// pass teed into every consumer; multipass restores the decode-per-consumer
// reference path, and inmem materializes the trace first (identical reports
// in every mode, memory proportional to the trace only with inmem). The
// multipass and inmem reference paths predate the fan-out engine and do not
// carry instrumentation.
func replayTrace(stdout io.Writer, path string, compare, inmem, multipass, quiet bool, rc tsm.ReplayConfig, ins tsm.Instrumentation) error {
	start := time.Now()
	mode := "streamed, fused single decode" + replayModeSuffix(rc)
	if multipass {
		mode = "streamed, decode per consumer"
	}
	if inmem {
		mode = "in-memory"
	}
	var reports []tsm.Report
	if inmem {
		tr, meta, err := tsm.LoadTrace(path)
		if err != nil {
			return err
		}
		gen, err := tsm.GeneratorFor(meta)
		if err != nil {
			return err
		}
		opts := tsm.OptionsFor(meta)
		if !quiet {
			fmt.Fprintf(stdout, "trace: %s (%d events, %d consumptions, %s)\n", meta, tr.Len(), tr.ConsumptionCount(), mode)
		}
		if compare {
			reports, err = tsm.EvaluateAll(tr, gen, opts)
		} else {
			var rep tsm.Report
			rep, err = tsm.EvaluateTSE(tr, gen, opts)
			reports = []tsm.Report{rep}
		}
		if err != nil {
			return err
		}
	} else {
		meta, err := tsm.ReplayMeta(path)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(stdout, "trace: %s (%s)\n", meta, mode)
		}
		switch {
		case compare && multipass:
			reports, err = tsm.EvaluateAllFileMultipass(path)
		case compare:
			reports, err = tsm.EvaluateAllFileWith(path, rc, ins)
		case multipass:
			var rep tsm.Report
			rep, err = tsm.EvaluateTSEFileMultipass(path)
			reports = []tsm.Report{rep}
		default:
			var rep tsm.Report
			rep, err = tsm.EvaluateTSEFileWith(path, rc, ins)
			reports = []tsm.Report{rep}
		}
		if err != nil {
			return err
		}
	}
	for _, r := range reports {
		fmt.Fprintln(stdout, r)
	}
	if !quiet {
		fmt.Fprintf(stdout, "(replay completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// replayModeSuffix renders the replay-config part of the mode banner:
// decode-worker count, mmap, and event range, when set.
func replayModeSuffix(rc tsm.ReplayConfig) string {
	var sb strings.Builder
	if rc.DecodeWorkers != 0 {
		fmt.Fprintf(&sb, ", decode-workers=%d", rc.DecodeWorkers)
	}
	if rc.Mmap {
		sb.WriteString(", mmap")
	}
	if rc.From != 0 || rc.To != 0 {
		if rc.To != 0 {
			fmt.Fprintf(&sb, ", events [%d, %d)", rc.From, rc.To)
		} else {
			fmt.Fprintf(&sb, ", events [%d, end)", rc.From)
		}
	}
	return sb.String()
}
