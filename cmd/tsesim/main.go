// Command tsesim regenerates the paper's tables and figures on the synthetic
// workload suite, or replays a trace file produced by cmd/tracegen.
//
// Usage:
//
//	tsesim -experiment fig12                 # one experiment, all workloads
//	tsesim -experiment all -scale 0.25       # every table and figure, faster
//	tsesim -experiment suite -workloads memkv,pagerank,cdn
//	tsesim -experiment mix                   # cross-workload mix vs its parts
//	tsesim -experiment fig14 -workloads db2,oracle
//	tsesim -i db2.tsm                        # evaluate TSE on a trace file
//	tsesim -i db2.tsm -compare               # ...all Figure 12 models
//	tsesim -i db2.tsm -sweep lookahead       # whole sensitivity sweep, one decode
//	tsesim -list                             # list experiments and workloads
//
// With -i the evaluation uses the generation metadata embedded in the trace
// file, so the report is identical to evaluating the trace in the process
// that generated it. Replay streams the file through the full TSE + timing
// pipeline in bounded memory — the trace is never materialized, so files of
// any size replay in constant space — and by default the file is decoded
// exactly ONCE: the single decode pass is teed into every consumer by the
// fan-out engine in internal/pipeline. -multipass restores the reference
// path that decodes the file once per consumer, and -inmem the materializing
// path (the reports are bit-identical in all three modes). -sweep runs an
// entire named sensitivity study (streams|lookahead|svb — the Figure 7/8/9
// sweeps) with every cell riding that same single decode through the ring
// fan-out, so a whole sweep costs one codec pass instead of one per cell.
// Batches of experiments run in parallel over a shared workspace (each
// workload's trace is generated exactly once); -serial restores the
// one-at-a-time path.
//
// The output of each experiment is a plain-text table whose rows mirror the
// corresponding table or figure in the paper; EXPERIMENTS.md records a
// reference run next to the published values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsm"
	"tsm/internal/experiments"
	"tsm/internal/workload"
)

func main() {
	var (
		experimentID = flag.String("experiment", "all", "experiment id (fig6..fig14, table1..table3, suite) or \"all\"")
		workloads    = flag.String("workloads", "", "comma-separated workload subset (default: every registered workload)")
		nodes        = flag.Int("nodes", 16, "number of DSM nodes")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		input        = flag.String("i", "", "evaluate a trace file written by tracegen -o instead of running experiments")
		compare      = flag.Bool("compare", false, "with -i: evaluate all Figure 12 models, not just TSE")
		sweep        = flag.String("sweep", "", "with -i: run a named TSE sensitivity sweep (streams|lookahead|svb) over ONE decode of the file")
		inmem        = flag.Bool("inmem", false, "with -i: materialize the trace instead of streaming it (same reports)")
		multipass    = flag.Bool("multipass", false, "with -i: decode the file once per consumer instead of fusing into one pass (same reports)")
		serial       = flag.Bool("serial", false, "run experiments one at a time instead of in parallel")
		list         = flag.Bool("list", false, "list available experiments and workloads, then exit")
		quiet        = flag.Bool("quiet", false, "suppress progress messages")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads:")
		for _, s := range workload.Registry() {
			fmt.Printf("  %-8s %-11s %s\n", s.Name, s.Class.String(), s.Parameters)
		}
		return
	}

	if *input != "" {
		if *inmem && *multipass {
			fmt.Fprintln(os.Stderr, "tsesim: -inmem and -multipass are mutually exclusive (both are alternatives to the fused streamed path)")
			os.Exit(2)
		}
		if *sweep != "" {
			if *compare || *inmem || *multipass {
				fmt.Fprintln(os.Stderr, "tsesim: -sweep runs on the fused single-decode path and cannot combine with -compare, -inmem or -multipass")
				os.Exit(2)
			}
			if err := sweepTrace(*input, *sweep, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "tsesim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := replayTrace(*input, *compare, *inmem, *multipass, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "tsesim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Nodes: *nodes, Scale: *scale, Seed: *seed}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if _, ok := workload.ByName(name); !ok {
				fmt.Fprintf(os.Stderr, "tsesim: unknown workload %q (known: %s)\n",
					name, strings.Join(workload.AllNames(), ", "))
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, name)
		}
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*experimentID, "all") {
		selected = experiments.All()
	} else {
		exp, ok := experiments.ByID(*experimentID)
		if !ok {
			fmt.Fprintf(os.Stderr, "tsesim: unknown experiment %q (known: %s)\n",
				*experimentID, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		selected = []experiments.Experiment{exp}
	}

	w := experiments.NewWorkspace(opts)
	if !*serial && len(selected) > 1 {
		start := time.Now()
		tables, err := experiments.RunAll(w, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsesim: %v\n", err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			fmt.Println(tbl.String())
		}
		if !*quiet {
			fmt.Printf("(%d experiments completed in parallel in %v)\n",
				len(tables), time.Since(start).Round(time.Millisecond))
		}
		return
	}
	for _, exp := range selected {
		start := time.Now()
		tbl, err := exp.Run(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsesim: %s failed: %v\n", exp.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		if !*quiet {
			fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// sweepTrace runs one named TSE sensitivity sweep over a trace file: every
// cell of the sweep is a concurrent consumer of a SINGLE decode pass through
// the ring fan-out engine, so the whole study costs one codec pass and
// bounded memory however wide the sweep is. The per-cell reports are
// bit-identical to evaluating each configuration on its own.
func sweepTrace(path, sweep string, quiet bool) error {
	start := time.Now()
	meta, err := tsm.ReplayMeta(path)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("trace: %s (sweep %s, fused single decode)\n", meta, sweep)
	}
	cells, err := tsm.EvaluateTSESweepFile(path, sweep)
	if err != nil {
		return err
	}
	for _, c := range cells {
		fmt.Println(c)
	}
	if !quiet {
		fmt.Printf("(%d-cell sweep completed in %v, one decode pass)\n", len(cells), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// replayTrace evaluates a trace file through the public facade, using the
// embedded metadata to rebuild the generator, so the reports match the
// generating process bit for bit. The default path streams the file through
// the full TSE + timing pipeline in bounded memory with exactly one decode
// pass teed into every consumer; multipass restores the decode-per-consumer
// reference path, and inmem materializes the trace first (identical reports
// in every mode, memory proportional to the trace only with inmem).
func replayTrace(path string, compare, inmem, multipass, quiet bool) error {
	start := time.Now()
	mode := "streamed, fused single decode"
	if multipass {
		mode = "streamed, decode per consumer"
	}
	if inmem {
		mode = "in-memory"
	}
	var reports []tsm.Report
	if inmem {
		tr, meta, err := tsm.LoadTrace(path)
		if err != nil {
			return err
		}
		gen, err := tsm.GeneratorFor(meta)
		if err != nil {
			return err
		}
		opts := tsm.OptionsFor(meta)
		if !quiet {
			fmt.Printf("trace: %s (%d events, %d consumptions, %s)\n", meta, tr.Len(), tr.ConsumptionCount(), mode)
		}
		if compare {
			reports, err = tsm.EvaluateAll(tr, gen, opts)
		} else {
			var rep tsm.Report
			rep, err = tsm.EvaluateTSE(tr, gen, opts)
			reports = []tsm.Report{rep}
		}
		if err != nil {
			return err
		}
	} else {
		meta, err := tsm.ReplayMeta(path)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("trace: %s (%s)\n", meta, mode)
		}
		switch {
		case compare && multipass:
			reports, err = tsm.EvaluateAllFileMultipass(path)
		case compare:
			reports, err = tsm.EvaluateAllFile(path)
		case multipass:
			var rep tsm.Report
			rep, err = tsm.EvaluateTSEFileMultipass(path)
			reports = []tsm.Report{rep}
		default:
			var rep tsm.Report
			rep, err = tsm.EvaluateTSEFile(path)
			reports = []tsm.Report{rep}
		}
		if err != nil {
			return err
		}
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	if !quiet {
		fmt.Printf("(replay completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
