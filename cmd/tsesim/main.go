// Command tsesim regenerates the paper's tables and figures on the synthetic
// workload suite.
//
// Usage:
//
//	tsesim -experiment fig12                 # one experiment, all workloads
//	tsesim -experiment all -scale 0.25       # every table and figure, faster
//	tsesim -experiment fig14 -workloads db2,oracle
//	tsesim -list                             # list experiments and workloads
//
// The output of each experiment is a plain-text table whose rows mirror the
// corresponding table or figure in the paper; EXPERIMENTS.md records a
// reference run next to the published values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsm/internal/experiments"
	"tsm/internal/workload"
)

func main() {
	var (
		experimentID = flag.String("experiment", "all", "experiment id (fig6..fig14, table1..table3) or \"all\"")
		workloads    = flag.String("workloads", "", "comma-separated workload subset (default: all seven)")
		nodes        = flag.Int("nodes", 16, "number of DSM nodes")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		list         = flag.Bool("list", false, "list available experiments and workloads, then exit")
		quiet        = flag.Bool("quiet", false, "suppress progress messages")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads:")
		for _, s := range workload.Registry() {
			fmt.Printf("  %-8s %-11s %s\n", s.Name, s.Class.String(), s.Parameters)
		}
		return
	}

	opts := experiments.Options{Nodes: *nodes, Scale: *scale, Seed: *seed}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if _, ok := workload.ByName(name); !ok {
				fmt.Fprintf(os.Stderr, "tsesim: unknown workload %q (known: %s)\n",
					name, strings.Join(workload.Names(), ", "))
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, name)
		}
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*experimentID, "all") {
		selected = experiments.All()
	} else {
		exp, ok := experiments.ByID(*experimentID)
		if !ok {
			fmt.Fprintf(os.Stderr, "tsesim: unknown experiment %q (known: %s)\n",
				*experimentID, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		selected = []experiments.Experiment{exp}
	}

	w := experiments.NewWorkspace(opts)
	for _, exp := range selected {
		start := time.Now()
		tbl, err := exp.Run(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsesim: %s failed: %v\n", exp.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		if !*quiet {
			fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
