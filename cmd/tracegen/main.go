// Command tracegen generates the consumption/write event trace of one
// synthetic workload. With -o it streams the events straight into a
// versioned binary trace file (.tsm, see internal/stream) as the functional
// coherence engine classifies them, embedding the generation metadata so
// cmd/tsesim (or any other process) can evaluate the exact same trace with
// `tsesim -i`.
//
// The whole pipeline — workload generation, coherence classification, trace
// encoding — streams one access at a time: the generator's Emit feeds the
// engine, the engine's events feed the file, and no slice of accesses or
// events ever exists. Memory is bounded by the workload's fixed problem
// state, not the trace length, which is what makes paper-scale traces
// (-preset paper, or explicit -scale/-repeat) practical.
//
// Usage:
//
//	tracegen -workload db2 -scale 0.5 -o db2.tsm
//	tracegen -workload db2 -preset paper -o db2-full.tsm   # Table 2 footprint
//	tracegen -workload db2 -preset paper -o db2.tsm -progress -metrics m.json
//	tracegen -workload mix -o mix.tsm                      # memkv+cdn colocated
//	tracegen -workload em3d -summary
//
// -progress prints periodic events/sec lines to stderr during generation
// (paper-scale traces take minutes and otherwise run silent); -metrics
// dumps the generation counters (accesses, events, wall time) as JSON;
// -pprof serves net/http/pprof for the duration of the run. -materialize
// restores the reference path that builds the access slice first
// (byte-identical output; it exists for differential testing and CI).
// -no-index writes the previous codec version (2), without the seekable
// chunk index appended to version 3 files — for compatibility testing and
// consumers that cannot tolerate the footer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit (argument list, output
// streams, exit code as the return value) so the CLI's behaviour — flag
// errors, unwritable outputs — is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name        = fs.String("workload", "db2", "workload name (see tsesim -list)")
		nodes       = fs.Int("nodes", 16, "number of DSM nodes")
		scale       = fs.Float64("scale", 1.0, "workload scale factor (data-structure footprint)")
		repeat      = fs.Float64("repeat", 1.0, "run-length multiplier (iterations/transactions; lengthens the trace at constant memory)")
		preset      = fs.String("preset", "", "problem-size preset: \"paper\" selects the workload's Table 2 footprint (explicit -scale/-repeat override it)")
		seed        = fs.Int64("seed", 1, "generation seed")
		out         = fs.String("o", "", "output trace file (.tsm; omit to skip writing)")
		summary     = fs.Bool("summary", true, "print a trace summary")
		materialize = fs.Bool("materialize", false, "materialize the access stream before classifying (reference path, identical bytes)")
		noIndex     = fs.Bool("no-index", false, "write codec version 2 (no seekable chunk index; disables tsesim -decode-workers/-from/-to on the file)")
		metricsOut  = fs.String("metrics", "", "write generation counters (JSON) to this file after the run")
		progress    = fs.Bool("progress", false, "print periodic events/sec lines to stderr during generation")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "tracegen: unknown workload %q\n", *name)
		return 2
	}

	cfg := workload.Config{Nodes: *nodes, Seed: *seed, Scale: *scale, Repeat: *repeat}
	switch *preset {
	case "":
	case "paper":
		p, ok := workload.PaperPreset(spec.Name)
		if !ok {
			fmt.Fprintf(stderr, "tracegen: no paper preset for workload %q\n", spec.Name)
			return 2
		}
		// Explicitly set flags win over the preset.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scale"] {
			cfg.Scale = p.Scale
		}
		if !set["repeat"] {
			cfg.Repeat = p.Repeat
		}
	default:
		fmt.Fprintf(stderr, "tracegen: unknown preset %q (known: paper)\n", *preset)
		return 2
	}

	// Fail on an unwritable output path before generating anything: a typo'd
	// -o or -metrics must cost milliseconds, not a full paper-scale run.
	for _, path := range []string{*out, *metricsOut} {
		if path == "" {
			continue
		}
		if err := checkWritable(path); err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
	}
	reg := obs.NewRegistry()
	eventCount := reg.Counter("tracegen.events")
	if *pprofAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "tracegen: pprof+metrics listening on %s\n", bound)
		defer shutdown()
	}
	var meter *obs.Progress
	if *progress {
		meter = obs.StartProgress(obs.ProgressConfig{
			W:      stderr,
			Label:  "generate " + spec.Name,
			Events: eventCount,
		})
	}

	gen := spec.New(cfg)
	eng := coherence.New(coherence.Config{Nodes: *nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})

	// The access source streams straight from the generator (counting the
	// accesses on the way past for the summary); -materialize swaps in the
	// reference path that collects the slice first. Both classify and encode
	// the exact same sequence.
	var accesses uint64
	var src coherence.AccessSource
	if *materialize {
		collected := gen.Generate()
		accesses = uint64(len(collected))
		src = coherence.SliceAccesses(collected)
	} else {
		src = func(yield func(mem.Access) error) error {
			return gen.Emit(func(a mem.Access) error {
				accesses++
				return yield(a)
			})
		}
	}

	// The summary's per-node distribution is accumulated on the fly, so the
	// trace streams from the engine to the file without materializing. The
	// progress meter watches the shared counter (atomic — the meter reads it
	// from its own goroutine).
	var events uint64
	perNode := make([]int, *nodes)
	observe := func(e trace.Event) {
		events++
		eventCount.Inc()
		if e.Kind == trace.KindConsumption && e.Node >= 0 && int(e.Node) < len(perNode) {
			perNode[e.Node]++
		}
	}

	start := time.Now()
	var runErr error
	if *out != "" {
		meta := stream.Meta{Workload: spec.Name, Nodes: *nodes, Scale: cfg.Scale, Seed: *seed, Repeat: cfg.Repeat}
		version := byte(stream.Version)
		if *noIndex {
			version = stream.VersionNoIndex
		}
		runErr = writeStreamed(*out, meta, version, eng, src, observe)
	} else {
		runErr = eng.RunSource(src, func(e trace.Event) error { observe(e); return nil })
	}
	meter.Stop()
	if runErr != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", runErr)
		return 1
	}
	reg.Counter("tracegen.accesses").Add(accesses)
	reg.Counter("tracegen.wall_ns").Add(uint64(time.Since(start)))
	if *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
	}

	if *summary {
		printSummary(stdout, spec, gen, cfg, accesses, events, perNode, eng)
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d events to %s\n", events, *out)
	}
	return 0
}

// checkWritable verifies an output path can be created (or opened for
// writing) now. The file is left in place for the run to overwrite.
func checkWritable(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("output not writable: %w", err)
	}
	return f.Close()
}

// writeStreamed pipes the engine's event stream into a trace file, feeding
// each event to observe on the way past.
func writeStreamed(path string, meta stream.Meta, version byte, eng *coherence.Engine, src coherence.AccessSource, observe func(trace.Event)) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = stream.CloseMerge(f, err) }()
	w, err := stream.NewWriterVersion(f, meta, version)
	if err != nil {
		return err
	}
	if err := eng.RunSource(src, func(e trace.Event) error {
		observe(e)
		return w.Write(e)
	}); err != nil {
		return err
	}
	return w.Close()
}

func printSummary(stdout io.Writer, spec workload.Spec, gen workload.Generator, cfg workload.Config, accesses, events uint64, perNode []int, eng *coherence.Engine) {
	stats := eng.Stats()
	fmt.Fprintf(stdout, "workload:      %s (%s)\n", spec.Name, spec.Class)
	fmt.Fprintf(stdout, "parameters:    %s\n", spec.Parameters)
	fmt.Fprintf(stdout, "problem size:  scale=%g repeat=%g\n", cfg.Scale, cfg.Repeat)
	fmt.Fprintf(stdout, "accesses:      %d\n", accesses)
	fmt.Fprintf(stdout, "trace events:  %d\n", events)
	fmt.Fprintf(stdout, "consumptions:  %d\n", stats.Consumptions)
	fmt.Fprintf(stdout, "spin misses:   %d (excluded)\n", stats.SpinMisses)
	fmt.Fprintf(stdout, "private misses:%d\n", stats.PrivateMisses)
	fmt.Fprintf(stdout, "write misses:  %d\n", stats.WriteMisses)
	prof := gen.Timing()
	fmt.Fprintf(stdout, "timing profile: busy=%.2f other=%.2f coherent=%.2f MLP=%.1f lookahead=%d\n",
		prof.BusyFraction, prof.OtherStallFraction, prof.CoherentStallFraction, prof.MLP, prof.Lookahead)

	counts := append([]int(nil), perNode...)
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Fprintf(stdout, "consumptions per node: min=%d median=%d max=%d\n",
			counts[0], counts[len(counts)/2], counts[len(counts)-1])
	}
}
