// Command tracegen generates the consumption/write event trace of one
// synthetic workload. With -o it streams the events straight into a
// versioned binary trace file (.tsm, see internal/stream) as the functional
// coherence engine classifies them, embedding the generation metadata so
// cmd/tsesim (or any other process) can evaluate the exact same trace with
// `tsesim -i`.
//
// The whole pipeline — workload generation, coherence classification, trace
// encoding — streams one access at a time: the generator's Emit feeds the
// engine, the engine's events feed the file, and no slice of accesses or
// events ever exists. Memory is bounded by the workload's fixed problem
// state, not the trace length, which is what makes paper-scale traces
// (-preset paper, or explicit -scale/-repeat) practical.
//
// Usage:
//
//	tracegen -workload db2 -scale 0.5 -o db2.tsm
//	tracegen -workload db2 -preset paper -o db2-full.tsm   # Table 2 footprint
//	tracegen -workload mix -o mix.tsm                      # memkv+cdn colocated
//	tracegen -workload em3d -summary
//
// -materialize restores the reference path that builds the access slice
// first (byte-identical output; it exists for differential testing and CI).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/workload"
)

func main() {
	var (
		name        = flag.String("workload", "db2", "workload name (see tsesim -list)")
		nodes       = flag.Int("nodes", 16, "number of DSM nodes")
		scale       = flag.Float64("scale", 1.0, "workload scale factor (data-structure footprint)")
		repeat      = flag.Float64("repeat", 1.0, "run-length multiplier (iterations/transactions; lengthens the trace at constant memory)")
		preset      = flag.String("preset", "", "problem-size preset: \"paper\" selects the workload's Table 2 footprint (explicit -scale/-repeat override it)")
		seed        = flag.Int64("seed", 1, "generation seed")
		out         = flag.String("o", "", "output trace file (.tsm; omit to skip writing)")
		summary     = flag.Bool("summary", true, "print a trace summary")
		materialize = flag.Bool("materialize", false, "materialize the access stream before classifying (reference path, identical bytes)")
	)
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(2)
	}

	cfg := workload.Config{Nodes: *nodes, Seed: *seed, Scale: *scale, Repeat: *repeat}
	switch *preset {
	case "":
	case "paper":
		p, ok := workload.PaperPreset(spec.Name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: no paper preset for workload %q\n", spec.Name)
			os.Exit(2)
		}
		// Explicitly set flags win over the preset.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scale"] {
			cfg.Scale = p.Scale
		}
		if !set["repeat"] {
			cfg.Repeat = p.Repeat
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q (known: paper)\n", *preset)
		os.Exit(2)
	}

	gen := spec.New(cfg)
	eng := coherence.New(coherence.Config{Nodes: *nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})

	// The access source streams straight from the generator (counting the
	// accesses on the way past for the summary); -materialize swaps in the
	// reference path that collects the slice first. Both classify and encode
	// the exact same sequence.
	var accesses uint64
	var src coherence.AccessSource
	if *materialize {
		collected := gen.Generate()
		accesses = uint64(len(collected))
		src = coherence.SliceAccesses(collected)
	} else {
		src = func(yield func(mem.Access) error) error {
			return gen.Emit(func(a mem.Access) error {
				accesses++
				return yield(a)
			})
		}
	}

	// The summary's per-node distribution is accumulated on the fly, so the
	// trace streams from the engine to the file without materializing.
	var events uint64
	perNode := make([]int, *nodes)
	observe := func(e trace.Event) {
		events++
		if e.Kind == trace.KindConsumption && e.Node >= 0 && int(e.Node) < len(perNode) {
			perNode[e.Node]++
		}
	}

	if *out != "" {
		meta := stream.Meta{Workload: spec.Name, Nodes: *nodes, Scale: cfg.Scale, Seed: *seed, Repeat: cfg.Repeat}
		if err := writeStreamed(*out, meta, eng, src, observe); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	} else {
		if err := eng.RunSource(src, func(e trace.Event) error { observe(e); return nil }); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}

	if *summary {
		printSummary(spec, gen, cfg, accesses, events, perNode, eng)
	}
	if *out != "" {
		fmt.Printf("wrote %d events to %s\n", events, *out)
	}
}

// writeStreamed pipes the engine's event stream into a trace file, feeding
// each event to observe on the way past.
func writeStreamed(path string, meta stream.Meta, eng *coherence.Engine, src coherence.AccessSource, observe func(trace.Event)) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = stream.CloseMerge(f, err) }()
	w, err := stream.NewWriter(f, meta)
	if err != nil {
		return err
	}
	if err := eng.RunSource(src, func(e trace.Event) error {
		observe(e)
		return w.Write(e)
	}); err != nil {
		return err
	}
	return w.Close()
}

func printSummary(spec workload.Spec, gen workload.Generator, cfg workload.Config, accesses, events uint64, perNode []int, eng *coherence.Engine) {
	stats := eng.Stats()
	fmt.Printf("workload:      %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("parameters:    %s\n", spec.Parameters)
	fmt.Printf("problem size:  scale=%g repeat=%g\n", cfg.Scale, cfg.Repeat)
	fmt.Printf("accesses:      %d\n", accesses)
	fmt.Printf("trace events:  %d\n", events)
	fmt.Printf("consumptions:  %d\n", stats.Consumptions)
	fmt.Printf("spin misses:   %d (excluded)\n", stats.SpinMisses)
	fmt.Printf("private misses:%d\n", stats.PrivateMisses)
	fmt.Printf("write misses:  %d\n", stats.WriteMisses)
	prof := gen.Timing()
	fmt.Printf("timing profile: busy=%.2f other=%.2f coherent=%.2f MLP=%.1f lookahead=%d\n",
		prof.BusyFraction, prof.OtherStallFraction, prof.CoherentStallFraction, prof.MLP, prof.Lookahead)

	counts := append([]int(nil), perNode...)
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Printf("consumptions per node: min=%d median=%d max=%d\n",
			counts[0], counts[len(counts)/2], counts[len(counts)-1])
	}
}
