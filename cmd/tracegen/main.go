// Command tracegen generates the consumption/write event trace of one
// synthetic workload and either writes it to a binary trace file (readable
// with internal/trace.Reader) or prints a summary.
//
// Usage:
//
//	tracegen -workload db2 -scale 0.5 -o db2.trace
//	tracegen -workload em3d -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/trace"
	"tsm/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "db2", "workload name (see tsesim -list)")
		nodes   = flag.Int("nodes", 16, "number of DSM nodes")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output trace file (omit to skip writing)")
		summary = flag.Bool("summary", true, "print a trace summary")
	)
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	gen := spec.New(workload.Config{Nodes: *nodes, Seed: *seed, Scale: *scale})
	eng := coherence.New(coherence.Config{Nodes: *nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	accesses := gen.Generate()
	tr := eng.Run(accesses)

	if *summary {
		printSummary(spec, gen, accesses, tr, eng, *nodes)
	}

	if *out != "" {
		if err := writeTrace(*out, tr); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s\n", tr.Len(), *out)
	}
}

func printSummary(spec workload.Spec, gen workload.Generator, accesses []mem.Access, tr *trace.Trace, eng *coherence.Engine, nodes int) {
	stats := eng.Stats()
	fmt.Printf("workload:      %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("parameters:    %s\n", spec.Parameters)
	fmt.Printf("accesses:      %d\n", len(accesses))
	fmt.Printf("trace events:  %d\n", tr.Len())
	fmt.Printf("consumptions:  %d\n", stats.Consumptions)
	fmt.Printf("spin misses:   %d (excluded)\n", stats.SpinMisses)
	fmt.Printf("private misses:%d\n", stats.PrivateMisses)
	fmt.Printf("write misses:  %d\n", stats.WriteMisses)
	prof := gen.Timing()
	fmt.Printf("timing profile: busy=%.2f other=%.2f coherent=%.2f MLP=%.1f lookahead=%d\n",
		prof.BusyFraction, prof.OtherStallFraction, prof.CoherentStallFraction, prof.MLP, prof.Lookahead)

	perNode := tr.NodeConsumptions(nodes)
	counts := make([]int, 0, nodes)
	for _, evs := range perNode {
		counts = append(counts, len(evs))
	}
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Printf("consumptions per node: min=%d median=%d max=%d\n",
			counts[0], counts[len(counts)/2], counts[len(counts)-1])
	}
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if err := w.WriteTrace(tr); err != nil {
		return err
	}
	return w.Flush()
}
