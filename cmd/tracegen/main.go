// Command tracegen generates the consumption/write event trace of one
// synthetic workload. With -o it streams the events straight into a
// versioned binary trace file (.tsm, see internal/stream) as the functional
// coherence engine classifies them — the trace is never held in memory —
// embedding the generation metadata so cmd/tsesim (or any other process)
// can evaluate the exact same trace with `tsesim -i`.
//
// Usage:
//
//	tracegen -workload db2 -scale 0.5 -o db2.tsm
//	tracegen -workload pagerank -o pagerank.tsm   # extended scenario matrix
//	tracegen -workload em3d -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "db2", "workload name (see tsesim -list)")
		nodes   = flag.Int("nodes", 16, "number of DSM nodes")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output trace file (.tsm; omit to skip writing)")
		summary = flag.Bool("summary", true, "print a trace summary")
	)
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	gen := spec.New(workload.Config{Nodes: *nodes, Seed: *seed, Scale: *scale})
	eng := coherence.New(coherence.Config{Nodes: *nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	accesses := gen.Generate()

	// The summary's per-node distribution is accumulated on the fly, so the
	// trace streams from the engine to the file without materializing.
	var events uint64
	perNode := make([]int, *nodes)
	observe := func(e trace.Event) {
		events++
		if e.Kind == trace.KindConsumption && e.Node >= 0 && int(e.Node) < len(perNode) {
			perNode[e.Node]++
		}
	}

	if *out != "" {
		meta := stream.Meta{Workload: spec.Name, Nodes: *nodes, Scale: *scale, Seed: *seed}
		if err := writeStreamed(*out, meta, eng, accesses, observe); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	} else {
		eng.RunStream(accesses, func(e trace.Event) error { observe(e); return nil })
	}

	if *summary {
		printSummary(spec, gen, len(accesses), events, perNode, eng)
	}
	if *out != "" {
		fmt.Printf("wrote %d events to %s\n", events, *out)
	}
}

// writeStreamed pipes the engine's event stream into a trace file, feeding
// each event to observe on the way past.
func writeStreamed(path string, meta stream.Meta, eng *coherence.Engine, accesses []mem.Access, observe func(trace.Event)) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = stream.CloseMerge(f, err) }()
	w, err := stream.NewWriter(f, meta)
	if err != nil {
		return err
	}
	if err := eng.RunStream(accesses, func(e trace.Event) error {
		observe(e)
		return w.Write(e)
	}); err != nil {
		return err
	}
	return w.Close()
}

func printSummary(spec workload.Spec, gen workload.Generator, accesses int, events uint64, perNode []int, eng *coherence.Engine) {
	stats := eng.Stats()
	fmt.Printf("workload:      %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("parameters:    %s\n", spec.Parameters)
	fmt.Printf("accesses:      %d\n", accesses)
	fmt.Printf("trace events:  %d\n", events)
	fmt.Printf("consumptions:  %d\n", stats.Consumptions)
	fmt.Printf("spin misses:   %d (excluded)\n", stats.SpinMisses)
	fmt.Printf("private misses:%d\n", stats.PrivateMisses)
	fmt.Printf("write misses:  %d\n", stats.WriteMisses)
	prof := gen.Timing()
	fmt.Printf("timing profile: busy=%.2f other=%.2f coherent=%.2f MLP=%.1f lookahead=%d\n",
		prof.BusyFraction, prof.OtherStallFraction, prof.CoherentStallFraction, prof.MLP, prof.Lookahead)

	counts := append([]int(nil), perNode...)
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Printf("consumptions per node: min=%d median=%d max=%d\n",
			counts[0], counts[len(counts)/2], counts[len(counts)-1])
	}
}
