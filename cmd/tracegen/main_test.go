package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"errors"

	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// TestRunUnwritableOutput: an unwritable -o path must fail fast with a
// clear error and a non-zero exit, before any generation work.
func TestRunUnwritableOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "db2", "-scale", "0.05", "-nodes", "4",
		"-o", filepath.Join(t.TempDir(), "no", "such", "dir", "out.tsm")}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unwritable -o exited 0\nstdout:\n%s", &stdout)
	}
	msg := stderr.String()
	if !strings.Contains(msg, "tracegen:") || !strings.Contains(msg, "not writable") {
		t.Fatalf("stderr lacks a clear writability error:\n%s", msg)
	}
	if strings.Contains(stdout.String(), "wrote") {
		t.Fatalf("stdout claims success despite the failure:\n%s", &stdout)
	}
}

// TestRunUnknownWorkload: exit 2 on a usage error.
func TestRunUnknownWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "not-a-workload"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown workload exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Fatalf("stderr lacks the unknown-workload error:\n%s", stderr.String())
	}
}

// TestRunGenerateWithMetrics drives a small generation end to end with
// -metrics and -progress: the trace file and metrics snapshot must both
// land, the snapshot must be valid JSON with consistent counters, and the
// progress lines must stay off stdout.
func TestRunGenerateWithMetrics(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "db2.tsm")
	metrics := filepath.Join(dir, "m.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "db2", "-scale", "0.05", "-nodes", "4",
		"-o", out, "-metrics", metrics, "-progress"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("generation exited %d\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "wrote") {
		t.Fatalf("stdout lacks the wrote line:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "done,") {
		t.Fatalf("stderr lacks the progress summary:\n%s", &stderr)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, raw)
	}
	if snap.Counters["tracegen.events"] == 0 || snap.Counters["tracegen.accesses"] == 0 {
		t.Fatalf("metrics lack generation counters:\n%s", raw)
	}
	if snap.Counters["tracegen.wall_ns"] == 0 {
		t.Fatalf("metrics lack wall time:\n%s", raw)
	}
}

// TestRunNoIndex pins the -no-index compatibility knob: the flag writes a
// version 2 file (serial-decodable, no chunk index), the default writes
// version 3 with an index, and both decode to the identical event stream.
func TestRunNoIndex(t *testing.T) {
	dir := t.TempDir()
	v3 := filepath.Join(dir, "v3.tsm")
	v2 := filepath.Join(dir, "v2.tsm")
	var stdout, stderr bytes.Buffer
	args := []string{"-workload", "em3d", "-nodes", "4", "-scale", "0.05", "-seed", "3", "-summary=false", "-o"}
	if code := run(append(args, v3), &stdout, &stderr); code != 0 {
		t.Fatalf("default generation exited %d\nstderr:\n%s", code, &stderr)
	}
	if code := run(append(append([]string{"-no-index"}, args...), v2), &stdout, &stderr); code != 0 {
		t.Fatalf("-no-index generation exited %d\nstderr:\n%s", code, &stderr)
	}

	for path, wantIndex := range map[string]bool{v3: true, v2: false} {
		pr, err := stream.OpenFileParallel(path, stream.ParallelOptions{Workers: 2})
		if wantIndex {
			if err != nil {
				t.Fatalf("%s: expected an indexed file: %v", path, err)
			}
			pr.Close()
		} else if !errors.Is(err, stream.ErrNoIndex) {
			t.Fatalf("%s: expected ErrNoIndex, got %v", path, err)
		}
	}

	collect := func(path string) []trace.Event {
		f, err := stream.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr, err := stream.Collect(f)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Events
	}
	ev3, ev2 := collect(v3), collect(v2)
	if len(ev3) != len(ev2) {
		t.Fatalf("v3 has %d events, v2 has %d", len(ev3), len(ev2))
	}
	for i := range ev3 {
		if ev3[i] != ev2[i] {
			t.Fatalf("event %d differs between versions: %+v vs %+v", i, ev3[i], ev2[i])
		}
	}
}
