// Command obsdiff compares two observability artifacts — engine metrics
// snapshots (tsesim -metrics), run manifests (tsesim -manifest), or `go test
// -json` benchmark output — and exits non-zero when the new file regresses
// beyond per-metric thresholds. It replaces brittle grep-the-log CI gates
// with a structured differ: every comparison names the metric, both values
// and the relative change, so a failed gate says exactly what regressed.
//
// Usage:
//
//	obsdiff old.json new.json                      # default 25% threshold
//	obsdiff -threshold 0.10 old.json new.json      # global 10%
//	obsdiff -rule '*allocs_per_op=0' old new       # zero tolerance for allocs
//	obsdiff -rule '*wall_ns=-1' old new            # ignore wall times
//	obsdiff -warn '*ns_per_op' old new             # report but never fail
//	obsdiff -require 'bench.*' old new             # fail if absent from new
//	obsdiff -list old.json new.json                # print every comparison
//
// Input kinds are auto-detected per file:
//
//   - metrics snapshots flatten to their counter and gauge names, plus
//     <name>.count/.sum/.mean/.p50/.p90/.p99 per histogram
//   - run manifests flatten to stage.<name>.wall_ns plus the embedded
//     metrics snapshot (when present)
//   - `go test -json` streams flatten each benchmark result to
//     bench.<Name>.ns_per_op/.b_per_op/.allocs_per_op/.mb_per_s, with the
//     -<GOMAXPROCS> suffix stripped from the name
//
// Every metric is treated as higher-is-worse: a regression is
// new > old * (1 + frac) for the metric's effective threshold frac (the
// most specific matching -rule, else -threshold). Metrics at zero in the
// old file and metrics missing from either side are skipped — except those
// matching -require, whose absence from the new file is itself a failure.
// Improvements never fail. Exit codes: 0 no regressions, 1 regressions (or
// a missing -require metric), 2 usage or unreadable/unparseable input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// rule is one -rule pattern: metrics matching Glob use Frac as threshold;
// Frac < 0 means ignore the metric entirely.
type rule struct {
	Glob string
	Frac float64
}

// run is main with its environment made explicit, so exit codes and output
// are testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0.25, "default relative regression threshold (0.25 = fail when new > old*1.25)")
		ruleFlags multiFlag
		warnGlobs multiFlag
		reqGlobs  multiFlag
		list      = fs.Bool("list", false, "print every comparison, not just regressions")
	)
	fs.Var(&ruleFlags, "rule", "per-metric threshold as glob=frac (repeatable; frac < 0 ignores matches; most specific match wins)")
	fs.Var(&warnGlobs, "warn", "glob of metrics whose regressions are reported but never fail the diff (repeatable)")
	fs.Var(&reqGlobs, "require", "glob of metrics that must be present in the new file (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "obsdiff: usage: obsdiff [flags] old.json new.json")
		return 2
	}
	rules, err := parseRules(ruleFlags)
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}

	oldM, err := loadMetrics(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}
	newM, err := loadMetrics(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		old := oldM[name]
		neu, ok := newM[name]
		if !ok {
			continue // absence is only a failure for -require metrics
		}
		frac, ignored := effectiveThreshold(name, rules, *threshold)
		if ignored {
			if *list {
				fmt.Fprintf(stdout, "ignore  %-50s old=%g new=%g\n", name, old, neu)
			}
			continue
		}
		change := 0.0
		if old != 0 {
			change = (neu - old) / old
		}
		regressed := old != 0 && neu > old*(1+frac)
		warn := regressed && matchAny(name, warnGlobs)
		switch {
		case regressed && !warn:
			failed++
			fmt.Fprintf(stdout, "FAIL    %-50s old=%g new=%g (%+.1f%% > +%.1f%%)\n", name, old, neu, 100*change, 100*frac)
		case warn:
			fmt.Fprintf(stdout, "warn    %-50s old=%g new=%g (%+.1f%% > +%.1f%%)\n", name, old, neu, 100*change, 100*frac)
		case *list:
			fmt.Fprintf(stdout, "ok      %-50s old=%g new=%g (%+.1f%%)\n", name, old, neu, 100*change)
		}
	}

	for _, glob := range reqGlobs {
		if !anyMatch(glob, newM) {
			failed++
			fmt.Fprintf(stdout, "FAIL    %-50s required but absent from %s\n", glob, fs.Arg(1))
		}
	}

	if failed > 0 {
		fmt.Fprintf(stdout, "obsdiff: %d regression(s)\n", failed)
		return 1
	}
	if *list {
		fmt.Fprintln(stdout, "obsdiff: no regressions")
	}
	return 0
}

// parseRules splits each glob=frac argument.
func parseRules(args []string) ([]rule, error) {
	rules := make([]rule, 0, len(args))
	for _, arg := range args {
		glob, frac, ok := strings.Cut(arg, "=")
		if !ok || glob == "" {
			return nil, fmt.Errorf("invalid -rule %q: want glob=frac", arg)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -rule %q: %v", arg, err)
		}
		rules = append(rules, rule{Glob: glob, Frac: f})
	}
	return rules, nil
}

// effectiveThreshold picks the metric's threshold: the longest (most
// specific) matching -rule glob wins, the global default otherwise. The
// second return is true when the metric is ignored (frac < 0).
func effectiveThreshold(name string, rules []rule, def float64) (float64, bool) {
	best, bestLen := def, -1
	for _, r := range rules {
		if matchGlob(r.Glob, name) && len(r.Glob) > bestLen {
			best, bestLen = r.Frac, len(r.Glob)
		}
	}
	return best, best < 0
}

// matchGlob matches name against a path.Match-style glob. Metric names
// contain '/' (sub-benchmark paths like bench.BenchmarkFileReplay/fused...)
// which path.Match treats as a separator '*' cannot cross, so both sides are
// rewritten onto a character that never appears in metric names — '*' then
// spans the whole name, making "*allocs_per_op" match every benchmark.
func matchGlob(glob, name string) bool {
	const sub = "\x1f"
	ok, err := path.Match(strings.ReplaceAll(glob, "/", sub), strings.ReplaceAll(name, "/", sub))
	return err == nil && ok
}

func matchAny(name string, globs []string) bool {
	for _, g := range globs {
		if matchGlob(g, name) {
			return true
		}
	}
	return false
}

func anyMatch(glob string, metrics map[string]float64) bool {
	for name := range metrics {
		if matchGlob(glob, name) {
			return true
		}
	}
	return false
}

// loadMetrics reads one artifact and flattens it to metric name → value,
// auto-detecting the kind.
func loadMetrics(pathName string) (map[string]float64, error) {
	raw, err := os.ReadFile(pathName)
	if err != nil {
		return nil, err
	}
	m, err := flatten(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", pathName, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no metrics recognized", pathName)
	}
	return m, nil
}

// snapshotDoc mirrors the obs.Snapshot JSON shape.
type snapshotDoc struct {
	Counters   map[string]float64 `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count float64 `json:"count"`
		Sum   float64 `json:"sum"`
		Mean  float64 `json:"mean"`
		P50   float64 `json:"p50"`
		P90   float64 `json:"p90"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

// manifestDoc mirrors the tsm.Manifest JSON shape.
type manifestDoc struct {
	Tool   string `json:"tool"`
	Stages []struct {
		Name   string  `json:"name"`
		WallNs float64 `json:"wall_ns"`
	} `json:"stages"`
	Metrics *snapshotDoc `json:"metrics"`
}

// flatten auto-detects the artifact kind and flattens it: a single JSON
// object is a manifest (has "tool") or a metrics snapshot (has "counters");
// anything else — a `go test -json` event stream, or plain -bench output —
// goes through the benchmark-line parser.
func flatten(raw []byte) (map[string]float64, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err == nil {
		if _, ok := probe["tool"]; ok {
			var doc manifestDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				return nil, err
			}
			return flattenManifest(doc), nil
		}
		if _, ok := probe["counters"]; ok {
			var doc snapshotDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				return nil, err
			}
			return flattenSnapshot(doc), nil
		}
	}
	return flattenBench(raw)
}

func flattenSnapshot(doc snapshotDoc) map[string]float64 {
	out := make(map[string]float64, len(doc.Counters)+len(doc.Gauges)+6*len(doc.Histograms))
	for name, v := range doc.Counters {
		out[name] = v
	}
	for name, v := range doc.Gauges {
		out[name] = v
	}
	for name, h := range doc.Histograms {
		out[name+".count"] = h.Count
		out[name+".sum"] = h.Sum
		out[name+".mean"] = h.Mean
		out[name+".p50"] = h.P50
		out[name+".p90"] = h.P90
		out[name+".p99"] = h.P99
	}
	return out
}

func flattenManifest(doc manifestDoc) map[string]float64 {
	out := map[string]float64{}
	for _, st := range doc.Stages {
		out["stage."+st.Name+".wall_ns"] = st.WallNs
	}
	if doc.Metrics != nil {
		for name, v := range flattenSnapshot(*doc.Metrics) {
			out[name] = v
		}
	}
	return out
}

// flattenBench parses a `go test -json` stream (or plain `go test -bench`
// output) and flattens each benchmark result line. The -json encoder splits
// one result line across several Output events (the name flushes before the
// numbers), so all Output payloads are concatenated back into the original
// text before splitting it into lines.
func flattenBench(raw []byte) (map[string]float64, error) {
	var text strings.Builder
	jsonEvents := false
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(strings.TrimSpace(line), "{") {
			continue
		}
		var ev struct {
			Output string `json:"Output"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue
		}
		jsonEvents = true
		text.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	content := text.String()
	if !jsonEvents {
		content = string(raw) // plain `go test -bench` text
	}
	out := map[string]float64{}
	for _, line := range strings.Split(content, "\n") {
		parseBenchLine(strings.TrimSpace(line), out)
	}
	return out, nil
}

// parseBenchLine flattens one "BenchmarkX-16 1 123 ns/op 456 B/op ..." line.
func parseBenchLine(line string, out map[string]float64) {
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	units := map[string]string{
		"ns/op":     "ns_per_op",
		"B/op":      "b_per_op",
		"allocs/op": "allocs_per_op",
		"MB/s":      "mb_per_s",
	}
	for i := 2; i+1 < len(fields); i += 2 {
		suffix, ok := units[fields[i+1]]
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		out["bench."+name+"."+suffix] = v
	}
}
