package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// diff runs obsdiff in-process and returns (exit code, stdout, stderr).
func diff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeJSON drops content into a temp file and returns its path.
func writeJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIdenticalInputsPass is half of the acceptance criterion: diffing a
// file against itself finds nothing, exit 0.
func TestIdenticalInputsPass(t *testing.T) {
	code, out, errOut := diff(t, "testdata/bench_old.json", "testdata/bench_old.json")
	if code != 0 {
		t.Fatalf("identical inputs exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("identical inputs reported a regression:\n%s", out)
	}
}

// TestAllocationRegressionFails is the other half: the fixture pair doubles
// BenchmarkStreamedEvaluation's allocations, which must exit non-zero and
// name the metric.
func TestAllocationRegressionFails(t *testing.T) {
	code, out, _ := diff(t, "testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 1 {
		t.Fatalf("2x allocation regression exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "bench.BenchmarkStreamedEvaluation.allocs_per_op") {
		t.Fatalf("output does not name the regressed metric:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "regression") {
		t.Fatalf("output lacks FAIL line or summary:\n%s", out)
	}
	// The unregressed benchmarks (within the default 25%) stay quiet.
	if strings.Contains(out, "bench.BenchmarkFileReplay/fused.allocs_per_op") {
		t.Fatalf("output flags an unregressed metric:\n%s", out)
	}
}

// TestRuleThresholds: a tight per-metric rule turns a small drift into a
// failure; an ignore rule (frac < 0) silences even the doubled allocations.
func TestRuleThresholds(t *testing.T) {
	// 52.1k vs 52k allocs on FileReplay/fused is +0.19% — fails at frac=0.
	code, out, _ := diff(t, "-rule", "bench.BenchmarkFileReplay/fused.allocs_per_op=0",
		"-rule", "bench.BenchmarkStreamedEvaluation.*=-1",
		"-rule", "bench.BenchmarkCodecDecode.*=-1",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 1 || !strings.Contains(out, "bench.BenchmarkFileReplay/fused.allocs_per_op") {
		t.Fatalf("frac=0 rule did not catch the drift (exit %d):\n%s", code, out)
	}

	// Ignoring every allocs/bytes metric leaves only timing, all within 25%.
	code, out, _ = diff(t, "-rule", "*=-1",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 0 {
		t.Fatalf("global ignore rule still failed (exit %d):\n%s", code, out)
	}

	// Globs span '/' in sub-benchmark names: a zero-tolerance allocs rule
	// catches the +0.19% drift on BenchmarkFileReplay/fused too.
	code, out, _ = diff(t, "-rule", "*=-1", "-rule", "*allocs_per_op=0",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 1 || !strings.Contains(out, "bench.BenchmarkFileReplay/fused.allocs_per_op") {
		t.Fatalf("glob did not cross '/' in benchmark names (exit %d):\n%s", code, out)
	}
}

// TestWarnDowngradesToNonFatal: -warn metrics report but do not fail.
func TestWarnDowngradesToNonFatal(t *testing.T) {
	code, out, _ := diff(t, "-warn", "*allocs_per_op", "-warn", "*b_per_op",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 0 {
		t.Fatalf("warned regression still failed (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "warn") || !strings.Contains(out, "bench.BenchmarkStreamedEvaluation.allocs_per_op") {
		t.Fatalf("warn line missing:\n%s", out)
	}
}

// TestImprovementsNeverFail: lower values pass any threshold. Reversing the
// fixture pair turns the doubled allocations into a halving, which must pass
// even at zero tolerance.
func TestImprovementsNeverFail(t *testing.T) {
	code, out, _ := diff(t, "-rule", "*=-1", "-rule", "*allocs_per_op=0",
		"testdata/bench_new_regressed.json", "testdata/bench_old.json")
	if code != 0 {
		t.Fatalf("allocation improvement failed the diff (exit %d):\n%s", code, out)
	}
}

// TestRequirePresence: -require fails when no metric in the new file matches.
func TestRequirePresence(t *testing.T) {
	code, out, _ := diff(t, "-require", "bench.BenchmarkStreamedEvaluation.*",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 1 { // still 1: the allocation regression
		t.Fatalf("exit %d\n%s", code, out)
	}
	code, out, _ = diff(t, "-rule", "*=-1", "-require", "bench.BenchmarkNoSuchThing.*",
		"testdata/bench_old.json", "testdata/bench_new_regressed.json")
	if code != 1 || !strings.Contains(out, "required but absent") {
		t.Fatalf("missing -require metric not failed (exit %d):\n%s", code, out)
	}
}

// TestSnapshotAndManifestInputs: the differ understands the other two
// artifact kinds — metrics snapshots flatten counters/gauges/histogram
// quantiles, manifests flatten stage wall times plus the embedded snapshot.
func TestSnapshotAndManifestInputs(t *testing.T) {
	oldSnap := writeJSON(t, "old.json", `{
		"counters": {"pipeline.events_decoded": 1000, "pipeline.chunks_decoded": 10},
		"gauges": {"pipeline.ring.occupancy_max": 4},
		"histograms": {"pipeline.consumer_wait_ns": {"count": 10, "sum": 5000, "mean": 500, "p50": 400, "p90": 900, "p99": 1000}}
	}`)
	newSnap := writeJSON(t, "new.json", `{
		"counters": {"pipeline.events_decoded": 1000, "pipeline.chunks_decoded": 25},
		"gauges": {"pipeline.ring.occupancy_max": 4},
		"histograms": {"pipeline.consumer_wait_ns": {"count": 10, "sum": 5000, "mean": 500, "p50": 400, "p90": 900, "p99": 1000}}
	}`)
	code, out, _ := diff(t, oldSnap, newSnap)
	if code != 1 || !strings.Contains(out, "pipeline.chunks_decoded") {
		t.Fatalf("snapshot counter regression not caught (exit %d):\n%s", code, out)
	}

	oldMan := writeJSON(t, "oldman.json", `{
		"tool": "tsm", "version": "0.8.0",
		"trace": {"path": "x.tsm", "bytes": 1, "codec_version": 3},
		"replay": {"op": "replay-tse"},
		"stages": [{"name": "open", "wall_ns": 1000}, {"name": "replay", "wall_ns": 50000}],
		"metrics": {"counters": {"pipeline.events_decoded": 1000}}
	}`)
	newMan := writeJSON(t, "newman.json", `{
		"tool": "tsm", "version": "0.8.0",
		"trace": {"path": "x.tsm", "bytes": 1, "codec_version": 3},
		"replay": {"op": "replay-tse"},
		"stages": [{"name": "open", "wall_ns": 1100}, {"name": "replay", "wall_ns": 500000}],
		"metrics": {"counters": {"pipeline.events_decoded": 1000}}
	}`)
	code, out, _ = diff(t, oldMan, newMan)
	if code != 1 || !strings.Contains(out, "stage.replay.wall_ns") {
		t.Fatalf("manifest stage regression not caught (exit %d):\n%s", code, out)
	}
	// Wall times ignored by rule: clean pass.
	code, out, _ = diff(t, "-rule", "stage.*=-1", oldMan, newMan)
	if code != 0 {
		t.Fatalf("ignored stage times still failed (exit %d):\n%s", code, out)
	}
}

// TestListMode prints every comparison including passing ones.
func TestListMode(t *testing.T) {
	code, out, _ := diff(t, "-list", "testdata/bench_old.json", "testdata/bench_old.json")
	if code != 0 || !strings.Contains(out, "ok      bench.BenchmarkStreamedEvaluation.ns_per_op") {
		t.Fatalf("-list output incomplete (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Fatalf("-list lacks the summary:\n%s", out)
	}
}

// TestBenchNameNormalization: the -16 GOMAXPROCS suffix is stripped, so
// baselines recorded on one machine diff cleanly against another.
func TestBenchNameNormalization(t *testing.T) {
	oldB := writeJSON(t, "old.txt", "BenchmarkThing-16 \t 1 \t 100 ns/op \t 10 allocs/op\n")
	newB := writeJSON(t, "new.txt", "BenchmarkThing-4 \t 1 \t 100 ns/op \t 30 allocs/op\n")
	code, out, _ := diff(t, oldB, newB)
	if code != 1 || !strings.Contains(out, "bench.BenchmarkThing.allocs_per_op") {
		t.Fatalf("cross-GOMAXPROCS diff failed to match names (exit %d):\n%s", code, out)
	}
}

// TestUsageErrors: wrong arity, malformed rules and unreadable inputs are
// usage errors (exit 2), distinct from regressions (exit 1).
func TestUsageErrors(t *testing.T) {
	if code, _, _ := diff(t, "only-one.json"); code != 2 {
		t.Fatalf("one arg exited %d, want 2", code)
	}
	if code, _, errOut := diff(t, "-rule", "nofrac", "a.json", "b.json"); code != 2 || !strings.Contains(errOut, "rule") {
		t.Fatalf("bad -rule exited %d:\n%s", code, errOut)
	}
	if code, _, errOut := diff(t, filepath.Join(t.TempDir(), "missing.json"), "testdata/bench_old.json"); code != 2 || !strings.Contains(errOut, "obsdiff:") {
		t.Fatalf("missing file exited %d:\n%s", code, errOut)
	}
	empty := writeJSON(t, "empty.json", "{}")
	if code, _, errOut := diff(t, empty, empty); code != 2 || !strings.Contains(errOut, "no metrics recognized") {
		t.Fatalf("unrecognized input exited %d:\n%s", code, errOut)
	}
}
