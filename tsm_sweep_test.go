package tsm

import (
	"fmt"
	"testing"

	"tsm/internal/analysis"
	"tsm/internal/experiments"
	"tsm/internal/pipeline"
	"tsm/internal/stream"
)

// TestSweepConfigsMirrorFigureDrivers: the named sweeps must use the figure
// drivers' own cell axes — shared via internal/experiments — not private
// copies that could drift. em3d is the probe workload because its Table 3
// lookahead (18) differs from the sweeps' fixed base lookahead, so any
// config that forgets to pin the lookahead shows up here.
func TestSweepConfigsMirrorFigureDrivers(t *testing.T) {
	opts := testOpts()
	gen, err := newGenerator("em3d", opts.normalize())
	if err != nil {
		t.Fatal(err)
	}
	if la := gen.Timing().Lookahead; la == experiments.SweepBaseLookahead {
		t.Fatalf("probe workload lookahead %d equals the sweep base; pick a different workload", la)
	}

	labels, cfgs, err := sweepConfigs("svb", gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	points := experiments.Fig9SVBPoints()
	if len(cfgs) != len(points) {
		t.Fatalf("svb sweep has %d cells, want %d (the Figure 9 axis)", len(cfgs), len(points))
	}
	for i, p := range points {
		if labels[i] != p.Label || cfgs[i].SVBEntries != p.Entries {
			t.Errorf("svb cell %d = %q/%d entries, want %q/%d (Figure 9 axis)", i, labels[i], cfgs[i].SVBEntries, p.Label, p.Entries)
		}
		if cfgs[i].Lookahead != experiments.SweepBaseLookahead {
			t.Errorf("svb cell %d lookahead = %d, want %d as fig9Configs pins it", i, cfgs[i].Lookahead, experiments.SweepBaseLookahead)
		}
		if cfgs[i].CMOBEntries != 0 {
			t.Errorf("svb cell %d CMOBEntries = %d, want 0 (isolate the SVB effect)", i, cfgs[i].CMOBEntries)
		}
	}

	labels, cfgs, err = sweepConfigs("lookahead", gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	lookaheads := experiments.Fig8Lookaheads()
	if len(cfgs) != len(lookaheads) {
		t.Fatalf("lookahead sweep has %d cells, want %d (the Figure 8 axis)", len(cfgs), len(lookaheads))
	}
	for i, la := range lookaheads {
		if labels[i] != fmt.Sprintf("LA=%d", la) || cfgs[i].Lookahead != la {
			t.Errorf("lookahead cell %d = %q/LA %d, want LA=%d (Figure 8 axis)", i, labels[i], cfgs[i].Lookahead, la)
		}
	}

	_, cfgs, err = sweepConfigs("streams", gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if cfg.ComparedStreams != i+1 || cfg.Lookahead != experiments.SweepBaseLookahead {
			t.Errorf("streams cell %d = %d streams/LA %d, want %d streams/LA %d",
				i, cfg.ComparedStreams, cfg.Lookahead, i+1, experiments.SweepBaseLookahead)
		}
	}
}

// TestSweepSingleDecodePass is the sweep facade's acceptance criterion: for
// every named sweep, EvaluateTSESweepSource must decode the stream exactly
// ONCE — N events + one EOF — however many cells the sweep has, and each
// cell's report must match evaluating that cell's configuration on its own.
func TestSweepSingleDecodePass(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("db2", opts)
	if err != nil {
		t.Fatal(err)
	}
	meta := TraceMeta{Workload: "db2", Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed}
	wantNexts := tr.Len() + 1

	for _, sweep := range TSESweeps() {
		src := &passCountingSource{src: stream.TraceSource(tr)}
		cells, err := EvaluateTSESweepSource(src, meta, sweep)
		if err != nil {
			t.Fatal(err)
		}
		if src.nexts != wantNexts {
			t.Errorf("sweep %q (%d cells) read the source %d times, want %d (one decode pass)",
				sweep, len(cells), src.nexts, wantNexts)
		}
		if len(cells) < 2 {
			t.Fatalf("sweep %q returned %d cells", sweep, len(cells))
		}

		// Per-cell parity: each cell must equal its own independent pass.
		labels, cfgs, err := sweepConfigs(sweep, gen, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			if cells[i].Label != labels[i] {
				t.Errorf("sweep %q cell %d label = %q, want %q", sweep, i, cells[i].Label, labels[i])
			}
			cov, _ := analysis.EvaluateTSE(cfg, tr)
			if want := coverageReport(cov); cells[i].Report != want {
				t.Errorf("sweep %q cell %q: %+v != independent pass %+v", sweep, cells[i].Label, cells[i].Report, want)
			}
		}
	}

	if _, err := EvaluateTSESweepSource(stream.TraceSource(tr), meta, "bogus"); err == nil {
		t.Fatal("unknown sweep should error")
	}
	if _, err := EvaluateTSESweepSource(stream.TraceSource(tr), TraceMeta{Workload: "bogus"}, "streams"); err == nil {
		t.Fatal("bogus metadata should error")
	}
}

// TestSweepStrategyParityAllWorkloads is the ring==channels differential at
// the facade level, across EVERY registered workload (mixes included): the
// ring broadcast and the channels reference must produce identical sweep
// cells, and both must match the independent per-cell passes.
func TestSweepStrategyParityAllWorkloads(t *testing.T) {
	opts := Options{Nodes: 4, Scale: 0.03, Seed: 11}
	for _, name := range AllWorkloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, gen, err := GenerateTrace(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			_, cfgs, err := sweepConfigs("lookahead", gen, opts)
			if err != nil {
				t.Fatal(err)
			}
			ring, err := analysis.SweepWith(pipeline.Config{Strategy: pipeline.Ring}, cfgs, stream.TraceSource(tr))
			if err != nil {
				t.Fatal(err)
			}
			chans, err := analysis.SweepWith(pipeline.Config{Strategy: pipeline.Channels}, cfgs, stream.TraceSource(tr))
			if err != nil {
				t.Fatal(err)
			}
			for i, cfg := range cfgs {
				if ring[i].Coverage != chans[i].Coverage {
					t.Fatalf("cell %d: ring %+v != channels %+v", i, ring[i].Coverage, chans[i].Coverage)
				}
				want, _ := analysis.EvaluateTSE(cfg, tr)
				if ring[i].Coverage != want {
					t.Fatalf("cell %d: sweep %+v != independent pass %+v", i, ring[i].Coverage, want)
				}
			}
		})
	}
}

// TestEvaluateTSESweepFile: the file path must reproduce the source path bit
// for bit with exactly one decode of the file, and fail cleanly on unknown
// sweeps and missing files.
func TestEvaluateTSESweepFile(t *testing.T) {
	opts := testOpts()
	tr, gen, err := GenerateTrace("memkv", opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/memkv.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		t.Fatal(err)
	}
	meta := TraceMeta{Workload: "memkv", Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed}
	for _, sweep := range TSESweeps() {
		want, err := EvaluateTSESweepSource(stream.TraceSource(tr), meta, sweep)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateTSESweepFile(path, sweep)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("sweep %q: file returned %d cells, want %d", sweep, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("sweep %q cell %d: file %+v != source %+v", sweep, i, got[i], want[i])
			}
		}
	}
	if _, err := EvaluateTSESweepFile(path, "bogus"); err == nil {
		t.Fatal("unknown sweep should error")
	}
	if _, err := EvaluateTSESweepFile(t.TempDir()+"/missing.tsm", "streams"); err == nil {
		t.Fatal("missing file should error")
	}
}
