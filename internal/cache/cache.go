// Package cache implements set-associative caches with LRU replacement and a
// simple MSHR (miss status holding register) file. The DSM node model uses
// one instance for the split L1 data cache and one for the unified L2
// (Table 1: 64 KB 2-way L1, 8 MB 8-way L2, 64-byte blocks).
//
// The caches here track tags and coherence-relevant state only; no data
// payloads are stored because every model in this repository operates on
// addresses.
package cache

import (
	"fmt"

	"tsm/internal/mem"
)

// LineState is the local cache line state. It is deliberately simple
// (MSI-style) because the directory in internal/coherence is the
// authoritative source of sharing information.
type LineState uint8

const (
	// Invalid means the line is not present.
	Invalid LineState = iota
	// Shared means the line is present and clean.
	Shared
	// Modified means the line is present and dirty.
	Modified
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Config describes a cache geometry.
type Config struct {
	// Name is used in statistics and error messages ("L1D", "L2").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockSize is the line size in bytes.
	BlockSize int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	return c.SizeBytes / (c.Ways * c.BlockSize)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockSize <= 0 {
		return fmt.Errorf("cache %q: all sizes must be positive (%+v)", c.Name, c)
	}
	if c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %q: block size %d not a power of two", c.Name, c.BlockSize)
	}
	sets := c.Sets()
	if sets <= 0 {
		return fmt.Errorf("cache %q: capacity %d too small for %d ways of %d-byte blocks",
			c.Name, c.SizeBytes, c.Ways, c.BlockSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// line is one cache line.
type line struct {
	tag   uint64
	state LineState
	lru   uint64 // larger is more recently used
}

// Stats accumulates hit/miss/eviction counts.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64
	Invalidates uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	geom     mem.Geometry
	sets     [][]line
	setMask  uint64
	lruClock uint64
	stats    Stats
}

// New builds a cache from the configuration. It panics on an invalid
// configuration because configurations are static model parameters, not
// runtime inputs.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:     cfg,
		geom:    mem.Geometry{BlockSize: cfg.BlockSize},
		sets:    sets,
		setMask: uint64(nsets - 1),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// indexAndTag splits a block address into set index and tag.
func (c *Cache) indexAndTag(b mem.BlockAddr) (int, uint64) {
	blockNum := c.geom.BlockIndex(mem.Addr(b))
	return int(blockNum & c.setMask), blockNum >> popcount(c.setMask)
}

// popcount of a contiguous low mask == number of index bits.
func popcount(mask uint64) uint {
	var n uint
	for mask != 0 {
		n += uint(mask & 1)
		mask >>= 1
	}
	return n
}

// Lookup reports whether the block is present and its state, without
// changing any cache state (no LRU update, no statistics).
func (c *Cache) Lookup(b mem.BlockAddr) (LineState, bool) {
	set, tag := c.indexAndTag(b)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state != Invalid && ln.tag == tag {
			return ln.state, true
		}
	}
	return Invalid, false
}

// Access performs a read or write access. It returns whether the access hit
// and, on a hit, updates LRU and (for writes) upgrades the line to Modified.
// A miss does not allocate; callers decide whether and how to fill (so that
// streamed blocks can be kept out of the cache hierarchy, as the SVB does).
func (c *Cache) Access(b mem.BlockAddr, write bool) bool {
	set, tag := c.indexAndTag(b)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state != Invalid && ln.tag == tag {
			c.lruClock++
			ln.lru = c.lruClock
			if write {
				ln.state = Modified
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Victim describes a line evicted by Fill.
type Victim struct {
	Block mem.BlockAddr
	Dirty bool
	Valid bool
}

// Fill installs a block in the given state, evicting the LRU line of the set
// if necessary, and returns the victim (Victim.Valid reports whether a valid
// line was displaced).
func (c *Cache) Fill(b mem.BlockAddr, state LineState) Victim {
	if state == Invalid {
		return Victim{}
	}
	set, tag := c.indexAndTag(b)
	lines := c.sets[set]
	// Already present: just update state (upgrade) and LRU.
	for i := range lines {
		if lines[i].state != Invalid && lines[i].tag == tag {
			c.lruClock++
			lines[i].lru = c.lruClock
			if state == Modified || lines[i].state == Modified {
				lines[i].state = Modified
			} else {
				lines[i].state = state
			}
			return Victim{}
		}
	}
	// Find an invalid way, else the LRU way.
	victimIdx := -1
	for i := range lines {
		if lines[i].state == Invalid {
			victimIdx = i
			break
		}
	}
	var victim Victim
	if victimIdx < 0 {
		victimIdx = 0
		for i := 1; i < len(lines); i++ {
			if lines[i].lru < lines[victimIdx].lru {
				victimIdx = i
			}
		}
		v := lines[victimIdx]
		victim = Victim{
			Block: c.blockFromSetTag(set, v.tag),
			Dirty: v.state == Modified,
			Valid: true,
		}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
	}
	c.lruClock++
	lines[victimIdx] = line{tag: tag, state: state, lru: c.lruClock}
	return victim
}

// blockFromSetTag reconstructs the block address from set index and tag.
func (c *Cache) blockFromSetTag(set int, tag uint64) mem.BlockAddr {
	bits := popcount(c.setMask)
	blockNum := tag<<bits | uint64(set)
	return c.geom.AddrOfBlock(blockNum)
}

// Invalidate removes a block if present, returning whether it was present
// and whether it was dirty.
func (c *Cache) Invalidate(b mem.BlockAddr) (present, dirty bool) {
	set, tag := c.indexAndTag(b)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state != Invalid && ln.tag == tag {
			dirty = ln.state == Modified
			ln.state = Invalid
			c.stats.Invalidates++
			return true, dirty
		}
	}
	return false, false
}

// Downgrade moves a Modified block to Shared (e.g. when the directory
// forwards a read). It reports whether the block was present and dirty.
func (c *Cache) Downgrade(b mem.BlockAddr) bool {
	set, tag := c.indexAndTag(b)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state == Modified && ln.tag == tag {
			ln.state = Shared
			return true
		}
	}
	return false
}

// OccupiedLines returns the number of valid lines (useful for tests).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.state != Invalid {
				n++
			}
		}
	}
	return n
}

// Reset invalidates every line and clears the statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.stats = Stats{}
	c.lruClock = 0
}
