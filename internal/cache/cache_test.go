package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsm/internal/mem"
)

func smallConfig() Config {
	return Config{Name: "test", SizeBytes: 1024, Ways: 2, BlockSize: 64} // 8 sets
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		smallConfig(),
		{Name: "L1D", SizeBytes: 64 * 1024, Ways: 2, BlockSize: 64},
		{Name: "L2", SizeBytes: 8 << 20, Ways: 8, BlockSize: 64},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{},
		{SizeBytes: 1024, Ways: 2, BlockSize: 63},
		{SizeBytes: 100, Ways: 2, BlockSize: 64},
		{SizeBytes: 64 * 3, Ways: 1, BlockSize: 64}, // 3 sets, not power of two
		{SizeBytes: -1, Ways: 1, BlockSize: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config should panic")
		}
	}()
	New(Config{})
}

func TestHitMissFill(t *testing.T) {
	c := New(smallConfig())
	b := mem.BlockAddr(0x1000)
	if c.Access(b, false) {
		t.Fatal("access to empty cache should miss")
	}
	c.Fill(b, Shared)
	if !c.Access(b, false) {
		t.Fatal("access after fill should hit")
	}
	if st, ok := c.Lookup(b); !ok || st != Shared {
		t.Fatalf("Lookup = %v,%v want Shared,true", st, ok)
	}
	// A write hit upgrades to Modified.
	if !c.Access(b, true) {
		t.Fatal("write to present block should hit")
	}
	if st, _ := c.Lookup(b); st != Modified {
		t.Fatalf("state after write = %v, want Modified", st)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 8 sets, 2 ways
	// Three blocks mapping to the same set (stride = sets*blockSize = 512).
	b0, b1, b2 := mem.BlockAddr(0), mem.BlockAddr(512), mem.BlockAddr(1024)
	c.Fill(b0, Shared)
	c.Fill(b1, Shared)
	// Touch b0 so b1 becomes LRU.
	c.Access(b0, false)
	v := c.Fill(b2, Shared)
	if !v.Valid || v.Block != b1 {
		t.Fatalf("victim = %+v, want valid eviction of %#x", v, b1)
	}
	if _, ok := c.Lookup(b1); ok {
		t.Fatal("b1 should have been evicted")
	}
	if _, ok := c.Lookup(b0); !ok {
		t.Fatal("b0 should still be present")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := New(smallConfig())
	b0, b1, b2 := mem.BlockAddr(0), mem.BlockAddr(512), mem.BlockAddr(1024)
	c.Fill(b0, Modified)
	c.Fill(b1, Shared)
	c.Access(b1, false) // make b0 the LRU
	v := c.Fill(b2, Shared)
	if !v.Valid || !v.Dirty || v.Block != b0 {
		t.Fatalf("victim = %+v, want dirty eviction of block 0", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := New(smallConfig())
	b := mem.BlockAddr(0x40)
	if present, _ := c.Invalidate(b); present {
		t.Fatal("invalidate of absent block should report not present")
	}
	c.Fill(b, Modified)
	if !c.Downgrade(b) {
		t.Fatal("downgrade of modified block should succeed")
	}
	if st, _ := c.Lookup(b); st != Shared {
		t.Fatalf("state after downgrade = %v, want Shared", st)
	}
	if c.Downgrade(b) {
		t.Fatal("downgrade of already-shared block should report false")
	}
	present, dirty := c.Invalidate(b)
	if !present || dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,false)", present, dirty)
	}
	if c.OccupiedLines() != 0 {
		t.Fatal("cache should be empty after invalidate")
	}
}

func TestFillExistingUpgrades(t *testing.T) {
	c := New(smallConfig())
	b := mem.BlockAddr(0x80)
	c.Fill(b, Shared)
	v := c.Fill(b, Modified)
	if v.Valid {
		t.Fatal("re-fill of present block should not evict")
	}
	if st, _ := c.Lookup(b); st != Modified {
		t.Fatalf("state = %v, want Modified", st)
	}
	// Filling Shared over Modified must not lose the dirty bit.
	v = c.Fill(b, Shared)
	if st, _ := c.Lookup(b); st != Modified {
		t.Fatalf("state = %v, want Modified preserved", st)
	}
	_ = v
}

func TestCapacityNeverExceeded(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	rng := rand.New(rand.NewSource(7))
	maxLines := cfg.Sets() * cfg.Ways
	for i := 0; i < 10000; i++ {
		b := mem.BlockAddr(uint64(rng.Intn(1<<16)) &^ 63)
		c.Fill(b, Shared)
		if c.OccupiedLines() > maxLines {
			t.Fatalf("occupied %d lines exceeds capacity %d", c.OccupiedLines(), maxLines)
		}
	}
}

func TestFillThenLookupProperty(t *testing.T) {
	cfg := Config{Name: "q", SizeBytes: 4096, Ways: 4, BlockSize: 64}
	f := func(raw []uint16) bool {
		c := New(cfg)
		for _, r := range raw {
			b := mem.Geometry{BlockSize: 64}.BlockOf(mem.Addr(r))
			c.Fill(b, Shared)
			// The most recently filled block must always be present.
			if _, ok := c.Lookup(b); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x40, Modified)
	c.Access(0x40, false)
	c.Reset()
	if c.OccupiedLines() != 0 {
		t.Fatal("Reset should invalidate all lines")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("Reset should clear stats, got %+v", s)
	}
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("unexpected LineState strings")
	}
	if LineState(9).String() == "" {
		t.Fatal("unknown state should produce non-empty string")
	}
}
