package cache

import (
	"tsm/internal/mem"
)

// MSHRFile models a finite set of miss status holding registers. The DSM
// node model uses it to bound memory-level parallelism: Table 1 specifies
// 32 MSHRs per cache, and Section 5.6 of the paper uses the L2 MSHR count to
// cap the ocean lookahead.
type MSHRFile struct {
	capacity int
	pending  map[mem.BlockAddr][]func()
	// PeakOccupancy records the maximum number of simultaneously
	// outstanding distinct blocks, which approximates measured MLP.
	peak int
}

// NewMSHRFile returns an MSHR file with the given number of entries.
// A non-positive capacity means "unlimited".
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{
		capacity: capacity,
		pending:  make(map[mem.BlockAddr][]func()),
	}
}

// Capacity returns the configured number of entries (0 = unlimited).
func (m *MSHRFile) Capacity() int { return m.capacity }

// Outstanding returns the number of distinct blocks currently outstanding.
func (m *MSHRFile) Outstanding() int { return len(m.pending) }

// Peak returns the maximum simultaneous occupancy observed.
func (m *MSHRFile) Peak() int { return m.peak }

// CanAllocate reports whether a miss to a new block could be accepted.
func (m *MSHRFile) CanAllocate(b mem.BlockAddr) bool {
	if _, ok := m.pending[b]; ok {
		return true // merges into the existing entry
	}
	return m.capacity <= 0 || len(m.pending) < m.capacity
}

// Allocate records an outstanding miss for block b. If an entry already
// exists the request merges into it (a secondary miss). onFill, if non-nil,
// runs when the block is filled. Allocate reports whether the request was
// accepted (false when the file is full and no entry exists to merge into)
// and whether this was the primary (first) miss for the block.
func (m *MSHRFile) Allocate(b mem.BlockAddr, onFill func()) (accepted, primary bool) {
	if waiters, ok := m.pending[b]; ok {
		if onFill != nil {
			m.pending[b] = append(waiters, onFill)
		}
		return true, false
	}
	if m.capacity > 0 && len(m.pending) >= m.capacity {
		return false, false
	}
	var waiters []func()
	if onFill != nil {
		waiters = []func(){onFill}
	}
	m.pending[b] = waiters
	if len(m.pending) > m.peak {
		m.peak = len(m.pending)
	}
	return true, true
}

// Fill completes the outstanding miss for block b, invoking every waiter in
// allocation order. It reports whether an entry existed.
func (m *MSHRFile) Fill(b mem.BlockAddr) bool {
	waiters, ok := m.pending[b]
	if !ok {
		return false
	}
	delete(m.pending, b)
	for _, w := range waiters {
		w()
	}
	return true
}

// Reset clears all entries and statistics.
func (m *MSHRFile) Reset() {
	m.pending = make(map[mem.BlockAddr][]func())
	m.peak = 0
}
