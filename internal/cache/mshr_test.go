package cache

import (
	"testing"

	"tsm/internal/mem"
)

func TestMSHRAllocateFill(t *testing.T) {
	m := NewMSHRFile(2)
	if m.Capacity() != 2 {
		t.Fatalf("Capacity = %d, want 2", m.Capacity())
	}
	fills := 0
	acc, primary := m.Allocate(0x40, func() { fills++ })
	if !acc || !primary {
		t.Fatalf("first allocate = (%v,%v), want (true,true)", acc, primary)
	}
	acc, primary = m.Allocate(0x40, func() { fills++ })
	if !acc || primary {
		t.Fatalf("merge allocate = (%v,%v), want (true,false)", acc, primary)
	}
	if m.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 (merged)", m.Outstanding())
	}
	if !m.Fill(0x40) {
		t.Fatal("Fill of outstanding block should succeed")
	}
	if fills != 2 {
		t.Fatalf("fill callbacks = %d, want 2", fills)
	}
	if m.Fill(0x40) {
		t.Fatal("second Fill should report no entry")
	}
}

func TestMSHRCapacityLimit(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(0x00, nil)
	m.Allocate(0x40, nil)
	if m.CanAllocate(0x80) {
		t.Fatal("full MSHR file should refuse a new block")
	}
	if !m.CanAllocate(0x40) {
		t.Fatal("full MSHR file should still accept a merge")
	}
	if acc, _ := m.Allocate(0x80, nil); acc {
		t.Fatal("Allocate beyond capacity should be rejected")
	}
	m.Fill(0x00)
	if acc, primary := m.Allocate(0x80, nil); !acc || !primary {
		t.Fatal("Allocate after Fill frees an entry should succeed")
	}
	if m.Peak() != 2 {
		t.Fatalf("Peak = %d, want 2", m.Peak())
	}
}

func TestMSHRUnlimited(t *testing.T) {
	m := NewMSHRFile(0)
	for i := 0; i < 1000; i++ {
		b := mem.BlockAddr(i * 64)
		if acc, _ := m.Allocate(b, nil); !acc {
			t.Fatalf("unlimited MSHR rejected block %d", i)
		}
	}
	if m.Outstanding() != 1000 {
		t.Fatalf("Outstanding = %d, want 1000", m.Outstanding())
	}
	m.Reset()
	if m.Outstanding() != 0 || m.Peak() != 0 {
		t.Fatal("Reset should clear entries and peak")
	}
}
