package coherence

import (
	"testing"

	"tsm/internal/cache"
	"tsm/internal/mem"
	"tsm/internal/trace"
)

func smallEngine() *Engine {
	return New(Config{
		Nodes:    4,
		Geometry: mem.DefaultGeometry(),
		// Infinite caches keep classification focused on coherence.
		PointersPerEntry: 2,
	})
}

func finiteEngine() *Engine {
	return New(Config{
		Nodes:    4,
		Geometry: mem.DefaultGeometry(),
		CacheConfig: cache.Config{
			Name: "L2", SizeBytes: 4096, Ways: 2, BlockSize: 64,
		},
		PointersPerEntry: 2,
	})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Nodes: 0, Geometry: mem.DefaultGeometry()},
		{Nodes: 4, Geometry: mem.Geometry{BlockSize: 3}},
		{Nodes: 4, Geometry: mem.DefaultGeometry(),
			CacheConfig: cache.Config{SizeBytes: 1024, Ways: 2, BlockSize: 32}},
		{Nodes: 4, Geometry: mem.DefaultGeometry(),
			CacheConfig: cache.Config{SizeBytes: 100, Ways: 3, BlockSize: 64}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
}

func TestProducerConsumerClassification(t *testing.T) {
	e := smallEngine()
	var tr trace.Trace

	// Node 0 writes block 0x1000; node 1 then reads it.
	r := e.Access(mem.Access{Node: 0, Addr: 0x1000, Type: mem.Write}, &tr)
	if r.Class != WriteMiss {
		t.Fatalf("first write class = %v, want WriteMiss", r.Class)
	}
	r = e.Access(mem.Access{Node: 1, Addr: 0x1000, Type: mem.Read}, &tr)
	if r.Class != Consumption || r.Producer != 0 {
		t.Fatalf("consumer read = %+v, want Consumption from node 0", r)
	}
	// Node 1 reads again: hit.
	r = e.Access(mem.Access{Node: 1, Addr: 0x1008, Type: mem.Read}, &tr)
	if r.Class != Hit {
		t.Fatalf("re-read class = %v, want Hit", r.Class)
	}
	// Node 0 reads its own data back: hit (it still owns a copy).
	r = e.Access(mem.Access{Node: 0, Addr: 0x1000, Type: mem.Read}, &tr)
	if r.Class != Hit {
		t.Fatalf("producer read class = %v, want Hit", r.Class)
	}
	// Trace should contain one consumption and one write.
	counts := tr.CountByKind()
	if counts[trace.KindConsumption] != 1 || counts[trace.KindWrite] != 1 {
		t.Fatalf("trace counts = %+v", counts)
	}
	st := e.Stats()
	if st.Consumptions != 1 || st.WriteMisses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestColdReadIsPrivateMiss(t *testing.T) {
	e := smallEngine()
	var tr trace.Trace
	r := e.Access(mem.Access{Node: 2, Addr: 0x9000, Type: mem.Read}, &tr)
	if r.Class != PrivateMiss {
		t.Fatalf("cold read = %v, want PrivateMiss", r.Class)
	}
	if tr.CountByKind()[trace.KindReadMiss] != 1 {
		t.Fatal("cold read should emit a KindReadMiss event")
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	e := smallEngine()
	e.Access(mem.Access{Node: 0, Addr: 0x2000, Type: mem.Write}, nil)
	e.Access(mem.Access{Node: 1, Addr: 0x2000, Type: mem.Read}, nil)
	e.Access(mem.Access{Node: 2, Addr: 0x2000, Type: mem.Read}, nil)
	r := e.Access(mem.Access{Node: 3, Addr: 0x2000, Type: mem.Write}, nil)
	if r.Class != WriteMiss || len(r.Invalidated) != 3 {
		t.Fatalf("write over shared = %+v, want 3 invalidations", r)
	}
	// Node 1's next read must again be a consumption (its copy is gone and
	// node 3 produced a new value).
	r = e.Access(mem.Access{Node: 1, Addr: 0x2000, Type: mem.Read}, nil)
	if r.Class != Consumption || r.Producer != 3 {
		t.Fatalf("read after invalidation = %+v, want Consumption from node 3", r)
	}
}

func TestWriterWriteHit(t *testing.T) {
	e := smallEngine()
	e.Access(mem.Access{Node: 0, Addr: 0x3000, Type: mem.Write}, nil)
	r := e.Access(mem.Access{Node: 0, Addr: 0x3010, Type: mem.Write}, nil)
	if r.Class != WriteHit {
		t.Fatalf("owner rewrite = %v, want WriteHit", r.Class)
	}
}

func TestSpinExcluded(t *testing.T) {
	e := smallEngine()
	var tr trace.Trace
	e.Access(mem.Access{Node: 0, Addr: 0x4000, Type: mem.Write}, &tr)
	r := e.Access(mem.Access{Node: 1, Addr: 0x4000, Type: mem.Read, Spin: true}, &tr)
	if r.Class != SpinMiss {
		t.Fatalf("spin read = %v, want SpinMiss", r.Class)
	}
	if tr.ConsumptionCount() != 0 {
		t.Fatal("spin misses must not appear as consumptions in the trace")
	}
	if e.Stats().SpinMisses != 1 {
		t.Fatalf("stats = %+v, want 1 spin miss", e.Stats())
	}
}

func TestAtomicRMWBehavesAsWrite(t *testing.T) {
	e := smallEngine()
	e.Access(mem.Access{Node: 0, Addr: 0x5000, Type: mem.Write}, nil)
	e.Access(mem.Access{Node: 1, Addr: 0x5000, Type: mem.Read}, nil)
	r := e.Access(mem.Access{Node: 2, Addr: 0x5000, Type: mem.AtomicRMW}, nil)
	if r.Class != WriteMiss {
		t.Fatalf("rmw = %v, want WriteMiss", r.Class)
	}
	if len(r.Invalidated) == 0 {
		t.Fatal("rmw should invalidate sharers")
	}
}

func TestFiniteCacheCapacityMissNotConsumption(t *testing.T) {
	e := finiteEngine() // 4 KB, 2-way, 64-byte blocks => 64 lines
	// Node 0 writes then reads back a working set larger than its cache.
	// Re-reads of its own evicted data must be private misses, not
	// consumptions (no other node produced the data).
	for i := 0; i < 256; i++ {
		e.Access(mem.Access{Node: 0, Addr: mem.Addr(i * 64), Type: mem.Write}, nil)
	}
	var tr trace.Trace
	for i := 0; i < 256; i++ {
		e.Access(mem.Access{Node: 0, Addr: mem.Addr(i * 64), Type: mem.Read}, &tr)
	}
	if tr.ConsumptionCount() != 0 {
		t.Fatalf("self re-reads produced %d consumptions, want 0", tr.ConsumptionCount())
	}
}

func TestFiniteCacheCoherentReadAfterEviction(t *testing.T) {
	e := finiteEngine()
	// Node 0 produces one block, node 1 consumes it, then node 1 streams
	// through enough private data to evict it, then re-reads it: that
	// re-read is again a coherence-related miss (value still produced by
	// node 0), matching the paper's "coherence misses grow with cache
	// size" framing.
	e.Access(mem.Access{Node: 0, Addr: 0x0, Type: mem.Write}, nil)
	r := e.Access(mem.Access{Node: 1, Addr: 0x0, Type: mem.Read}, nil)
	if r.Class != Consumption {
		t.Fatalf("first consumer read = %v, want Consumption", r.Class)
	}
	for i := 1; i < 200; i++ {
		e.Access(mem.Access{Node: 1, Addr: mem.Addr(0x100000 + i*64), Type: mem.Write}, nil)
	}
	r = e.Access(mem.Access{Node: 1, Addr: 0x0, Type: mem.Read}, nil)
	if r.Class != Consumption {
		t.Fatalf("re-read after eviction = %v, want Consumption", r.Class)
	}
}

func TestRunProducesOrderedTrace(t *testing.T) {
	e := smallEngine()
	var accesses []mem.Access
	for i := 0; i < 16; i++ {
		accesses = append(accesses, mem.Access{Node: 0, Addr: mem.Addr(i * 64), Type: mem.Write})
	}
	for i := 0; i < 16; i++ {
		accesses = append(accesses, mem.Access{Node: 1, Addr: mem.Addr(i * 64), Type: mem.Read})
	}
	tr := e.Run(accesses)
	cons := tr.Consumptions()
	if len(cons) != 16 {
		t.Fatalf("consumptions = %d, want 16", len(cons))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq != tr.Events[i-1].Seq+1 {
			t.Fatal("trace sequence numbers not dense")
		}
	}
	// Consumption order must match the read order.
	for i, c := range cons {
		if c.Block != mem.BlockAddr(i*64) {
			t.Fatalf("consumption %d block = %#x, want %#x", i, c.Block, i*64)
		}
	}
}

func TestAccessOutOfRangePanics(t *testing.T) {
	e := smallEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node should panic")
		}
	}()
	e.Access(mem.Access{Node: 99, Addr: 0, Type: mem.Read}, nil)
}

func TestClassificationString(t *testing.T) {
	classes := []Classification{Hit, PrivateMiss, Consumption, SpinMiss, WriteHit, WriteMiss}
	seen := map[string]bool{}
	for _, c := range classes {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("classification %d has empty/duplicate string", c)
		}
		seen[s] = true
	}
	if Classification(99).String() == "" {
		t.Fatal("unknown classification should have a string")
	}
}
