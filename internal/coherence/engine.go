// Package coherence implements the functional cache-coherence engine that
// converts raw workload accesses into the classified event stream the rest
// of the repository consumes. It models, per node, a private cache (finite,
// Table 1's 8 MB L2 by default, or infinite for correlation studies) and a
// full-map directory; every access is classified as a hit, a private (cold/
// capacity) miss, a coherent read miss ("consumption"), or a write, and the
// corresponding trace events are emitted in global order.
//
// This corresponds to the paper's trace-driven methodology: traces collected
// with in-order execution and no memory-system stalls (Section 4), which is
// exactly a functional simulation.
package coherence

import (
	"fmt"

	"tsm/internal/cache"
	"tsm/internal/directory"
	"tsm/internal/mem"
	"tsm/internal/trace"
)

// Classification is the outcome of one access.
type Classification uint8

const (
	// Hit means the access was satisfied by the node's private cache.
	Hit Classification = iota
	// PrivateMiss is a read miss with no coherence involvement (cold or
	// capacity miss to data last written by this node or never written).
	PrivateMiss
	// Consumption is a coherent read miss that is not a spin: the unit of
	// measurement throughout the paper.
	Consumption
	// SpinMiss is a coherent read miss that is part of a lock/barrier
	// spin and therefore excluded from consumptions.
	SpinMiss
	// WriteHit is a store that hit a locally writable copy.
	WriteHit
	// WriteMiss is a store that required obtaining ownership.
	WriteMiss
)

// String implements fmt.Stringer.
func (c Classification) String() string {
	switch c {
	case Hit:
		return "hit"
	case PrivateMiss:
		return "private-miss"
	case Consumption:
		return "consumption"
	case SpinMiss:
		return "spin-miss"
	case WriteHit:
		return "write-hit"
	case WriteMiss:
		return "write-miss"
	default:
		return fmt.Sprintf("Classification(%d)", uint8(c))
	}
}

// Config parameterises the engine.
type Config struct {
	// Nodes is the number of nodes.
	Nodes int
	// Geometry is the block geometry.
	Geometry mem.Geometry
	// CacheConfig describes each node's private cache. A zero SizeBytes
	// selects an infinite cache (misses are then cold or coherence misses
	// only), which matches the paper's observation that coherence misses
	// dominate as caches grow.
	CacheConfig cache.Config
	// PointersPerEntry is forwarded to the directory (CMOB pointers).
	PointersPerEntry int
}

// DefaultConfig returns a 16-node engine with Table 1's 8 MB 8-way L2 as the
// private cache.
func DefaultConfig() Config {
	return Config{
		Nodes:    16,
		Geometry: mem.DefaultGeometry(),
		CacheConfig: cache.Config{
			Name: "L2", SizeBytes: 8 << 20, Ways: 8, BlockSize: mem.DefaultBlockSize,
		},
		PointersPerEntry: 2,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > 64 {
		return fmt.Errorf("coherence: node count %d out of range [1,64]", c.Nodes)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.CacheConfig.SizeBytes != 0 {
		if err := c.CacheConfig.Validate(); err != nil {
			return err
		}
		if c.CacheConfig.BlockSize != c.Geometry.BlockSize {
			return fmt.Errorf("coherence: cache block size %d != geometry block size %d",
				c.CacheConfig.BlockSize, c.Geometry.BlockSize)
		}
	}
	return nil
}

// nodeCache abstracts the finite and infinite private cache variants.
type nodeCache interface {
	access(b mem.BlockAddr, write bool) bool
	fill(b mem.BlockAddr, st cache.LineState) (victim cache.Victim)
	invalidate(b mem.BlockAddr) (present, dirty bool)
	downgrade(b mem.BlockAddr) bool
	present(b mem.BlockAddr) bool
}

type finiteCache struct{ c *cache.Cache }

func (f finiteCache) access(b mem.BlockAddr, write bool) bool { return f.c.Access(b, write) }
func (f finiteCache) fill(b mem.BlockAddr, st cache.LineState) cache.Victim {
	return f.c.Fill(b, st)
}
func (f finiteCache) invalidate(b mem.BlockAddr) (bool, bool) { return f.c.Invalidate(b) }
func (f finiteCache) downgrade(b mem.BlockAddr) bool          { return f.c.Downgrade(b) }
func (f finiteCache) present(b mem.BlockAddr) bool {
	_, ok := f.c.Lookup(b)
	return ok
}

type infiniteCache struct {
	lines map[mem.BlockAddr]cache.LineState
}

func newInfiniteCache() *infiniteCache {
	return &infiniteCache{lines: make(map[mem.BlockAddr]cache.LineState)}
}

func (i *infiniteCache) access(b mem.BlockAddr, write bool) bool {
	st, ok := i.lines[b]
	if !ok || st == cache.Invalid {
		return false
	}
	if write {
		i.lines[b] = cache.Modified
	}
	return true
}

func (i *infiniteCache) fill(b mem.BlockAddr, st cache.LineState) cache.Victim {
	if cur, ok := i.lines[b]; ok && cur == cache.Modified {
		st = cache.Modified
	}
	i.lines[b] = st
	return cache.Victim{}
}

func (i *infiniteCache) invalidate(b mem.BlockAddr) (bool, bool) {
	st, ok := i.lines[b]
	if !ok || st == cache.Invalid {
		return false, false
	}
	delete(i.lines, b)
	return true, st == cache.Modified
}

func (i *infiniteCache) downgrade(b mem.BlockAddr) bool {
	if i.lines[b] == cache.Modified {
		i.lines[b] = cache.Shared
		return true
	}
	return false
}

func (i *infiniteCache) present(b mem.BlockAddr) bool {
	st, ok := i.lines[b]
	return ok && st != cache.Invalid
}

// Stats accumulates per-engine counters.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	PrivateMisses uint64
	Consumptions  uint64
	SpinMisses    uint64
	WriteHits     uint64
	WriteMisses   uint64
	Invalidations uint64
}

// Engine is the functional coherence engine.
type Engine struct {
	cfg    Config
	dir    *directory.Directory
	caches []nodeCache
	stats  Stats
}

// New builds an engine. It panics on an invalid configuration.
func New(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	dir := directory.New(directory.Config{
		Nodes:            cfg.Nodes,
		Geometry:         cfg.Geometry,
		PointersPerEntry: cfg.PointersPerEntry,
	})
	caches := make([]nodeCache, cfg.Nodes)
	for i := range caches {
		if cfg.CacheConfig.SizeBytes == 0 {
			caches[i] = newInfiniteCache()
		} else {
			cc := cfg.CacheConfig
			cc.Name = fmt.Sprintf("%s[%d]", cc.Name, i)
			caches[i] = finiteCache{c: cache.New(cc)}
		}
	}
	return &Engine{cfg: cfg, dir: dir, caches: caches}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Directory exposes the directory (the TSE records CMOB pointers in it).
func (e *Engine) Directory() *directory.Directory { return e.dir }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Result describes the classification of one access.
type Result struct {
	Class    Classification
	Block    mem.BlockAddr
	Producer mem.NodeID
	// Invalidated lists nodes whose copies a write invalidated.
	Invalidated []mem.NodeID
}

// Access processes one access, updates the caches and directory, appends the
// corresponding events to tr (if non-nil), and returns the classification.
func (e *Engine) Access(a mem.Access, tr *trace.Trace) Result {
	if tr == nil {
		return e.AccessEmit(a, nil)
	}
	return e.AccessEmit(a, tr.Append)
}

// AccessEmit is Access with a streaming event consumer: instead of appending
// to an in-memory trace, the classified events (with zero Seq — sequence
// numbers are the caller's to assign, see RunStream) are handed to emit as
// they are produced. A nil emit classifies without recording.
func (e *Engine) AccessEmit(a mem.Access, emit func(trace.Event)) Result {
	if int(a.Node) < 0 || int(a.Node) >= e.cfg.Nodes {
		panic(fmt.Sprintf("coherence: access from node %d outside [0,%d)", a.Node, e.cfg.Nodes))
	}
	e.stats.Accesses++
	b := e.cfg.Geometry.BlockOf(a.Addr)
	c := e.caches[a.Node]
	write := a.Type == mem.Write || a.Type == mem.AtomicRMW

	if write {
		return e.write(a, b, c, emit)
	}
	return e.read(a, b, c, emit)
}

func (e *Engine) read(a mem.Access, b mem.BlockAddr, c nodeCache, emit func(trace.Event)) Result {
	if c.access(b, false) {
		e.stats.Hits++
		return Result{Class: Hit, Block: b}
	}
	rd := e.dir.Read(a.Node, b)
	// Fill the local cache; the previous owner (if any) downgrades.
	if rd.Owner != mem.InvalidNode && rd.Owner != a.Node {
		e.caches[rd.Owner].downgrade(b)
	}
	if v := c.fill(b, cache.Shared); v.Valid {
		e.dir.Evict(a.Node, v.Block, v.Dirty)
	}
	if !rd.Coherent {
		e.stats.PrivateMisses++
		if emit != nil {
			emit(trace.Event{Kind: trace.KindReadMiss, Node: a.Node, Block: b, Producer: mem.InvalidNode})
		}
		return Result{Class: PrivateMiss, Block: b, Producer: rd.Producer}
	}
	if a.Spin {
		e.stats.SpinMisses++
		return Result{Class: SpinMiss, Block: b, Producer: rd.Producer}
	}
	e.stats.Consumptions++
	if emit != nil {
		emit(trace.Event{Kind: trace.KindConsumption, Node: a.Node, Block: b, Producer: rd.Producer})
	}
	return Result{Class: Consumption, Block: b, Producer: rd.Producer}
}

func (e *Engine) write(a mem.Access, b mem.BlockAddr, c nodeCache, emit func(trace.Event)) Result {
	// A write hit requires a locally modified copy; a hit on a shared copy
	// is an upgrade, which still visits the directory.
	hadModified := false
	if c.present(b) {
		// Probe without disturbing state: access() would upgrade the line
		// before the directory grants ownership, so check via directory.
		entry := e.dir.Lookup(b)
		hadModified = entry != nil && entry.State == directory.Modified && entry.Owner == a.Node
	}
	if hadModified {
		c.access(b, true)
		e.stats.WriteHits++
		if emit != nil {
			emit(trace.Event{Kind: trace.KindWrite, Node: a.Node, Block: b, Producer: mem.InvalidNode})
		}
		return Result{Class: WriteHit, Block: b}
	}
	wr := e.dir.Write(a.Node, b)
	for _, victim := range wr.Invalidated {
		e.caches[victim].invalidate(b)
	}
	e.stats.Invalidations += uint64(len(wr.Invalidated))
	if v := c.fill(b, cache.Modified); v.Valid {
		e.dir.Evict(a.Node, v.Block, v.Dirty)
	}
	e.stats.WriteMisses++
	if emit != nil {
		emit(trace.Event{Kind: trace.KindWrite, Node: a.Node, Block: b, Producer: mem.InvalidNode})
	}
	return Result{Class: WriteMiss, Block: b, Invalidated: wr.Invalidated}
}

// AccessSource pushes a globally ordered access stream to a yield callback,
// one access at a time. A non-nil error from yield must abort the push
// promptly and be returned unchanged. workload.Generator.Emit satisfies this
// shape directly, so a generator streams into the engine with no intermediate
// slice: eng.RunSource(gen.Emit, sink).
type AccessSource func(yield func(mem.Access) error) error

// SliceAccesses adapts a materialized access slice to an AccessSource.
func SliceAccesses(accesses []mem.Access) AccessSource {
	return func(yield func(mem.Access) error) error {
		for _, a := range accesses {
			if err := yield(a); err != nil {
				return err
			}
		}
		return nil
	}
}

// RunSource processes an access source, emitting classified events (with
// dense sequence numbers assigned in emission order) to emit as they are
// produced. This is the engine's primary entry point: generation, coherence
// classification and the caller's sink compose one access at a time, so the
// whole generate→classify→encode pipeline runs in memory bounded by the
// source's own state, never the trace length. A non-nil error from emit
// aborts the run immediately — a dead sink (full disk, closed pipe) must not
// cost the rest of the generation — and is returned; an error from the
// source itself is returned as-is.
func (e *Engine) RunSource(src AccessSource, emit func(trace.Event) error) error {
	var seq uint64
	var emitErr error
	numbered := func(ev trace.Event) {
		if emitErr != nil {
			return
		}
		ev.Seq = seq
		seq++
		emitErr = emit(ev)
	}
	err := src(func(a mem.Access) error {
		e.AccessEmit(a, numbered)
		return emitErr
	})
	if emitErr != nil {
		return emitErr
	}
	return err
}

// RunStream is RunSource over a materialized access slice.
func (e *Engine) RunStream(accesses []mem.Access, emit func(trace.Event) error) error {
	return e.RunSource(SliceAccesses(accesses), emit)
}

// RunFrom processes an access source and materializes the classified trace.
func (e *Engine) RunFrom(src AccessSource) (*trace.Trace, error) {
	tr := &trace.Trace{}
	err := e.RunSource(src, func(ev trace.Event) error {
		tr.Events = append(tr.Events, ev)
		return nil
	})
	return tr, err
}

// Run processes a whole access stream, returning the generated trace.
func (e *Engine) Run(accesses []mem.Access) *trace.Trace {
	// The sink never fails, so neither does the run.
	tr, _ := e.RunFrom(SliceAccesses(accesses))
	return tr
}
