package prefetch

import (
	"testing"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

func cons(node int, block int) trace.Event {
	return trace.Event{Kind: trace.KindConsumption, Node: mem.NodeID(node), Block: mem.BlockAddr(block * 64)}
}

func write(node int, block int) trace.Event {
	return trace.Event{Kind: trace.KindWrite, Node: mem.NodeID(node), Block: mem.BlockAddr(block * 64)}
}

func strideCfg(nodes int) StrideConfig {
	cfg := DefaultStrideConfig()
	cfg.Nodes = nodes
	return cfg
}

func TestStrideCoversStridedStream(t *testing.T) {
	s := NewStride(strideCfg(1))
	covered := 0
	// Unit-stride consumption stream: after the stride is confirmed on the
	// third access, subsequent consumptions should hit.
	for i := 0; i < 64; i++ {
		if s.Consumption(cons(0, i)) {
			covered++
		}
	}
	if covered < 55 {
		t.Fatalf("covered %d of 64 unit-stride consumptions, want most", covered)
	}
	fetched, discards := s.Finish()
	if fetched == 0 {
		t.Fatal("stride prefetcher should have fetched blocks")
	}
	if discards > fetched {
		t.Fatal("discards cannot exceed fetches")
	}
}

func TestStrideLargeStride(t *testing.T) {
	s := NewStride(strideCfg(1))
	covered := 0
	for i := 0; i < 64; i++ {
		if s.Consumption(cons(0, i*7)) { // stride of 7 blocks
			covered++
		}
	}
	if covered < 55 {
		t.Fatalf("covered %d of 64 with stride 7, want most", covered)
	}
}

func TestStrideRarelyFiresOnIrregular(t *testing.T) {
	s := NewStride(strideCfg(1))
	// A pointer-chasing-like irregular sequence (no repeated stride).
	seq := []int{5, 90, 17, 300, 41, 1000, 8, 77, 512, 3, 220, 19}
	covered := 0
	for _, b := range seq {
		if s.Consumption(cons(0, b)) {
			covered++
		}
	}
	fetched, _ := s.Finish()
	if covered != 0 {
		t.Fatalf("irregular sequence covered %d, want 0", covered)
	}
	if fetched != 0 {
		t.Fatalf("irregular sequence fetched %d blocks, want 0 (stride never confirmed)", fetched)
	}
}

func TestStrideWriteInvalidates(t *testing.T) {
	s := NewStride(strideCfg(1))
	for i := 0; i < 10; i++ {
		s.Consumption(cons(0, i))
	}
	// Block 10 should currently be prefetched; a write drops it.
	s.Write(write(1, 10))
	if s.Consumption(cons(0, 10)) {
		t.Fatal("written block must not be covered")
	}
}

func TestStridePerNodeIsolation(t *testing.T) {
	s := NewStride(strideCfg(2))
	// Node 0 trains a unit stride; node 1 must not benefit.
	for i := 0; i < 16; i++ {
		s.Consumption(cons(0, i))
	}
	if s.Consumption(cons(1, 16)) {
		t.Fatal("node 1 should not hit on node 0's prefetches")
	}
}

func TestStrideOutOfRangeNodeDoesNotPanic(t *testing.T) {
	s := NewStride(strideCfg(1))
	// Events from unexpected node ids are folded onto node 0 rather than
	// panicking; the comparison harness guards ranges upstream.
	s.Consumption(cons(5, 1))
	s.Consumption(cons(5, 2))
}

func TestStrideName(t *testing.T) {
	if NewStride(strideCfg(1)).Name() != "Stride" {
		t.Fatal("unexpected name")
	}
}

func TestStrideDefaults(t *testing.T) {
	s := NewStride(StrideConfig{})
	// Zero-value config should be usable (single node, default degree).
	for i := 0; i < 20; i++ {
		s.Consumption(cons(0, i))
	}
	f, _ := s.Finish()
	if f == 0 {
		t.Fatal("default-config stride prefetcher should fetch on a unit stride")
	}
}
