package prefetch

import (
	"tsm/internal/mem"
	"tsm/internal/trace"
)

// StrideConfig parameterises the stride stream-buffer prefetcher.
type StrideConfig struct {
	// Nodes is the number of nodes.
	Nodes int
	// Geometry supplies the block size.
	Geometry mem.Geometry
	// Degree is the number of blocks prefetched ahead once a stride is
	// confirmed (eight in the paper's comparison).
	Degree int
	// BufferEntries is the per-node prefetch buffer capacity.
	BufferEntries int
}

// DefaultStrideConfig returns the Figure 12 configuration for 16 nodes.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{
		Nodes:         16,
		Geometry:      mem.DefaultGeometry(),
		Degree:        PrefetchDegree,
		BufferEntries: BufferEntries,
	}
}

// strideNode is the per-node adaptive stride detector.
type strideNode struct {
	*perNode
	lastBlock  mem.BlockAddr
	lastStride int64
	haveLast   bool
	confirmed  bool
}

// Stride is the stride-based stream-buffer baseline.
type Stride struct {
	cfg   StrideConfig
	nodes []*strideNode
}

// NewStride builds the stride prefetcher model.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Degree <= 0 {
		cfg.Degree = PrefetchDegree
	}
	s := &Stride{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &strideNode{perNode: newPerNode(cfg.BufferEntries)})
	}
	return s
}

// Name implements Model.
func (s *Stride) Name() string { return "Stride" }

// Consumption implements Model: it probes the buffer, then trains the stride
// detector and issues prefetches when two consecutive consumptions share the
// same non-zero stride.
func (s *Stride) Consumption(e trace.Event) bool {
	n := s.node(e.Node)
	hit := n.lookup(e.Block)

	if n.haveLast {
		stride := int64(e.Block) - int64(n.lastBlock)
		if stride != 0 && stride == n.lastStride {
			n.confirmed = true
			for i := 1; i <= s.cfg.Degree; i++ {
				next := int64(e.Block) + stride*int64(i)
				if next < 0 {
					break
				}
				n.insert(mem.BlockAddr(next))
			}
		} else {
			n.confirmed = false
		}
		n.lastStride = stride
	}
	n.lastBlock = e.Block
	n.haveLast = true
	return hit
}

// Write implements Model.
func (s *Stride) Write(e trace.Event) {
	for _, n := range s.nodes {
		n.buffer.Invalidate(e.Block)
	}
}

// Finish implements Model.
func (s *Stride) Finish() (fetched, discards uint64) {
	for _, n := range s.nodes {
		f, d := n.finish()
		fetched += f
		discards += d
	}
	return fetched, discards
}

func (s *Stride) node(id mem.NodeID) *strideNode {
	if int(id) < 0 || int(id) >= len(s.nodes) {
		return s.nodes[0]
	}
	return s.nodes[id]
}
