// Package prefetch implements the baseline prefetchers the paper compares
// TSE against in Figure 12:
//
//   - a stride-based stream buffer in the style of predictor-directed stream
//     buffers [Sherwood et al.], as found in commercial processors: an
//     adaptive stride detector that prefetches eight blocks ahead once two
//     consecutive consumptions are separated by the same stride;
//   - the Global History Buffer prefetcher [Nesbit & Smith], with both
//     global/address-correlating (G/AC) and global/distance-correlating
//     (G/DC) index methods, a 512-entry history buffer and eight blocks
//     fetched per prefetch operation.
//
// As in the paper's comparison, the prefetchers train and predict only on
// consumptions, and prefetched blocks are stored in a small buffer identical
// to TSE's SVB rather than in the cache hierarchy. All baselines keep their
// history local to one node — the contrast with TSE, which locates streams
// at the most recent consumer anywhere in the system.
package prefetch

import (
	"tsm/internal/mem"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// Model is the evaluation interface shared by all baseline prefetchers (and
// satisfied, via internal/analysis adapters, by TSE): models observe the
// globally ordered consumption/write stream and report which consumptions
// their prefetch buffer covered.
type Model interface {
	// Name identifies the model in comparison tables.
	Name() string
	// Consumption observes a consumption event and reports whether the
	// model's prefetch buffer already held the block.
	Consumption(e trace.Event) bool
	// Write observes a write event (prefetched copies must be dropped).
	Write(e trace.Event)
	// Finish flushes internal state and returns the total number of
	// blocks fetched and the number of those that were never used.
	Finish() (fetched, discards uint64)
}

// BufferEntries is the capacity of the per-node prefetch buffer, matching
// the paper's 32-entry SVB.
const BufferEntries = 32

// PrefetchDegree is the number of blocks fetched per prefetch operation for
// the baseline prefetchers (eight in the paper's comparison).
const PrefetchDegree = 8

// perNode bundles the prefetch buffer and fetch accounting shared by every
// baseline prefetcher.
type perNode struct {
	buffer  *tse.SVB
	fetched uint64
}

func newPerNode(bufferEntries int) *perNode {
	return &perNode{buffer: tse.NewSVB(bufferEntries)}
}

// lookup probes the buffer and removes the block on a hit.
func (p *perNode) lookup(b mem.BlockAddr) bool {
	_, ok := p.buffer.Hit(b)
	return ok
}

// insert places a prefetched block in the buffer.
func (p *perNode) insert(b mem.BlockAddr) {
	if p.buffer.Contains(b) {
		return
	}
	p.buffer.Insert(b, 0)
	p.fetched++
}

// finish flushes the buffer and returns fetch/discard totals.
func (p *perNode) finish() (fetched, discards uint64) {
	p.buffer.Flush()
	return p.fetched, p.buffer.Stats().Discards
}
