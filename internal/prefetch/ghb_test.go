package prefetch

import (
	"testing"
)

func ghbCfg(method GHBIndexMethod, nodes int) GHBConfig {
	cfg := DefaultGHBConfig(method)
	cfg.Nodes = nodes
	return cfg
}

// repeatSequence replays an irregular but repetitive consumption sequence at
// one node; address correlation should capture it on the second pass.
func repeatSequence(t *testing.T, g *GHB, seq []int, passes int) (covered, total int) {
	t.Helper()
	for p := 0; p < passes; p++ {
		for _, b := range seq {
			total++
			if g.Consumption(cons(0, b)) {
				covered++
			}
		}
	}
	return covered, total
}

func TestGHBAddressCorrelationCoversRepeats(t *testing.T) {
	g := NewGHB(ghbCfg(GAC, 1))
	seq := []int{5, 90, 17, 300, 41, 1000, 8, 77, 512, 3, 220, 19, 55, 602, 31, 7}
	covered, _ := repeatSequence(t, g, seq, 3)
	// First pass cannot be covered; later passes mostly should be.
	if covered < len(seq) {
		t.Fatalf("G/AC covered %d, want at least one full pass (%d)", covered, len(seq))
	}
}

func TestGHBAddressCorrelationHistoryLimit(t *testing.T) {
	cfg := ghbCfg(GAC, 1)
	cfg.HistoryEntries = 32
	g := NewGHB(cfg)
	// A repeating sequence longer than the history buffer: by the time an
	// address recurs its previous occurrence has been overwritten, so
	// coverage stays near zero. This is the mechanism that makes GHB fall
	// short of TSE in Figure 12.
	seq := make([]int, 200)
	for i := range seq {
		seq[i] = (i * 37) % 1000
	}
	covered, _ := repeatSequence(t, g, seq, 3)
	if covered > 20 {
		t.Fatalf("G/AC with tiny history covered %d, want near zero", covered)
	}
}

func TestGHBDistanceCorrelationCoversStridedPattern(t *testing.T) {
	g := NewGHB(ghbCfg(GDC, 1))
	covered := 0
	total := 0
	// A repeating delta pattern (+1,+1,+5) — distance correlation should
	// learn it even though the absolute addresses never repeat.
	addr := 0
	deltas := []int{1, 1, 5}
	for i := 0; i < 300; i++ {
		addr += deltas[i%len(deltas)]
		total++
		if g.Consumption(cons(0, addr)) {
			covered++
		}
	}
	if covered < total/3 {
		t.Fatalf("G/DC covered %d of %d on a repeating delta pattern", covered, total)
	}
}

func TestGHBWriteInvalidates(t *testing.T) {
	g := NewGHB(ghbCfg(GAC, 1))
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8}
	repeatSequence(t, g, seq, 1)
	// Start the second pass: consuming 1 prefetches 2..8.
	g.Consumption(cons(0, 1))
	g.Write(write(1, 2))
	if g.Consumption(cons(0, 2)) {
		t.Fatal("written block must not be covered")
	}
}

func TestGHBPerNodeIsolation(t *testing.T) {
	g := NewGHB(ghbCfg(GAC, 2))
	seq := []int{9, 8, 7, 6, 5}
	repeatSequence(t, g, seq, 2)
	// Node 1 consuming the same sequence gets no benefit from node 0's
	// history — the key limitation TSE lifts.
	covered := 0
	for _, b := range seq {
		if g.Consumption(cons(1, b)) {
			covered++
		}
	}
	if covered != 0 {
		t.Fatalf("node 1 covered %d from node 0's history, want 0", covered)
	}
}

func TestGHBFinishAccounting(t *testing.T) {
	g := NewGHB(ghbCfg(GAC, 1))
	seq := []int{1, 2, 3, 4, 5}
	repeatSequence(t, g, seq, 2)
	fetched, discards := g.Finish()
	if fetched == 0 {
		t.Fatal("GHB should have fetched blocks on the repeat pass")
	}
	if discards > fetched {
		t.Fatal("discards cannot exceed fetches")
	}
}

func TestGHBNamesAndDefaults(t *testing.T) {
	if NewGHB(ghbCfg(GAC, 1)).Name() != "GHB G/AC" {
		t.Fatal("unexpected G/AC name")
	}
	if NewGHB(ghbCfg(GDC, 1)).Name() != "GHB G/DC" {
		t.Fatal("unexpected G/DC name")
	}
	if GAC.String() != "G/AC" || GDC.String() != "G/DC" {
		t.Fatal("unexpected method strings")
	}
	g := NewGHB(GHBConfig{})
	g.Consumption(cons(0, 1))
	g.Consumption(cons(3, 2)) // out-of-range node folds to node 0
	if _, d := g.Finish(); d > 0 {
		// nothing fetched yet, so no discards expected
		t.Fatal("unexpected discards from default config")
	}
}
