package prefetch

import (
	"tsm/internal/mem"
	"tsm/internal/trace"
)

// GHBIndexMethod selects how the Global History Buffer's index table keys
// its entries.
type GHBIndexMethod int

const (
	// GAC is global address correlation: the index table is keyed by miss
	// address, and the prefetch candidates are the addresses that followed
	// the previous occurrence of the same address.
	GAC GHBIndexMethod = iota
	// GDC is global distance (delta) correlation: the index table is keyed
	// by the delta between consecutive miss addresses, and the deltas that
	// followed the previous occurrence of the same delta are replayed from
	// the current address.
	GDC
)

// String implements fmt.Stringer.
func (m GHBIndexMethod) String() string {
	if m == GDC {
		return "G/DC"
	}
	return "G/AC"
}

// GHBConfig parameterises the Global History Buffer prefetcher.
type GHBConfig struct {
	// Nodes is the number of nodes.
	Nodes int
	// Geometry supplies the block size.
	Geometry mem.Geometry
	// Method selects address or distance correlation.
	Method GHBIndexMethod
	// HistoryEntries is the size of the on-chip circular history buffer
	// (512 in the paper's comparison — far smaller than a CMOB, which is
	// exactly why GHB coverage falls short).
	HistoryEntries int
	// Degree is the number of blocks fetched per prefetch operation.
	Degree int
	// BufferEntries is the per-node prefetch buffer capacity.
	BufferEntries int
}

// DefaultGHBConfig returns the Figure 12 configuration for 16 nodes.
func DefaultGHBConfig(method GHBIndexMethod) GHBConfig {
	return GHBConfig{
		Nodes:          16,
		Geometry:       mem.DefaultGeometry(),
		Method:         method,
		HistoryEntries: 512,
		Degree:         PrefetchDegree,
		BufferEntries:  BufferEntries,
	}
}

// ghbEntry is one history buffer entry. Link points at the absolute position
// of the previous entry with the same index key (or ^0 if none).
type ghbEntry struct {
	block mem.BlockAddr
	link  uint64
}

const noLink = ^uint64(0)

// ghbNode is the per-node GHB state.
type ghbNode struct {
	*perNode
	entries  []ghbEntry
	next     uint64 // absolute append position
	index    map[int64]uint64
	last     mem.BlockAddr
	haveLast bool
}

// GHB is the Global History Buffer baseline prefetcher.
type GHB struct {
	cfg   GHBConfig
	nodes []*ghbNode
}

// NewGHB builds a GHB model.
func NewGHB(cfg GHBConfig) *GHB {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.HistoryEntries <= 0 {
		cfg.HistoryEntries = 512
	}
	if cfg.Degree <= 0 {
		cfg.Degree = PrefetchDegree
	}
	g := &GHB{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		g.nodes = append(g.nodes, &ghbNode{
			perNode: newPerNode(cfg.BufferEntries),
			entries: make([]ghbEntry, cfg.HistoryEntries),
			index:   make(map[int64]uint64),
		})
	}
	return g
}

// Name implements Model.
func (g *GHB) Name() string { return "GHB " + g.cfg.Method.String() }

// Consumption implements Model.
func (g *GHB) Consumption(e trace.Event) bool {
	n := g.node(e.Node)
	hit := n.lookup(e.Block)

	key := g.key(n, e.Block)
	prev, havePrev := n.index[key]
	// Record the new entry, linking it to the previous entry with the same
	// key.
	link := noLink
	if havePrev && g.resident(n, prev) {
		link = prev
	}
	pos := n.next
	n.entries[pos%uint64(g.cfg.HistoryEntries)] = ghbEntry{block: e.Block, link: link}
	n.next++
	n.index[key] = pos

	// Issue prefetches from the previous occurrence, if it is still in the
	// history window.
	if havePrev && g.resident(n, prev) {
		g.prefetchFrom(n, prev, e.Block)
	}

	n.last = e.Block
	n.haveLast = true
	return hit
}

// key computes the index-table key for the current miss.
func (g *GHB) key(n *ghbNode, b mem.BlockAddr) int64 {
	if g.cfg.Method == GDC {
		if !n.haveLast {
			return int64(^uint64(0) >> 1) // sentinel delta for the first miss
		}
		return int64(b) - int64(n.last)
	}
	return int64(b)
}

// resident reports whether an absolute history position is still within the
// circular buffer window.
func (g *GHB) resident(n *ghbNode, pos uint64) bool {
	if pos >= n.next {
		return false
	}
	return n.next-pos <= uint64(g.cfg.HistoryEntries)
}

// at returns the entry at an absolute position.
func (g *GHB) at(n *ghbNode, pos uint64) ghbEntry {
	return n.entries[pos%uint64(g.cfg.HistoryEntries)]
}

// prefetchFrom walks forward in the history from the previous occurrence of
// the key and issues up to Degree prefetches.
func (g *GHB) prefetchFrom(n *ghbNode, prev uint64, current mem.BlockAddr) {
	switch g.cfg.Method {
	case GAC:
		// Prefetch the addresses that followed the previous occurrence.
		for i := uint64(1); i <= uint64(g.cfg.Degree); i++ {
			pos := prev + i
			if !g.resident(n, pos) || pos >= n.next {
				break
			}
			n.insert(g.at(n, pos).block)
		}
	case GDC:
		// Replay the deltas that followed the previous occurrence, applied
		// cumulatively from the current address.
		addr := int64(current)
		for i := uint64(1); i <= uint64(g.cfg.Degree); i++ {
			pos := prev + i
			if !g.resident(n, pos) || pos >= n.next {
				break
			}
			prevBlock := g.at(n, pos-1).block
			delta := int64(g.at(n, pos).block) - int64(prevBlock)
			addr += delta
			if addr < 0 {
				break
			}
			n.insert(mem.BlockAddr(addr))
		}
	}
}

// Write implements Model.
func (g *GHB) Write(e trace.Event) {
	for _, n := range g.nodes {
		n.buffer.Invalidate(e.Block)
	}
}

// Finish implements Model.
func (g *GHB) Finish() (fetched, discards uint64) {
	for _, n := range g.nodes {
		f, d := n.finish()
		fetched += f
		discards += d
	}
	return fetched, discards
}

func (g *GHB) node(id mem.NodeID) *ghbNode {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return g.nodes[0]
	}
	return g.nodes[id]
}
