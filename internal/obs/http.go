package obs

// The debug HTTP endpoint: net/http/pprof plus a live metrics snapshot,
// served for the duration of a run behind the CLIs' -pprof flag. This is the
// seed of a future `tsesim serve` mode — the handler set is already the one
// such a server would mount.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug listens on addr and serves the standard pprof handlers under
// /debug/pprof/ plus GET /metrics returning a JSON snapshot of reg (an empty
// snapshot when reg is nil); /metrics?format=prom returns the same state in
// the Prometheus text exposition format 0.0.4 instead, so a stock Prometheus
// can scrape a long run directly. The listen happens synchronously — a bad
// address fails here, not in a background goroutine — and the returned
// shutdown function stops the server. bound is the actual listen address
// (useful with ":0").
func ServeDebug(addr string, reg *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
