package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestServeDebug: the debug endpoint serves a live registry snapshot at
// /metrics and the pprof index, and shuts down cleanly.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events_decoded").Add(42)
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["pipeline.events_decoded"] != 42 {
		t.Fatalf("/metrics snapshot = %+v", snap)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestServeDebugProm: /metrics?format=prom serves the Prometheus text
// exposition with the 0.0.4 content type.
func TestServeDebugProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events_decoded").Add(7)
	r.Counter("pipeline.consumer.LA=8.events").Add(3)
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=prom status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	out := string(body)
	if !strings.Contains(out, "tsm_pipeline_events_decoded 7\n") {
		t.Fatalf("exposition missing counter:\n%s", out)
	}
	if !strings.Contains(out, `tsm_pipeline_consumer_events{consumer="LA=8"} 3`) {
		t.Fatalf("exposition missing labelled series:\n%s", out)
	}
}

// TestServeDebugBadAddr: a bad listen address fails synchronously.
func TestServeDebugBadAddr(t *testing.T) {
	if _, _, err := ServeDebug("256.256.256.256:99999", nil); err == nil {
		t.Fatal("bad address did not error")
	}
}

// TestServeDebugConcurrent hammers both /metrics formats while writer
// goroutines update the registry — the snapshot path must be race-free
// (meaningful under -race) and every response must parse.
func TestServeDebugConcurrent(t *testing.T) {
	r := NewRegistry()
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hot")
			h := r.Histogram("lat")
			for i := 0; !stop.Load(); i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		url := "http://" + addr + "/metrics"
		if i%2 == 1 {
			url += "?format=prom"
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d", i, resp.StatusCode)
		}
		if i%2 == 0 {
			var snap Snapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatalf("request %d: invalid JSON under load: %v", i, err)
			}
		} else if !strings.Contains(string(body), "# TYPE") {
			t.Fatalf("request %d: prom exposition empty under load:\n%s", i, body)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestServeDebugShutdownInFlight: shutting the server down while requests
// are in flight must not hang or panic; requests racing the close either
// complete or fail cleanly, and the listener is released.
func TestServeDebugShutdownInFlight(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				resp, err := http.Get("http://" + addr + "/metrics?format=prom")
				if err != nil {
					return // connection refused/reset after close: fine
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(start)
	shutdown()
	wg.Wait()

	// The port is free again: a second server can bind it.
	_, shutdown2, err := ServeDebug(addr, nil)
	if err != nil {
		t.Fatalf("rebinding %s after shutdown: %v", addr, err)
	}
	shutdown2()
}
