package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestServeDebug: the debug endpoint serves a live registry snapshot at
// /metrics and the pprof index, and shuts down cleanly.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events_decoded").Add(42)
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["pipeline.events_decoded"] != 42 {
		t.Fatalf("/metrics snapshot = %+v", snap)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestServeDebugBadAddr: a bad listen address fails synchronously.
func TestServeDebugBadAddr(t *testing.T) {
	if _, _, err := ServeDebug("256.256.256.256:99999", nil); err == nil {
		t.Fatal("bad address did not error")
	}
}
