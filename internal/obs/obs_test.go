package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestCounterGaugeBasics pins the elementary metric semantics.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not lookup-or-create: second handle differs")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d, want 9", got)
	}
}

// TestHistogramBucketEdges pins the log-bucket boundaries: bucket 0 holds
// exactly 0, bucket i holds [2^(i-1), 2^i-1], and the top bucket absorbs
// MaxUint64.
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v  uint64
		le uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{7, 7},
		{8, 15},
		{1 << 20, 1<<21 - 1},
		{1<<21 - 1, 1<<21 - 1},
		{1 << 63, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		s := h.snapshot()
		if s.Count != 1 || s.Sum != tc.v {
			t.Fatalf("Observe(%d): count=%d sum=%d", tc.v, s.Count, s.Sum)
		}
		if len(s.Buckets) != 1 || s.Buckets[0].Le != tc.le || s.Buckets[0].N != 1 {
			t.Fatalf("Observe(%d): buckets=%+v, want one bucket le=%d", tc.v, s.Buckets, tc.le)
		}
	}
}

// TestHistogramMean covers the aggregate fields over several observations.
func TestHistogramMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 16 {
		t.Fatalf("count=%d sum=%d, want 4/16", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 4 {
		t.Fatalf("mean=%g, want 4", got)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
}

// TestSnapshotDeterminism: registering the same metrics in different orders
// and snapshotting twice must produce byte-identical JSON.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("count." + name).Add(uint64(len(name)))
			r.Gauge("gauge." + name).Set(int64(len(name)))
			r.Histogram("hist." + name).Observe(uint64(len(name)))
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})

	marshal := func(r *Registry) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ja, jb := marshal(a), marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots of equal state differ:\n%s\n--\n%s", ja, jb)
	}
	if !bytes.Equal(marshal(a), ja) {
		t.Fatal("re-snapshotting unchanged state changed the bytes")
	}

	var decoded Snapshot
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if decoded.Counters["count.alpha"] != 5 {
		t.Fatalf("count.alpha = %d, want 5", decoded.Counters["count.alpha"])
	}
	if decoded.Histograms["hist.beta"].Count != 1 {
		t.Fatalf("hist.beta count = %d, want 1", decoded.Histograms["hist.beta"].Count)
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race in CI. The final counter and
// histogram totals are exact because the operations are atomic.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("peak")
			h := r.Histogram("values")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["peak"]; got != workers*perWorker-1 {
		t.Fatalf("peak gauge = %d, want %d", got, workers*perWorker-1)
	}
	if got := s.Histograms["values"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRegistryIsNoop: the nil registry and its nil handles are safe and
// inert, and snapshots of it are valid (empty) JSON.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(5)
	g.Add(1)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(123)
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("nil registry snapshot is not JSON: %v", err)
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

// TestNopAllocs pins the no-op default to zero allocations: every metric
// operation on nil handles, and Begin on the nil tracer, must not allocate.
// This is the property that lets the pipeline instrument unconditionally —
// the disabled path costs a nil check, not garbage.
func TestNopAllocs(t *testing.T) {
	var r *Registry
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c := r.Counter("c")
		c.Inc()
		c.Add(3)
		g := r.Gauge("g")
		g.Set(1)
		g.SetMax(2)
		h := r.Histogram("h")
		h.Observe(7)
		sp := tr.Begin("x", "y", 0)
		sp.End()
		var p *Progress
		p.Stop()
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation allocates %v B-ish allocs/op, want 0", allocs)
	}
}

// BenchmarkNop is the CI-visible form of TestNopAllocs: the disabled
// instrumentation path at 0 B/op, 0 allocs/op.
func BenchmarkNop(b *testing.B) {
	b.ReportAllocs()
	var r *Registry
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		c := r.Counter("c")
		c.Inc()
		r.Gauge("g").SetMax(int64(i))
		r.Histogram("h").Observe(uint64(i))
		tr.Begin("x", "y", 0).End()
	}
}

// BenchmarkEnabled measures the enabled fast path (pre-resolved handles, as
// the pipeline uses them): one atomic op per call.
func BenchmarkEnabled(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(uint64(i))
	}
}
