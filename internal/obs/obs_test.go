package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestCounterGaugeBasics pins the elementary metric semantics.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not lookup-or-create: second handle differs")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d, want 9", got)
	}
}

// TestHistogramBucketEdges pins the log-bucket boundaries: bucket 0 holds
// exactly 0, bucket i holds [2^(i-1), 2^i-1], and the top bucket absorbs
// MaxUint64.
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v  uint64
		le uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{7, 7},
		{8, 15},
		{1 << 20, 1<<21 - 1},
		{1<<21 - 1, 1<<21 - 1},
		{1 << 63, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		s := h.snapshot()
		if s.Count != 1 || s.Sum != tc.v {
			t.Fatalf("Observe(%d): count=%d sum=%d", tc.v, s.Count, s.Sum)
		}
		if len(s.Buckets) != 1 || s.Buckets[0].Le != tc.le || s.Buckets[0].N != 1 {
			t.Fatalf("Observe(%d): buckets=%+v, want one bucket le=%d", tc.v, s.Buckets, tc.le)
		}
	}
}

// TestHistogramMean covers the aggregate fields over several observations.
func TestHistogramMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 16 {
		t.Fatalf("count=%d sum=%d, want 4/16", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 4 {
		t.Fatalf("mean=%g, want 4", got)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
}

// TestHistogramQuantiles pins the interpolated quantile estimates against
// hand-computed values on known bucket layouts.
func TestHistogramQuantiles(t *testing.T) {
	// All mass in the zero bucket: every quantile is 0.
	var h0 Histogram
	h0.Observe(0)
	h0.Observe(0)
	if s := h0.snapshot(); s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("zero-bucket quantiles = %+v", s)
	}

	// 10 observations in bucket le=7 (span [4,7]): q interpolates linearly
	// across the span — Quantile(0.5) lands at 4 + 3*0.5 = 5.5.
	var h1 Histogram
	for i := 0; i < 10; i++ {
		h1.Observe(5)
	}
	s1 := h1.snapshot()
	if got := s1.Quantile(0.5); got != 5.5 {
		t.Fatalf("single-bucket P50 = %g, want 5.5", got)
	}
	if got := s1.Quantile(0); got != 4 {
		t.Fatalf("Quantile(0) = %g, want bucket lower bound 4", got)
	}
	if got := s1.Quantile(1); got != 7 {
		t.Fatalf("Quantile(1) = %g, want bucket upper bound 7", got)
	}

	// Mass split across buckets: 90 in le=1, 10 in le=15 (span [8,15]).
	// Rank 50 stays in the first bucket; rank 99 is the 9th of 10 in the
	// second: 8 + 7*(9/10) = 14.3.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(9)
	}
	s2 := h2.snapshot()
	if s2.P50 < 0.5 || s2.P50 > 1 {
		t.Fatalf("two-bucket P50 = %g, want within le=1 bucket", s2.P50)
	}
	if got := s2.Quantile(0.99); got != 14.3 {
		t.Fatalf("two-bucket P99 = %g, want 14.3", got)
	}
	// Estimates never escape the true bucket's bounds.
	if s2.P99 < 8 || s2.P99 > 15 {
		t.Fatalf("P99 = %g escaped bucket [8,15]", s2.P99)
	}

	// Out-of-range q clamps; the empty snapshot is 0 everywhere.
	if got := s1.Quantile(-1); got != 4 {
		t.Fatalf("Quantile(-1) = %g, want clamp to 4", got)
	}
	if got := s1.Quantile(2); got != 7 {
		t.Fatalf("Quantile(2) = %g, want clamp to 7", got)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}

	// The JSON snapshot carries the quantiles.
	var buf bytes.Buffer
	r := NewRegistry()
	rh := r.Histogram("lat")
	for i := 0; i < 10; i++ {
		rh.Observe(5)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Histograms["lat"].P50; got != 5.5 {
		t.Fatalf("JSON p50 = %g, want 5.5", got)
	}
}

// TestSnapshotDeterminism: registering the same metrics in different orders
// and snapshotting twice must produce byte-identical JSON.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("count." + name).Add(uint64(len(name)))
			r.Gauge("gauge." + name).Set(int64(len(name)))
			r.Histogram("hist." + name).Observe(uint64(len(name)))
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})

	marshal := func(r *Registry) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ja, jb := marshal(a), marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots of equal state differ:\n%s\n--\n%s", ja, jb)
	}
	if !bytes.Equal(marshal(a), ja) {
		t.Fatal("re-snapshotting unchanged state changed the bytes")
	}

	var decoded Snapshot
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if decoded.Counters["count.alpha"] != 5 {
		t.Fatalf("count.alpha = %d, want 5", decoded.Counters["count.alpha"])
	}
	if decoded.Histograms["hist.beta"].Count != 1 {
		t.Fatalf("hist.beta count = %d, want 1", decoded.Histograms["hist.beta"].Count)
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race in CI. The final counter and
// histogram totals are exact because the operations are atomic.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("peak")
			h := r.Histogram("values")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["peak"]; got != workers*perWorker-1 {
		t.Fatalf("peak gauge = %d, want %d", got, workers*perWorker-1)
	}
	if got := s.Histograms["values"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRegistryIsNoop: the nil registry and its nil handles are safe and
// inert, and snapshots of it are valid (empty) JSON.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(5)
	g.Add(1)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(123)
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("nil registry snapshot is not JSON: %v", err)
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

// TestNopAllocs pins the no-op default to zero allocations: every metric
// operation on nil handles, and Begin on the nil tracer, must not allocate.
// This is the property that lets the pipeline instrument unconditionally —
// the disabled path costs a nil check, not garbage.
func TestNopAllocs(t *testing.T) {
	var r *Registry
	var tr *Tracer
	var ss *SeriesSet
	allocs := testing.AllocsPerRun(1000, func() {
		c := r.Counter("c")
		c.Inc()
		c.Add(3)
		g := r.Gauge("g")
		g.Set(1)
		g.SetMax(2)
		h := r.Histogram("h")
		h.Observe(7)
		sp := tr.Begin("x", "y", 0)
		sp.End()
		var p *Progress
		p.Stop()
		s := ss.Series("x")
		s.Ready(1, false)
		s.Record(1, nil)
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation allocates %v B-ish allocs/op, want 0", allocs)
	}
}

// BenchmarkNop is the CI-visible form of TestNopAllocs: the disabled
// instrumentation path at 0 B/op, 0 allocs/op.
func BenchmarkNop(b *testing.B) {
	b.ReportAllocs()
	var r *Registry
	var tr *Tracer
	var ss *SeriesSet
	for i := 0; i < b.N; i++ {
		c := r.Counter("c")
		c.Inc()
		r.Gauge("g").SetMax(int64(i))
		r.Histogram("h").Observe(uint64(i))
		tr.Begin("x", "y", 0).End()
		ss.Series("s").Ready(uint64(i), false)
	}
}

// BenchmarkEnabled measures the enabled fast path (pre-resolved handles, as
// the pipeline uses them): one atomic op per call.
func BenchmarkEnabled(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(uint64(i))
	}
}
