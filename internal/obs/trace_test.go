package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerSpans covers span recording, args, lanes and the chrome export
// structure end to end.
func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	tr.NameLane(0, "producer")
	tr.NameLane(1, "consumer LA=8")

	sp := tr.Begin("decode", "pipeline", 0)
	sp.Arg("events", 1024).Arg("source", "unit-test")
	time.Sleep(time.Millisecond)
	if sp.Elapsed() <= 0 {
		t.Fatal("Elapsed did not advance")
	}
	sp.End()
	tr.Record(Span{Name: "cell", Cat: "consumer", Lane: 1, Start: time.Millisecond, Dur: 2 * time.Millisecond})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "decode" || spans[0].Dur <= 0 {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if spans[0].Args["events"] != 1024 {
		t.Fatalf("span args = %v", spans[0].Args)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	// 2 lane metadata events + 2 spans.
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("chrome trace has %d events, want 4:\n%s", len(decoded.TraceEvents), buf.Bytes())
	}
	var metas, complete int
	for _, e := range decoded.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			complete++
			if e.Dur <= 0 {
				t.Fatalf("complete event with non-positive dur: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if metas != 2 || complete != 2 {
		t.Fatalf("metas=%d complete=%d, want 2/2", metas, complete)
	}
}

// TestTracerSpanLimit: spans over the limit are dropped, counted, and
// surfaced in the exported trace instead of growing without bound.
func TestTracerSpanLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetSpanLimit(3)
	for i := 0; i < 10; i++ {
		tr.Begin("s", "t", 0).End()
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	if got := tr.Dropped(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spans_dropped_over_limit") {
		t.Fatalf("exported trace does not mention dropped spans:\n%s", buf.Bytes())
	}
}

// TestTracerConcurrent exercises concurrent Begin/End under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Begin("s", "t", w).Arg("i", i).End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("recorded %d spans, want 1600", got)
	}
}

// TestNilTracerIsNoop: the nil tracer accepts the full API and exports a
// valid empty trace.
func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.NameLane(0, "x")
	tr.SetSpanLimit(10)
	sp := tr.Begin("a", "b", 0)
	sp.Arg("k", "v")
	if sp.Elapsed() != 0 {
		t.Fatal("nil span elapsed")
	}
	sp.End()
	tr.Record(Span{Name: "x"})
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("nil tracer chrome export invalid: %v", err)
	}
}

// TestProgress drives the meter with a fast interval and checks the lines
// and final summary reach the writer.
func TestProgress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	var buf syncBuffer
	p := StartProgress(ProgressConfig{
		W:        &buf,
		Label:    "unit",
		Events:   c,
		Interval: 5 * time.Millisecond,
		Fraction: func() float64 { return 0.5 },
	})
	c.Add(1000)
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "unit:") || !strings.Contains(out, "events/s") {
		t.Fatalf("progress output missing rate line:\n%s", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("progress output missing eta with known fraction:\n%s", out)
	}
	if !strings.Contains(out, "done, 1,000 events") {
		t.Fatalf("progress output missing final summary:\n%s", out)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the progress goroutine writes
// while the test reads).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGroupDigits pins the thousands-separator helper.
func TestGroupDigits(t *testing.T) {
	cases := map[uint64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for in, want := range cases {
		if got := groupDigits(in); got != want {
			t.Fatalf("groupDigits(%d) = %q, want %q", in, got, want)
		}
	}
}

// TestRatePerSec pins the division guard: a zero/negative elapsed or an
// astronomic rate must come out 0, never NaN/+Inf punched through uint64
// conversion (whose result is platform-defined).
func TestRatePerSec(t *testing.T) {
	cases := []struct {
		n       uint64
		elapsed time.Duration
		want    uint64
	}{
		{1000, time.Second, 1000},
		{1000, 2 * time.Second, 500},
		{1000, 0, 0},
		{1000, -time.Second, 0},
		{0, 0, 0},
		{^uint64(0), 1, 0}, // ~1.8e28 events/s overflows uint64: report 0, not garbage
	}
	for _, c := range cases {
		if got := ratePerSec(c.n, c.elapsed); got != c.want {
			t.Fatalf("ratePerSec(%d, %v) = %d, want %d", c.n, c.elapsed, got, c.want)
		}
	}
}

// TestProgressImmediateStop reproduces the divide-by-~zero summary: Stop
// immediately after Start used to compute total/elapsed with elapsed≈0,
// printing a nonsense rate (uint64(+Inf) is platform-defined). The summary
// must still print, with a sane (possibly zero) rate.
func TestProgressImmediateStop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(42)
	var buf syncBuffer
	p := StartProgress(ProgressConfig{W: &buf, Label: "flash", Events: c, Interval: time.Hour})
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "flash: done, 42 events in") {
		t.Fatalf("summary line missing:\n%s", out)
	}
	// The rate is whole digits with separators — never "NaN", "+Inf", or a
	// 20-digit conversion artifact like 9,223,372,036,854,775,808.
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") || strings.Contains(out, "9,223,372,036,854,775,808") {
		t.Fatalf("summary rate not guarded:\n%s", out)
	}
}
