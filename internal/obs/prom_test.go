package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromNames pins the dotted-name → family-name mapping and the consumer
// label collapse.
func TestPromNames(t *testing.T) {
	cases := []struct {
		name   string
		family string
		labels string
	}{
		{"pipeline.events_decoded", "tsm_pipeline_events_decoded", ""},
		{"pipeline.ring.occupancy_peak", "tsm_pipeline_ring_occupancy_peak", ""},
		{"pipeline.consumer.LA=8.stall_ns", "tsm_pipeline_consumer_stall_ns", `consumer="LA=8"`},
		{"pipeline.consumer.timing-tse.events", "tsm_pipeline_consumer_events", `consumer="timing-tse"`},
		// A consumer prefix without a field part falls back to plain mapping.
		{"pipeline.consumer.odd", "tsm_pipeline_consumer_odd", ""},
	}
	for _, tc := range cases {
		family, labels := promSplit(tc.name)
		if family != tc.family || labels != tc.labels {
			t.Fatalf("promSplit(%q) = %q, %q; want %q, %q", tc.name, family, labels, tc.family, tc.labels)
		}
	}
	if got := promEscape(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Fatalf("promEscape = %q", got)
	}
}

// TestPromExposition builds a registry spanning all three metric kinds and
// checks the exposition: TYPE lines, labelled consumer families, cumulative
// histogram buckets with +Inf, and determinism.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events_decoded").Add(42)
	r.Counter("pipeline.consumer.LA=8.events").Add(10)
	r.Counter("pipeline.consumer.LA=16.events").Add(20)
	r.Gauge("pipeline.ring.occupancy_peak").Set(3)
	h := r.Histogram("pipeline.chunk_wait_ns")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5) // bucket le=7
	h.Observe(6) // bucket le=7

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE tsm_pipeline_events_decoded counter\n",
		"tsm_pipeline_events_decoded 42\n",
		"# TYPE tsm_pipeline_consumer_events counter\n",
		`tsm_pipeline_consumer_events{consumer="LA=16"} 20` + "\n",
		`tsm_pipeline_consumer_events{consumer="LA=8"} 10` + "\n",
		"# TYPE tsm_pipeline_ring_occupancy_peak gauge\n",
		"tsm_pipeline_ring_occupancy_peak 3\n",
		"# TYPE tsm_pipeline_chunk_wait_ns histogram\n",
		`tsm_pipeline_chunk_wait_ns_bucket{le="0"} 1` + "\n",
		`tsm_pipeline_chunk_wait_ns_bucket{le="1"} 2` + "\n",
		`tsm_pipeline_chunk_wait_ns_bucket{le="7"} 4` + "\n",
		`tsm_pipeline_chunk_wait_ns_bucket{le="+Inf"} 4` + "\n",
		"tsm_pipeline_chunk_wait_ns_sum 12\n",
		"tsm_pipeline_chunk_wait_ns_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Labelled series of one family sort by label under a single TYPE line.
	i16 := strings.Index(out, `{consumer="LA=16"}`)
	i8 := strings.Index(out, `{consumer="LA=8"}`)
	if i16 < 0 || i8 < 0 || i16 > i8 {
		t.Fatalf("consumer series out of sorted order:\n%s", out)
	}
	if strings.Count(out, "# TYPE tsm_pipeline_consumer_events") != 1 {
		t.Fatalf("consumer family emitted more than one TYPE line:\n%s", out)
	}

	// Determinism: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two expositions of equal state differ")
	}
}

// TestPromNilRegistry: the nil registry writes an empty exposition.
func TestPromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition non-empty: %q", buf.String())
	}
}
