package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeriesReady pins the sampling contract: first sample always due,
// interval crossings due, repeats and back-steps never due, final flush due
// exactly once.
func TestSeriesReady(t *testing.T) {
	ss := NewSeriesSet()
	ss.SetInterval(100)
	s := ss.Series("cov")

	if !s.Ready(5, false) {
		t.Fatal("first sample not ready")
	}
	s.Record(5, map[string]float64{"v": 1})

	if s.Ready(50, false) {
		t.Fatal("mid-interval sample ready")
	}
	if !s.Ready(105, false) {
		t.Fatal("interval crossing not ready")
	}
	s.Record(105, map[string]float64{"v": 2})

	// The terminal flush at a new seq is due even mid-interval…
	if !s.Ready(110, true) {
		t.Fatal("final flush not ready")
	}
	s.Record(110, map[string]float64{"v": 3})
	// …but a second flush at the same seq (double terminal pump) is not.
	if s.Ready(110, true) {
		t.Fatal("duplicate final flush ready")
	}
	if s.Ready(90, true) {
		t.Fatal("back-step ready")
	}

	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestSeriesRingEviction: overflowing the ring keeps the newest points and
// counts the evictions.
func TestSeriesRingEviction(t *testing.T) {
	s := newSeries(0, 4)
	for i := 1; i <= 10; i++ {
		s.Record(uint64(i), map[string]float64{"i": float64(i)})
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	pts := s.Points()
	for i, want := range []uint64{7, 8, 9, 10} {
		if pts[i].Seq != want {
			t.Fatalf("point %d seq = %d, want %d (points %+v)", i, pts[i].Seq, want, pts)
		}
	}
}

// TestSeriesSetIntervals: SetInterval reaches existing series, EnsureInterval
// only fills an unset one.
func TestSeriesSetIntervals(t *testing.T) {
	ss := NewSeriesSet()
	s := ss.Series("a")
	ss.SetInterval(50)
	s.Record(1, nil)
	if s.Ready(40, false) {
		t.Fatal("SetInterval did not reach the existing series")
	}
	if !s.Ready(51, false) {
		t.Fatal("existing series ignores the new interval")
	}

	ss.EnsureInterval(999)
	if got := ss.Interval(); got != 50 {
		t.Fatalf("EnsureInterval overrode an explicit interval: %d", got)
	}
	ss2 := NewSeriesSet()
	ss2.EnsureInterval(999)
	if got := ss2.Interval(); got != 999 {
		t.Fatalf("EnsureInterval on unset = %d, want 999", got)
	}
}

// TestSeriesSnapshotDeterminism: equal state encodes to identical bytes, and
// the JSON round-trips.
func TestSeriesSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *SeriesSet {
		ss := NewSeriesSet()
		ss.SetInterval(10)
		for _, name := range order {
			s := ss.Series(name)
			s.Record(10, map[string]float64{"b": 2, "a": 1})
			s.Record(20, map[string]float64{"a": 3, "b": 4})
		}
		return ss
	}
	marshal := func(ss *SeriesSet) []byte {
		var buf bytes.Buffer
		if err := ss.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ja := marshal(build([]string{"x", "y", "z"}))
	jb := marshal(build([]string{"z", "x", "y"}))
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots of equal state differ:\n%s\n--\n%s", ja, jb)
	}
	var snap SeriesSnapshot
	if err := json.Unmarshal(ja, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Interval != 10 || len(snap.Series) != 3 {
		t.Fatalf("decoded snapshot = %+v", snap)
	}
	if pts := snap.Series["y"].Points; len(pts) != 2 || pts[1].Values["b"] != 4 {
		t.Fatalf("series y points = %+v", pts)
	}
}

// TestSeriesWriteFile: the set lands on disk as valid JSON via the atomic
// writer.
func TestSeriesWriteFile(t *testing.T) {
	ss := NewSeriesSet()
	ss.Series("c").Record(7, map[string]float64{"v": 1})
	path := filepath.Join(t.TempDir(), "series.json")
	if err := ss.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap SeriesSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if len(snap.Series["c"].Points) != 1 {
		t.Fatalf("decoded = %+v", snap)
	}
}

// TestNilSeriesIsNoop: the nil SeriesSet and its nil Series are safe and
// inert, and never report ready.
func TestNilSeriesIsNoop(t *testing.T) {
	var ss *SeriesSet
	ss.SetInterval(10)
	ss.EnsureInterval(10)
	ss.SetCapacity(5)
	if ss.Interval() != 0 {
		t.Fatal("nil set has an interval")
	}
	s := ss.Series("x")
	if s != nil {
		t.Fatal("nil set handed out a non-nil series")
	}
	if s.Ready(1, true) {
		t.Fatal("nil series is ready")
	}
	s.Record(1, map[string]float64{"v": 1})
	if s.Len() != 0 || s.Evicted() != 0 || s.Points() != nil {
		t.Fatal("nil series accumulated")
	}
	var buf bytes.Buffer
	if err := ss.WriteJSON(&buf); err != nil {
		t.Fatalf("nil set WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"series"`) {
		t.Fatalf("nil set snapshot malformed: %s", buf.String())
	}
}

// TestNilSeriesAllocs pins the disabled sampling path at zero allocations:
// the per-chunk Ready probe on a nil series must be a nil check only. (Record
// is excluded — an enabled caller only builds its values map after Ready.)
func TestNilSeriesAllocs(t *testing.T) {
	var ss *SeriesSet
	s := ss.Series("x")
	allocs := testing.AllocsPerRun(1000, func() {
		if s.Ready(1, false) {
			t.Fatal("nil series ready")
		}
		if s.Ready(1, true) {
			t.Fatal("nil series ready (final)")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil series Ready allocates %v allocs/op, want 0", allocs)
	}
}
