package obs

// The progress meter: periodic one-line status reports for long runs (the
// paper-preset traces cost minutes of CPU and previously ran silent). It
// watches a Counter — typically pipeline.events_decoded or the tracegen
// event count — and prints events/sec each interval; given a fraction
// callback (e.g. bytes consumed / file size from stream.FileReader) it adds
// percent complete and an ETA. Lines go to the configured writer (stderr in
// the CLIs) so stdout reports and goldens stay byte-identical.

import (
	"fmt"
	"io"
	"os"
	"time"
)

// DefaultProgressInterval is the default reporting period.
const DefaultProgressInterval = 2 * time.Second

// ProgressConfig configures StartProgress.
type ProgressConfig struct {
	// W receives the progress lines (default os.Stderr).
	W io.Writer
	// Label prefixes every line ("replay db2.tsm").
	Label string
	// Events is the counter to watch (required; a nil counter reports 0).
	Events *Counter
	// Fraction optionally reports completion in [0, 1] for percent + ETA.
	Fraction func() float64
	// Interval is the reporting period (default DefaultProgressInterval).
	Interval time.Duration
}

// Progress periodically prints throughput (and, when a completion fraction
// is known, ETA) for a running stage. The nil Progress is a valid no-op, so
// callers can unconditionally defer Stop.
type Progress struct {
	cfg   ProgressConfig
	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// StartProgress launches the reporting goroutine and returns its handle.
// Stop it to end reporting and print the final summary line.
func StartProgress(cfg ProgressConfig) *Progress {
	if cfg.W == nil {
		cfg.W = os.Stderr
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProgressInterval
	}
	p := &Progress{
		cfg:   cfg,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.loop()
	return p
}

// loop emits one line per interval until Stop.
func (p *Progress) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	var last uint64
	lastT := p.start
	for {
		select {
		case <-p.stop:
			return
		case now := <-tick.C:
			cur := p.cfg.Events.Value()
			rate := ratePerSec(cur-last, now.Sub(lastT))
			last, lastT = cur, now
			line := fmt.Sprintf("%s: %s events, %s events/s", p.cfg.Label, groupDigits(cur), groupDigits(rate))
			if p.cfg.Fraction != nil {
				if f := p.cfg.Fraction(); f > 0 {
					if f > 1 {
						f = 1
					}
					elapsed := now.Sub(p.start)
					eta := time.Duration(float64(elapsed) * (1 - f) / f).Round(time.Second)
					line += fmt.Sprintf(", %.1f%% eta %s", 100*f, eta)
				}
			}
			fmt.Fprintln(p.cfg.W, line)
		}
	}
}

// Stop ends reporting and prints a final summary line. Safe on the nil
// Progress; call at most once per StartProgress.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
	elapsed := time.Since(p.start)
	total := p.cfg.Events.Value()
	fmt.Fprintf(p.cfg.W, "%s: done, %s events in %s (%s events/s)\n",
		p.cfg.Label, groupDigits(total), elapsed.Round(time.Millisecond), groupDigits(ratePerSec(total, elapsed)))
}

// ratePerSec computes n/elapsed as a whole per-second rate. A zero or
// negative elapsed (Stop right after Start, or a clock step) would divide by
// ~0 and feed NaN or +Inf into uint64 conversion, which is platform-defined;
// report 0 instead of a garbage rate.
func ratePerSec(n uint64, elapsed time.Duration) uint64 {
	secs := elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	rate := float64(n) / secs
	if rate != rate || rate > float64(1<<63) { // NaN or out of uint64 range
		return 0
	}
	return uint64(rate)
}

// groupDigits renders n with thousands separators (1234567 → "1,234,567").
func groupDigits(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
