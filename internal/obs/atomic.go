package obs

// Atomic JSON artifact writes. The metrics/trace/series/manifest files are
// consumed by CI gates and the weekly cron's artifact diffing, where a
// half-written file is worse than a missing one: jq parses it, obsdiff
// compares garbage, and the regression signal silently disappears. Every
// writer in this package (and the facade's manifest writer) therefore goes
// through WriteFileAtomic: the content lands in a temp file in the target
// directory and is renamed over the destination only once fully written, so
// a killed run leaves either the previous file or the complete new one —
// never truncated JSON.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of write to path atomically: the
// content goes to a temp file in path's directory, which is renamed over
// path only after write and Close succeed. On any failure the temp file is
// removed and the previous content of path (if any) is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	return nil
}
