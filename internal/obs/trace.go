package obs

// Stage tracing: lightweight span records (stage name, category, lane,
// start/duration, free-form args) collected by a Tracer and exportable as a
// chrome://tracing-compatible JSON trace (the "Trace Event Format" consumed
// by chrome://tracing, Perfetto and speedscope). The pipeline emits one span
// per stage — the decode pass, each per-chunk decode, every consumer — so a
// sweep's concurrency structure becomes a picture: which cell lagged, where
// the producer stalled, how long each stage ran.
//
// Like the metrics core, the nil *Tracer is the no-op default: Begin on a
// nil Tracer returns a nil *SpanHandle whose Arg/End methods do nothing, so
// un-traced runs pay a nil check and nothing else.

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultSpanLimit bounds the spans a Tracer retains so paper-scale runs
// (millions of chunks) cannot grow the trace without bound; spans beyond the
// limit are counted and reported in the exported trace instead of stored.
const DefaultSpanLimit = 1 << 17

// Span is one completed trace span.
type Span struct {
	// Name is the span label shown on the timeline ("decode", "LA=8").
	Name string
	// Cat is the span category ("pipeline", "consumer", "cli").
	Cat string
	// Lane is the horizontal track (chrome tid) the span renders on; the
	// pipeline uses lane 0 for the producer and lane i+1 for consumer i.
	Lane int
	// Start is the span start, relative to the Tracer's epoch.
	Start time.Duration
	// Dur is the span duration.
	Dur time.Duration
	// Args carries span-scoped values ("events", "events_per_sec").
	Args map[string]any
}

// Tracer collects span records. Safe for concurrent use; the nil Tracer is
// a valid no-op.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	lanes   map[int]string
	limit   int
	dropped uint64
}

// NewTracer returns an empty Tracer with the default span limit. Its epoch
// (the zero point of every span's Start) is the call time.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), lanes: map[int]string{}, limit: DefaultSpanLimit}
}

// SetSpanLimit replaces the retained-span bound (0 restores the default).
func (t *Tracer) SetSpanLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// NameLane labels a lane (chrome thread track) in the exported trace, e.g.
// lane 0 = "producer/decode", lane 3 = "consumer LA=8".
func (t *Tracer) NameLane(lane int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lanes[lane] = name
	t.mu.Unlock()
}

// SpanHandle is an in-flight span started by Begin. The nil SpanHandle is a
// valid no-op.
type SpanHandle struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Begin starts a span on the given lane. On the nil Tracer it returns the
// nil (no-op) SpanHandle.
func (t *Tracer) Begin(name, cat string, lane int) *SpanHandle {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &SpanHandle{
		t:     t,
		span:  Span{Name: name, Cat: cat, Lane: lane, Start: now.Sub(t.epoch)},
		start: now,
	}
}

// Arg attaches a key/value pair to the span and returns the handle for
// chaining.
func (s *SpanHandle) Arg(key string, value any) *SpanHandle {
	if s == nil {
		return nil
	}
	if s.span.Args == nil {
		s.span.Args = make(map[string]any, 4)
	}
	s.span.Args[key] = value
	return s
}

// Elapsed returns the time since the span began (0 on the nil handle).
func (s *SpanHandle) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End completes the span and records it on the Tracer.
func (s *SpanHandle) End() {
	if s == nil {
		return
	}
	s.span.Dur = time.Since(s.start)
	t := s.t
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, s.span)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Record appends an externally timed span (used by tests and by callers that
// already measured a stage).
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns the number of spans discarded over the span limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one entry of the Trace Event Format's traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the Trace Event Format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the recorded spans as a chrome://tracing-compatible
// JSON trace: one complete ("ph":"X") event per span, timestamps and
// durations in microseconds, lanes exported as named threads of a single
// process. Loadable directly in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var spans []Span
	lanes := map[int]string{}
	var dropped uint64
	if t != nil {
		t.mu.Lock()
		spans = append(spans, t.spans...)
		for k, v := range t.lanes {
			lanes[k] = v
		}
		dropped = t.dropped
		t.mu.Unlock()
	}
	laneIDs := make([]int, 0, len(lanes))
	for lane := range lanes {
		laneIDs = append(laneIDs, lane)
	}
	sort.Ints(laneIDs)
	events := make([]chromeEvent, 0, len(spans)+len(lanes))
	for _, lane := range laneIDs {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": lanes[lane]},
		})
	}
	for _, sp := range spans {
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts:  float64(sp.Start.Nanoseconds()) / 1e3,
			Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: sp.Lane, Args: sp.Args,
		})
	}
	if dropped > 0 {
		events = append(events, chromeEvent{
			Name: "spans_dropped_over_limit", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"dropped": dropped},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the chrome trace to path, atomically (see
// WriteFileAtomic): a killed run leaves the previous file or the complete
// new one, never a truncated trace.
func (t *Tracer) WriteFile(path string) error {
	return WriteFileAtomic(path, t.WriteChrome)
}
