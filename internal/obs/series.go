package obs

// Domain time series: windowed samplers for simulation state over the event
// stream. The registry's counters describe the ENGINE (decode throughput,
// ring occupancy); a Series describes the SIMULATION — coverage, CMOB/SVB
// occupancy, discard rate, latency quantiles — as a curve over the trace
// instead of a single end-of-run scalar, which is what the paper's Figures
// 7–10 are actually about.
//
// A Series is a fixed-capacity ring of epoch samples keyed by event sequence
// number: consumers record a sample whenever the pipeline's chunk-boundary
// pump says one is due (Ready), the newest samples are kept when the ring
// overflows, and the final end-of-stream sample is always taken, so the last
// point of a completed run carries exactly the cumulative state the final
// report is computed from. A SeriesSet is the named lookup-or-create
// collection the engine attaches per-consumer series to, mirroring Registry.
//
// Like the rest of the package, nil receivers are valid no-ops: a nil
// *SeriesSet hands out nil *Series, and Ready/Record on a nil Series cost a
// nil check and nothing else (pinned by TestNopAllocs). Snapshots are
// deterministic: the name map and per-sample value maps marshal with sorted
// keys, so equal state encodes to identical bytes.

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultSeriesCapacity is the sample ring capacity of a new Series: the
// most recent samples kept per consumer.
const DefaultSeriesCapacity = 1024

// DefaultSeriesPoints is the whole-run sample count an auto-computed epoch
// interval targets (events / DefaultSeriesPoints); callers with a known
// total event count use it to fit a full run inside the ring with room to
// spare.
const DefaultSeriesPoints = 256

// SeriesPoint is one epoch sample: the sequence number of the last event
// reflected in the sample, plus the sampled values by name.
type SeriesPoint struct {
	Seq    uint64             `json:"seq"`
	Values map[string]float64 `json:"values"`
}

// Series is one consumer's windowed time series. Safe for concurrent use;
// the nil Series is a valid no-op.
type Series struct {
	mu       sync.Mutex
	interval uint64
	points   []SeriesPoint // ring storage
	start    int           // index of the oldest retained point
	count    int           // retained points
	evicted  uint64        // points dropped over capacity
	last     uint64        // seq of the newest recorded point
	any      bool          // at least one point recorded
}

func newSeries(interval uint64, capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Series{interval: interval, points: make([]SeriesPoint, capacity)}
}

// Ready reports whether a sample at seq is due: the first sample of the
// series, an epoch-interval crossing, or — when final is set — the
// end-of-stream flush. A seq at or before the newest recorded point is never
// due (the final flush after a boundary sample at the same seq dedupes
// here). Nil-safe: the nil Series is never ready.
func (s *Series) Ready(seq uint64, final bool) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.any {
		return true
	}
	if seq <= s.last {
		return false
	}
	return final || seq-s.last >= s.interval
}

// Record appends one sample, evicting the oldest when the ring is full. The
// caller decides when via Ready; Record itself never filters. Nil-safe.
func (s *Series) Record(seq uint64, values map[string]float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := SeriesPoint{Seq: seq, Values: values}
	if s.count < len(s.points) {
		s.points[(s.start+s.count)%len(s.points)] = p
		s.count++
	} else {
		s.points[s.start] = p
		s.start = (s.start + 1) % len(s.points)
		s.evicted++
	}
	s.last = seq
	s.any = true
}

// Len returns the retained sample count (0 on the nil Series).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Evicted returns the samples dropped over capacity (0 on the nil Series).
func (s *Series) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Points returns a copy of the retained samples in ascending seq order.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesPoint, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.points[(s.start+i)%len(s.points)]
	}
	return out
}

// SeriesData is the exported state of one Series.
type SeriesData struct {
	// Evicted counts samples dropped over the ring capacity (the retained
	// window is the newest Points).
	Evicted uint64 `json:"evicted,omitempty"`
	// Points are the retained samples in ascending seq order.
	Points []SeriesPoint `json:"points"`
}

// SeriesSnapshot is a point-in-time copy of a SeriesSet, shaped for JSON.
// Map keys (series names, sample value names) marshal sorted, so equal state
// encodes to identical bytes.
type SeriesSnapshot struct {
	// Interval is the epoch interval in events (0 = every pump).
	Interval uint64 `json:"interval"`
	// Series maps consumer label to its sampled curve.
	Series map[string]SeriesData `json:"series"`
}

// SeriesSet is a named collection of Series, one per pipeline consumer. Like
// Registry, lookups create on first use and the nil *SeriesSet is the no-op
// default, handing out nil Series.
type SeriesSet struct {
	mu       sync.Mutex
	interval uint64
	capacity int
	series   map[string]*Series
}

// NewSeriesSet returns an empty SeriesSet with the default ring capacity and
// a zero interval (sample at every pump) — callers that know the total event
// count set a real epoch interval via SetInterval/EnsureInterval.
func NewSeriesSet() *SeriesSet {
	return &SeriesSet{capacity: DefaultSeriesCapacity, series: make(map[string]*Series)}
}

// SetInterval sets the epoch interval, in events, for every current and
// future Series of the set. Nil-safe.
func (ss *SeriesSet) SetInterval(n uint64) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.interval = n
	for _, s := range ss.series {
		s.mu.Lock()
		s.interval = n
		s.mu.Unlock()
	}
}

// EnsureInterval sets the epoch interval only if none has been set yet —
// the seam for auto-computed intervals that must not override an explicit
// choice. Nil-safe.
func (ss *SeriesSet) EnsureInterval(n uint64) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	unset := ss.interval == 0
	ss.mu.Unlock()
	if unset {
		ss.SetInterval(n)
	}
}

// Interval returns the current epoch interval (0 on the nil SeriesSet).
func (ss *SeriesSet) Interval() uint64 {
	if ss == nil {
		return 0
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.interval
}

// SetCapacity sets the ring capacity of Series created after the call (<= 0
// restores the default). Nil-safe.
func (ss *SeriesSet) SetCapacity(n int) {
	if ss == nil {
		return
	}
	if n <= 0 {
		n = DefaultSeriesCapacity
	}
	ss.mu.Lock()
	ss.capacity = n
	ss.mu.Unlock()
}

// Series returns the series registered under name, creating it on first use.
// On the nil SeriesSet it returns the nil (no-op) Series.
func (ss *SeriesSet) Series(name string) *Series {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.series[name]
	if !ok {
		s = newSeries(ss.interval, ss.capacity)
		ss.series[name] = s
	}
	return s
}

// Snapshot captures every series. On the nil SeriesSet it returns an empty
// (but non-nil-mapped) snapshot.
func (ss *SeriesSet) Snapshot() SeriesSnapshot {
	snap := SeriesSnapshot{Series: map[string]SeriesData{}}
	if ss == nil {
		return snap
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	snap.Interval = ss.interval
	for name, s := range ss.series {
		snap.Series[name] = SeriesData{Evicted: s.Evicted(), Points: s.Points()}
	}
	return snap
}

// WriteJSON writes the set's snapshot as indented JSON.
func (ss *SeriesSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ss.Snapshot())
}

// WriteFile writes the set's snapshot as indented JSON to path, atomically
// (see WriteFileAtomic).
func (ss *SeriesSet) WriteFile(path string) error {
	return WriteFileAtomic(path, ss.WriteJSON)
}
