package obs

// Prometheus text exposition (format 0.0.4) for the live registry, so the
// debug endpoint a future `tsesim serve` grows out of can be scraped by a
// stock Prometheus without an adapter. The mapping from the registry's flat
// dotted names is stable and purely mechanical:
//
//   - every metric family is prefixed "tsm_" and has the dots (and any other
//     character outside [a-zA-Z0-9_]) of its dotted name replaced by '_':
//     "pipeline.events_decoded" → tsm_pipeline_events_decoded;
//   - the per-consumer names "pipeline.consumer.<label>.<field>" collapse
//     into ONE family per field with the label carried as a Prometheus label
//     pair: "pipeline.consumer.LA=8.stall_ns" →
//     tsm_pipeline_consumer_stall_ns{consumer="LA=8"} — so a sweep's cells
//     are series of one family instead of a family per cell;
//   - counters and gauges map to their Prometheus types; histograms export
//     the standard cumulative _bucket/_sum/_count triple with inclusive
//     upper bounds as the le label (the log2 bucket bounds are already
//     inclusive) plus the mandatory le="+Inf" bucket.
//
// Families and series are emitted in sorted order, so equal registry state
// writes identical bytes (same determinism contract as the JSON snapshot).

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promConsumerPrefix is the dotted prefix whose metrics collapse into
// labelled families.
const promConsumerPrefix = "pipeline.consumer."

// promName sanitizes a dotted metric name into a Prometheus family name.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 4)
	sb.WriteString("tsm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promEscape escapes a label value per the text format: backslash, double
// quote and newline.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promSplit maps a dotted name to its family name and label set. Consumer
// metrics ("pipeline.consumer.<label>.<field>") become one family per field
// with a consumer label; everything else is an unlabelled family.
func promSplit(name string) (family, labels string) {
	if rest, ok := strings.CutPrefix(name, promConsumerPrefix); ok {
		if i := strings.LastIndexByte(rest, '.'); i > 0 {
			label, field := rest[:i], rest[i+1:]
			return promName("pipeline.consumer." + field), `consumer="` + promEscape(label) + `"`
		}
	}
	return promName(name), ""
}

// promSample is one output line's worth of family state.
type promSample struct {
	labels string
	value  string
	hist   *HistogramSnapshot
}

// promFamily accumulates the samples of one family.
type promFamily struct {
	typ     string // "counter", "gauge", "histogram"
	samples []promSample
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// 0.0.4. Output is deterministic for equal snapshots.
func WriteProm(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	add := func(name, typ string, sample promSample) {
		family, labels := promSplit(name)
		sample.labels = labels
		f, ok := fams[family]
		if !ok {
			f = &promFamily{typ: typ}
			fams[family] = f
		}
		f.samples = append(f.samples, sample)
	}
	for name, v := range s.Counters {
		add(name, "counter", promSample{value: fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		add(name, "gauge", promSample{value: fmt.Sprintf("%d", v)})
	}
	for name := range s.Histograms {
		h := s.Histograms[name]
		add(name, "histogram", promSample{hist: &h})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, family := range names {
		f := fams[family]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, f.typ); err != nil {
			return err
		}
		for _, sm := range f.samples {
			var err error
			if sm.hist != nil {
				err = writePromHistogram(w, family, sm.labels, *sm.hist)
			} else if sm.labels != "" {
				_, err = fmt.Fprintf(w, "%s{%s} %s\n", family, sm.labels, sm.value)
			} else {
				_, err = fmt.Fprintf(w, "%s %s\n", family, sm.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits the cumulative _bucket/_sum/_count triple of one
// histogram series. The snapshot's per-bucket counts are non-cumulative with
// inclusive upper bounds, which is exactly the le convention once summed.
func writePromHistogram(w io.Writer, family, labels string, h HistogramSnapshot) error {
	join := func(extra string) string {
		if labels == "" {
			return extra
		}
		if extra == "" {
			return labels
		}
		return labels + "," + extra
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.N
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", family, join(fmt.Sprintf("le=%q", fmt.Sprintf("%d", b.Le))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", family, join(`le="+Inf"`), h.Count); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, suffix, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, suffix, h.Count)
	return err
}

// WriteProm writes the registry's current state in the Prometheus text
// exposition format 0.0.4 (an empty exposition on the nil Registry).
func (r *Registry) WriteProm(w io.Writer) error {
	return WriteProm(w, r.Snapshot())
}
