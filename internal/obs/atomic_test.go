package obs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomic: a successful write replaces the destination and
// leaves no temp files behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new content" {
		t.Fatalf("content = %q", data)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicCrash simulates a writer dying mid-write (the write
// callback fails after producing partial output): the previous file must
// survive untouched and the partial temp file must be cleaned up — the
// property CI's jq/obsdiff gates rely on.
func TestWriteFileAtomicCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := os.WriteFile(path, []byte(`{"ok":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, `{"truncat`) // partial JSON lands in the temp file
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped simulated crash", err)
	}
	data, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("previous content clobbered: %q", data)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicNoPrevious: a failed first write leaves no destination
// file at all.
func TestWriteFileAtomicNoPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	err := WriteFileAtomic(path, func(io.Writer) error {
		return fmt.Errorf("nope")
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("destination exists after failed first write: %v", statErr)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicBadDir: an unwritable directory errors without creating
// anything.
func TestWriteFileAtomicBadDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing", "out.json")
	err := WriteFileAtomic(path, func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory reported success")
	}
	if !strings.Contains(err.Error(), "obs: writing") {
		t.Fatalf("error not wrapped: %v", err)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
