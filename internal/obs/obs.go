// Package obs is the repository's zero-dependency observability subsystem:
// a lock-cheap metrics core (atomic counters, gauges and log-bucketed
// histograms collected in a Registry snapshotable to JSON), lightweight
// stage tracing (span records exportable as a chrome://tracing-compatible
// JSON trace, trace.go) and a periodic progress meter (progress.go).
//
// The engine now runs paper-scale sweeps through a multi-stage concurrent
// pipeline — decode, ring broadcast, N consumers — and this package is how
// that pipeline stops running dark: ring occupancy, slowest-cursor stalls,
// decode throughput and per-cell progress all become inspectable numbers
// instead of ns/op greps after the fact.
//
// Everything here is built around a no-op default so un-instrumented paths
// cost approximately nothing: a nil *Registry hands out nil metric handles,
// and every method on a nil *Counter, *Gauge, *Histogram, *Tracer or
// *Progress is a nil-check-and-return — no allocation, no atomic, no lock
// (pinned by TestNopAllocs and BenchmarkNop). Instrumented code therefore
// never guards its metric calls; it just calls.
//
// Metrics are identified by flat dotted names ("pipeline.events_decoded",
// "pipeline.consumer.LA=8.stall_ns"). A Registry hands out one handle per
// name (Counter/Gauge/Histogram are lookup-or-create), handles are safe for
// concurrent use, and Snapshot produces a deterministic value: JSON
// marshalling sorts the name maps, so two snapshots of equal state encode to
// identical bytes.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is a
// valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (a running
// maximum, e.g. peak ring occupancy).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds the
// observations whose value has bit length i, i.e. bucket 0 holds exactly the
// value 0 and bucket i (i ≥ 1) holds [2^(i-1), 2^i - 1]. 64-bit values need
// 65 buckets.
const histBuckets = 65

// Histogram counts observations in fixed logarithmic (power-of-two) buckets.
// Observing is one atomic add per bucket plus count and sum — no locks, no
// allocation — which keeps it cheap enough for backpressure-wait tracking in
// the broadcast hot path. The nil Histogram is a valid no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// BucketUpperBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i - 1 for the rest (math.MaxUint64 for the last).
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is the exported state of one Histogram: total count and
// sum, interpolated quantile estimates, plus the non-empty buckets in
// ascending bound order.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: Le is the inclusive upper bound
// of the value range, N the observation count.
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Mean returns the mean observed value (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values by
// linear interpolation within the log2 bucket the target rank falls in:
// bucket i ≥ 1 spans [2^(i-1), 2^i - 1], and the estimate assumes the
// bucket's observations are spread evenly over that span (bucket 0 holds
// exactly the value 0). The estimate is therefore never outside the true
// bucket's bounds. Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		n := float64(b.N)
		if cum+n >= rank {
			lo, hi := bucketLowerBound(b.Le), float64(b.Le)
			if n == 0 {
				return hi
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(s.Buckets) == 0 {
		return 0
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// bucketLowerBound returns the inclusive lower bound of the bucket whose
// inclusive upper bound is le: 0 for the zero bucket, 2^(i-1) for the rest.
func bucketLowerBound(le uint64) float64 {
	if le == 0 {
		return 0
	}
	return float64(le/2 + 1)
}

// snapshot captures the histogram. The reads are individually atomic but not
// mutually: a concurrent Observe may land between them, which is fine for
// monitoring — quiescent snapshots (every producer finished) are exact.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpperBound(i), N: n})
		}
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Snapshot captures the histogram's exported state (zero on the nil
// Histogram). See snapshot for the atomicity caveat.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}

// Registry is a named collection of metrics. The zero value is NOT a
// registry — use NewRegistry; the nil *Registry is the no-op default: it
// hands out nil handles whose methods do nothing and allocate nothing, so
// un-instrumented runs pay only a nil check per metric call.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. On the nil Registry it returns the nil (no-op) Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// On the nil Registry it returns the nil (no-op) Gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. On the nil Registry it returns the nil (no-op) Histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a Registry's state, shaped for JSON.
// Go's JSON encoder writes map keys in sorted order, so a Snapshot of equal
// state always marshals to identical bytes (pinned by tests).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. On the nil Registry it returns
// an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted, across all kinds.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the registry snapshot as indented JSON to path,
// atomically: the snapshot lands in a temp file renamed over path only once
// complete, so a killed run never leaves truncated JSON (see
// WriteFileAtomic).
func (r *Registry) WriteFile(path string) error {
	return WriteFileAtomic(path, r.WriteJSON)
}
