// Package timing implements the cycle-level DSM timing model used to
// reproduce Figure 14 (execution-time breakdown and TSE speedup) and the
// cycle-accurate columns of Table 3 (full vs. partial coverage).
//
// The model replays a workload's globally ordered consumption/write trace.
// Each node alternates between non-coherent work (busy cycles plus other
// stalls, sized from the workload's Figure 14 baseline breakdown) and
// coherent read misses, which it issues in bursts bounded by the workload's
// consumption MLP (Table 3). A coherent read costs the 3-hop miss latency of
// Table 1; with TSE enabled, a consumption that hits the SVB costs only an
// L2-like probe if the streamed block has already arrived (full coverage) or
// the remaining in-flight time if it is still on its way (partial coverage).
// Streamed-block arrival times follow Section 5.6: the latency to retrieve a
// stream and initiate streaming is approximately the same as the latency to
// fill the consumption miss that triggered the lookup.
package timing

import (
	"fmt"
	"io"
	"math"

	"tsm/internal/config"
	"tsm/internal/mem"
	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// Breakdown is the execution-time breakdown of Figure 14, in cycles summed
// across nodes.
type Breakdown struct {
	BusyCycles          uint64
	OtherStallCycles    uint64
	CoherentStallCycles uint64
}

// Total returns the total cycles of the breakdown.
func (b Breakdown) Total() uint64 {
	return b.BusyCycles + b.OtherStallCycles + b.CoherentStallCycles
}

// Fractions returns the normalised breakdown (busy, other, coherent).
func (b Breakdown) Fractions() (busy, other, coherent float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.BusyCycles) / t, float64(b.OtherStallCycles) / t, float64(b.CoherentStallCycles) / t
}

// Result summarises one timing simulation.
type Result struct {
	// Breakdown is the execution-time breakdown summed over nodes.
	Breakdown Breakdown
	// Consumptions is the number of consumptions simulated.
	Consumptions uint64
	// FullCovered counts consumptions whose streamed block had already
	// arrived (cost an SVB probe only).
	FullCovered uint64
	// PartialCovered counts consumptions whose streamed block was still in
	// flight (part of the miss latency was hidden).
	PartialCovered uint64
	// PartialLatencyHidden is the average fraction of the miss latency
	// hidden for partially covered consumptions.
	PartialLatencyHidden float64
	// MeasuredMLP is the average burst size actually simulated.
	MeasuredMLP float64
	// SegmentCycles records total cycles per measurement segment (same
	// segmentation for base and TSE runs), enabling paired speedup
	// confidence intervals in the SMARTS style.
	SegmentCycles []uint64
}

// TotalCycles returns the total execution cycles (summed over nodes), the
// quantity whose ratio between base and TSE runs is the Figure 14 speedup.
func (r Result) TotalCycles() uint64 { return r.Breakdown.Total() }

// FullCoverage returns FullCovered / Consumptions.
func (r Result) FullCoverage() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.FullCovered) / float64(r.Consumptions)
}

// PartialCoverage returns PartialCovered / Consumptions.
func (r Result) PartialCoverage() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.PartialCovered) / float64(r.Consumptions)
}

// Params configures one timing simulation.
type Params struct {
	// System supplies latencies (Table 1).
	System config.SystemConfig
	// Profile supplies the workload's baseline breakdown, MLP and
	// lookahead (Figure 14 / Table 3).
	Profile workload.TimingProfile
	// Nodes is the number of nodes in the trace.
	Nodes int
	// TSE, when non-nil, enables the temporal streaming engine with the
	// given configuration; nil simulates the baseline system.
	TSE *tse.Config
	// SegmentConsumptions sets how many consumptions form one measurement
	// segment for confidence intervals (0 selects a default of 2000).
	SegmentConsumptions int
	// Observer, when non-nil, receives every consumption's resolved latency
	// in cycles, immediately after it is determined and before it is issued
	// into the MLP burst. It is a pure tap — the simulation's arithmetic and
	// results are unaffected — used by the sampling Consumer to build
	// per-epoch latency histograms. Nil (the default) disables it.
	Observer func(latencyCycles uint64)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.System.Validate(); err != nil {
		return err
	}
	if err := p.Profile.Validate(); err != nil {
		return err
	}
	if p.Nodes <= 0 {
		return fmt.Errorf("timing: nodes must be positive")
	}
	if p.TSE != nil {
		if err := p.TSE.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// nodeState is the per-node simulation state.
type nodeState struct {
	clock uint64
	// burst accumulates the latencies of the consumptions issued in the
	// current MLP burst; the burst stall is their maximum.
	burstLatencies []uint64
	burstBudget    int
	// mlpAcc carries the fractional part of the target burst size so that
	// the average burst size matches a non-integer MLP.
	mlpAcc float64
	// arrivals maps streamed blocks to the cycle at which their data will
	// have arrived in the SVB.
	arrivals map[mem.BlockAddr]uint64
	// pendingFetches collects blocks streamed during the current
	// consumption call, before their arrival times are assigned.
	pendingFetches []mem.BlockAddr
	breakdown      Breakdown
}

// Simulate runs the timing model over a trace and returns the result.
func Simulate(tr *trace.Trace, p Params) (Result, error) {
	return SimulateSource(stream.TraceSource(tr), p)
}

// SimulateSource runs the timing model over a pull-based event stream. The
// events are consumed one at a time in stream order — the trace is never
// materialized — so a trace file of any size drives the cycle-level model in
// bounded memory, and the result is bit-identical to Simulate over the
// equivalent in-memory trace. A source error other than io.EOF aborts the
// simulation and is returned.
func SimulateSource(src stream.Source, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	segSize := p.SegmentConsumptions
	if segSize <= 0 {
		segSize = 2000
	}

	lCoh := p.System.ThreeHopLatencyCycles()
	lSVB := p.System.SVBHitLatencyCycles()
	// Stream retrieval latency: the stream lookup+forwarding round trip is
	// approximately one more 3-hop latency after the triggering miss fills.
	streamStart := 2 * lCoh
	// Spacing between successive streamed data blocks of one burst.
	const streamSpacing = 30

	// Per-consumption non-coherent work, derived so that the baseline
	// breakdown matches the workload profile by construction: the baseline
	// coherent stall per consumption is lCoh/MLP.
	mlp := p.Profile.MLP
	if mlp < 1 {
		mlp = 1
	}
	cohPerCons := float64(lCoh) / mlp
	nonCohFrac := p.Profile.BusyFraction + p.Profile.OtherStallFraction
	gap := cohPerCons * nonCohFrac / p.Profile.CoherentStallFraction
	busyShare := 0.0
	if nonCohFrac > 0 {
		busyShare = p.Profile.BusyFraction / nonCohFrac
	}
	busyPerCons := uint64(gap*busyShare + 0.5)
	otherPerCons := uint64(gap*(1-busyShare) + 0.5)

	// nextBurstSize yields burst sizes whose running average equals the
	// (possibly fractional) MLP target.
	nextBurstSize := func(n *nodeState) int {
		n.mlpAcc += mlp
		size := int(n.mlpAcc)
		if size < 1 {
			size = 1
		}
		n.mlpAcc -= float64(size)
		return size
	}

	nodes := make([]*nodeState, p.Nodes)
	for i := range nodes {
		n := &nodeState{arrivals: make(map[mem.BlockAddr]uint64)}
		n.burstBudget = nextBurstSize(n)
		nodes[i] = n
	}

	var sys *tse.System
	if p.TSE != nil {
		cfg := *p.TSE
		cfg.Nodes = p.Nodes
		sys = tse.NewSystem(cfg)
		for i := 0; i < p.Nodes; i++ {
			n := nodes[i]
			sys.Engine(mem.NodeID(i)).SetFetchHandler(func(b mem.BlockAddr) {
				n.pendingFetches = append(n.pendingFetches, b)
			})
		}
	}

	res := Result{}
	var partialHiddenSum float64
	var bursts, burstConsumptions uint64
	var segCycles uint64
	var segCount int
	prevTotal := uint64(0)

	flushBurst := func(n *nodeState) {
		if len(n.burstLatencies) == 0 {
			return
		}
		var maxLat uint64
		for _, l := range n.burstLatencies {
			if l > maxLat {
				maxLat = l
			}
		}
		n.clock += maxLat
		n.breakdown.CoherentStallCycles += maxLat
		bursts++
		burstConsumptions += uint64(len(n.burstLatencies))
		n.burstLatencies = n.burstLatencies[:0]
		n.burstBudget = nextBurstSize(n)
	}

	totalBreakdown := func() uint64 {
		var t uint64
		for _, n := range nodes {
			t += n.breakdown.Total()
		}
		return t
	}

	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		switch e.Kind {
		case trace.KindWrite:
			if sys != nil {
				sys.Write(e)
			}
		case trace.KindConsumption:
			if int(e.Node) < 0 || int(e.Node) >= p.Nodes {
				continue
			}
			n := nodes[e.Node]
			res.Consumptions++

			// Non-coherent work preceding the consumption.
			n.clock += busyPerCons + otherPerCons
			n.breakdown.BusyCycles += busyPerCons
			n.breakdown.OtherStallCycles += otherPerCons

			// Determine the consumption's latency.
			latency := lCoh
			if sys != nil {
				n.pendingFetches = n.pendingFetches[:0]
				covered := sys.Consumption(e)
				if covered {
					arrival, ok := n.arrivals[e.Block]
					delete(n.arrivals, e.Block)
					if !ok || arrival <= n.clock {
						latency = lSVB
						res.FullCovered++
					} else {
						remaining := arrival - n.clock
						if remaining > lCoh {
							remaining = lCoh
						}
						latency = remaining + lSVB
						if latency > lCoh {
							latency = lCoh
						}
						res.PartialCovered++
						partialHiddenSum += 1 - float64(remaining)/float64(lCoh)
					}
				}
				// Assign arrival times to blocks streamed during this call.
				for k, b := range n.pendingFetches {
					if covered {
						// Steady-state advance: one retrieval round trip.
						n.arrivals[b] = n.clock + lCoh
					} else {
						// Newly located stream: lookup + forwarding, then
						// pipelined data delivery.
						n.arrivals[b] = n.clock + streamStart + uint64(k)*streamSpacing
					}
				}
			}

			if p.Observer != nil {
				p.Observer(latency)
			}

			// Issue into the current MLP burst.
			n.burstLatencies = append(n.burstLatencies, latency)
			n.burstBudget--
			if n.burstBudget <= 0 {
				flushBurst(n)
			}

			// Segment accounting for confidence intervals.
			segCount++
			if segCount >= segSize {
				cur := totalBreakdown()
				segCycles = cur - prevTotal
				prevTotal = cur
				res.SegmentCycles = append(res.SegmentCycles, segCycles)
				segCount = 0
			}
		}
	}
	for _, n := range nodes {
		flushBurst(n)
	}
	if sys != nil {
		sys.Finish()
	}

	for _, n := range nodes {
		res.Breakdown.BusyCycles += n.breakdown.BusyCycles
		res.Breakdown.OtherStallCycles += n.breakdown.OtherStallCycles
		res.Breakdown.CoherentStallCycles += n.breakdown.CoherentStallCycles
	}
	if res.PartialCovered > 0 {
		res.PartialLatencyHidden = partialHiddenSum / float64(res.PartialCovered)
	}
	if bursts > 0 {
		res.MeasuredMLP = float64(burstConsumptions) / float64(bursts)
	}
	return res, nil
}

// Consumer adapts SimulateSource to the single-decode fan-out engine in
// internal/pipeline (whose Consumer interface it satisfies structurally):
// Run drains its private tee of the stream through the timing model and
// stores the result.
//
// Consumer also satisfies pipeline.Sampler: with a series attached, Run taps
// every consumption latency through Params.Observer into a per-epoch
// obs.Histogram, and each chunk-boundary pump records the epoch's latency
// distribution (count, mean, interpolated p50/p90/p99) as one sample, then
// starts a fresh epoch. The simulation's results are identical with and
// without the tap.
type Consumer struct {
	params Params
	// Result is the simulation result, valid after Run returns nil.
	Result Result
	series *obs.Series
	epoch  *obs.Histogram // latencies observed since the last sample
	cum    uint64         // consumptions observed so far
}

// NewConsumer wraps one timing simulation at the given parameters.
func NewConsumer(p Params) *Consumer { return &Consumer{params: p} }

// Run implements the pipeline consumer contract.
func (c *Consumer) Run(src stream.Source) error {
	p := c.params
	if c.series != nil {
		c.cum = 0
		c.epoch = &obs.Histogram{}
		p.Observer = func(latency uint64) {
			c.cum++
			c.epoch.Observe(latency)
		}
	}
	res, err := SimulateSource(src, p)
	c.Result = res
	return err
}

// AttachSeries implements pipeline.Sampler.
func (c *Consumer) AttachSeries(s *obs.Series) { c.series = s }

// SampleAt implements pipeline.Sampler: one epoch sample of the latency
// distribution since the previous sample. Runs on the consumer's goroutine
// between events.
func (c *Consumer) SampleAt(seq uint64, final bool) {
	if c.epoch == nil || !c.series.Ready(seq, final) {
		return
	}
	snap := c.epoch.Snapshot()
	c.series.Record(seq, map[string]float64{
		"consumptions":  float64(c.cum),
		"latency_count": float64(snap.Count),
		"latency_mean":  snap.Mean(),
		"latency_p50":   snap.P50,
		"latency_p90":   snap.P90,
		"latency_p99":   snap.P99,
	})
	c.epoch = &obs.Histogram{}
}

// Speedup returns base execution time divided by the comparison execution
// time.
func Speedup(base, other Result) float64 {
	if other.TotalCycles() == 0 {
		return 0
	}
	return float64(base.TotalCycles()) / float64(other.TotalCycles())
}

// SpeedupConfidence computes the mean speedup and its 95% confidence
// half-width from paired per-segment cycle counts of a base and a TSE run.
// Segments beyond the shorter run are ignored.
func SpeedupConfidence(base, other Result) (mean, ci float64) {
	n := len(base.SegmentCycles)
	if len(other.SegmentCycles) < n {
		n = len(other.SegmentCycles)
	}
	if n == 0 {
		return Speedup(base, other), 0
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		if other.SegmentCycles[i] == 0 {
			continue
		}
		s := float64(base.SegmentCycles[i]) / float64(other.SegmentCycles[i])
		sum += s
		sumSq += s * s
	}
	mean = sum / float64(n)
	if n > 1 {
		variance := (sumSq - float64(n)*mean*mean) / float64(n-1)
		if variance > 0 {
			ci = 1.96 * math.Sqrt(variance) / math.Sqrt(float64(n))
		}
	}
	return mean, ci
}
