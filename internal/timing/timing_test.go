package timing

import (
	"errors"
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/config"
	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// migratoryTrace: node 0 produces, nodes 1..n-1 consume the same long
// sequence in turn.
func migratoryTrace(nodes, length int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < length; i++ {
		tr.Append(trace.Event{Kind: trace.KindWrite, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	for n := 1; n < nodes; n++ {
		for i := 0; i < length; i++ {
			tr.Append(trace.Event{Kind: trace.KindConsumption, Node: mem.NodeID(n), Block: mem.BlockAddr(i * 64)})
		}
	}
	return tr
}

func scientificProfile() workload.TimingProfile {
	return workload.TimingProfile{
		BusyFraction: 0.20, OtherStallFraction: 0.10, CoherentStallFraction: 0.70,
		MLP: 2.0, Lookahead: 18,
	}
}

func commercialProfile() workload.TimingProfile {
	return workload.TimingProfile{
		BusyFraction: 0.30, OtherStallFraction: 0.38, CoherentStallFraction: 0.32,
		MLP: 1.3, Lookahead: 8,
	}
}

func baseParams(nodes int, prof workload.TimingProfile) Params {
	sysCfg := config.DefaultSystem()
	sysCfg.Nodes = nodes
	return Params{System: sysCfg, Profile: prof, Nodes: nodes, SegmentConsumptions: 100}
}

func tseParams(nodes int, prof workload.TimingProfile) Params {
	p := baseParams(nodes, prof)
	cfg := tse.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Lookahead = prof.Lookahead
	p.TSE = &cfg
	return p
}

func TestValidate(t *testing.T) {
	p := baseParams(4, scientificProfile())
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	p.Nodes = 0
	if p.Validate() == nil {
		t.Fatal("zero nodes should fail")
	}
	p = baseParams(4, workload.TimingProfile{})
	if p.Validate() == nil {
		t.Fatal("empty profile should fail")
	}
	p = tseParams(4, scientificProfile())
	bad := tse.Config{}
	p.TSE = &bad
	if p.Validate() == nil {
		t.Fatal("invalid TSE config should fail")
	}
	if _, err := Simulate(&trace.Trace{}, Params{}); err == nil {
		t.Fatal("Simulate with invalid params should error")
	}
}

func TestBaselineBreakdownMatchesProfile(t *testing.T) {
	prof := commercialProfile()
	tr := migratoryTrace(4, 1000)
	res, err := Simulate(tr, baseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	busy, other, coherent := res.Breakdown.Fractions()
	// The baseline breakdown is constructed from the profile; allow a few
	// percent of rounding/bursting slack.
	if diff(busy, prof.BusyFraction) > 0.05 || diff(other, prof.OtherStallFraction) > 0.05 || diff(coherent, prof.CoherentStallFraction) > 0.05 {
		t.Fatalf("baseline breakdown (%.2f,%.2f,%.2f) far from profile (%.2f,%.2f,%.2f)",
			busy, other, coherent, prof.BusyFraction, prof.OtherStallFraction, prof.CoherentStallFraction)
	}
	if res.Consumptions != 3000 {
		t.Fatalf("consumptions = %d, want 3000", res.Consumptions)
	}
	if res.FullCovered != 0 || res.PartialCovered != 0 {
		t.Fatal("baseline run must not report coverage")
	}
	if len(res.SegmentCycles) == 0 {
		t.Fatal("segments should be recorded")
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestTSERunReducesCoherentStalls(t *testing.T) {
	prof := scientificProfile()
	tr := migratoryTrace(4, 2000)
	base, err := Simulate(tr, baseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	withTSE, err := Simulate(tr, tseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	if withTSE.Breakdown.CoherentStallCycles >= base.Breakdown.CoherentStallCycles {
		t.Fatalf("TSE coherent stalls %d not below base %d",
			withTSE.Breakdown.CoherentStallCycles, base.Breakdown.CoherentStallCycles)
	}
	// Busy and other-stall work is identical between runs.
	if withTSE.Breakdown.BusyCycles != base.Breakdown.BusyCycles ||
		withTSE.Breakdown.OtherStallCycles != base.Breakdown.OtherStallCycles {
		t.Fatal("non-coherent work must be identical across runs")
	}
	s := Speedup(base, withTSE)
	if s <= 1.2 {
		t.Fatalf("speedup = %v, want substantial speedup on perfectly correlated streams", s)
	}
	if withTSE.FullCoverage()+withTSE.PartialCoverage() < 0.5 {
		t.Fatalf("coverage too low: full=%v partial=%v", withTSE.FullCoverage(), withTSE.PartialCoverage())
	}
	mean, ci := SpeedupConfidence(base, withTSE)
	if mean <= 1.0 {
		t.Fatalf("confidence mean speedup = %v, want > 1", mean)
	}
	if ci < 0 {
		t.Fatalf("negative confidence interval %v", ci)
	}
}

func TestTimelinessDependsOnConsumptionRate(t *testing.T) {
	// With a high coherent-stall fraction the inter-consumption gap is
	// short, so newly located streams are more likely to be partially
	// covered; with a low fraction (long gaps) more arrive in time. The
	// partial share of covered consumptions should therefore shrink when
	// gaps grow.
	tr := migratoryTrace(4, 2000)
	fast := workload.TimingProfile{BusyFraction: 0.05, OtherStallFraction: 0.05, CoherentStallFraction: 0.90, MLP: 4, Lookahead: 8}
	slow := workload.TimingProfile{BusyFraction: 0.60, OtherStallFraction: 0.25, CoherentStallFraction: 0.15, MLP: 1.2, Lookahead: 8}
	fastRes, err := Simulate(tr, tseParams(4, fast))
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := Simulate(tr, tseParams(4, slow))
	if err != nil {
		t.Fatal(err)
	}
	partialShare := func(r Result) float64 {
		covered := r.FullCovered + r.PartialCovered
		if covered == 0 {
			return 0
		}
		return float64(r.PartialCovered) / float64(covered)
	}
	if partialShare(fastRes) <= partialShare(slowRes) {
		t.Fatalf("partial share fast=%v should exceed slow=%v", partialShare(fastRes), partialShare(slowRes))
	}
}

func TestMeasuredMLPTracksProfile(t *testing.T) {
	tr := migratoryTrace(4, 1000)
	prof := scientificProfile() // MLP 2.0
	res, err := Simulate(tr, baseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredMLP < 1.5 || res.MeasuredMLP > 2.5 {
		t.Fatalf("measured MLP = %v, want ~2", res.MeasuredMLP)
	}
}

func TestEndToEndWithWorkloadTrace(t *testing.T) {
	// Full pipeline on a small DB2-like workload: generate accesses,
	// classify with the coherence engine, then compare base and TSE timing.
	wcfg := workload.Config{Nodes: 4, Seed: 3, Scale: 0.05, Geometry: mem.DefaultGeometry()}
	spec, _ := workload.ByName("db2")
	gen := spec.New(wcfg)
	eng := coherence.New(coherence.Config{Nodes: 4, Geometry: wcfg.Geometry, PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConsumptionCount() < 500 {
		t.Skip("workload too small for timing test")
	}
	prof := gen.Timing()
	base, err := Simulate(tr, baseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	withTSE, err := Simulate(tr, tseParams(4, prof))
	if err != nil {
		t.Fatal(err)
	}
	s := Speedup(base, withTSE)
	if s < 1.0 {
		t.Fatalf("TSE slowed down the commercial workload: speedup %v", s)
	}
	if s > 2.0 {
		t.Fatalf("commercial speedup %v implausibly high", s)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{BusyCycles: 10, OtherStallCycles: 30, CoherentStallCycles: 60}
	if b.Total() != 100 {
		t.Fatal("Total wrong")
	}
	busy, other, coherent := b.Fractions()
	if busy != 0.1 || other != 0.3 || coherent != 0.6 {
		t.Fatal("Fractions wrong")
	}
	if x, y, z := (Breakdown{}).Fractions(); x != 0 || y != 0 || z != 0 {
		t.Fatal("empty breakdown fractions should be zero")
	}
	if Speedup(Result{}, Result{}) != 0 {
		t.Fatal("speedup with zero denominator should be 0")
	}
	if (Result{}).FullCoverage() != 0 || (Result{}).PartialCoverage() != 0 {
		t.Fatal("empty result coverages should be 0")
	}
	m, ci := SpeedupConfidence(Result{}, Result{})
	if m != 0 || ci != 0 {
		t.Fatal("empty confidence should be zeros")
	}
}

// TestSimulateSourceMatchesSimulate: the streamed timing entry point must be
// bit-identical to the materialized one, for both the baseline and the TSE
// configuration, on a real workload trace.
func TestSimulateSourceMatchesSimulate(t *testing.T) {
	gen := workload.NewEM3D(workload.Config{Nodes: 4, Seed: 11, Scale: 0.05})
	eng := coherence.New(coherence.Config{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{baseParams(4, gen.Timing()), tseParams(4, gen.Timing())} {
		want, err := Simulate(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateSource(stream.TraceSource(tr), p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Breakdown != want.Breakdown || got.Consumptions != want.Consumptions ||
			got.FullCovered != want.FullCovered || got.PartialCovered != want.PartialCovered ||
			got.PartialLatencyHidden != want.PartialLatencyHidden || got.MeasuredMLP != want.MeasuredMLP {
			t.Fatalf("streamed result %+v differs from Simulate result %+v", got, want)
		}
		if len(got.SegmentCycles) != len(want.SegmentCycles) {
			t.Fatalf("segment count %d vs %d", len(got.SegmentCycles), len(want.SegmentCycles))
		}
		for i := range want.SegmentCycles {
			if got.SegmentCycles[i] != want.SegmentCycles[i] {
				t.Fatalf("segment %d: %d vs %d", i, got.SegmentCycles[i], want.SegmentCycles[i])
			}
		}
	}
}

// failingSource always errors.
type failingSource struct{}

func (failingSource) Next() (trace.Event, error) { return trace.Event{}, errSourceBroken }

func TestSimulateSourcePropagatesError(t *testing.T) {
	if _, err := SimulateSource(failingSource{}, baseParams(2, scientificProfile())); err != errSourceBroken {
		t.Fatalf("err = %v, want errSourceBroken", err)
	}
}

// errSourceBroken is the sentinel error used by failingSource.
var errSourceBroken = errors.New("timing test: source failed")
