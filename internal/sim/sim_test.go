package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{30, 10, 20} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	n := k.Run(0)
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", k.Now())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.Run(0)
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events not executed in insertion order: %v", order)
		}
	}
}

func TestRunLimit(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Time(1); i <= 10; i++ {
		k.Schedule(i*10, func() { count++ })
	}
	executed := k.Run(50)
	if executed != 5 || count != 5 {
		t.Fatalf("Run(50) executed %d (count %d), want 5", executed, count)
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", k.Pending())
	}
	k.Run(0)
	if count != 10 {
		t.Fatalf("after unlimited Run count = %d, want 10", count)
	}
}

func TestScheduleDuringEvent(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(10, func() {
		fired = append(fired, k.Now())
		k.Schedule(5, func() { fired = append(fired, k.Now()) })
	})
	k.Run(0)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling produced %v, want [10 15]", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past should panic")
		}
	}()
	k.ScheduleAt(5, func() {})
}

func TestAdvance(t *testing.T) {
	k := NewKernel()
	k.Advance(100)
	if k.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", k.Now())
	}
	k.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance past a pending event should panic")
		}
	}()
	k.Advance(50)
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Time(1); i <= 100; i++ {
		k.Schedule(i, func() { count++ })
	}
	k.RunUntil(func() bool { return count < 42 })
	if count != 42 {
		t.Fatalf("RunUntil stopped at count=%d, want 42", count)
	}
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := NewKernel()
	var times []Time
	var fired []Time
	for i := 0; i < 1000; i++ {
		d := Time(rng.Intn(10000))
		times = append(times, d)
		k.Schedule(d, func() { fired = append(fired, k.Now()) })
	}
	k.Run(0)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	for i := range times {
		if fired[i] != times[i] {
			t.Fatalf("event %d fired at %d, want %d", i, fired[i], times[i])
		}
	}
	if k.Executed() != 1000 {
		t.Fatalf("Executed() = %d, want 1000", k.Executed())
	}
}
