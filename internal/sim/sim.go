// Package sim provides a minimal discrete-event simulation kernel used by the
// timing model. It supplies a cycle-granular clock, an event priority queue,
// and a scheduler that executes callbacks in time order with deterministic
// tie-breaking.
//
// The paper's evaluation uses the SIMFLEX full-system simulator; this kernel
// plays the same structural role (advance time, deliver events) for the
// purpose-built DSM timing model in internal/timing.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulation time measured in processor cycles.
type Time uint64

// Event is a callback scheduled to run at a particular time.
type Event struct {
	when Time
	seq  uint64 // insertion order for deterministic ties
	fn   func()
}

// When returns the time at which the event will fire.
func (e *Event) When() Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the event-driven simulation engine. The zero value is not ready
// to use; call NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	nextSeq uint64
	// Executed counts events that have fired; useful for tests and for
	// guarding against runaway simulations.
	executed uint64
}

// NewKernel returns a kernel whose clock starts at cycle zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.events)
	return k
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events that have been executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled but not yet executed events.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule arranges for fn to run delay cycles from the current time and
// returns the created event. A delay of zero runs the callback during the
// current cycle, after all previously scheduled work for that cycle.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time t. Scheduling in the
// past panics: it indicates a model bug rather than a recoverable condition.
func (k *Kernel) ScheduleAt(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before current time %d", t, k.now))
	}
	e := &Event{when: t, seq: k.nextSeq, fn: fn}
	k.nextSeq++
	heap.Push(&k.events, e)
	return e
}

// Step executes the single next event, advancing the clock to its time.
// It returns false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.now = e.when
	k.executed++
	e.fn()
	return true
}

// Run executes events until the queue is empty or the clock would pass
// limit (inclusive). It returns the number of events executed. A limit of
// zero means "no limit".
func (k *Kernel) Run(limit Time) uint64 {
	start := k.executed
	for len(k.events) > 0 {
		next := k.events[0].when
		if limit != 0 && next > limit {
			break
		}
		k.Step()
	}
	return k.executed - start
}

// RunUntil executes events while cond returns true and events remain.
// It returns the number of events executed.
func (k *Kernel) RunUntil(cond func() bool) uint64 {
	start := k.executed
	for cond() && k.Step() {
	}
	return k.executed - start
}

// Advance moves the clock forward by delta cycles without executing events.
// It panics if doing so would jump past a pending event, because that would
// reorder time.
func (k *Kernel) Advance(delta Time) {
	target := k.now + delta
	if len(k.events) > 0 && k.events[0].when < target {
		panic(fmt.Sprintf("sim: advance to %d would skip event at %d", target, k.events[0].when))
	}
	k.now = target
}
