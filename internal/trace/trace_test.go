package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"tsm/internal/mem"
)

func TestAppendAssignsSeq(t *testing.T) {
	var tr Trace
	tr.Append(Event{Kind: KindConsumption, Node: 1, Block: 64})
	tr.Append(Event{Kind: KindWrite, Node: 2, Block: 128})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", tr.Events)
	}
}

func TestFilters(t *testing.T) {
	var tr Trace
	tr.Append(Event{Kind: KindConsumption, Node: 0, Block: 0})
	tr.Append(Event{Kind: KindWrite, Node: 1, Block: 64})
	tr.Append(Event{Kind: KindConsumption, Node: 1, Block: 128})
	tr.Append(Event{Kind: KindReadMiss, Node: 0, Block: 192})

	if got := tr.ConsumptionCount(); got != 2 {
		t.Fatalf("ConsumptionCount = %d, want 2", got)
	}
	cons := tr.Consumptions()
	if len(cons) != 2 || cons[0].Node != 0 || cons[1].Node != 1 {
		t.Fatalf("Consumptions = %+v", cons)
	}
	byNode := tr.NodeConsumptions(2)
	if len(byNode[0]) != 1 || len(byNode[1]) != 1 {
		t.Fatalf("NodeConsumptions = %+v", byNode)
	}
	counts := tr.CountByKind()
	if counts[KindConsumption] != 2 || counts[KindWrite] != 1 || counts[KindReadMiss] != 1 {
		t.Fatalf("CountByKind = %+v", counts)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{KindConsumption, KindWrite, KindReadMiss} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	if EventKind(77).String() == "" {
		t.Fatal("unknown kind should produce a string")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var tr Trace
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		kind := EventKind(rng.Intn(3))
		producer := mem.NodeID(rng.Intn(16))
		if rng.Intn(4) == 0 {
			producer = mem.InvalidNode
		}
		tr.Append(Event{
			Kind:     kind,
			Node:     mem.NodeID(rng.Intn(16)),
			Block:    mem.BlockAddr(uint64(rng.Intn(1<<20)) &^ 63),
			Producer: producer,
		})
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("Count = %d, want 500", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.Kind != b.Kind || a.Node != b.Node || a.Block != b.Block || a.Producer != b.Producer || b.Seq != uint64(i) {
			t.Fatalf("event %d mismatch: wrote %+v read %+v", i, a, b)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(nodes []uint8, blocks []uint32) bool {
		var tr Trace
		n := len(nodes)
		if len(blocks) < n {
			n = len(blocks)
		}
		for i := 0; i < n; i++ {
			tr.Append(Event{
				Kind:     EventKind(nodes[i] % 3),
				Node:     mem.NodeID(nodes[i] % 64),
				Block:    mem.BlockAddr(uint64(blocks[i]) &^ 63),
				Producer: mem.NodeID(int(nodes[i]%16) - 1),
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WriteTrace(&tr); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Events {
			if tr.Events[i].Block != got.Events[i].Block ||
				tr.Events[i].Node != got.Events[i].Node ||
				tr.Events[i].Kind != got.Events[i].Kind ||
				tr.Events[i].Producer != got.Events[i].Producer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err != ErrBadFormat {
		t.Fatalf("bad header error = %v, want ErrBadFormat", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestReaderTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindConsumption, Node: 1, Block: 64})
	w.Flush()
	data := buf.Bytes()
	truncated := data[:len(data)-3]
	r, err := NewReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated event read error = %v, want a non-EOF error", err)
	}
}

func TestInvalidNodeProducerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindConsumption, Node: 5, Block: 192, Producer: mem.InvalidNode})
	w.Flush()
	r, _ := NewReader(&buf)
	e, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if e.Producer != mem.InvalidNode {
		t.Fatalf("Producer = %d, want InvalidNode", e.Producer)
	}
}
