package trace

import (
	"testing"
)

func TestAppendAssignsSeq(t *testing.T) {
	var tr Trace
	tr.Append(Event{Kind: KindConsumption, Node: 1, Block: 64})
	tr.Append(Event{Kind: KindWrite, Node: 2, Block: 128})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", tr.Events)
	}
}

func TestFilters(t *testing.T) {
	var tr Trace
	tr.Append(Event{Kind: KindConsumption, Node: 0, Block: 0})
	tr.Append(Event{Kind: KindWrite, Node: 1, Block: 64})
	tr.Append(Event{Kind: KindConsumption, Node: 1, Block: 128})
	tr.Append(Event{Kind: KindReadMiss, Node: 0, Block: 192})

	if got := tr.ConsumptionCount(); got != 2 {
		t.Fatalf("ConsumptionCount = %d, want 2", got)
	}
	cons := tr.Consumptions()
	if len(cons) != 2 || cons[0].Node != 0 || cons[1].Node != 1 {
		t.Fatalf("Consumptions = %+v", cons)
	}
	byNode := tr.NodeConsumptions(2)
	if len(byNode[0]) != 1 || len(byNode[1]) != 1 {
		t.Fatalf("NodeConsumptions = %+v", byNode)
	}
	counts := tr.CountByKind()
	if counts[KindConsumption] != 2 || counts[KindWrite] != 1 || counts[KindReadMiss] != 1 {
		t.Fatalf("CountByKind = %+v", counts)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{KindConsumption, KindWrite, KindReadMiss} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	if EventKind(77).String() == "" {
		t.Fatal("unknown kind should produce a string")
	}
}
