// Package trace defines the event stream that connects workload generation
// to model evaluation. The functional coherence engine (internal/coherence)
// turns raw memory accesses into a globally ordered stream of events:
// consumptions (coherent read misses that are not lock/barrier spins) and
// writes (which invalidate streamed copies). Every TSE and prefetcher model
// in this repository, and every trace analysis, operates on this stream —
// the same role the paper's memory traces from SIMFLEX play.
//
// Traces can be held in memory or serialised to a compact binary format
// (encoding/binary, little endian) via Writer and Reader.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tsm/internal/mem"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// KindConsumption is a coherent read miss by Node to Block whose value
	// was produced by Producer.
	KindConsumption EventKind = iota
	// KindWrite is a store by Node to Block; it invalidates other nodes'
	// copies, including streamed copies held in SVBs.
	KindWrite
	// KindReadMiss is a non-coherent (cold or capacity) read miss. These
	// are recorded so that bandwidth and timing accounting can include
	// baseline traffic, but predictors neither train nor predict on them.
	KindReadMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindConsumption:
		return "consumption"
	case KindWrite:
		return "write"
	case KindReadMiss:
		return "read-miss"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry in the global, totally ordered event stream.
type Event struct {
	// Seq is the global sequence number (dense, starting at 0).
	Seq uint64
	// Kind is the event type.
	Kind EventKind
	// Node is the node performing the access.
	Node mem.NodeID
	// Block is the block-aligned address.
	Block mem.BlockAddr
	// Producer is the node whose write produced the consumed value
	// (meaningful for KindConsumption; mem.InvalidNode otherwise or when
	// the value came from untouched memory).
	Producer mem.NodeID
}

// Trace is an in-memory event stream.
type Trace struct {
	Events []Event
}

// Append adds an event, assigning it the next sequence number.
func (t *Trace) Append(e Event) {
	e.Seq = uint64(len(t.Events))
	t.Events = append(t.Events, e)
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Consumptions returns only the consumption events, in order.
func (t *Trace) Consumptions() []Event {
	out := make([]Event, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Kind == KindConsumption {
			out = append(out, e)
		}
	}
	return out
}

// ConsumptionCount returns the number of consumption events.
func (t *Trace) ConsumptionCount() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == KindConsumption {
			n++
		}
	}
	return n
}

// NodeConsumptions returns, for each node, that node's consumptions in
// global order. The result has length nodes.
func (t *Trace) NodeConsumptions(nodes int) [][]Event {
	out := make([][]Event, nodes)
	for _, e := range t.Events {
		if e.Kind == KindConsumption && int(e.Node) < nodes && e.Node >= 0 {
			out[e.Node] = append(out[e.Node], e)
		}
	}
	return out
}

// CountByKind returns per-kind event counts.
func (t *Trace) CountByKind() map[EventKind]int {
	m := make(map[EventKind]int)
	for _, e := range t.Events {
		m[e.Kind]++
	}
	return m
}

// magic identifies the binary trace format.
var magic = [4]byte{'T', 'S', 'M', '1'}

// eventWireSize is the fixed encoded size of one event.
const eventWireSize = 1 + 2 + 8 + 2 // kind + node + block + producer

// Writer serialises events to a stream.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter creates a Writer and emits the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write serialises one event. The event's Seq field is not stored; sequence
// numbers are implicit in stream order.
func (w *Writer) Write(e Event) error {
	if w.err != nil {
		return w.err
	}
	var buf [eventWireSize]byte
	buf[0] = byte(e.Kind)
	binary.LittleEndian.PutUint16(buf[1:3], uint16(e.Node))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(e.Block))
	binary.LittleEndian.PutUint16(buf[11:13], uint16(int16(e.Producer)))
	if _, err := w.w.Write(buf[:]); err != nil {
		w.err = fmt.Errorf("trace: writing event %d: %w", w.count, err)
		return w.err
	}
	w.count++
	return nil
}

// WriteTrace serialises every event of an in-memory trace.
func (w *Writer) WriteTrace(t *Trace) error {
	for _, e := range t.Events {
		if err := w.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader deserialises events from a stream produced by Writer.
type Reader struct {
	r    *bufio.Reader
	next uint64
}

// ErrBadFormat is returned when the stream does not begin with the trace
// format header.
var ErrBadFormat = errors.New("trace: bad format header")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadFormat
	}
	return &Reader{r: br}, nil
}

// Read returns the next event, or io.EOF when the stream ends cleanly.
func (r *Reader) Read() (Event, error) {
	var buf [eventWireSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: reading event %d: %w", r.next, err)
	}
	e := Event{
		Seq:      r.next,
		Kind:     EventKind(buf[0]),
		Node:     mem.NodeID(binary.LittleEndian.Uint16(buf[1:3])),
		Block:    mem.BlockAddr(binary.LittleEndian.Uint64(buf[3:11])),
		Producer: mem.NodeID(int16(binary.LittleEndian.Uint16(buf[11:13]))),
	}
	r.next++
	return e, nil
}

// ReadAll reads every remaining event into an in-memory trace.
func (r *Reader) ReadAll() (*Trace, error) {
	t := &Trace{}
	for {
		e, err := r.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return t, err
		}
		t.Events = append(t.Events, e)
	}
}
