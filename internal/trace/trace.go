// Package trace defines the event stream that connects workload generation
// to model evaluation. The functional coherence engine (internal/coherence)
// turns raw memory accesses into a globally ordered stream of events:
// consumptions (coherent read misses that are not lock/barrier spins) and
// writes (which invalidate streamed copies). Every TSE and prefetcher model
// in this repository, and every trace analysis, operates on this stream —
// the same role the paper's memory traces from SIMFLEX play.
//
// Traces can be held in memory (Trace) or streamed: internal/stream
// provides the Source/Sink iterator abstraction and the versioned binary
// trace codec.
package trace

import (
	"fmt"

	"tsm/internal/mem"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// KindConsumption is a coherent read miss by Node to Block whose value
	// was produced by Producer.
	KindConsumption EventKind = iota
	// KindWrite is a store by Node to Block; it invalidates other nodes'
	// copies, including streamed copies held in SVBs.
	KindWrite
	// KindReadMiss is a non-coherent (cold or capacity) read miss. These
	// are recorded so that bandwidth and timing accounting can include
	// baseline traffic, but predictors neither train nor predict on them.
	KindReadMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindConsumption:
		return "consumption"
	case KindWrite:
		return "write"
	case KindReadMiss:
		return "read-miss"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry in the global, totally ordered event stream.
type Event struct {
	// Seq is the global sequence number (dense, starting at 0).
	Seq uint64
	// Kind is the event type.
	Kind EventKind
	// Node is the node performing the access.
	Node mem.NodeID
	// Block is the block-aligned address.
	Block mem.BlockAddr
	// Producer is the node whose write produced the consumed value
	// (meaningful for KindConsumption; mem.InvalidNode otherwise or when
	// the value came from untouched memory).
	Producer mem.NodeID
}

// Trace is an in-memory event stream.
type Trace struct {
	Events []Event
}

// Append adds an event, assigning it the next sequence number.
func (t *Trace) Append(e Event) {
	e.Seq = uint64(len(t.Events))
	t.Events = append(t.Events, e)
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Consumptions returns only the consumption events, in order.
func (t *Trace) Consumptions() []Event {
	out := make([]Event, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Kind == KindConsumption {
			out = append(out, e)
		}
	}
	return out
}

// ConsumptionCount returns the number of consumption events.
func (t *Trace) ConsumptionCount() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == KindConsumption {
			n++
		}
	}
	return n
}

// NodeConsumptions returns, for each node, that node's consumptions in
// global order. The result has length nodes.
func (t *Trace) NodeConsumptions(nodes int) [][]Event {
	out := make([][]Event, nodes)
	for _, e := range t.Events {
		if e.Kind == KindConsumption && int(e.Node) < nodes && e.Node >= 0 {
			out[e.Node] = append(out[e.Node], e)
		}
	}
	return out
}

// CountByKind returns per-kind event counts.
func (t *Trace) CountByKind() map[EventKind]int {
	m := make(map[EventKind]int)
	for _, e := range t.Events {
		m[e.Kind]++
	}
	return m
}
