package experiments

import (
	"reflect"
	"sync"
	"testing"
)

func testWorkspaceOptions() Options {
	return Options{Nodes: 4, Scale: 0.04, Seed: 2, Workloads: []string{"em3d", "db2", "zeus"}}
}

// TestDataGeneratesOnce: concurrent Data calls for the same workload must
// share one generated trace (sync.Once semantics), and calls for different
// workloads must not corrupt each other.
func TestDataGeneratesOnce(t *testing.T) {
	w := NewWorkspace(testWorkspaceOptions())
	const callers = 8
	names := w.WorkloadNames()
	got := make([][]*WorkloadData, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, name := range names {
				d, err := w.Data(name)
				if err != nil {
					t.Error(err)
					return
				}
				got[c] = append(got[c], d)
			}
		}(c)
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		for i := range names {
			if got[c][i] != got[0][i] {
				t.Fatalf("caller %d got a different *WorkloadData for %s: trace regenerated", c, names[i])
			}
		}
	}
}

func TestPrefetchPopulatesWorkspace(t *testing.T) {
	w := NewWorkspace(testWorkspaceOptions())
	if err := w.Prefetch(); err != nil {
		t.Fatal(err)
	}
	for _, name := range w.WorkloadNames() {
		d, err := w.Data(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Consumptions == 0 {
			t.Fatalf("%s: no consumptions after Prefetch", name)
		}
	}
	bad := NewWorkspace(Options{Nodes: 4, Scale: 0.04, Seed: 2, Workloads: []string{"em3d"}})
	if _, err := bad.Data("nope"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

// TestRunAllMatchesSerial: the parallel experiment runner must return, in
// input order, exactly the tables a serial loop produces.
func TestRunAllMatchesSerial(t *testing.T) {
	exps := All()

	serialW := NewWorkspace(testWorkspaceOptions())
	want := make([]Table, len(exps))
	for i, exp := range exps {
		tbl, err := exp.Run(serialW)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		want[i] = tbl
	}

	parallelW := NewWorkspace(testWorkspaceOptions())
	got, err := RunAll(parallelW, exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tables, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: parallel table differs from serial:\n%s\nvs\n%s",
				exps[i].ID, got[i].String(), want[i].String())
		}
	}
}
