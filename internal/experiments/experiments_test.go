package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testWorkspace returns a tiny but complete workspace covering one
// scientific and one commercial workload, so experiment drivers run quickly.
func testWorkspace(t *testing.T) *Workspace {
	t.Helper()
	return NewWorkspace(Options{
		Nodes: 4, Scale: 0.05, Seed: 5,
		Workloads: []string{"em3d", "db2"},
	})
}

// parsePct turns "83.4%" back into 0.834.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse percentage %q: %v", s, err)
	}
	return v / 100
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
	}
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("ByID(fig6) should succeed")
	}
	if _, ok := ByID("  FIG6 "); !ok {
		t.Fatal("ByID should be case/space insensitive")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID of unknown experiment should fail")
	}
	if len(IDs()) != 16 {
		t.Fatal("IDs should list every experiment")
	}
}

func TestWorkspaceDataAndSelection(t *testing.T) {
	w := testWorkspace(t)
	names := w.WorkloadNames()
	if len(names) != 2 || names[0] != "em3d" || names[1] != "db2" {
		t.Fatalf("WorkloadNames = %v", names)
	}
	d, err := w.Data("em3d")
	if err != nil {
		t.Fatal(err)
	}
	if d.Consumptions < 500 {
		t.Fatalf("em3d trace has only %d consumptions", d.Consumptions)
	}
	// Cached: second call returns the same object.
	d2, _ := w.Data("em3d")
	if d != d2 {
		t.Fatal("Data should cache traces")
	}
	if _, err := w.Data("bogus"); err == nil {
		t.Fatal("unknown workload should error")
	}
	// Default workspace selects all workloads (paper suite + extensions).
	if got := NewWorkspace(Options{}).WorkloadNames(); len(got) != 10 {
		t.Fatalf("default workspace selects %d workloads, want 10", len(got))
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "hello",
	}
	s := tbl.String()
	for _, want := range []string{"demo", "a", "bbbb", "333", "hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTables1And2(t *testing.T) {
	w := testWorkspace(t)
	t1, err := Table1(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) < 7 {
		t.Fatalf("Table1 rows = %d", len(t1.Rows))
	}
	t2, err := Table2(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("Table2 rows = %d, want 2 (selected workloads)", len(t2.Rows))
	}
}

func TestFig6Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig6(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig6 rows = %d", len(tbl.Rows))
	}
	var em3d, db2 []string
	for _, r := range tbl.Rows {
		switch r[0] {
		case "em3d":
			em3d = r
		case "db2":
			db2 = r
		}
	}
	// em3d: near-perfect correlation already at small distances.
	if v := parsePct(t, em3d[1]); v < 0.80 {
		t.Fatalf("em3d correlation at ±1 = %v, want >= 0.80", v)
	}
	// db2: partially correlated — well below em3d but far from zero.
	db2At16 := parsePct(t, db2[len(db2)-1])
	if db2At16 < 0.25 || db2At16 > 0.90 {
		t.Fatalf("db2 correlation at ±16 = %v, want commercial-like value", db2At16)
	}
	if em3dAt16 := parsePct(t, em3d[len(em3d)-1]); db2At16 >= em3dAt16 {
		t.Fatalf("db2 (%v) should be less correlated than em3d (%v)", db2At16, em3dAt16)
	}
	// Monotone across distances for each row.
	for _, r := range tbl.Rows {
		prev := -1.0
		for _, cell := range r[1:] {
			v := parsePct(t, cell)
			if v < prev-1e-9 {
				t.Fatalf("row %v not monotone", r)
			}
			prev = v
		}
	}
}

func TestFig7Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig7(w)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by workload and stream count.
	type key struct {
		name    string
		streams string
	}
	cov := map[key]float64{}
	dis := map[key]float64{}
	for _, r := range tbl.Rows {
		k := key{r[0], r[1]}
		cov[k] = parsePct(t, r[2])
		dis[k] = parsePct(t, r[3])
	}
	// Two compared streams must cut db2 discards versus one stream.
	if dis[key{"db2", "2"}] >= dis[key{"db2", "1"}] {
		t.Fatalf("db2 discards with 2 streams (%v) not below 1 stream (%v)",
			dis[key{"db2", "2"}], dis[key{"db2", "1"}])
	}
	// Coverage must not collapse when moving from 1 to 2 streams.
	if cov[key{"db2", "2"}] < cov[key{"db2", "1"}]*0.6 {
		t.Fatalf("db2 coverage collapsed from %v to %v", cov[key{"db2", "1"}], cov[key{"db2", "2"}])
	}
	// em3d keeps high coverage with low discards at 2 streams.
	if cov[key{"em3d", "2"}] < 0.7 || dis[key{"em3d", "2"}] > 0.5 {
		t.Fatalf("em3d with 2 streams: coverage %v discards %v", cov[key{"em3d", "2"}], dis[key{"em3d", "2"}])
	}
}

func TestFig8Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig8(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r[0] != "db2" {
			continue
		}
		small := parsePct(t, r[1])        // lookahead 1
		large := parsePct(t, r[len(r)-1]) // lookahead 24
		if large <= small {
			t.Fatalf("db2 discards should grow with lookahead: %v -> %v", small, large)
		}
	}
}

func TestFig9Fig10Shapes(t *testing.T) {
	w := testWorkspace(t)
	t9, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage with an infinite SVB must be at least that of the 512B SVB.
	var small, inf float64
	for _, r := range t9.Rows {
		if r[0] != "em3d" {
			continue
		}
		switch r[1] {
		case "512B":
			small = parsePct(t, r[2])
		case "inf":
			inf = parsePct(t, r[2])
		}
	}
	if inf+1e-9 < small {
		t.Fatalf("em3d coverage with infinite SVB (%v) below 512B SVB (%v)", inf, small)
	}

	t10, err := Fig10(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t10.Rows {
		first := parsePct(t, r[1])
		last := parsePct(t, r[len(r)-1])
		if last < first {
			t.Fatalf("%s: peak-coverage fraction should grow with CMOB capacity (%v -> %v)", r[0], first, last)
		}
		if last < 0.9 {
			t.Fatalf("%s: largest CMOB should reach ~peak coverage, got %v", r[0], last)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig12(w)
	if err != nil {
		t.Fatal(err)
	}
	cov := map[[2]string]float64{}
	for _, r := range tbl.Rows {
		cov[[2]string{r[0], r[1]}] = parsePct(t, r[2])
	}
	for _, name := range []string{"em3d", "db2"} {
		tse := cov[[2]string{name, "TSE"}]
		stride := cov[[2]string{name, "Stride"}]
		if tse <= stride {
			t.Fatalf("%s: TSE coverage %v should exceed stride %v", name, tse, stride)
		}
	}
	// On the commercial workload the migratory streams recur at *other*
	// nodes, which a node-local GHB cannot see; TSE must therefore lead it.
	// (On a tiny scaled-down em3d the per-node working set fits in GHB's
	// 512-entry history, so the gap only appears at larger scales there.)
	if cov[[2]string{"db2", "TSE"}] <= cov[[2]string{"db2", "GHB G/AC"}] {
		t.Fatalf("db2: TSE coverage %v should exceed GHB G/AC %v",
			cov[[2]string{"db2", "TSE"}], cov[[2]string{"db2", "GHB G/AC"}])
	}
}

func TestFig13Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig13(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		last := parsePct(t, r[len(r)-1])
		if last < 0.999 {
			t.Fatalf("%s: stream-length CDF should reach 100%%, got %v", r[0], last)
		}
	}
	// db2's short streams should contribute more of its hits than em3d's.
	var em3dShort, db2Short float64
	for _, r := range tbl.Rows {
		v := parsePct(t, r[3]) // <=8 blocks column
		if r[0] == "em3d" {
			em3dShort = v
		} else if r[0] == "db2" {
			db2Short = v
		}
	}
	if db2Short <= em3dShort {
		t.Fatalf("db2 short-stream share (%v) should exceed em3d's (%v)", db2Short, em3dShort)
	}
}

func TestTable3AndFig14Shapes(t *testing.T) {
	w := testWorkspace(t)
	t3, err := Table3(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t3.Rows {
		traceCov := parsePct(t, r[1])
		full := parsePct(t, r[4])
		partial := parsePct(t, r[5])
		if full+partial > traceCov+0.05 {
			t.Fatalf("%s: timing coverage %v+%v exceeds trace coverage %v", r[0], full, partial, traceCov)
		}
		if r[0] == "em3d" && traceCov < 0.7 {
			t.Fatalf("em3d trace coverage = %v, want high", traceCov)
		}
	}

	f14, err := Fig14(w)
	if err != nil {
		t.Fatal(err)
	}
	speedups := map[string]float64{}
	for _, r := range f14.Rows {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", r[3])
		}
		speedups[r[0]] = v
	}
	if speedups["em3d"] <= speedups["db2"] {
		t.Fatalf("em3d speedup (%v) should exceed db2 (%v)", speedups["em3d"], speedups["db2"])
	}
	if speedups["db2"] < 1.0 || speedups["db2"] > 2.0 {
		t.Fatalf("db2 speedup %v outside plausible commercial range", speedups["db2"])
	}
	if speedups["em3d"] < 1.3 {
		t.Fatalf("em3d speedup %v too small", speedups["em3d"])
	}
}

func TestFig11Shape(t *testing.T) {
	w := testWorkspace(t)
	tbl, err := Fig11(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig11 rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		gbs, err := strconv.ParseFloat(r[1], 64)
		if err != nil || gbs < 0 {
			t.Fatalf("bad bandwidth cell %q", r[1])
		}
		ratio := parsePct(t, r[2])
		if ratio <= 0 || ratio > 2.0 {
			t.Fatalf("%s: overhead ratio %v implausible", r[0], ratio)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	w := NewWorkspace(Options{
		Nodes: 4, Scale: 0.05, Seed: 5,
		Workloads: []string{"em3d", "db2", "memkv", "pagerank", "cdn"},
	})
	tbl, err := Suite(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("suite rows = %d, want 5", len(tbl.Rows))
	}
	cov := map[string]float64{}
	speedup := map[string]float64{}
	for _, r := range tbl.Rows {
		cov[r[0]] = parsePct(t, r[3])
		v, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", r[5])
		}
		speedup[r[0]] = v
	}
	// The iterative kernels must stream far better than the KV store, whose
	// short chains and heavy noise make it the hardest workload in the matrix.
	if cov["pagerank"] < 0.7 {
		t.Fatalf("pagerank coverage = %v, want scientific-like", cov["pagerank"])
	}
	if cov["memkv"] >= cov["pagerank"] {
		t.Fatalf("memkv coverage %v should trail pagerank %v", cov["memkv"], cov["pagerank"])
	}
	// cdn's single-producer multi-consumer objects sit in between.
	if cov["cdn"] < cov["memkv"] || cov["cdn"] > cov["pagerank"] {
		t.Fatalf("cdn coverage %v should sit between memkv %v and pagerank %v",
			cov["cdn"], cov["memkv"], cov["pagerank"])
	}
	for name, s := range speedup {
		if s < 1.0 {
			t.Fatalf("%s: TSE speedup %v below 1.0", name, s)
		}
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test of all experiments skipped in -short mode")
	}
	w := NewWorkspace(Options{Nodes: 4, Scale: 0.03, Seed: 2, Workloads: []string{"moldyn", "zeus"}})
	for _, e := range All() {
		tbl, err := e.Run(w)
		if err != nil {
			t.Fatalf("%s failed: %v", e.ID, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", e.ID)
		}
		if tbl.String() == "" {
			t.Fatalf("%s renders empty", e.ID)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtInt(0) != "0" || fmtInt(999) != "999" || fmtInt(1000) != "1,000" || fmtInt(1234567) != "1,234,567" {
		t.Fatalf("fmtInt wrong: %s %s %s", fmtInt(999), fmtInt(1000), fmtInt(1234567))
	}
	if fmtInt(-1200) != "-1,200" {
		t.Fatalf("fmtInt(-1200) = %s", fmtInt(-1200))
	}
	if fmtBytes(512) != "512" || fmtBytes(3<<10) != "3k" || fmtBytes(3<<20) != "3M" {
		t.Fatal("fmtBytes wrong")
	}
	if pct(0.5) != "50.0%" {
		t.Fatalf("pct(0.5) = %s", pct(0.5))
	}
}
