package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/tse"
)

// Fig7 reproduces Figure 7: coverage and discards as a function of the
// number of compared streams (1 to 4), with a lookahead of eight and no TSE
// hardware restrictions.
func Fig7(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig7",
		Title:   "Sensitivity to the number of compared streams",
		Columns: []string{"Workload", "Streams", "Coverage", "Discards"},
		Notes: "Paper: with a single stream commercial workloads discard up to ~240% of consumptions; " +
			"comparing two streams drops discards drastically with minimal coverage loss.",
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		for streams := 1; streams <= 4; streams++ {
			cfg := unconstrainedTSEConfig(w, streams, 8)
			cov, _ := analysis.EvaluateTSE(cfg, data.Trace)
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", streams), pct(cov.Coverage()), pct(cov.DiscardRate()),
			})
		}
	}
	return t, nil
}

// Fig8 reproduces Figure 8: discards (normalised to consumptions) as a
// function of the stream lookahead.
func Fig8(w *Workspace) (Table, error) {
	lookaheads := []int{1, 2, 4, 8, 16, 24}
	t := Table{
		ID:      "fig8",
		Title:   "Effect of stream lookahead on discards",
		Columns: []string{"Workload"},
		Notes: "Paper: discards grow roughly linearly with lookahead for commercial workloads and stay " +
			"low for scientific workloads.",
	}
	for _, l := range lookaheads {
		t.Columns = append(t.Columns, fmt.Sprintf("LA=%d", l))
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		row := []string{name}
		for _, l := range lookaheads {
			cfg := unconstrainedTSEConfig(w, 2, l)
			cov, _ := analysis.EvaluateTSE(cfg, data.Trace)
			row = append(row, pct(cov.DiscardRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: coverage and discards as the SVB capacity grows
// from 512 bytes to unlimited.
func Fig9(w *Workspace) (Table, error) {
	type svbPoint struct {
		label   string
		entries int
	}
	points := []svbPoint{
		{"512B", 512 / 64},
		{"2KB", 2048 / 64},
		{"8KB", 8192 / 64},
		{"inf", 0},
	}
	t := Table{
		ID:      "fig9",
		Title:   "Sensitivity to SVB size",
		Columns: []string{"Workload", "SVB", "Coverage", "Discards"},
		Notes: "Paper: a 2 KB (32-entry) SVB achieves near-optimal coverage; little is gained beyond " +
			"512 bytes per active stream of lookahead.",
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		for _, p := range points {
			cfg := paperTSEConfig(w, 8)
			cfg.CMOBEntries = 0 // isolate the SVB effect
			cfg.SVBEntries = p.entries
			cov, _ := analysis.EvaluateTSE(cfg, data.Trace)
			t.Rows = append(t.Rows, []string{name, p.label, pct(cov.Coverage()), pct(cov.DiscardRate())})
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: the fraction of peak coverage attained as the
// per-node CMOB capacity grows.
func Fig10(w *Workspace) (Table, error) {
	capacities := []int{192, 768, 3 << 10, 12 << 10, 48 << 10, 192 << 10, 768 << 10, 3 << 20}
	t := Table{
		ID:      "fig10",
		Title:   "CMOB storage requirements (% of peak coverage)",
		Columns: []string{"Workload"},
		Notes: "Paper: scientific applications need the CMOB to cover their active shared working set; " +
			"commercial coverage improves smoothly, peaking around 1.5 MB.",
	}
	for _, c := range capacities {
		t.Columns = append(t.Columns, fmtBytes(c))
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		lookahead := data.Generator.Timing().Lookahead
		// Peak coverage: unlimited CMOB.
		peakCfg := paperTSEConfig(w, lookahead)
		peakCfg.CMOBEntries = 0
		peak, _ := analysis.EvaluateTSE(peakCfg, data.Trace)
		row := []string{name}
		for _, capBytes := range capacities {
			cfg := paperTSEConfig(w, lookahead)
			cfg.CMOBEntries = capBytes / tse.CMOBEntryBytes
			cov, _ := analysis.EvaluateTSE(cfg, data.Trace)
			frac := 0.0
			if peak.Coverage() > 0 {
				frac = cov.Coverage() / peak.Coverage()
				if frac > 1 {
					frac = 1
				}
			}
			row = append(row, pct(frac))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dk", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}
