package experiments

import (
	"fmt"

	"tsm/internal/tse"
)

// The accuracy/sensitivity figures below are sweeps: many TSE configurations
// evaluated over the SAME workload trace. Each driver builds its figure's
// config list once and evaluates all cells through sweepCells — one walk of
// each workload's trace per figure, with the cells as concurrent consumers
// of a single pass — instead of one full evaluation pass per cell (Figure 7
// alone used to be 44 independent passes across the eleven-workload matrix).

// SweepBaseLookahead is the fixed stream lookahead the Figure 7 and
// Figure 9 sweeps evaluate at (the paper's chosen default). The facade's
// "streams" and "svb" trace-file sweeps share it, so the axes cannot drift.
const SweepBaseLookahead = 8

// fig7Configs is Figure 7's sweep: one to four compared streams, lookahead
// eight, no TSE hardware restrictions.
func fig7Configs(w *Workspace) []tse.Config {
	cfgs := make([]tse.Config, 0, 4)
	for streams := 1; streams <= 4; streams++ {
		cfgs = append(cfgs, unconstrainedTSEConfig(w, streams, SweepBaseLookahead))
	}
	return cfgs
}

// Fig7 reproduces Figure 7: coverage and discards as a function of the
// number of compared streams (1 to 4), with a lookahead of eight and no TSE
// hardware restrictions.
func Fig7(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig7",
		Title:   "Sensitivity to the number of compared streams",
		Columns: []string{"Workload", "Streams", "Coverage", "Discards"},
		Notes: "Paper: with a single stream commercial workloads discard up to ~240% of consumptions; " +
			"comparing two streams drops discards drastically with minimal coverage loss.",
	}
	cfgs := fig7Configs(w)
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cells, err := sweepCells(w, data, cfgs)
		if err != nil {
			return Table{}, err
		}
		for i, cov := range cells {
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", i+1), pct(cov.Coverage()), pct(cov.DiscardRate()),
			})
		}
	}
	return t, nil
}

// Fig8Lookaheads returns the stream-lookahead axis Figure 8 sweeps. It is
// the single definition of that axis: the facade's "lookahead" trace-file
// sweep builds its cells from this list too.
func Fig8Lookaheads() []int { return []int{1, 2, 4, 8, 16, 24} }

// fig8Configs is Figure 8's sweep: two compared streams, unconstrained
// hardware, one cell per lookahead.
func fig8Configs(w *Workspace) []tse.Config {
	lookaheads := Fig8Lookaheads()
	cfgs := make([]tse.Config, 0, len(lookaheads))
	for _, l := range lookaheads {
		cfgs = append(cfgs, unconstrainedTSEConfig(w, 2, l))
	}
	return cfgs
}

// Fig8 reproduces Figure 8: discards (normalised to consumptions) as a
// function of the stream lookahead.
func Fig8(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig8",
		Title:   "Effect of stream lookahead on discards",
		Columns: []string{"Workload"},
		Notes: "Paper: discards grow roughly linearly with lookahead for commercial workloads and stay " +
			"low for scientific workloads.",
	}
	for _, l := range Fig8Lookaheads() {
		t.Columns = append(t.Columns, fmt.Sprintf("LA=%d", l))
	}
	cfgs := fig8Configs(w)
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cells, err := sweepCells(w, data, cfgs)
		if err != nil {
			return Table{}, err
		}
		row := []string{name}
		for _, cov := range cells {
			row = append(row, pct(cov.DiscardRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SVBPoint is one cell of Figure 9's SVB-capacity axis.
type SVBPoint struct {
	// Label names the capacity ("512B", ..., "inf").
	Label string
	// Entries is the SVB capacity in 64-byte blocks (0 means unlimited).
	Entries int
}

// Fig9SVBPoints returns the SVB-capacity axis Figure 9 sweeps. It is the
// single definition of that axis: the facade's "svb" trace-file sweep
// builds its cells from this list too.
func Fig9SVBPoints() []SVBPoint {
	return []SVBPoint{
		{"512B", 512 / 64},
		{"2KB", 2048 / 64},
		{"8KB", 8192 / 64},
		{"inf", 0},
	}
}

// fig9Configs is Figure 9's sweep: the paper configuration with an unlimited
// CMOB (isolating the SVB effect), one cell per SVB capacity.
func fig9Configs(w *Workspace) []tse.Config {
	points := Fig9SVBPoints()
	cfgs := make([]tse.Config, 0, len(points))
	for _, p := range points {
		cfg := paperTSEConfig(w, SweepBaseLookahead)
		cfg.CMOBEntries = 0 // isolate the SVB effect
		cfg.SVBEntries = p.Entries
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// Fig9 reproduces Figure 9: coverage and discards as the SVB capacity grows
// from 512 bytes to unlimited.
func Fig9(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig9",
		Title:   "Sensitivity to SVB size",
		Columns: []string{"Workload", "SVB", "Coverage", "Discards"},
		Notes: "Paper: a 2 KB (32-entry) SVB achieves near-optimal coverage; little is gained beyond " +
			"512 bytes per active stream of lookahead.",
	}
	points := Fig9SVBPoints()
	cfgs := fig9Configs(w)
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cells, err := sweepCells(w, data, cfgs)
		if err != nil {
			return Table{}, err
		}
		for i, cov := range cells {
			t.Rows = append(t.Rows, []string{name, points[i].Label, pct(cov.Coverage()), pct(cov.DiscardRate())})
		}
	}
	return t, nil
}

// fig10Capacities are the per-node CMOB capacities Figure 10 sweeps.
var fig10Capacities = []int{192, 768, 3 << 10, 12 << 10, 48 << 10, 192 << 10, 768 << 10, 3 << 20}

// fig10Configs is Figure 10's sweep for one workload: the unlimited-CMOB
// peak first, then one cell per capacity (the lookahead is per-workload, so
// unlike Figures 7-9 the config list depends on the workload).
func fig10Configs(w *Workspace, lookahead int) []tse.Config {
	cfgs := make([]tse.Config, 0, len(fig10Capacities)+1)
	peak := paperTSEConfig(w, lookahead)
	peak.CMOBEntries = 0
	cfgs = append(cfgs, peak)
	for _, capBytes := range fig10Capacities {
		cfg := paperTSEConfig(w, lookahead)
		cfg.CMOBEntries = capBytes / tse.CMOBEntryBytes
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// Fig10 reproduces Figure 10: the fraction of peak coverage attained as the
// per-node CMOB capacity grows. Peak and capacity cells ride the same single
// walk of each workload's trace.
func Fig10(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig10",
		Title:   "CMOB storage requirements (% of peak coverage)",
		Columns: []string{"Workload"},
		Notes: "Paper: scientific applications need the CMOB to cover their active shared working set; " +
			"commercial coverage improves smoothly, peaking around 1.5 MB.",
	}
	for _, c := range fig10Capacities {
		t.Columns = append(t.Columns, fmtBytes(c))
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cells, err := sweepCells(w, data, fig10Configs(w, data.Generator.Timing().Lookahead))
		if err != nil {
			return Table{}, err
		}
		peak, rest := cells[0], cells[1:]
		row := []string{name}
		for _, cov := range rest {
			frac := 0.0
			if peak.Coverage() > 0 {
				frac = cov.Coverage() / peak.Coverage()
				if frac > 1 {
					frac = 1
				}
			}
			row = append(row, pct(frac))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dk", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}
