package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/timing"
)

// mixComparison renders one cross-workload-mix experiment: every named
// workload — the parts run standalone, then the mix that colocates them — at
// the identical configuration, so the table shows how much TSE coverage
// survives the phase-alternating interruption the mix introduces.
func mixComparison(w *Workspace, id, title, notes string, names []string) (Table, error) {
	t := Table{
		ID:    id,
		Title: title,
		Columns: []string{
			"Workload", "Consumptions", "Coverage", "Discards", "Speedup", "95% CI",
		},
		Notes: notes,
	}
	for _, name := range names {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cfg := paperTSEConfig(w, data.Generator.Timing().Lookahead)
		cov, _ := analysis.EvaluateTSE(cfg, data.Trace)

		base, withTSE, err := simulatePair(w, data)
		if err != nil {
			return Table{}, err
		}
		speedup := timing.Speedup(base, withTSE)
		_, ci := timing.SpeedupConfidence(base, withTSE)

		t.Rows = append(t.Rows, []string{
			name,
			fmtInt(data.Consumptions),
			pct(cov.Coverage()),
			pct(cov.DiscardRate()),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("±%.3f", ci),
		})
	}
	return t, nil
}

// MixExperiment evaluates the cross-workload mix against the workloads it
// colocates. The mix generator interleaves memkv's short Zipf-hot chain
// streams with cdn's long ordered payload streams on the SAME nodes, in
// phase-alternating bursts, so each node's consumption order keeps switching
// texture — the colocation scenario none of the paper's single-application
// runs exercises.
func MixExperiment(w *Workspace) (Table, error) {
	return mixComparison(w,
		"mix",
		"Cross-workload mix vs its colocated parts (memkv + cdn)",
		"mix = memkv + cdn colocated on the same nodes, phase-alternating 64-access bursts; "+
			"parts are run standalone at the same configuration for comparison.",
		[]string{"memkv", "cdn", "mix"})
}

// MixSciComExperiment evaluates the scientific+commercial mix: em3d's long,
// highly repetitive producer/consumer streams colocated with db2's short
// migratory OLTP streams. Where the memkv+cdn mix alternates two commercial
// textures, this one alternates across the CLASS boundary — the streams the
// TSE follows switch between scientific-length runs and commercial churn on
// every burst, the harshest interruption pattern in the registry.
func MixSciComExperiment(w *Workspace) (Table, error) {
	return mixComparison(w,
		"mix-sci-com",
		"Scientific + commercial mix vs its colocated parts (em3d + db2)",
		"mix-sci-com = em3d + db2 colocated on the same nodes, phase-alternating 64-access bursts; "+
			"parts are run standalone at the same configuration for comparison.",
		[]string{"em3d", "db2", "mix-sci-com"})
}
