package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/timing"
)

// MixExperiment evaluates the cross-workload mix against the workloads it
// colocates. The mix generator interleaves memkv's short Zipf-hot chain
// streams with cdn's long ordered payload streams on the SAME nodes, in
// phase-alternating bursts, so each node's consumption order keeps switching
// texture — the colocation scenario none of the paper's single-application
// runs exercises. The table shows how much TSE coverage survives that
// interruption: the mix row against each part run alone at the identical
// configuration.
func MixExperiment(w *Workspace) (Table, error) {
	t := Table{
		ID:    "mix",
		Title: "Cross-workload mix vs its colocated parts (memkv + cdn)",
		Columns: []string{
			"Workload", "Consumptions", "Coverage", "Discards", "Speedup", "95% CI",
		},
		Notes: "mix = memkv + cdn colocated on the same nodes, phase-alternating 64-access bursts; " +
			"parts are run standalone at the same configuration for comparison.",
	}
	for _, name := range []string{"memkv", "cdn", "mix"} {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cfg := paperTSEConfig(w, data.Generator.Timing().Lookahead)
		cov, _ := analysis.EvaluateTSE(cfg, data.Trace)

		base, withTSE, err := simulatePair(w, data)
		if err != nil {
			return Table{}, err
		}
		speedup := timing.Speedup(base, withTSE)
		_, ci := timing.SpeedupConfidence(base, withTSE)

		t.Rows = append(t.Rows, []string{
			name,
			fmtInt(data.Consumptions),
			pct(cov.Coverage()),
			pct(cov.DiscardRate()),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("±%.3f", ci),
		})
	}
	return t, nil
}
