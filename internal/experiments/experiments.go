// Package experiments contains one driver per experiment in the evaluation:
// the paper's tables and figures (Section 5) plus the extensions grown on
// top of them — the suite-wide comparison across the full workload matrix,
// the node-count sensitivity sweep, and the cross-workload mix studies.
// Each driver reproduces its result on the synthetic workload suite and
// returns a printable Table with the same rows/series the paper (or the
// extension's doc comment) reports. Drivers share one concurrent Workspace,
// so a batch generates every workload's trace exactly once; the sensitivity
// sweeps additionally share one WALK of each trace, evaluating all their
// cells as concurrent consumers of a single pass (see sweepCells). The
// cmd/tsesim CLI and the repository's benchmark harness are thin wrappers
// around this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tsm/internal/analysis"
	"tsm/internal/coherence"
	"tsm/internal/config"
	"tsm/internal/obs"
	"tsm/internal/pipeline"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// Options control the scale of an experiment run.
type Options struct {
	// Nodes is the number of DSM nodes (defaults to the Table 1 value).
	Nodes int
	// Scale is the workload scale factor (1.0 = the full synthetic
	// problem sizes; smaller values shrink traces proportionally).
	Scale float64
	// Seed seeds workload generation.
	Seed int64
	// Workloads selects a subset by name; empty means the full default
	// suite (the paper's seven applications plus the extended matrix —
	// workload.Names(), ten workloads). The cross-workload mixes are Extra:
	// outside the default suite, but selectable here by name.
	Workloads []string
}

// DefaultOptions returns a full-size 16-node run over every workload.
func DefaultOptions() Options {
	return Options{Nodes: 16, Scale: 1.0, Seed: 1}
}

// normalize fills in defaults.
func (o Options) normalize() Options {
	if o.Nodes <= 0 {
		o.Nodes = 16
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier ("fig6", "table3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows.
	Rows [][]string
	// Notes carries provenance remarks (paper values, substitutions).
	Notes string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", t.Notes)
	}
	return b.String()
}

// WorkloadData bundles everything an experiment needs for one workload.
type WorkloadData struct {
	// Spec is the registry entry.
	Spec workload.Spec
	// Generator is the constructed generator (for timing profiles).
	Generator workload.Generator
	// Trace is the classified consumption/write event stream.
	Trace *trace.Trace
	// Consumptions is the consumption count of the trace.
	Consumptions int
}

// Workspace prepares and caches workload traces so that a batch of
// experiments shares them. It is safe for concurrent use: each workload's
// trace is generated exactly once (the first caller generates, concurrent
// callers block on the same entry), so independent experiments and models
// can run in parallel over shared traces without regenerating them.
type Workspace struct {
	opts   Options
	system config.SystemConfig

	// metrics and tracer, when set via Observe, instrument every sweep the
	// batch runs (both are concurrency-safe, so parallel experiments share
	// them freely).
	metrics *obs.Registry
	tracer  *obs.Tracer

	mu   sync.Mutex
	data map[string]*workloadEntry
}

// workloadEntry guards one workload's lazily generated data.
type workloadEntry struct {
	once sync.Once
	d    *WorkloadData
	err  error
}

// NewWorkspace builds a workspace for the given options.
func NewWorkspace(opts Options) *Workspace {
	opts = opts.normalize()
	sys := config.DefaultSystem()
	sys.Nodes = opts.Nodes
	return &Workspace{opts: opts, system: sys, data: make(map[string]*workloadEntry)}
}

// Observe attaches a metrics registry and/or stage tracer to the workspace:
// every figure's one-walk sweep batch then reports per-cell consumer
// throughput (labelled "<workload>/cell<i>") through them. Call before
// running experiments; either argument may be nil.
func (w *Workspace) Observe(m *obs.Registry, tr *obs.Tracer) {
	w.metrics = m
	w.tracer = tr
}

// Options returns the normalised options.
func (w *Workspace) Options() Options { return w.opts }

// System returns the Table 1 system configuration in use.
func (w *Workspace) System() config.SystemConfig { return w.system }

// WorkloadNames returns the selected workload names in registry order. With
// no explicit selection it is the default suite (the cross-workload mixes are
// excluded, keeping the suite-wide goldens independent of registered mixes);
// an explicit selection may name any registered workload, mixes included.
func (w *Workspace) WorkloadNames() []string {
	if len(w.opts.Workloads) == 0 {
		return workload.Names()
	}
	// Preserve registry order while honouring the selection.
	selected := make(map[string]bool, len(w.opts.Workloads))
	for _, n := range w.opts.Workloads {
		selected[strings.ToLower(n)] = true
	}
	var out []string
	for _, n := range workload.AllNames() {
		if selected[n] {
			out = append(out, n)
		}
	}
	return out
}

// Data returns (generating lazily, exactly once, concurrency-safe) the
// trace and generator for a workload.
func (w *Workspace) Data(name string) (*WorkloadData, error) {
	name = strings.ToLower(name)
	w.mu.Lock()
	e, ok := w.data[name]
	if !ok {
		e = &workloadEntry{}
		w.data[name] = e
	}
	w.mu.Unlock()
	e.once.Do(func() { e.d, e.err = w.generate(name) })
	return e.d, e.err
}

// generate builds one workload's trace. Called at most once per workload.
func (w *Workspace) generate(name string) (*WorkloadData, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		known := strings.Join(workload.AllNames(), ", ")
		return nil, fmt.Errorf("experiments: unknown workload %q (known: %s)", name, known)
	}
	gen := spec.New(workload.Config{
		Nodes:    w.opts.Nodes,
		Seed:     w.opts.Seed,
		Scale:    w.opts.Scale,
		Geometry: w.system.Geometry,
	})
	// Classify the accesses with the functional coherence engine using
	// effectively infinite private caches: the paper's framing is that
	// coherence misses are what remain as caches grow, and it keeps the
	// opportunity studies free of capacity-miss noise. Generation streams
	// straight into the engine — only the classified trace the experiments
	// share is materialized, never the raw access stream.
	eng := coherence.New(coherence.Config{
		Nodes:            w.opts.Nodes,
		Geometry:         w.system.Geometry,
		PointersPerEntry: 2,
	})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", name, err)
	}
	return &WorkloadData{
		Spec:         spec,
		Generator:    gen,
		Trace:        tr,
		Consumptions: tr.ConsumptionCount(),
	}, nil
}

// Prefetch generates every selected workload's trace, fanned out over the
// worker pool. Experiments that run afterwards (serially or via RunAll) hit
// only cached traces. It is an error-reporting convenience: Data remains
// the unit of sharing.
func (w *Workspace) Prefetch() error {
	names := w.WorkloadNames()
	_, err := stream.RunOrdered(len(names), 0, func(i int) (struct{}, error) {
		_, err := w.Data(names[i])
		return struct{}{}, err
	})
	return err
}

// RunAll runs a batch of experiments over the shared workspace with the
// independent experiments executing in parallel, and returns their tables
// in input order. Each workload's trace is still generated exactly once
// (the first experiment to need it generates, the rest share), and every
// table is identical to a serial exp.Run(w) loop because the drivers only
// read shared state.
func RunAll(w *Workspace, exps []Experiment) ([]Table, error) {
	return stream.RunOrdered(len(exps), 0, func(i int) (Table, error) {
		return exps[i].Run(w)
	})
}

// sweepCells evaluates every cell of a figure's TSE configuration sweep over
// ONE walk of the workload's trace: the cells become concurrent consumers of
// a single pass through the fan-out engine (analysis.Sweep, ring broadcast),
// instead of one full EvaluateTSE pass per cell. The per-cell results are
// bit-identical to the per-cell passes — EvaluateTSEStream is pinned equal
// to EvaluateTSE — which is what keeps every sweep figure's golden
// byte-identical to the pre-sweep drivers.
func sweepCells(w *Workspace, data *WorkloadData, cfgs []tse.Config) ([]analysis.CoverageResult, error) {
	pcfg := pipeline.Config{Metrics: w.metrics, Tracer: w.tracer}
	if pcfg.Metrics != nil || pcfg.Tracer != nil {
		pcfg.ConsumerNames = make([]string, len(cfgs))
		for i := range cfgs {
			pcfg.ConsumerNames[i] = fmt.Sprintf("%s/cell%d", data.Spec.Name, i)
		}
	}
	results, err := analysis.SweepWith(pcfg, cfgs, stream.TraceSource(data.Trace))
	if err != nil {
		return nil, fmt.Errorf("experiments: sweeping %s: %w", data.Spec.Name, err)
	}
	out := make([]analysis.CoverageResult, len(results))
	for i, r := range results {
		out[i] = r.Coverage
	}
	return out, nil
}

// Runner is the signature of an experiment driver.
type Runner func(w *Workspace) (Table, error)

// Experiment pairs an identifier with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "DSM system parameters (Table 1)", Run: Table1},
		{ID: "table2", Title: "Applications and parameters (Table 2)", Run: Table2},
		{ID: "fig6", Title: "Opportunity to exploit temporal correlation (Figure 6)", Run: Fig6},
		{ID: "fig7", Title: "Sensitivity to the number of compared streams (Figure 7)", Run: Fig7},
		{ID: "fig8", Title: "Effect of stream lookahead on discards (Figure 8)", Run: Fig8},
		{ID: "fig9", Title: "Sensitivity to SVB size (Figure 9)", Run: Fig9},
		{ID: "fig10", Title: "CMOB storage requirements (Figure 10)", Run: Fig10},
		{ID: "fig11", Title: "Interconnect bisection bandwidth overhead (Figure 11)", Run: Fig11},
		{ID: "fig12", Title: "TSE compared to recent prefetchers (Figure 12)", Run: Fig12},
		{ID: "fig13", Title: "Stream length distribution (Figure 13)", Run: Fig13},
		{ID: "table3", Title: "Streaming timeliness (Table 3)", Run: Table3},
		{ID: "fig14", Title: "Performance improvement from TSE (Figure 14)", Run: Fig14},
		{ID: "suite", Title: "Suite-wide TSE comparison (full workload matrix)", Run: Suite},
		{ID: "sensitivity", Title: "TSE coverage sensitivity to node count (4/16/32/64)", Run: Sensitivity},
		{ID: "mix", Title: "Cross-workload mix vs its colocated parts (memkv + cdn)", Run: MixExperiment},
		{ID: "mix-sci-com", Title: "Scientific + commercial mix vs its colocated parts (em3d + db2)", Run: MixSciComExperiment},
	}
}

// ByID looks up an experiment by identifier.
func ByID(id string) (Experiment, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment identifiers (useful for CLI help).
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
