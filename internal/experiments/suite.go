package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/timing"
)

// Suite is the suite-wide comparison across the full workload matrix — the
// paper's seven applications plus the extended scenarios (memkv, pagerank,
// cdn). For every workload it reports the trace size, TSE coverage and
// discards under the paper configuration, and the timing-model speedup with
// its confidence interval: the one-table summary of how temporal streaming
// generalises beyond the workloads the paper measured.
func Suite(w *Workspace) (Table, error) {
	t := Table{
		ID:    "suite",
		Title: "Suite-wide TSE comparison (full workload matrix)",
		Columns: []string{
			"Workload", "Class", "Consumptions", "Coverage", "Discards", "Speedup", "95% CI",
		},
		Notes: "Workloads beyond the paper's seven follow the same Section 4 methodology; " +
			"coverage tracks how repetitive each workload's consumption order is.",
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cfg := paperTSEConfig(w, data.Generator.Timing().Lookahead)
		cov, _ := analysis.EvaluateTSE(cfg, data.Trace)

		base, withTSE, err := simulatePair(w, data)
		if err != nil {
			return Table{}, err
		}
		speedup := timing.Speedup(base, withTSE)
		_, ci := timing.SpeedupConfidence(base, withTSE)

		t.Rows = append(t.Rows, []string{
			name,
			data.Spec.Class.String(),
			fmtInt(data.Consumptions),
			pct(cov.Coverage()),
			pct(cov.DiscardRate()),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("±%.3f", ci),
		})
	}
	return t, nil
}
