package experiments

// Table1 reports the Table 1 system parameters actually used by the models.
func Table1(w *Workspace) (Table, error) {
	t := Table{
		ID:      "table1",
		Title:   "DSM system parameters",
		Columns: []string{"Component", "Configuration"},
		Notes:   "Latencies are converted to cycles at the 4 GHz core clock by internal/config.",
	}
	for _, row := range w.System().Table1() {
		t.Rows = append(t.Rows, []string{row[0], row[1]})
	}
	sys := w.System()
	t.Rows = append(t.Rows,
		[]string{"Derived: memory latency", fmtCycles(sys.MemoryLatencyCycles())},
		[]string{"Derived: 3-hop coherent read", fmtCycles(sys.ThreeHopLatencyCycles())},
		[]string{"Derived: SVB/L2 probe", fmtCycles(sys.SVBHitLatencyCycles())},
	)
	return t, nil
}

// Table2 reports the modelled application parameters plus the actual trace
// sizes produced by the synthetic generators at the selected scale.
func Table2(w *Workspace) (Table, error) {
	t := Table{
		ID:      "table2",
		Title:   "Applications and parameters",
		Columns: []string{"Application", "Class", "Paper parameters (modelled)", "Consumptions in trace"},
		Notes:   "The synthetic generators reproduce sharing behaviour, not the original binaries; see DESIGN.md.",
	}
	for _, name := range w.WorkloadNames() {
		d, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			d.Spec.Name,
			d.Spec.Class.String(),
			d.Spec.Parameters,
			fmtInt(d.Consumptions),
		})
	}
	return t, nil
}

func fmtCycles(c uint64) string { return fmtInt(int(c)) + " cycles" }

func fmtInt(v int) string {
	// Insert thousands separators for readability.
	s := ""
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	for v > 0 {
		chunk := v % 1000
		v /= 1000
		if v > 0 {
			s = padThousands(chunk) + "," + s
		} else {
			s = itoa(chunk) + "," + s
		}
	}
	s = s[:len(s)-1]
	if neg {
		s = "-" + s
	}
	return s
}

func padThousands(v int) string {
	s := itoa(v)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
