package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/interconnect"
	"tsm/internal/timing"
	"tsm/internal/trace"
)

// Fig11 reproduces Figure 11: the interconnect bisection bandwidth consumed
// by TSE overhead traffic (CMOB pointer updates, stream requests, address
// streams and discarded blocks), in GB/s, with the ratio of overhead to base
// traffic annotated — plus the CMOB pin-bandwidth overhead quoted in
// Section 5.4.
func Fig11(w *Workspace) (Table, error) {
	t := Table{
		ID:    "fig11",
		Title: "Interconnect bisection bandwidth overhead",
		Columns: []string{
			"Workload", "Overhead (GB/s)", "Overhead/base traffic", "CMOB pin-bandwidth overhead",
		},
		Notes: "Paper: overhead is below ~4 GB/s per workload (under 7% of a GS1280's 49.6 GB/s " +
			"bisection), with address streams the dominant component; CMOB recording adds 4%-7% pin " +
			"bandwidth for scientific and <1% for commercial workloads.",
	}
	sys := w.System()
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		prof := data.Generator.Timing()
		cfg := paperTSEConfig(w, prof.Lookahead)
		_, full := analysis.EvaluateTSE(cfg, data.Trace)

		// Wall-clock duration of the run, estimated from the baseline
		// timing model (aggregate cycles divided by node count).
		base, err := timing.Simulate(data.Trace, timing.Params{
			System: sys, Profile: prof, Nodes: w.Options().Nodes,
		})
		if err != nil {
			return Table{}, err
		}
		wallCycles := base.TotalCycles() / uint64(w.Options().Nodes)
		overheadGBs := interconnect.BandwidthGBs(full.Traffic.OverheadBytes(), wallCycles, sys.ClockGHz)

		// Baseline traffic denominator: all classified events move traffic
		// in the base system — consumptions and other read misses carry a
		// request plus a data reply, writes on average carry a request plus
		// invalidation/acknowledgement traffic and sometimes a data reply.
		counts := data.Trace.CountByKind()
		blockMsg := uint64(sys.Geometry.BlockSize) + 16
		baseBytes := uint64(counts[trace.KindConsumption])*blockMsg +
			uint64(counts[trace.KindReadMiss])*blockMsg +
			uint64(counts[trace.KindWrite])*(blockMsg/2)
		overheadRatio := 0.0
		if baseBytes > 0 {
			overheadRatio = float64(full.Traffic.OverheadBytes()) / float64(baseBytes)
		}

		// CMOB pin bandwidth: every consumption appends one 6-byte entry,
		// packetized into block-sized writes to local memory; compare with
		// the node's overall off-chip data traffic.
		cmobBytes := full.Consumptions * 6
		pinOverhead := 0.0
		if baseBytes > 0 {
			pinOverhead = float64(cmobBytes) / float64(baseBytes)
		}

		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", overheadGBs),
			pct(overheadRatio),
			pct(pinOverhead),
		})
	}
	return t, nil
}
