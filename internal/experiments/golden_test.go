package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden-file regression harness pins the rendered output of every
// experiment driver at a fixed small configuration. Any refactor of the
// generators, the coherence engine, the TSE model, the timing model or the
// table renderers that changes a single byte of any table fails here —
// which is exactly the property that lets the streamed/parallel/sharded
// rewrites claim bit-identity to the seed numbers.
//
// To regenerate after an intentional change:
//
//	go test ./internal/experiments -run TestGoldenTables -update
//
// and review the diff like any other code change.
var updateGolden = flag.Bool("update", false, "rewrite the golden files with the current outputs")

// goldenWorkspace fixes the configuration the goldens are pinned at: one
// paper scientific workload, one paper commercial workload, and one workload
// from the extended matrix, at the same small scale the unit tests use.
func goldenWorkspace() *Workspace {
	return NewWorkspace(Options{
		Nodes: 4, Scale: 0.05, Seed: 5,
		Workloads: []string{"em3d", "db2", "memkv"},
	})
}

func TestGoldenTables(t *testing.T) {
	w := goldenWorkspace()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			got := tbl.String()
			path := filepath.Join("testdata", e.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGoldenTables -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from the pinned golden.\n--- got ---\n%s--- want ---\n%s"+
					"If the change is intentional, regenerate with -update and review the diff.",
					e.ID, got, want)
			}
		})
	}
}
