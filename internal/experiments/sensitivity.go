package experiments

import (
	"fmt"

	"tsm/internal/stream"
	"tsm/internal/tse"
)

// sensitivityNodeCounts are the machine sizes the sensitivity sweep spans.
// The paper evaluates a fixed 16-node DSM; the sweep brackets it to study
// how TSE coverage scales with the number of sharers — more nodes means more
// recorded consumption orders to stream from, but also more invalidation
// noise cutting streams short.
var sensitivityNodeCounts = []int{4, 16, 32, 64}

// Sensitivity is the node-count sensitivity sweep: TSE coverage (and the
// discard rate, the accuracy cost that usually moves with it) for every
// selected workload at 4/16/32/64 nodes, everything else pinned at the paper
// configuration. Each node count gets its own sub-workspace — node count
// changes the generated trace, so nothing can be shared with the caller's
// workspace — and the four sweeps generate their traces in parallel over the
// worker pool.
func Sensitivity(w *Workspace) (Table, error) {
	t := Table{
		ID:    "sensitivity",
		Title: "TSE coverage sensitivity to node count",
		Notes: "Same Section 4 methodology per node count; the caller's node count is ignored. " +
			"Coverage tracks how much consumption order survives as sharers are added.",
	}
	t.Columns = []string{"Workload", "Class"}
	for _, n := range sensitivityNodeCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("Cov@%d", n), fmt.Sprintf("Disc@%d", n))
	}

	// One sub-workspace per node count, inheriting scale/seed/selection.
	subs := make([]*Workspace, len(sensitivityNodeCounts))
	for i, n := range sensitivityNodeCounts {
		subs[i] = NewWorkspace(Options{
			Nodes: n, Scale: w.opts.Scale, Seed: w.opts.Seed, Workloads: w.opts.Workloads,
		})
	}

	// Evaluate the sweep cells in parallel: one task per node count, each
	// covering every workload at that size. Results merge in sweep order, so
	// the table is deterministic.
	type column struct {
		coverage []string
		discards []string
	}
	names := w.WorkloadNames()
	cols, err := stream.RunOrdered(len(subs), 0, func(i int) (column, error) {
		sub := subs[i]
		var col column
		for _, name := range names {
			data, err := sub.Data(name)
			if err != nil {
				return column{}, err
			}
			// Each (node count, workload) cell has its own trace — node
			// count changes generation — so the sweep here is width-one:
			// the same single-pass evaluator as Figures 7-10, one walk of
			// this cell's trace.
			cfg := paperTSEConfig(sub, data.Generator.Timing().Lookahead)
			cells, err := sweepCells(w, data, []tse.Config{cfg})
			if err != nil {
				return column{}, err
			}
			cov := cells[0]
			col.coverage = append(col.coverage, pct(cov.Coverage()))
			col.discards = append(col.discards, pct(cov.DiscardRate()))
		}
		return col, nil
	})
	if err != nil {
		return Table{}, err
	}

	for wi, name := range names {
		data, err := subs[0].Data(name)
		if err != nil {
			return Table{}, err
		}
		row := []string{name, data.Spec.Class.String()}
		for _, col := range cols {
			row = append(row, col.coverage[wi], col.discards[wi])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
