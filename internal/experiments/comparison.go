package experiments

import (
	"tsm/internal/analysis"
	"tsm/internal/prefetch"
)

// Fig12 reproduces Figure 12: coverage and discards of the stride stream
// buffer, GHB with distance correlation (G/DC), GHB with address correlation
// (G/AC), and TSE with its paper configuration (1.5 MB CMOB).
func Fig12(w *Workspace) (Table, error) {
	t := Table{
		ID:      "fig12",
		Title:   "TSE compared to recent prefetchers",
		Columns: []string{"Workload", "Technique", "Coverage", "Discards"},
		Notes: "Paper: the stride prefetcher rarely fires; GHB G/AC beats G/DC on discards but its " +
			"512-entry history is too small, so TSE wins coverage on every workload.",
	}
	nodes := w.Options().Nodes
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}

		strideCfg := prefetch.DefaultStrideConfig()
		strideCfg.Nodes = nodes
		stride := analysis.EvaluateModel(prefetch.NewStride(strideCfg), data.Trace)

		gdcCfg := prefetch.DefaultGHBConfig(prefetch.GDC)
		gdcCfg.Nodes = nodes
		gdc := analysis.EvaluateModel(prefetch.NewGHB(gdcCfg), data.Trace)

		gacCfg := prefetch.DefaultGHBConfig(prefetch.GAC)
		gacCfg.Nodes = nodes
		gac := analysis.EvaluateModel(prefetch.NewGHB(gacCfg), data.Trace)

		tseCfg := paperTSEConfig(w, data.Generator.Timing().Lookahead)
		tseCov, _ := analysis.EvaluateTSE(tseCfg, data.Trace)

		for _, r := range []analysis.CoverageResult{stride, gdc, gac, tseCov} {
			t.Rows = append(t.Rows, []string{name, r.Name, pct(r.Coverage()), pct(r.DiscardRate())})
		}
	}
	return t, nil
}
