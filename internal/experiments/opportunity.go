package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/tse"
)

// Fig6 reproduces Figure 6: the cumulative fraction of consumptions whose
// temporal correlation distance from the previous consumption is within ±d,
// for d up to 16. Scientific workloads should be near 100% at d=1;
// commercial workloads roughly 40-65% by d=8-16.
func Fig6(w *Workspace) (Table, error) {
	distances := []int{1, 2, 4, 8, 16}
	t := Table{
		ID:      "fig6",
		Title:   "Opportunity to exploit temporal correlation",
		Columns: []string{"Workload"},
		Notes: "Paper: scientific applications show >93% at distance 1; commercial workloads " +
			"reach 40%-65% by distance 8-16.",
	}
	for _, d := range distances {
		t.Columns = append(t.Columns, fmt.Sprintf("±%d", d))
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		res := analysis.CorrelationDistance(data.Trace, w.Options().Nodes)
		row := []string{name}
		for _, d := range distances {
			row = append(row, pct(res.CumulativeFraction(d)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: the cumulative fraction of all SVB hits
// contributed by streams of at most a given length, using the paper's TSE
// configuration.
func Fig13(w *Workspace) (Table, error) {
	buckets := []int{1, 4, 8, 32, 128, 512, 2048, 8192, 131072}
	t := Table{
		ID:      "fig13",
		Title:   "Stream length (cumulative fraction of SVB hits)",
		Columns: []string{"Workload"},
		Notes: "Paper: scientific applications are dominated by streams of hundreds to thousands of " +
			"blocks; commercial workloads obtain 30%-45% of coverage from streams shorter than 8 blocks.",
	}
	for _, b := range buckets {
		t.Columns = append(t.Columns, fmt.Sprintf("<=%d", b))
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		cfg := paperTSEConfig(w, data.Generator.Timing().Lookahead)
		_, full := analysis.EvaluateTSE(cfg, data.Trace)
		cdf := analysis.StreamLengthCDF(full, buckets)
		row := []string{name}
		for _, v := range cdf {
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// paperTSEConfig returns the paper's chosen TSE configuration (two compared
// streams, 32-entry SVB, 1.5 MB CMOB) with the per-workload lookahead of
// Table 3.
func paperTSEConfig(w *Workspace, lookahead int) tse.Config {
	cfg := w.System().DefaultTSE()
	cfg.Nodes = w.Options().Nodes
	if lookahead > 0 {
		cfg.Lookahead = lookahead
	}
	return cfg
}

// unconstrainedTSEConfig returns the configuration used for the opportunity
// and accuracy studies of Section 5.2 (unlimited SVB storage, unlimited
// stream queues, near-infinite CMOB capacity).
func unconstrainedTSEConfig(w *Workspace, comparedStreams, lookahead int) tse.Config {
	cfg := w.System().DefaultTSE()
	cfg.Nodes = w.Options().Nodes
	cfg.CMOBEntries = 0
	cfg.SVBEntries = 0
	cfg.StreamQueues = 64
	cfg.ComparedStreams = comparedStreams
	cfg.Lookahead = lookahead
	return cfg
}
