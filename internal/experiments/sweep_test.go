package experiments

import (
	"testing"

	"tsm/internal/analysis"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// countingSource counts Next calls: one full pass over an N-event trace is
// exactly N+1 calls (the events plus one io.EOF).
type countingSource struct {
	src   stream.Source
	nexts int
}

func (c *countingSource) Next() (trace.Event, error) {
	c.nexts++
	return c.src.Next()
}

// TestFigureSweepsWalkTraceOncePerFigure is the sweep refactor's acceptance
// test: for every sweep figure, evaluating the figure's whole config list
// through the sweep evaluator must read each workload's stream exactly ONCE
// — N events + one EOF — not once per sweep cell, while every cell's result
// stays bit-identical to the pre-sweep per-cell EvaluateTSE pass (which,
// together with the goldens, pins the rendered tables byte for byte).
func TestFigureSweepsWalkTraceOncePerFigure(t *testing.T) {
	w := testWorkspace(t)
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			t.Fatal(err)
		}
		figures := []struct {
			id   string
			cfgs []tse.Config
		}{
			{"fig7", fig7Configs(w)},
			{"fig8", fig8Configs(w)},
			{"fig9", fig9Configs(w)},
			{"fig10", fig10Configs(w, data.Generator.Timing().Lookahead)},
			{"sensitivity-cell", []tse.Config{paperTSEConfig(w, data.Generator.Timing().Lookahead)}},
		}
		for _, fig := range figures {
			if len(fig.cfgs) < 1 {
				t.Fatalf("%s: empty sweep", fig.id)
			}
			src := &countingSource{src: stream.TraceSource(data.Trace)}
			results, err := analysis.Sweep(fig.cfgs, src)
			if err != nil {
				t.Fatal(err)
			}
			if want := data.Trace.Len() + 1; src.nexts != want {
				t.Errorf("%s/%s: %d-cell sweep read the stream %d times, want %d (once per figure, not per cell)",
					fig.id, name, len(fig.cfgs), src.nexts, want)
			}
			for i, cfg := range fig.cfgs {
				wantCov, _ := analysis.EvaluateTSE(cfg, data.Trace)
				if results[i].Coverage != wantCov {
					t.Errorf("%s/%s cell %d: sweep %+v != per-cell EvaluateTSE %+v",
						fig.id, name, i, results[i].Coverage, wantCov)
				}
			}
		}
	}
}

// TestSweepCellsMatchesPerCell: the drivers' shared helper must return the
// cells in config order with the same results as per-cell evaluation.
func TestSweepCellsMatchesPerCell(t *testing.T) {
	w := testWorkspace(t)
	data, err := w.Data("db2")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := fig7Configs(w)
	cells, err := sweepCells(w, data, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cfgs) {
		t.Fatalf("sweepCells returned %d cells, want %d", len(cells), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, _ := analysis.EvaluateTSE(cfg, data.Trace)
		if cells[i] != want {
			t.Errorf("cell %d: %+v != %+v", i, cells[i], want)
		}
	}
}
