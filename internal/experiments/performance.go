package experiments

import (
	"fmt"

	"tsm/internal/analysis"
	"tsm/internal/timing"
)

// Table3 reproduces Table 3: per workload, the trace-measured coverage, the
// consumption MLP, the chosen stream lookahead, and the full and partial
// coverage observed in the timing model.
func Table3(w *Workspace) (Table, error) {
	t := Table{
		ID:    "table3",
		Title: "Streaming timeliness",
		Columns: []string{
			"Workload", "Trace Cov.", "MLP", "Lookahead", "Full Cov.", "Partial Cov.", "Partial hidden",
		},
		Notes: "Paper: em3d 100/94/5, moldyn 98/83/14, ocean 98/27/57, Apache 43/26/16, DB2 60/36/11, " +
			"Oracle 53/34/9, Zeus 43/29/14 (trace/full/partial coverage, %).",
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		prof := data.Generator.Timing()
		cfg := paperTSEConfig(w, prof.Lookahead)
		traceCov, _ := analysis.EvaluateTSE(cfg, data.Trace)

		tseRes, err := timing.Simulate(data.Trace, timing.Params{
			System: w.System(), Profile: prof, Nodes: w.Options().Nodes, TSE: &cfg,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			pct(traceCov.Coverage()),
			fmt.Sprintf("%.1f", prof.MLP),
			fmt.Sprintf("%d", prof.Lookahead),
			pct(tseRes.FullCoverage()),
			pct(tseRes.PartialCoverage()),
			pct(tseRes.PartialLatencyHidden),
		})
	}
	return t, nil
}

// simulatePair runs the paired baseline and TSE timing simulations for one
// workload under the paper configuration — the shared core of Fig14 and the
// suite-wide comparison, kept in one place so both tables always agree.
func simulatePair(w *Workspace, data *WorkloadData) (base, withTSE timing.Result, err error) {
	prof := data.Generator.Timing()
	params := timing.Params{System: w.System(), Profile: prof, Nodes: w.Options().Nodes}
	base, err = timing.Simulate(data.Trace, params)
	if err != nil {
		return base, withTSE, err
	}
	cfg := paperTSEConfig(w, prof.Lookahead)
	params.TSE = &cfg
	withTSE, err = timing.Simulate(data.Trace, params)
	return base, withTSE, err
}

// Fig14 reproduces Figure 14: the execution-time breakdown of the base and
// TSE systems (normalised to the base run) and the TSE speedup with a 95%
// confidence interval from paired measurement segments.
func Fig14(w *Workspace) (Table, error) {
	t := Table{
		ID:    "fig14",
		Title: "Performance improvement from TSE",
		Columns: []string{
			"Workload", "Base busy/other/coherent", "TSE busy/other/coherent (norm.)", "Speedup", "95% CI",
		},
		Notes: "Paper: speedups of 1.07-3.29 for scientific workloads (em3d highest) and 1.06-1.21 for " +
			"commercial workloads (DB2 highest).",
	}
	for _, name := range w.WorkloadNames() {
		data, err := w.Data(name)
		if err != nil {
			return Table{}, err
		}
		base, withTSE, err := simulatePair(w, data)
		if err != nil {
			return Table{}, err
		}

		baseTotal := float64(base.TotalCycles())
		bb, bo, bc := base.Breakdown.Fractions()
		tb := float64(withTSE.Breakdown.BusyCycles) / baseTotal
		to := float64(withTSE.Breakdown.OtherStallCycles) / baseTotal
		tc := float64(withTSE.Breakdown.CoherentStallCycles) / baseTotal

		speedup := timing.Speedup(base, withTSE)
		_, ci := timing.SpeedupConfidence(base, withTSE)

		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f/%.2f/%.2f", bb, bo, bc),
			fmt.Sprintf("%.2f/%.2f/%.2f", tb, to, tc),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("±%.3f", ci),
		})
	}
	return t, nil
}
