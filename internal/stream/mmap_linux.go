//go:build linux

package stream

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and advises the kernel that the
// decode will sweep the file forward (MADV_SEQUENTIAL: aggressive
// readahead, early page reclaim behind the sweep) and wants it resident
// (MADV_WILLNEED: start readahead now, ahead of the first worker touch).
// The advice calls are best-effort — the mapping is valid without them.
func mapFile(f *os.File, size int64) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	syscall.Madvise(data, syscall.MADV_WILLNEED)
	return data, nil
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) error { return syscall.Munmap(data) }
