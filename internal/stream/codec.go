// The binary trace codec. Format (all integers varint-encoded unless noted):
//
//	magic   "TSMS" (4 bytes)
//	version 1 byte (currently Version)
//	meta    workload name (uvarint length + bytes), nodes (uvarint),
//	        scale (8 bytes, IEEE 754 little endian), seed (zigzag varint),
//	        repeat (8 bytes, IEEE 754 little endian; version ≥ 2 only —
//	          version 1 streams decode with Repeat 0, i.e. the default)
//	chunks  repeated: event count n (uvarint, n > 0), then n events:
//	          kind (1 byte)
//	          node (uvarint)
//	          block delta (zigzag varint, relative to the previous event's
//	            block within the chunk; the first event of a chunk is
//	            relative to zero, so chunks decode independently)
//	          producer+1 (uvarint; mem.InvalidNode encodes as 0)
//	end     a zero chunk count, then the total event count (uvarint)
//
// Sequence numbers are not stored: they are implicit in stream order. Delta
// encoding matters because consecutive consumptions in a stream are near one
// another in the address space, so most block deltas fit in one or two
// bytes instead of eight.
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync/atomic"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// Magic identifies the streamed trace format (distinct from the legacy
// fixed-width "TSM1" format in internal/trace).
var Magic = [4]byte{'T', 'S', 'M', 'S'}

// Version is the current codec version. Writers always emit it; readers
// also accept version 1 (which lacks the repeat metadata field) so traces
// written before the run-length knob existed stay replayable.
const Version = 2

// versionNoRepeat is the last codec version without the repeat meta field.
const versionNoRepeat = 1

// DefaultChunkEvents is the number of events buffered per chunk.
const DefaultChunkEvents = 4096

// maxChunkEvents bounds the per-chunk allocation a reader will make, so a
// corrupt count cannot trigger a huge allocation.
const maxChunkEvents = 1 << 20

// maxMetaNodes and maxMetaScale bound the decoded metadata: a corrupt
// header must fail with ErrCorrupt, not propagate absurd parameters into
// generator reconstruction (where a huge node count would try to allocate).
const (
	maxMetaNodes = 1 << 16
	maxMetaScale = 1e6
)

// ErrBadMagic is returned when a stream does not start with Magic.
var ErrBadMagic = errors.New("stream: bad magic (not a TSMS trace)")

// ErrVersion is returned (wrapped, with the found version) when the codec
// version is unsupported.
var ErrVersion = errors.New("stream: unsupported trace version")

// ErrTruncated is returned (wrapped) when a stream ends before its
// end-of-stream marker and trailer.
var ErrTruncated = errors.New("stream: truncated trace")

// ErrCorrupt is returned (wrapped) when a structurally invalid value is
// decoded.
var ErrCorrupt = errors.New("stream: corrupt trace")

// Meta describes how a trace was generated, so a separate process can
// reconstruct the matching generator (for timing profiles) and evaluation
// options without re-running generation.
type Meta struct {
	// Workload is the canonical lower-case workload name ("db2", "em3d"...).
	// Empty for traces that did not come from the workload suite.
	Workload string
	// Nodes is the number of DSM nodes the trace was generated with.
	Nodes int
	// Scale is the workload scale factor.
	Scale float64
	// Seed is the generation seed.
	Seed int64
	// Repeat is the run-length multiplier the trace was generated with
	// (workload.Config.Repeat). Zero means the default of 1 — the value
	// version 1 streams decode with.
	Repeat float64
}

// String summarises the metadata in one line.
func (m Meta) String() string {
	name := m.Workload
	if name == "" {
		name = "(custom)"
	}
	s := fmt.Sprintf("%s nodes=%d scale=%g seed=%d", name, m.Nodes, m.Scale, m.Seed)
	if m.Repeat > 0 && m.Repeat != 1 {
		s += fmt.Sprintf(" repeat=%g", m.Repeat)
	}
	return s
}

// Writer encodes events into the chunked binary format. It implements Sink;
// Close emits the end-of-stream marker and trailer, so a Writer that is not
// closed produces a stream Readers reject as truncated.
type Writer struct {
	w       *bufio.Writer
	chunk   []trace.Event
	scratch []byte
	count   uint64
	perCh   int
	closed  bool
	err     error
}

// NewWriter writes the header and metadata and returns a Writer.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, Magic[:]...)
	hdr = append(hdr, Version)
	name := strings.ToLower(meta.Workload)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(meta.Nodes))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(meta.Scale))
	hdr = binary.AppendVarint(hdr, meta.Seed)
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(meta.Repeat))
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("stream: writing header: %w", err)
	}
	return &Writer{w: bw, perCh: DefaultChunkEvents}, nil
}

// Write implements Sink. The event's Seq field is not stored.
func (w *Writer) Write(e trace.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = errors.New("stream: write after Close")
		return w.err
	}
	w.chunk = append(w.chunk, e)
	w.count++
	if len(w.chunk) >= w.perCh {
		return w.flushChunk()
	}
	return nil
}

// flushChunk encodes and emits the buffered events as one chunk.
func (w *Writer) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	buf := w.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(w.chunk)))
	prev := uint64(0)
	for _, e := range w.chunk {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.Node))
		buf = binary.AppendVarint(buf, int64(uint64(e.Block)-prev))
		prev = uint64(e.Block)
		buf = binary.AppendUvarint(buf, uint64(int64(e.Producer)+1))
	}
	w.scratch = buf[:0]
	w.chunk = w.chunk[:0]
	if _, err := w.w.Write(buf); err != nil {
		w.err = fmt.Errorf("stream: writing chunk: %w", err)
		return w.err
	}
	return nil
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the final chunk, writes the end-of-stream marker and the
// event-count trailer, and flushes the underlying buffer. It implements
// Sink and is idempotent.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	tail := binary.AppendUvarint(nil, 0)
	tail = binary.AppendUvarint(tail, w.count)
	if _, err := w.w.Write(tail); err != nil {
		w.err = fmt.Errorf("stream: writing trailer: %w", err)
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("stream: flushing: %w", err)
		return w.err
	}
	return nil
}

// Reader decodes a stream produced by Writer. It implements Source.
type Reader struct {
	r     *bufio.Reader
	meta  Meta
	chunk []trace.Event
	pos   int
	next  uint64
	done  bool
}

// NewReader validates the header, decodes the metadata and returns a
// Reader. It fails with ErrBadMagic or a wrapped ErrVersion on foreign or
// incompatible streams.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", errTrunc(err))
	}
	if *(*[4]byte)(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != Version && hdr[4] != versionNoRepeat {
		return nil, fmt.Errorf("%w: got %d, want %d (or %d)", ErrVersion, hdr[4], Version, versionNoRepeat)
	}
	version := hdr[4]
	rd := &Reader{r: br}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	if n > 1024 {
		return nil, fmt.Errorf("%w: workload name length %d", ErrCorrupt, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	rd.meta.Workload = string(name)
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	if nodes > maxMetaNodes {
		return nil, fmt.Errorf("%w: node count %d", ErrCorrupt, nodes)
	}
	rd.meta.Nodes = int(nodes)
	var scale [8]byte
	if _, err := io.ReadFull(br, scale[:]); err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	rd.meta.Scale = math.Float64frombits(binary.LittleEndian.Uint64(scale[:]))
	if math.IsNaN(rd.meta.Scale) || math.IsInf(rd.meta.Scale, 0) || rd.meta.Scale < 0 || rd.meta.Scale > maxMetaScale {
		return nil, fmt.Errorf("%w: scale %v", ErrCorrupt, rd.meta.Scale)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	rd.meta.Seed = seed
	if version >= 2 {
		var repeat [8]byte
		if _, err := io.ReadFull(br, repeat[:]); err != nil {
			return nil, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
		}
		rd.meta.Repeat = math.Float64frombits(binary.LittleEndian.Uint64(repeat[:]))
		if math.IsNaN(rd.meta.Repeat) || math.IsInf(rd.meta.Repeat, 0) || rd.meta.Repeat < 0 || rd.meta.Repeat > maxMetaScale {
			return nil, fmt.Errorf("%w: repeat %v", ErrCorrupt, rd.meta.Repeat)
		}
	}
	return rd, nil
}

// errTrunc maps any EOF while structure remains expected to ErrTruncated.
func errTrunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// Meta returns the stream metadata decoded from the header.
func (r *Reader) Meta() Meta { return r.meta }

// Next implements Source, returning io.EOF after the last event of a
// well-formed stream and a wrapped ErrTruncated/ErrCorrupt otherwise.
func (r *Reader) Next() (trace.Event, error) {
	for r.pos >= len(r.chunk) {
		if r.done {
			return trace.Event{}, io.EOF
		}
		if err := r.readChunk(); err != nil {
			return trace.Event{}, err
		}
	}
	e := r.chunk[r.pos]
	e.Seq = r.next
	r.pos++
	r.next++
	return e, nil
}

// readChunk decodes the next chunk, or verifies the trailer on the end
// marker.
func (r *Reader) readChunk() error {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("stream: reading chunk count: %w", errTrunc(err))
	}
	if n == 0 {
		total, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fmt.Errorf("stream: reading trailer: %w", errTrunc(err))
		}
		if total != r.next {
			return fmt.Errorf("%w: trailer count %d, decoded %d events", ErrCorrupt, total, r.next)
		}
		r.done = true
		r.chunk = r.chunk[:0]
		r.pos = 0
		return nil
	}
	if n > maxChunkEvents {
		return fmt.Errorf("%w: chunk of %d events", ErrCorrupt, n)
	}
	if cap(r.chunk) < int(n) {
		r.chunk = make([]trace.Event, 0, n)
	}
	r.chunk = r.chunk[:0]
	r.pos = 0
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		kind, err := r.r.ReadByte()
		if err != nil {
			return fmt.Errorf("stream: reading event kind: %w", errTrunc(err))
		}
		node, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fmt.Errorf("stream: reading event node: %w", errTrunc(err))
		}
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			return fmt.Errorf("stream: reading event block: %w", errTrunc(err))
		}
		prev += uint64(delta)
		prod, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fmt.Errorf("stream: reading event producer: %w", errTrunc(err))
		}
		r.chunk = append(r.chunk, trace.Event{
			Kind:     trace.EventKind(kind),
			Node:     mem.NodeID(node),
			Block:    mem.BlockAddr(prev),
			Producer: mem.NodeID(int64(prod) - 1),
		})
	}
	return nil
}

// WriteFile streams src into a new trace file at path, fsync-free but fully
// flushed and closed.
func WriteFile(path string, meta Meta, src Source) (n uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() { err = CloseMerge(f, err) }()
	w, err := NewWriter(f, meta)
	if err != nil {
		return 0, err
	}
	if n, err = Copy(w, src); err != nil {
		return n, err
	}
	return n, w.Close()
}

// countingReader counts the bytes handed to the decode buffer with an
// atomic, so another goroutine (a progress meter) can read the position
// without racing the decoding goroutine — unlike Seek-based position
// queries, which would.
type countingReader struct {
	r io.Reader
	n atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// FileReader is a Reader over an open trace file.
type FileReader struct {
	*Reader
	f     *os.File
	count *countingReader
	size  int64
}

// OpenFile opens path for streaming reads. The caller must Close it.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var size int64
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	count := &countingReader{r: f}
	r, err := NewReader(count)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileReader{Reader: r, f: f, count: count, size: size}, nil
}

// Fraction reports the file fraction consumed by the decoder so far, in
// [0, 1] — suitable as a completion estimate for progress/ETA reporting.
// Safe to call from any goroutine while another decodes; returns 0 when the
// file size is unknown.
func (r *FileReader) Fraction() float64 {
	if r.size <= 0 {
		return 0
	}
	f := float64(r.count.n.Load()) / float64(r.size)
	if f > 1 {
		f = 1
	}
	return f
}

// Close closes the underlying file.
func (r *FileReader) Close() error { return r.f.Close() }

// LoadFile reads a whole trace file into memory.
func LoadFile(path string) (*trace.Trace, Meta, error) {
	r, err := OpenFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	tr, err := Collect(r)
	if err = CloseMerge(r, err); err != nil {
		return nil, r.Meta(), err
	}
	return tr, r.Meta(), nil
}
