// The binary trace codec. Format (all integers varint-encoded unless noted):
//
//	magic   "TSMS" (4 bytes)
//	version 1 byte (currently Version)
//	meta    workload name (uvarint length + bytes), nodes (uvarint),
//	        scale (8 bytes, IEEE 754 little endian), seed (zigzag varint),
//	        repeat (8 bytes, IEEE 754 little endian; version ≥ 2 only —
//	          version 1 streams decode with Repeat 0, i.e. the default)
//	chunks  repeated: event count n (uvarint, n > 0), then n events:
//	          kind (1 byte)
//	          node (uvarint)
//	          block delta (zigzag varint, relative to the previous event's
//	            block within the chunk; the first event of a chunk is
//	            relative to zero, so chunks decode independently)
//	          producer+1 (uvarint; mem.InvalidNode encodes as 0)
//	end     a zero chunk count, then the total event count (uvarint)
//	footer  version ≥ 3 only: the chunk index (see index.go) — a payload of
//	          chunk count (uvarint), then per chunk the file offset
//	          (uvarint, delta from the previous chunk's offset; the first
//	          is absolute) and event count (uvarint), then the end-marker
//	          offset (uvarint, delta from the last chunk's offset) —
//	          followed by the payload length (8 bytes little endian) and
//	          the footer magic "TSMI", so a seeking reader locates the
//	          index from the end of the file without decoding the stream
//
// A stream ends immediately after its trailer (v1/v2) or footer (v3):
// readers verify EOF and fail with ErrCorrupt on trailing bytes, so a
// concatenated or padded file cannot silently decode as a shorter trace.
//
// Sequence numbers are not stored: they are implicit in stream order. Delta
// encoding matters because consecutive consumptions in a stream are near one
// another in the address space, so most block deltas fit in one or two
// bytes instead of eight. Block deltas reset at chunk boundaries, so each
// chunk decodes independently — which is what the chunk index exploits for
// seeking (partial replay) and parallel-by-chunk decode (pdecode.go).
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync/atomic"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// Magic identifies the streamed trace format (distinct from the legacy
// fixed-width "TSM1" format in internal/trace).
var Magic = [4]byte{'T', 'S', 'M', 'S'}

// Version is the current codec version. Writers emit it by default; readers
// also accept version 2 (no chunk-index footer) and version 1 (additionally
// lacks the repeat metadata field) so older traces stay replayable — they
// just decode serially, since only version ≥ 3 carries the index that
// seeking and parallel decode need.
const Version = 3

// VersionNoIndex is the last codec version without the chunk-index footer.
// NewWriterVersion can still emit it (tracegen -no-index), keeping the
// serial fallback path exercised end to end.
const VersionNoIndex = 2

// versionNoRepeat is the last codec version without the repeat meta field.
const versionNoRepeat = 1

// DefaultChunkEvents is the number of events buffered per chunk.
const DefaultChunkEvents = 4096

// maxChunkEvents bounds the per-chunk allocation a reader will make, so a
// corrupt count cannot trigger a huge allocation.
const maxChunkEvents = 1 << 20

// maxMetaNodes and maxMetaScale bound the decoded metadata: a corrupt
// header must fail with ErrCorrupt, not propagate absurd parameters into
// generator reconstruction (where a huge node count would try to allocate).
const (
	maxMetaNodes = 1 << 16
	maxMetaScale = 1e6
)

// ErrBadMagic is returned when a stream does not start with Magic.
var ErrBadMagic = errors.New("stream: bad magic (not a TSMS trace)")

// ErrVersion is returned (wrapped, with the found version) when the codec
// version is unsupported.
var ErrVersion = errors.New("stream: unsupported trace version")

// ErrTruncated is returned (wrapped) when a stream ends before its
// end-of-stream marker and trailer.
var ErrTruncated = errors.New("stream: truncated trace")

// ErrCorrupt is returned (wrapped) when a structurally invalid value is
// decoded.
var ErrCorrupt = errors.New("stream: corrupt trace")

// Meta describes how a trace was generated, so a separate process can
// reconstruct the matching generator (for timing profiles) and evaluation
// options without re-running generation.
type Meta struct {
	// Workload is the canonical lower-case workload name ("db2", "em3d"...).
	// Empty for traces that did not come from the workload suite.
	Workload string
	// Nodes is the number of DSM nodes the trace was generated with.
	Nodes int
	// Scale is the workload scale factor.
	Scale float64
	// Seed is the generation seed.
	Seed int64
	// Repeat is the run-length multiplier the trace was generated with
	// (workload.Config.Repeat). Zero means the default of 1 — the value
	// version 1 streams decode with.
	Repeat float64
}

// String summarises the metadata in one line.
func (m Meta) String() string {
	name := m.Workload
	if name == "" {
		name = "(custom)"
	}
	s := fmt.Sprintf("%s nodes=%d scale=%g seed=%d", name, m.Nodes, m.Scale, m.Seed)
	if m.Repeat > 0 && m.Repeat != 1 {
		s += fmt.Sprintf(" repeat=%g", m.Repeat)
	}
	return s
}

// Writer encodes events into the chunked binary format. It implements Sink;
// Close emits the end-of-stream marker and trailer, so a Writer that is not
// closed produces a stream Readers reject as truncated.
type Writer struct {
	w       *bufio.Writer
	chunk   []trace.Event
	scratch []byte
	count   uint64
	perCh   int
	version byte
	off     int64      // bytes emitted so far (header + flushed chunks)
	index   []ChunkRef // offset/count per flushed chunk (version ≥ 3)
	closed  bool
	err     error
}

// NewWriter writes the header and metadata and returns a Writer emitting
// the current codec version (indexed).
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	return NewWriterVersion(w, meta, Version)
}

// NewWriterVersion is NewWriter with an explicit codec version, so older
// formats (version 2: no chunk-index footer; version 1: additionally no
// repeat field) can still be produced for back-compat testing and for
// consumers that stream rather than seek.
func NewWriterVersion(w io.Writer, meta Meta, version byte) (*Writer, error) {
	if version < versionNoRepeat || version > Version {
		return nil, fmt.Errorf("%w: cannot write version %d", ErrVersion, version)
	}
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, Magic[:]...)
	hdr = append(hdr, version)
	name := strings.ToLower(meta.Workload)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(meta.Nodes))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(meta.Scale))
	hdr = binary.AppendVarint(hdr, meta.Seed)
	if version > versionNoRepeat {
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(meta.Repeat))
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("stream: writing header: %w", err)
	}
	return &Writer{w: bw, perCh: DefaultChunkEvents, version: version, off: int64(len(hdr))}, nil
}

// Write implements Sink. The event's Seq field is not stored. The count is
// only advanced once the event is safely buffered AND any chunk flush it
// triggered succeeded, so after a write error Count() agrees with what
// actually hit the wire instead of drifting ahead of it.
func (w *Writer) Write(e trace.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = errors.New("stream: write after Close")
		return w.err
	}
	w.chunk = append(w.chunk, e)
	if len(w.chunk) >= w.perCh {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// flushChunk encodes and emits the buffered events as one chunk, recording
// its file offset in the index.
func (w *Writer) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	buf := w.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(w.chunk)))
	prev := uint64(0)
	for _, e := range w.chunk {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.Node))
		buf = binary.AppendVarint(buf, int64(uint64(e.Block)-prev))
		prev = uint64(e.Block)
		buf = binary.AppendUvarint(buf, uint64(int64(e.Producer)+1))
	}
	if w.version >= Version {
		w.index = append(w.index, ChunkRef{Offset: w.off, Events: uint64(len(w.chunk))})
	}
	w.scratch = buf[:0]
	w.chunk = w.chunk[:0]
	if _, err := w.w.Write(buf); err != nil {
		w.err = fmt.Errorf("stream: writing chunk: %w", err)
		return w.err
	}
	w.off += int64(len(buf))
	return nil
}

// Count returns the number of events durably accepted so far: events whose
// chunk flush failed are not counted, so the figure never runs ahead of the
// stream's actual contents.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the final chunk, writes the end-of-stream marker, the
// event-count trailer and (version ≥ 3) the chunk-index footer, then
// flushes the underlying buffer. It implements Sink and is idempotent.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	end := w.off
	tail := binary.AppendUvarint(nil, 0)
	tail = binary.AppendUvarint(tail, w.count)
	if w.version >= Version {
		tail = appendFooter(tail, w.index, end)
	}
	if _, err := w.w.Write(tail); err != nil {
		w.err = fmt.Errorf("stream: writing trailer: %w", err)
		return w.err
	}
	w.off += int64(len(tail))
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("stream: flushing: %w", err)
		return w.err
	}
	return nil
}

// Reader decodes a stream produced by Writer. It implements Source (and
// ChunkSource: NextChunk hands out whole decoded chunks).
type Reader struct {
	r       *posReader
	meta    Meta
	version byte
	chunk   []trace.Event
	pos     int
	next    uint64
	chunks  uint64 // chunks decoded so far (cross-checked against the footer)
	// refs records each decoded chunk's byte offset and event count on
	// version ≥ 3 streams, so verifyFooter can check the footer entry for
	// entry against what was actually decoded — a footer that merely sums
	// right but points elsewhere is corruption, not a cosmetic defect,
	// because seeking readers trust those offsets. ~32 bytes per multi-KB
	// chunk, so the streaming decode stays effectively O(chunk) memory.
	refs   []ChunkRef
	endOff int64 // byte offset of the end marker
	done   bool
}

// byteScanner is the reader shape header/footer parsing needs: bufio.Reader
// satisfies it, as does any test reader.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// posReader counts consumed bytes so callers learn the header length — the
// seeking open path needs it to know where chunk data begins.
type posReader struct {
	r byteScanner
	n int64
}

func (p *posReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	p.n += int64(n)
	return n, err
}

func (p *posReader) ReadByte() (byte, error) {
	b, err := p.r.ReadByte()
	if err == nil {
		p.n++
	}
	return b, err
}

// NewReader validates the header, decodes the metadata and returns a
// Reader. It fails with ErrBadMagic or a wrapped ErrVersion on foreign or
// incompatible streams.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &posReader{r: bufio.NewReader(r)}
	meta, version, err := parseHeader(pr)
	if err != nil {
		return nil, err
	}
	return &Reader{r: pr, meta: meta, version: version}, nil
}

// parseHeader decodes the magic, version byte and metadata block.
func parseHeader(pr *posReader) (Meta, byte, error) {
	var meta Meta
	var hdr [5]byte
	if _, err := io.ReadFull(pr, hdr[:]); err != nil {
		return meta, 0, fmt.Errorf("stream: reading header: %w", errTrunc(err))
	}
	if *(*[4]byte)(hdr[:4]) != Magic {
		return meta, 0, ErrBadMagic
	}
	version := hdr[4]
	if version < versionNoRepeat || version > Version {
		return meta, 0, fmt.Errorf("%w: got %d, want %d..%d", ErrVersion, version, versionNoRepeat, Version)
	}
	n, err := binary.ReadUvarint(pr)
	if err != nil {
		return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	if n > 1024 {
		return meta, 0, fmt.Errorf("%w: workload name length %d", ErrCorrupt, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(pr, name); err != nil {
		return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	meta.Workload = string(name)
	nodes, err := binary.ReadUvarint(pr)
	if err != nil {
		return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	if nodes > maxMetaNodes {
		return meta, 0, fmt.Errorf("%w: node count %d", ErrCorrupt, nodes)
	}
	meta.Nodes = int(nodes)
	var scale [8]byte
	if _, err := io.ReadFull(pr, scale[:]); err != nil {
		return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	meta.Scale = math.Float64frombits(binary.LittleEndian.Uint64(scale[:]))
	if math.IsNaN(meta.Scale) || math.IsInf(meta.Scale, 0) || meta.Scale < 0 || meta.Scale > maxMetaScale {
		return meta, 0, fmt.Errorf("%w: scale %v", ErrCorrupt, meta.Scale)
	}
	seed, err := binary.ReadVarint(pr)
	if err != nil {
		return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
	}
	meta.Seed = seed
	if version > versionNoRepeat {
		var repeat [8]byte
		if _, err := io.ReadFull(pr, repeat[:]); err != nil {
			return meta, 0, fmt.Errorf("stream: reading metadata: %w", errTrunc(err))
		}
		meta.Repeat = math.Float64frombits(binary.LittleEndian.Uint64(repeat[:]))
		if math.IsNaN(meta.Repeat) || math.IsInf(meta.Repeat, 0) || meta.Repeat < 0 || meta.Repeat > maxMetaScale {
			return meta, 0, fmt.Errorf("%w: repeat %v", ErrCorrupt, meta.Repeat)
		}
	}
	return meta, version, nil
}

// errTrunc maps any EOF while structure remains expected to ErrTruncated,
// and a varint that overflows 64 bits (an unstructured errors.New deep in
// encoding/binary) to ErrCorrupt — both are malformed-input conditions the
// decoder's callers must be able to errors.Is against.
func errTrunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	if err != nil && strings.Contains(err.Error(), "varint overflows") {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return err
}

// Meta returns the stream metadata decoded from the header.
func (r *Reader) Meta() Meta { return r.meta }

// Next implements Source, returning io.EOF after the last event of a
// well-formed stream and a wrapped ErrTruncated/ErrCorrupt otherwise.
func (r *Reader) Next() (trace.Event, error) {
	for r.pos >= len(r.chunk) {
		if r.done {
			return trace.Event{}, io.EOF
		}
		if err := r.readChunk(); err != nil {
			return trace.Event{}, err
		}
	}
	e := r.chunk[r.pos]
	e.Seq = r.next
	r.pos++
	r.next++
	return e, nil
}

// NextChunk implements ChunkSource: it returns the remaining events of the
// current chunk (decoding the next one if exhausted) with sequence numbers
// assigned, or io.EOF after the last. The returned slice is only valid
// until the next NextChunk/Next call.
func (r *Reader) NextChunk() ([]trace.Event, error) {
	for r.pos >= len(r.chunk) {
		if r.done {
			return nil, io.EOF
		}
		if err := r.readChunk(); err != nil {
			return nil, err
		}
	}
	out := r.chunk[r.pos:]
	for i := range out {
		out[i].Seq = r.next
		r.next++
	}
	r.pos = len(r.chunk)
	return out, nil
}

// readChunk decodes the next chunk, or verifies the trailer (and, for
// version ≥ 3, the footer) on the end marker.
func (r *Reader) readChunk() error {
	start := r.r.n // offset of the chunk's count uvarint (or the end marker)
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("stream: reading chunk count: %w", errTrunc(err))
	}
	if n == 0 {
		r.endOff = start
		total, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fmt.Errorf("stream: reading trailer: %w", errTrunc(err))
		}
		if total != r.next {
			return fmt.Errorf("%w: trailer count %d, decoded %d events", ErrCorrupt, total, r.next)
		}
		if err := r.verifyEnd(); err != nil {
			return err
		}
		r.done = true
		r.chunk = r.chunk[:0]
		r.pos = 0
		return nil
	}
	if n > maxChunkEvents {
		return fmt.Errorf("%w: chunk of %d events", ErrCorrupt, n)
	}
	if cap(r.chunk) < int(n) {
		r.chunk = make([]trace.Event, 0, n)
	}
	r.pos = 0
	r.chunk, err = appendChunkEvents(r.r, n, r.chunk[:0])
	if err != nil {
		return err
	}
	r.chunks++
	if r.version >= Version {
		r.refs = append(r.refs, ChunkRef{Offset: start, Events: n})
	}
	return nil
}

// verifyEnd enforces that the stream actually ends where the format says it
// does. A version ≥ 3 stream must carry a footer consistent with the chunks
// just decoded; every version must then hit EOF — trailing bytes mean a
// concatenated, padded or mis-framed file and fail with ErrCorrupt instead
// of being silently ignored.
func (r *Reader) verifyEnd() error {
	if r.version >= Version {
		if err := r.verifyFooter(); err != nil {
			return err
		}
	}
	if _, err := r.r.ReadByte(); err != io.EOF {
		if err != nil {
			return fmt.Errorf("stream: reading end of stream: %w", err)
		}
		return fmt.Errorf("%w: trailing data after end of stream", ErrCorrupt)
	}
	return nil
}

// verifyFooter decodes the chunk-index footer in stream order and checks
// every entry — offset AND event count — against the chunks actually
// decoded, plus the end-marker offset, the totals, the payload length and
// the magic. A footer whose totals sum right but whose offsets point
// elsewhere would send seeking readers to arbitrary bytes, so the streaming
// reader rejects it just as the seeking reader (ReadIndex) does: both paths
// accept exactly the same files.
func (r *Reader) verifyFooter() error {
	pr := &posReader{r: r.r}
	count, sum, end, err := walkFooterPayload(pr, func(i int, offset int64, events uint64) error {
		if i >= len(r.refs) {
			return nil // chunk-count mismatch, reported below
		}
		if ref := r.refs[i]; offset != ref.Offset || events != ref.Events {
			return fmt.Errorf("%w: footer chunk %d is offset %d/%d events, decoded offset %d/%d events",
				ErrCorrupt, i, offset, events, ref.Offset, ref.Events)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if count != r.chunks {
		return fmt.Errorf("%w: footer indexes %d chunks, decoded %d", ErrCorrupt, count, r.chunks)
	}
	if sum != r.next {
		return fmt.Errorf("%w: footer counts %d events, decoded %d", ErrCorrupt, sum, r.next)
	}
	if end != r.endOff {
		return fmt.Errorf("%w: footer end offset %d, end marker decoded at %d", ErrCorrupt, end, r.endOff)
	}
	var suffix [indexSuffixLen]byte
	if _, err := io.ReadFull(r.r, suffix[:]); err != nil {
		return fmt.Errorf("stream: reading footer suffix: %w", errTrunc(err))
	}
	if payloadLen := binary.LittleEndian.Uint64(suffix[:8]); payloadLen != uint64(pr.n) {
		return fmt.Errorf("%w: footer length %d, decoded %d bytes", ErrCorrupt, payloadLen, pr.n)
	}
	if *(*[4]byte)(suffix[8:]) != IndexMagic {
		return fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	return nil
}

// appendChunkEvents decodes n delta-reset events from r, appending them to
// dst. It is shared between the streaming Reader and the parallel per-chunk
// decoder.
func appendChunkEvents(r io.ByteReader, n uint64, dst []trace.Event) ([]trace.Event, error) {
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return dst, fmt.Errorf("stream: reading event kind: %w", errTrunc(err))
		}
		node, err := binary.ReadUvarint(r)
		if err != nil {
			return dst, fmt.Errorf("stream: reading event node: %w", errTrunc(err))
		}
		delta, err := binary.ReadVarint(r)
		if err != nil {
			return dst, fmt.Errorf("stream: reading event block: %w", errTrunc(err))
		}
		prev += uint64(delta)
		prod, err := binary.ReadUvarint(r)
		if err != nil {
			return dst, fmt.Errorf("stream: reading event producer: %w", errTrunc(err))
		}
		dst = append(dst, trace.Event{
			Kind:     trace.EventKind(kind),
			Node:     mem.NodeID(node),
			Block:    mem.BlockAddr(prev),
			Producer: mem.NodeID(int64(prod) - 1),
		})
	}
	return dst, nil
}

// WriteFile streams src into a new trace file at path, fsync-free but fully
// flushed and closed.
func WriteFile(path string, meta Meta, src Source) (n uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() { err = CloseMerge(f, err) }()
	w, err := NewWriter(f, meta)
	if err != nil {
		return 0, err
	}
	if n, err = Copy(w, src); err != nil {
		return n, err
	}
	return n, w.Close()
}

// countingReader counts the bytes handed to the decode buffer with an
// atomic, so another goroutine (a progress meter) can read the position
// without racing the decoding goroutine — unlike Seek-based position
// queries, which would.
type countingReader struct {
	r io.Reader
	n atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// FileReader is a Reader over an open trace file.
type FileReader struct {
	*Reader
	f     *os.File
	count *countingReader
	size  int64
}

// OpenFile opens path for streaming reads. The caller must Close it.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var size int64
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	count := &countingReader{r: f}
	r, err := NewReader(count)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileReader{Reader: r, f: f, count: count, size: size}, nil
}

// Fraction reports the file fraction consumed by the decoder so far, in
// [0, 1] — suitable as a completion estimate for progress/ETA reporting.
// Safe to call from any goroutine while another decodes; returns 0 when the
// file size is unknown.
func (r *FileReader) Fraction() float64 {
	if r.size <= 0 {
		return 0
	}
	f := float64(r.count.n.Load()) / float64(r.size)
	if f > 1 {
		f = 1
	}
	return f
}

// Close closes the underlying file.
func (r *FileReader) Close() error { return r.f.Close() }

// LoadFile reads a whole trace file into memory.
func LoadFile(path string) (*trace.Trace, Meta, error) {
	r, err := OpenFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	tr, err := Collect(r)
	if err = CloseMerge(r, err); err != nil {
		return nil, r.Meta(), err
	}
	return tr, r.Meta(), nil
}
