package stream

import (
	"runtime"
	"sync"
)

// Workers returns the worker-pool width used by the parallel paths:
// GOMAXPROCS, clamped to at least 1 and at most n when n > 0.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if n > 0 && w > n {
		w = n
	}
	return w
}

// RunOrdered evaluates fn(0..n-1) on a pool of at most workers goroutines
// and returns the results in index order (the "ordered merge": parallel
// execution, deterministic output). The first error wins; remaining tasks
// still run to completion, keeping the work deterministic under errors.
func RunOrdered[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	workers = Workers(workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := fn(i)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				out[i] = res
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
