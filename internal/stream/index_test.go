package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"runtime"
	"testing"

	"tsm/internal/trace"
)

// encodeChunked encodes tr at the current version with an explicit chunk
// size, so index tests get many chunks without huge traces.
func encodeChunked(t *testing.T, tr *trace.Trace, meta Meta, perCh int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	w.perCh = perCh
	if _, err := Copy(w, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// collectParallel drains a ParallelReader into a slice of events (with
// their Seq fields as yielded, not reassigned).
func collectParallel(t *testing.T, r *ParallelReader) []trace.Event {
	t.Helper()
	var out []trace.Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
}

// TestReadIndexRoundTrip: the footer written by the Writer decodes to an
// index whose chunks tile the stream exactly.
func TestReadIndexRoundTrip(t *testing.T) {
	tr := randomTrace(10*64+13, 5)
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 42}
	data := encodeChunked(t, tr, meta, 64)
	pr := &posReader{r: newSliceScanner(data)}
	if _, _, err := parseHeader(pr); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(bytes.NewReader(data), int64(len(data)), pr.n)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(tr.Len()); ix.Events != want {
		t.Fatalf("index counts %d events, want %d", ix.Events, want)
	}
	if want := (tr.Len() + 63) / 64; len(ix.Chunks) != want {
		t.Fatalf("index has %d chunks, want %d", len(ix.Chunks), want)
	}
	off := pr.n
	var seq uint64
	for i, c := range ix.Chunks {
		if c.Offset != off {
			t.Fatalf("chunk %d at offset %d, want %d (chunks must tile)", i, c.Offset, off)
		}
		if c.Start != seq {
			t.Fatalf("chunk %d starts at seq %d, want %d", i, c.Start, seq)
		}
		off += c.Length
		seq += c.Events
	}
	if ix.End != off {
		t.Fatalf("end marker at %d, want %d", ix.End, off)
	}
}

// TestParallelDecodeMatchesSerial is the core differential: for several
// worker counts and chunk sizes, the parallel reader yields exactly the
// serial reader's event sequence, sequence numbers included.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	meta := Meta{Workload: "ocean", Nodes: 16, Scale: 0.5, Seed: 7}
	for _, n := range []int{0, 1, 63, 64, 65, 64*7 + 11} {
		tr := randomTrace(n, int64(n)+3)
		data := encodeChunked(t, tr, meta, 64)
		serial, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Collect(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			r, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if r.Meta() != meta {
				t.Fatalf("meta = %+v, want %+v", r.Meta(), meta)
			}
			got := collectParallel(t, r)
			if len(got) != want.Len() {
				t.Fatalf("n=%d workers=%d: %d events, want %d", n, workers, len(got), want.Len())
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("n=%d workers=%d: event %d = %+v, want %+v", n, workers, i, got[i], want.Events[i])
				}
			}
			if f := r.Fraction(); n > 0 && f != 1 {
				t.Fatalf("n=%d workers=%d: Fraction() = %v after drain, want 1", n, workers, f)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestParallelDecodeRange: [From, To) selects exactly the sub-slice of the
// full event sequence, with original sequence numbers preserved.
func TestParallelDecodeRange(t *testing.T) {
	const perCh = 64
	tr := randomTrace(perCh*5+17, 9)
	meta := Meta{Workload: "zeus", Nodes: 16, Scale: 1, Seed: 2}
	data := encodeChunked(t, tr, meta, perCh)
	serial, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(tr.Len())
	ranges := [][2]uint64{
		{0, 0},                 // whole stream
		{0, 1},                 // first event only
		{n - 1, n},             // last event only
		{perCh, 2 * perCh},     // exactly one chunk
		{perCh - 1, perCh + 1}, // straddles a boundary
		{17, n - 23},           // arbitrary interior
		{n, 0},                 // empty tail
		{n + 100, 0},           // past the end
	}
	for _, rg := range ranges {
		from, to := rg[0], rg[1]
		r, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{Workers: 3, From: from, To: to})
		if err != nil {
			t.Fatalf("[%d,%d): %v", from, to, err)
		}
		got := collectParallel(t, r)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		hi := n
		if to > 0 && to < hi {
			hi = to
		}
		lo := from
		if lo > hi {
			lo = hi
		}
		want := full.Events[lo:hi]
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): %d events, want %d", from, to, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): event %d = %+v, want %+v (Seq must be the full-trace Seq)", from, to, i, got[i], want[i])
			}
		}
	}
	// An inverted range is an error up front.
	if _, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{From: 10, To: 5}); err == nil {
		t.Fatal("inverted range must fail to open")
	}
}

// TestOpenIndexedRejectsOldVersions: v1/v2 streams have no index; the
// seeking open must fail with ErrNoIndex so callers fall back to serial.
func TestOpenIndexedRejectsOldVersions(t *testing.T) {
	tr := randomTrace(100, 3)
	data := encodeV(t, tr, Meta{Nodes: 4, Scale: 1, Seed: 1}, VersionNoIndex)
	if _, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{}); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v, want ErrNoIndex", err)
	}
}

// TestReadIndexRejectsCorruption: every way the footer can lie about the
// stream must fail with ErrCorrupt/ErrTruncated at open or decode time,
// never decode silently wrong.
func TestReadIndexRejectsCorruption(t *testing.T) {
	const perCh = 64
	tr := randomTrace(perCh*4+5, 11)
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 42}
	data := encodeChunked(t, tr, meta, perCh)

	open := func(b []byte) (*ParallelReader, error) {
		return OpenIndexed(bytes.NewReader(b), int64(len(b)), ParallelOptions{Workers: 2})
	}
	mustFailStructured := func(name string, b []byte) {
		t.Helper()
		r, err := open(b)
		if err == nil {
			_, err = Collect(r)
			r.Close()
		}
		if err == nil || !(errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated)) {
			t.Errorf("%s: err = %v, want ErrCorrupt/ErrTruncated", name, err)
		}
	}

	// Bad footer magic.
	bad := append([]byte{}, data...)
	bad[len(bad)-1] ^= 0xff
	mustFailStructured("bad magic", bad)

	// Truncated mid-footer.
	mustFailStructured("truncated footer", data[:len(data)-6])

	// Footer length pointing outside the file.
	bad = append([]byte{}, data...)
	binary.LittleEndian.PutUint64(bad[len(bad)-12:], uint64(len(bad)))
	mustFailStructured("oversized payload length", bad)

	// An offset past EOF: rewrite the footer with a huge first offset.
	ix := mustIndex(t, data)
	forged := forgeFooter(t, data, func(chunks []ChunkRef) []ChunkRef {
		chunks[0].Offset = int64(len(data)) + 1000
		return chunks[:1]
	}, ix.End)
	mustFailStructured("offset past EOF", forged)

	// An offset into the middle of a chunk: the count there is garbage
	// relative to the index, so decode must fail, not yield shifted events.
	forged = forgeFooter(t, data, func(chunks []ChunkRef) []ChunkRef {
		chunks[1].Offset += 3
		return chunks
	}, ix.End)
	mustFailStructured("offset mid-chunk", forged)

	// Event counts that disagree with the trailer.
	forged = forgeFooter(t, data, func(chunks []ChunkRef) []ChunkRef {
		chunks[0].Events++
		return chunks
	}, ix.End)
	mustFailStructured("count mismatch", forged)
}

// mustIndex parses the header and index of a v3 stream.
func mustIndex(t *testing.T, data []byte) *Index {
	t.Helper()
	pr := &posReader{r: newSliceScanner(data)}
	if _, _, err := parseHeader(pr); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(bytes.NewReader(data), int64(len(data)), pr.n)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// forgeFooter rewrites data's footer with a mutated chunk table, keeping
// everything before the footer intact.
func forgeFooter(t *testing.T, data []byte, mutate func([]ChunkRef) []ChunkRef, end int64) []byte {
	t.Helper()
	ix := mustIndex(t, data)
	suffix := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	body := data[:len(data)-12-int(suffix)]
	chunks := mutate(append([]ChunkRef{}, ix.Chunks...))
	return appendFooter(append([]byte{}, body...), chunks, end)
}

// TestParallelDecodeBoundedAlloc pins the free-list property: decoding a
// many-chunk file must allocate event-buffer memory proportional to the
// worker count and chunk size, not to the number of chunks — i.e. far less
// than materializing the trace would.
func TestParallelDecodeBoundedAlloc(t *testing.T) {
	const perCh = 512
	tr := randomTrace(perCh*96, 13) // 96 chunks, ~1.5 MiB materialized
	data := encodeChunked(t, tr, Meta{Nodes: 16, Scale: 1, Seed: 1}, perCh)
	materialized := uint64(tr.Len()) * uint64(48) // ~sizeof(trace.Event)

	r, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var n int
	for {
		if _, err := r.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	runtime.ReadMemStats(&after)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Fatalf("decoded %d events, want %d", n, tr.Len())
	}
	// Generous bound: well under half of what materializing all chunks
	// would take. With the free list, steady-state allocation is a handful
	// of chunk buffers plus per-chunk bookkeeping.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > materialized/2 {
		t.Fatalf("decode allocated %d bytes for %d chunks (materialized ≈ %d); buffers are not recycling", delta, 96, materialized)
	}
}

// TestParallelDecodeEarlyClose: closing mid-stream must release the workers
// without wedging, and subsequent reads must fail.
func TestParallelDecodeEarlyClose(t *testing.T) {
	const perCh = 64
	tr := randomTrace(perCh*32, 15)
	data := encodeChunked(t, tr, Meta{Nodes: 16, Scale: 1, Seed: 1}, perCh)
	r, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

// TestFileReaderParallel: the OpenFileParallel path over a real file, and
// its ErrNoIndex fallback contract for a v2 file.
func TestFileReaderParallel(t *testing.T) {
	tr := randomTrace(3*DefaultChunkEvents+7, 19)
	meta := Meta{Workload: "apache", Nodes: 8, Scale: 0.5, Seed: 3}
	dir := t.TempDir()
	path := dir + "/t.tsm"
	if _, err := WriteFile(path, meta, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFileParallel(path, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := collectParallel(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != tr.Len() {
		t.Fatalf("decoded %d events, want %d", len(got), tr.Len())
	}

	// A v2 file opens serially only.
	v2 := dir + "/v2.tsm"
	f, err := os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriterVersion(f, meta, VersionNoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(w, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileParallel(v2, ParallelOptions{}); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("v2 file: err = %v, want ErrNoIndex", err)
	}
	fr, err := OpenFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Collect(fr)
	if err := CloseMerge(fr, err); err != nil {
		t.Fatal(err)
	}
	if got2.Len() != tr.Len() {
		t.Fatalf("serial fallback decoded %d events, want %d", got2.Len(), tr.Len())
	}
}
