// Struct-of-arrays chunk regions. The codec's hot loops historically moved
// events as []trace.Event — an array of 40-byte structs — and decoded them
// through an interface-dispatched ReadByte per varint byte. ChunkSoA is the
// mechanical-sympathy replacement: one chunk as five parallel, same-typed
// columns (seq/kind/node/block/producer) that decode from a fully buffered
// []byte region with index-based varint arithmetic, broadcast through the
// pipeline by bulk column copy, and sweep through consumer classify loops as
// dense arrays. An []trace.Event adapter view (Event/AppendTo) keeps every
// per-event consumer working unchanged, and the columns carry explicit
// sequence numbers so the adapter is byte-identical to the serial Reader.
package stream

import (
	"encoding/binary"
	"fmt"
	"io"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// ChunkSoA holds one chunk of events as parallel columns. All five slices
// always have equal length. A ChunkSoA is reusable as an arena: Reset keeps
// the column capacity, so a decoder that recycles regions allocates O(1)
// per chunk after warm-up.
type ChunkSoA struct {
	Seq      []uint64
	Kind     []trace.EventKind
	Node     []mem.NodeID
	Block    []mem.BlockAddr
	Producer []mem.NodeID
}

// NewChunkSoA returns an empty region with capacity for n events per column.
func NewChunkSoA(n int) *ChunkSoA {
	c := &ChunkSoA{}
	c.Grow(n)
	return c
}

// Len returns the number of events in the region.
func (c *ChunkSoA) Len() int { return len(c.Kind) }

// Reset empties the region, keeping column capacity.
func (c *ChunkSoA) Reset() {
	c.Seq = c.Seq[:0]
	c.Kind = c.Kind[:0]
	c.Node = c.Node[:0]
	c.Block = c.Block[:0]
	c.Producer = c.Producer[:0]
}

// Grow ensures capacity for n more events without further allocation.
func (c *ChunkSoA) Grow(n int) {
	if need := len(c.Kind) + n; cap(c.Kind) < need {
		c.Seq = append(make([]uint64, 0, need), c.Seq...)
		c.Kind = append(make([]trace.EventKind, 0, need), c.Kind...)
		c.Node = append(make([]mem.NodeID, 0, need), c.Node...)
		c.Block = append(make([]mem.BlockAddr, 0, need), c.Block...)
		c.Producer = append(make([]mem.NodeID, 0, need), c.Producer...)
	}
}

// AppendEvent appends one event, transposing it into the columns.
func (c *ChunkSoA) AppendEvent(e trace.Event) {
	c.Seq = append(c.Seq, e.Seq)
	c.Kind = append(c.Kind, e.Kind)
	c.Node = append(c.Node, e.Node)
	c.Block = append(c.Block, e.Block)
	c.Producer = append(c.Producer, e.Producer)
}

// AppendEvents transposes a whole event slice into the columns.
func (c *ChunkSoA) AppendEvents(events []trace.Event) {
	c.Grow(len(events))
	for i := range events {
		e := &events[i]
		c.Seq = append(c.Seq, e.Seq)
		c.Kind = append(c.Kind, e.Kind)
		c.Node = append(c.Node, e.Node)
		c.Block = append(c.Block, e.Block)
		c.Producer = append(c.Producer, e.Producer)
	}
}

// AppendSoA bulk-copies another region's columns onto c — five memmoves, no
// per-event work. This is how the pipeline broadcasts a decoded chunk into a
// ring slot.
func (c *ChunkSoA) AppendSoA(o *ChunkSoA) {
	c.Seq = append(c.Seq, o.Seq...)
	c.Kind = append(c.Kind, o.Kind...)
	c.Node = append(c.Node, o.Node...)
	c.Block = append(c.Block, o.Block...)
	c.Producer = append(c.Producer, o.Producer...)
}

// Slice returns a view of rows [lo, hi): the columns share c's backing
// arrays, so the view is only valid while c's contents are.
func (c *ChunkSoA) Slice(lo, hi int) ChunkSoA {
	return ChunkSoA{
		Seq:      c.Seq[lo:hi],
		Kind:     c.Kind[lo:hi],
		Node:     c.Node[lo:hi],
		Block:    c.Block[lo:hi],
		Producer: c.Producer[lo:hi],
	}
}

// Event reassembles row i as a trace.Event — the adapter that keeps
// per-event consumers working over SoA regions.
func (c *ChunkSoA) Event(i int) trace.Event {
	return trace.Event{
		Seq:      c.Seq[i],
		Kind:     c.Kind[i],
		Node:     c.Node[i],
		Block:    c.Block[i],
		Producer: c.Producer[i],
	}
}

// AppendTo transposes the region back into an []trace.Event, appending to
// dst. The result is byte-identical to what the serial Reader would have
// produced for the same chunk.
func (c *ChunkSoA) AppendTo(dst []trace.Event) []trace.Event {
	for i := range c.Kind {
		dst = append(dst, c.Event(i))
	}
	return dst
}

// SoASource is an optional Source refinement for decoders and broadcast
// stages that hold chunks in struct-of-arrays form: NextChunkSoA returns the
// remaining events of the current chunk as a column view (never an empty
// region with a nil error) and io.EOF at end of stream. The view is only
// valid until the next NextChunkSoA/NextChunk/Next call — consumers that
// keep events must copy them. Column-aware consumers (the analysis classify
// loop, the TSE inner loop) use it to sweep dense same-typed arrays instead
// of paying an interface call and a 40-byte struct copy per event.
type SoASource interface {
	Source
	NextChunkSoA() (*ChunkSoA, error)
}

// appendChunkSoA batch-decodes n delta-reset events from the fully buffered
// region, starting at byte offset pos, appending them to dst with sequence
// numbers startSeq, startSeq+1, ... It returns the byte offset after the
// last event. The decode is index-based — no io.ByteReader dispatch — with
// single-byte fast paths for the varint fields (the common case: node and
// producer IDs are small, and delta encoding keeps most block deltas short).
// Error mapping matches the serial reader's errTrunc contract exactly:
// running off the region is a wrapped ErrTruncated, a varint overflowing 64
// bits is a wrapped ErrCorrupt.
func appendChunkSoA(region []byte, pos int, n uint64, startSeq uint64, dst *ChunkSoA) (int, error) {
	dst.Grow(int(n))
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		if pos >= len(region) {
			return pos, fmt.Errorf("stream: reading event kind: %w", ErrTruncated)
		}
		kind := region[pos]
		pos++

		var node uint64
		if pos < len(region) && region[pos] < 0x80 {
			node = uint64(region[pos])
			pos++
		} else {
			v, w := binary.Uvarint(region[pos:])
			if w <= 0 {
				return pos, varintErr(w, "node")
			}
			node, pos = v, pos+w
		}

		var delta int64
		if pos < len(region) && region[pos] < 0x80 {
			ux := uint64(region[pos])
			delta = int64(ux>>1) ^ -int64(ux&1)
			pos++
		} else {
			v, w := binary.Varint(region[pos:])
			if w <= 0 {
				return pos, varintErr(w, "block")
			}
			delta, pos = v, pos+w
		}
		prev += uint64(delta)

		var prod uint64
		if pos < len(region) && region[pos] < 0x80 {
			prod = uint64(region[pos])
			pos++
		} else {
			v, w := binary.Uvarint(region[pos:])
			if w <= 0 {
				return pos, varintErr(w, "producer")
			}
			prod, pos = v, pos+w
		}

		dst.Seq = append(dst.Seq, startSeq+i)
		dst.Kind = append(dst.Kind, trace.EventKind(kind))
		dst.Node = append(dst.Node, mem.NodeID(node))
		dst.Block = append(dst.Block, mem.BlockAddr(prev))
		dst.Producer = append(dst.Producer, mem.NodeID(int64(prod)-1))
	}
	return pos, nil
}

// varintErr maps binary.Uvarint/Varint's sentinel returns onto the codec's
// error taxonomy, matching errTrunc: w == 0 means the region ended
// mid-varint (ErrTruncated), w < 0 means the varint overflows 64 bits
// (ErrCorrupt).
func varintErr(w int, field string) error {
	if w == 0 {
		return fmt.Errorf("stream: reading event %s: %w", field, ErrTruncated)
	}
	return fmt.Errorf("stream: reading event %s: %w: varint overflows a 64-bit integer", field, ErrCorrupt)
}

// decodeChunkRegion decodes the single chunk whose encoded bytes fill
// region (count prefix included) into dst, stamping sequence numbers from
// the chunk's index position. The decoded count must match the index and
// the events must consume the region exactly, so an index entry seeded
// mid-chunk or into arbitrary bytes fails with ErrCorrupt/ErrTruncated
// instead of yielding a silently different stream.
func decodeChunkRegion(region []byte, ref ChunkRef, dst *ChunkSoA) error {
	n, w := binary.Uvarint(region)
	if w == 0 {
		return fmt.Errorf("stream: reading chunk count: %w", ErrTruncated)
	}
	if w < 0 {
		return fmt.Errorf("stream: reading chunk count: %w: varint overflows a 64-bit integer", ErrCorrupt)
	}
	if n != ref.Events {
		return fmt.Errorf("%w: chunk at offset %d holds %d events, index says %d", ErrCorrupt, ref.Offset, n, ref.Events)
	}
	pos, err := appendChunkSoA(region, w, n, ref.Start, dst)
	if err != nil {
		return err
	}
	if pos != len(region) {
		return fmt.Errorf("%w: chunk at offset %d longer than its index extent", ErrCorrupt, ref.Offset)
	}
	return nil
}

// regionReaderAt is the optional io.ReaderAt refinement mmap-backed readers
// implement: Region returns a zero-copy view of [off, off+n), letting the
// chunk decoder parse straight out of the mapped pages instead of copying
// each chunk into a scratch buffer first.
type regionReaderAt interface {
	Region(off, n int64) ([]byte, bool)
}

// readChunkRegion returns the encoded bytes of the chunk at ref — a
// zero-copy view when ra supports it (mmap), otherwise read into scratch
// (grown as needed). It returns the possibly-grown scratch for reuse.
func readChunkRegion(ra io.ReaderAt, ref ChunkRef, scratch []byte) (region, newScratch []byte, err error) {
	if rr, ok := ra.(regionReaderAt); ok {
		if b, ok := rr.Region(ref.Offset, ref.Length); ok {
			return b, scratch, nil
		}
	}
	if int64(cap(scratch)) < ref.Length {
		scratch = make([]byte, ref.Length)
	}
	scratch = scratch[:ref.Length]
	if _, err := io.ReadFull(io.NewSectionReader(ra, ref.Offset, ref.Length), scratch); err != nil {
		return nil, scratch, fmt.Errorf("stream: reading chunk at offset %d: %w", ref.Offset, errTrunc(err))
	}
	return scratch, scratch, nil
}
