package stream

// Trace-file introspection without decoding: Describe reads the header and —
// on indexed (version 3) files — the chunk-index footer, yielding the
// provenance facts a run manifest records (codec version, chunk and event
// counts, workload metadata) and the total event count the facade uses to
// auto-size sampling epochs. Cost is O(header + index), independent of the
// event payload.

import (
	"bufio"
	"io"
	"os"
)

// FileInfo describes one trace file.
type FileInfo struct {
	// Version is the codec version byte of the header.
	Version int
	// Meta is the workload metadata block.
	Meta Meta
	// Bytes is the file size.
	Bytes int64
	// Indexed reports whether the file carries a chunk index (version ≥ 3);
	// Chunks and Events are only known when it does.
	Indexed bool
	// Chunks is the chunk count from the index (0 when not Indexed).
	Chunks int
	// Events is the total event count from the index (0 when not Indexed).
	Events uint64
}

// Describe reads a trace file's header and, when present, its chunk index.
// Unindexed (version 1/2) files succeed with Indexed false — counting their
// events would require a full decode, which Describe never does.
func Describe(path string) (FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return FileInfo{}, err
	}
	size := st.Size()
	pr := &posReader{r: bufio.NewReader(io.NewSectionReader(f, 0, size))}
	meta, version, err := parseHeader(pr)
	if err != nil {
		return FileInfo{}, err
	}
	info := FileInfo{Version: int(version), Meta: meta, Bytes: size}
	if version < Version {
		return info, nil
	}
	index, err := ReadIndex(f, size, pr.n)
	if err != nil {
		return FileInfo{}, err
	}
	info.Indexed = true
	info.Chunks = len(index.Chunks)
	info.Events = index.Events
	return info, nil
}
