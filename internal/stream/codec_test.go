package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// randomTrace builds a deterministic pseudo-random trace exercising every
// kind, the full node range, InvalidNode producers and large block deltas.
func randomTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		kind := trace.EventKind(rng.Intn(3))
		prod := mem.InvalidNode
		if kind == trace.KindConsumption && rng.Intn(4) != 0 {
			prod = mem.NodeID(rng.Intn(16))
		}
		var block mem.BlockAddr
		if rng.Intn(8) == 0 {
			// Occasional far jump (new region): a large delta.
			block = mem.BlockAddr(rng.Uint64() &^ 63)
		} else {
			block = mem.BlockAddr(uint64(rng.Intn(1<<20)) * 64)
		}
		tr.Append(trace.Event{
			Kind:     kind,
			Node:     mem.NodeID(rng.Intn(16)),
			Block:    block,
			Producer: prod,
		})
	}
	return tr
}

func encode(t *testing.T, tr *trace.Trace, meta Meta) []byte {
	t.Helper()
	return encodeV(t, tr, meta, Version)
}

// encodeV encodes at an explicit codec version — the legacy-layout tests
// (trailer surgery, v1 header patching) need a version 2 stream, whose last
// bytes are the trailer rather than the chunk-index footer.
func encodeV(t *testing.T, tr *trace.Trace, meta Meta, version byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, meta, version)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(w, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecRoundTrip is the round-trip property test: for a range of trace
// sizes straddling chunk boundaries, encode→decode yields identical events
// and metadata.
func TestCodecRoundTrip(t *testing.T) {
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 42}
	for _, n := range []int{0, 1, 7, DefaultChunkEvents - 1, DefaultChunkEvents, DefaultChunkEvents + 1, 3*DefaultChunkEvents + 17} {
		tr := randomTrace(n, int64(n)+1)
		data := encode(t, tr, meta)

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.Meta() != meta {
			t.Fatalf("n=%d: meta = %+v, want %+v", n, r.Meta(), meta)
		}
		got, err := Collect(r)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("n=%d: decoded %d events, want %d", n, got.Len(), tr.Len())
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, got.Events[i], tr.Events[i])
			}
		}
		// The stream must then be cleanly exhausted.
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("n=%d: after end: %v, want io.EOF", n, err)
		}
	}
}

// TestCodecCompact checks that delta encoding actually compresses: the
// streamed format must be well under the legacy 13-byte fixed event size.
func TestCodecCompact(t *testing.T) {
	tr := randomTrace(10000, 3)
	data := encode(t, tr, Meta{Workload: "em3d", Nodes: 16, Scale: 1, Seed: 1})
	if max := 10 * tr.Len(); len(data) > max {
		t.Fatalf("encoded %d events in %d bytes, want <= %d", tr.Len(), len(data), max)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE!xxxxxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// The legacy fixed-width format must be rejected too.
	if _, err := NewReader(bytes.NewReader([]byte{'T', 'S', 'M', '1', 0, 0, 0})); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("legacy header: err = %v, want ErrBadMagic", err)
	}
}

func TestCodecVersionMismatch(t *testing.T) {
	data := encode(t, randomTrace(10, 1), Meta{Nodes: 4, Scale: 1, Seed: 1})
	data[4] = Version + 8
	_, err := NewReader(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// TestCodecTruncated cuts a valid stream at every interesting boundary and
// expects a wrapped ErrTruncated (never a clean EOF, never a panic).
func TestCodecTruncated(t *testing.T) {
	tr := randomTrace(2*DefaultChunkEvents+5, 7)
	data := encode(t, tr, Meta{Workload: "ocean", Nodes: 16, Scale: 1, Seed: 9})
	cuts := []int{3, 5, 9, 20, len(data) / 2, len(data) - 1}
	for _, cut := range cuts {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d: header err = %v, want ErrTruncated", cut, err)
			}
			continue
		}
		_, err = Collect(r)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: decode err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestCodecMissingTrailer exercises the case a crashed writer produces:
// complete chunks but no end marker. The reader must not report clean EOF.
func TestCodecMissingTrailer(t *testing.T) {
	tr := randomTrace(DefaultChunkEvents, 11) // exactly one full chunk
	// Version 2: the stream ends at the trailer, so stripping the last
	// bytes removes exactly the end marker + count. (A v3 stream ends at
	// the footer instead; truncation inside it is covered elsewhere.)
	data := encodeV(t, tr, Meta{Nodes: 16, Scale: 1, Seed: 1}, VersionNoIndex)
	// Strip the end marker (one zero byte) and trailer varint.
	trunc := data[:len(data)-1-len(appendUvarintLen(uint64(tr.Len())))]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// appendUvarintLen returns the varint encoding of v (helper to compute
// trailer length).
func appendUvarintLen(v uint64) []byte {
	buf := make([]byte, 0, 10)
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// TestCodecCorruptTrailer flips the trailer count and expects ErrCorrupt.
func TestCodecCorruptTrailer(t *testing.T) {
	tr := randomTrace(5, 13)
	// Version 2, where the trailer is the last varint of the stream.
	data := encodeV(t, tr, Meta{Nodes: 4, Scale: 1, Seed: 1}, VersionNoIndex)
	data[len(data)-1]++ // 5 fits in one byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCodecCorruptMeta: absurd header metadata (huge node counts, NaN or
// negative scales) must fail with ErrCorrupt rather than flow into
// generator reconstruction, where a huge node count would try to allocate.
func TestCodecCorruptMeta(t *testing.T) {
	for _, meta := range []Meta{
		{Workload: "db2", Nodes: maxMetaNodes + 1, Scale: 1, Seed: 1},
		{Workload: "db2", Nodes: 16, Scale: math.NaN(), Seed: 1},
		{Workload: "db2", Nodes: 16, Scale: math.Inf(1), Seed: 1},
		{Workload: "db2", Nodes: 16, Scale: -1, Seed: 1},
		{Workload: "db2", Nodes: 16, Scale: maxMetaScale * 2, Seed: 1},
		{Workload: "db2", Nodes: 16, Scale: 1, Seed: 1, Repeat: math.NaN()},
		{Workload: "db2", Nodes: 16, Scale: 1, Seed: 1, Repeat: math.Inf(1)},
		{Workload: "db2", Nodes: 16, Scale: 1, Seed: 1, Repeat: -1},
		{Workload: "db2", Nodes: 16, Scale: 1, Seed: 1, Repeat: maxMetaScale * 2},
	} {
		data := encode(t, randomTrace(3, 1), meta)
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("meta %+v: err = %v, want ErrCorrupt", meta, err)
		}
	}
}

// TestCodecRepeatMetaRoundTrip: the run-length multiplier a trace was
// generated with must survive the file format, so generator reconstruction
// (tsm.GeneratorFor) rebuilds a generator whose run actually matches the
// file's contents for -repeat/-preset traces.
func TestCodecRepeatMetaRoundTrip(t *testing.T) {
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 4, Seed: 1, Repeat: 4}
	r, err := NewReader(bytes.NewReader(encode(t, randomTrace(10, 1), meta)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != meta {
		t.Fatalf("meta = %+v, want %+v", r.Meta(), meta)
	}
	if s := meta.String(); !strings.Contains(s, "repeat=4") {
		t.Fatalf("meta string %q should name the repeat", s)
	}
	// Repeat 1 and 0 (the default) are not worth a mention.
	if s := (Meta{Workload: "db2", Nodes: 16, Scale: 1, Seed: 1}).String(); strings.Contains(s, "repeat") {
		t.Fatalf("meta string %q should omit the default repeat", s)
	}
}

// TestCodecReadsVersion1: streams written before the repeat field existed
// (version 1, no trailing 8-byte repeat in the header) must still decode,
// with Repeat reported as the zero default.
func TestCodecReadsVersion1(t *testing.T) {
	tr := randomTrace(2*DefaultChunkEvents+5, 3)
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 42}
	data := encodeV(t, tr, meta, VersionNoIndex)
	// Rewrite the v2 header as v1 by dropping the 8-byte repeat field:
	// magic(4) + version(1) + name len(1) + "db2"(3) + nodes(1) +
	// scale(8) + seed(1) puts it at offset 19 for this metadata.
	const repeatOff = 4 + 1 + 1 + 3 + 1 + 8 + 1
	v1 := append([]byte{}, data[:repeatOff]...)
	v1 = append(v1, data[repeatOff+8:]...)
	v1[4] = versionNoRepeat
	r, err := NewReader(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != meta {
		t.Fatalf("meta = %+v, want %+v (Repeat must default to 0)", r.Meta(), meta)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("decoded %d events, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestCodecRejectsTrailingGarbage is the regression test for the silent-
// corruption hole: the reader used to stop at the end marker + trailer
// without confirming the stream actually ends, so a doubly-concatenated or
// padded .tsm decoded "cleanly" as just its first stream. Every version
// must now fail with ErrCorrupt.
func TestCodecRejectsTrailingGarbage(t *testing.T) {
	tr := randomTrace(DefaultChunkEvents+17, 21)
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 42}
	for _, version := range []byte{VersionNoIndex, Version} {
		data := encodeV(t, tr, meta, version)
		for name, corrupt := range map[string][]byte{
			"doubly-concatenated": append(append([]byte{}, data...), data...),
			"one trailing byte":   append(append([]byte{}, data...), 0),
			"trailing zeros":      append(append([]byte{}, data...), make([]byte, 64)...),
		} {
			r, err := NewReader(bytes.NewReader(corrupt))
			if err != nil {
				t.Fatalf("v%d %s: header: %v", version, name, err)
			}
			if _, err := Collect(r); !errors.Is(err, ErrCorrupt) {
				t.Errorf("v%d %s: err = %v, want ErrCorrupt", version, name, err)
			}
		}
		// The pristine stream, for contrast, still decodes cleanly.
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if got, err := Collect(r); err != nil || got.Len() != tr.Len() {
			t.Fatalf("v%d pristine: %d events, err %v", version, got.Len(), err)
		}
	}
}

// failAfterWriter errors on every write past the first n bytes, simulating
// a full disk partway through a stream.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriterCountStopsOnFlushError pins the Count/flush ordering: once a
// chunk flush fails, Count() must not keep advancing past what actually hit
// the wire, and the error must latch.
func TestWriterCountStopsOnFlushError(t *testing.T) {
	// Room for the header and the first buffered flush, but not much more.
	// The writer buffers through bufio, so enough events are needed to
	// force underlying writes.
	fw := &failAfterWriter{n: 64}
	w, err := NewWriter(fw, Meta{Nodes: 4, Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.perCh = 8
	tr := randomTrace(4*DefaultChunkEvents, 29)
	var werr error
	i := 0
	for ; i < len(tr.Events); i++ {
		if werr = w.Write(tr.Events[i]); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("expected a write to fail against the failing writer")
	}
	// Every successful Write counted, the failed one did not.
	if got := w.Count(); got != uint64(i) {
		t.Fatalf("Count() = %d after %d successful writes", got, i)
	}
	before := w.Count()
	if err := w.Write(tr.Events[0]); err == nil {
		t.Fatal("Write after error must keep failing")
	}
	if w.Count() != before {
		t.Fatalf("Count() advanced to %d after the error latched", w.Count())
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after a failed flush must report the error")
	}
}

// TestCodecV2RoundTrip: NewWriterVersion(2) still produces the footerless
// layout older readers understand, and the current reader decodes it.
func TestCodecV2RoundTrip(t *testing.T) {
	tr := randomTrace(2*DefaultChunkEvents+5, 31)
	meta := Meta{Workload: "apache", Nodes: 8, Scale: 0.5, Seed: 3, Repeat: 2}
	data := encodeV(t, tr, meta, VersionNoIndex)
	if bytes.Equal(data[len(data)-4:], IndexMagic[:]) {
		t.Fatal("version 2 stream must not carry a chunk-index footer")
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != meta {
		t.Fatalf("meta = %+v, want %+v", r.Meta(), meta)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("decoded %d events, want %d", got.Len(), tr.Len())
	}
	if _, err := NewWriterVersion(io.Discard, meta, Version+1); !errors.Is(err, ErrVersion) {
		t.Fatal("NewWriterVersion must reject unknown versions")
	}
}

func TestWriterRejectsWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Nodes: 4, Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}
	if err := w.Write(trace.Event{}); err == nil {
		t.Fatal("Write after Close must fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := randomTrace(1234, 17)
	meta := Meta{Workload: "zeus", Nodes: 16, Scale: 0.5, Seed: 4}
	path := t.TempDir() + "/t.tsm"
	n, err := WriteFile(path, meta, TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(tr.Len()) {
		t.Fatalf("wrote %d events, want %d", n, tr.Len())
	}
	got, gotMeta, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded %d events, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}
