// Parallel-by-chunk decode over the chunk index. Chunks are delta-reset at
// their boundaries (codec.go), so each decodes independently: a dispatcher
// hands chunk refs to N workers in stream order while enqueueing each
// chunk's one-shot result channel onto a bounded window, and the consumer
// drains the window in order — parallel execution, serial-identical output.
// Chunk buffers recycle through a free list, so decode allocates
// O(workers·chunk), not O(chunks).
package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"tsm/internal/obs"
	"tsm/internal/trace"
)

// decodeWorkerLane0 is the tracer lane of the first decode worker. Pipeline
// lanes are 0 (producer) and 1..N (consumers); decode workers sit far above
// so the two groups never collide even for wide sweeps.
const decodeWorkerLane0 = 1000

// ParallelOptions configures an indexed (seeking, parallel) trace open.
type ParallelOptions struct {
	// Workers is the number of decode goroutines. Zero or negative selects
	// one per core (Workers(0)); one still uses the indexed path — useful
	// with From/To — just without decode concurrency.
	Workers int
	// From and To bound replay to events with sequence numbers in
	// [From, To); To == 0 means the end of the trace. Events keep the
	// sequence numbers they have in the full trace.
	From, To uint64
	// Metrics, when non-nil, receives per-worker and aggregate decode
	// counters (stream.decode.*).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per decoded chunk on a lane
	// per worker.
	Tracer *obs.Tracer
}

// ParallelReader decodes an indexed trace with a pool of per-chunk workers,
// merging chunks in stream order. It implements Source (and ChunkSource),
// yields exactly the byte-for-byte event sequence of the serial Reader, and
// must be Closed to release its goroutines.
type ParallelReader struct {
	meta  Meta
	index *Index

	results chan chan chunkResult
	free    chan []trace.Event
	stop    chan struct{}
	wg      sync.WaitGroup

	cur    []trace.Event // view into curBuf between lo and hi
	curBuf []trace.Event
	pos    int
	err    error

	selected uint64
	consumed atomic.Uint64

	closeOnce sync.Once
	closeErr  error
	closer    io.Closer
}

type job struct {
	ref ChunkRef
	out chan chunkResult
}

type chunkResult struct {
	buf    []trace.Event
	lo, hi int
	err    error
}

// errReaderClosed surfaces on chunks abandoned by Close before dispatch.
var errReaderClosed = fmt.Errorf("stream: parallel reader closed")

// OpenFileParallel opens path via the chunk index for parallel decode,
// failing with a wrapped ErrNoIndex on version 1/2 traces (callers fall
// back to OpenFile) and ErrCorrupt on an invalid index. The caller must
// Close the reader.
func OpenFileParallel(path string, opt ParallelOptions) (*ParallelReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := OpenIndexed(f, st.Size(), opt)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.closer = f
	return r, nil
}

// OpenIndexed builds a ParallelReader over any random-access byte range
// holding a complete version ≥ 3 stream (a file, or bytes.Reader in tests
// and fuzzing). It does not take ownership of ra.
func OpenIndexed(ra io.ReaderAt, size int64, opt ParallelOptions) (*ParallelReader, error) {
	pr := &posReader{r: bufio.NewReader(io.NewSectionReader(ra, 0, size))}
	meta, version, err := parseHeader(pr)
	if err != nil {
		return nil, err
	}
	if version < Version {
		return nil, fmt.Errorf("version %d: %w", version, ErrNoIndex)
	}
	index, err := ReadIndex(ra, size, pr.n)
	if err != nil {
		return nil, err
	}
	if opt.To > 0 && opt.To < opt.From {
		return nil, fmt.Errorf("stream: invalid event range [%d, %d)", opt.From, opt.To)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = Workers(0)
	}
	sel := selectChunks(index, opt.From, opt.To)
	// The window bounds in-flight chunks (decoded-but-unconsumed); a little
	// beyond the worker count keeps workers from idling on a slow consumer.
	window := workers + 2
	r := &ParallelReader{
		meta:     meta,
		index:    index,
		results:  make(chan chan chunkResult, window),
		free:     make(chan []trace.Event, window+workers),
		stop:     make(chan struct{}),
		selected: uint64(len(sel)),
	}
	jobs := make(chan job)
	r.wg.Add(1 + workers)
	for i := 0; i < workers; i++ {
		go r.worker(i, ra, jobs, opt)
	}
	go r.dispatch(sel, jobs, opt)
	return r, nil
}

// selectChunks returns the chunks overlapping the event range [from, to).
func selectChunks(ix *Index, from, to uint64) []ChunkRef {
	lo, hi := 0, len(ix.Chunks)
	for lo < hi && ix.Chunks[lo].Start+ix.Chunks[lo].Events <= from {
		lo++
	}
	if to > 0 {
		for hi > lo && ix.Chunks[hi-1].Start >= to {
			hi--
		}
	}
	return ix.Chunks[lo:hi]
}

// dispatch feeds chunk refs to the workers in stream order, enqueueing each
// chunk's result channel onto the bounded window first so the consumer sees
// chunks in exactly index order regardless of which worker finishes when.
func (r *ParallelReader) dispatch(sel []ChunkRef, jobs chan<- job, opt ParallelOptions) {
	defer r.wg.Done()
	defer close(r.results)
	defer close(jobs)
	for _, ref := range sel {
		out := make(chan chunkResult, 1)
		select {
		case r.results <- out:
		case <-r.stop:
			return
		}
		select {
		case jobs <- job{ref: ref, out: out}:
		case <-r.stop:
			out <- chunkResult{err: errReaderClosed}
			return
		}
	}
}

// worker decodes chunks from jobs until the channel closes, reusing one
// section reader and one bufio buffer across chunks so per-chunk allocation
// is limited to free-list misses.
func (r *ParallelReader) worker(id int, ra io.ReaderAt, jobs <-chan job, opt ParallelOptions) {
	defer r.wg.Done()
	chunks := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.chunks", id))
	events := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.events", id))
	busyNs := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.busy_ns", id))
	allChunks := opt.Metrics.Counter("stream.decode.chunks")
	allEvents := opt.Metrics.Counter("stream.decode.events")
	opt.Tracer.NameLane(decodeWorkerLane0+id, fmt.Sprintf("decode worker %d", id))
	cr := &chunkByteReader{ra: ra}
	br := bufio.NewReaderSize(cr, 32<<10)
	for jb := range jobs {
		var buf []trace.Event
		select {
		case buf = <-r.free:
		default:
		}
		sp := opt.Tracer.Begin("chunk", "decode", decodeWorkerLane0+id)
		res := decodeChunkAt(cr, br, jb.ref, buf)
		if res.err == nil {
			// Trim boundary chunks to the requested event range; events keep
			// their full-trace sequence numbers.
			if opt.From > jb.ref.Start {
				res.lo = int(opt.From - jb.ref.Start)
			}
			if opt.To > 0 && opt.To < jb.ref.Start+uint64(res.hi) {
				res.hi = int(opt.To - jb.ref.Start)
			}
			if res.hi < res.lo {
				res.hi = res.lo
			}
		}
		busyNs.Add(uint64(sp.Elapsed().Nanoseconds()))
		sp.Arg("events", jb.ref.Events).Arg("offset", jb.ref.Offset).End()
		if res.err == nil {
			chunks.Inc()
			allChunks.Inc()
			events.Add(uint64(res.hi - res.lo))
			allEvents.Add(uint64(res.hi - res.lo))
		}
		jb.out <- res
	}
}

// chunkByteReader reads a [off, end) window of an io.ReaderAt, reusable
// across chunks without per-chunk allocation.
type chunkByteReader struct {
	ra       io.ReaderAt
	off, end int64
}

func (c *chunkByteReader) reset(off, end int64) { c.off, c.end = off, end }

func (c *chunkByteReader) Read(p []byte) (int, error) {
	if c.off >= c.end {
		return 0, io.EOF
	}
	if max := c.end - c.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := c.ra.ReadAt(p, c.off)
	c.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// decodeChunkAt decodes the single chunk at ref into buf (grown as needed),
// stamping sequence numbers from the chunk's index position. The decoded
// count must match the index, so an offset seeded mid-chunk or into
// arbitrary bytes fails with ErrCorrupt/ErrTruncated instead of yielding a
// silently different stream.
func decodeChunkAt(cr *chunkByteReader, br *bufio.Reader, ref ChunkRef, buf []trace.Event) chunkResult {
	cr.reset(ref.Offset, ref.Offset+ref.Length)
	br.Reset(cr)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return chunkResult{buf: buf, err: fmt.Errorf("stream: reading chunk count: %w", errTrunc(err))}
	}
	if n != ref.Events {
		return chunkResult{buf: buf, err: fmt.Errorf("%w: chunk at offset %d holds %d events, index says %d", ErrCorrupt, ref.Offset, n, ref.Events)}
	}
	events, err := appendChunkEvents(br, n, buf[:0])
	if err != nil {
		return chunkResult{buf: events, err: err}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return chunkResult{buf: events, err: fmt.Errorf("%w: chunk at offset %d longer than its index extent", ErrCorrupt, ref.Offset)}
	}
	for i := range events {
		events[i].Seq = ref.Start + uint64(i)
	}
	return chunkResult{buf: events, lo: 0, hi: len(events)}
}

// Meta returns the stream metadata decoded from the header.
func (r *ParallelReader) Meta() Meta { return r.meta }

// Index returns the decoded chunk index.
func (r *ParallelReader) Index() *Index { return r.index }

// Fraction reports the fraction of selected chunks consumed so far, in
// [0, 1]. Safe to call from any goroutine while another decodes.
func (r *ParallelReader) Fraction() float64 {
	if r.selected == 0 {
		return 0
	}
	return float64(r.consumed.Load()) / float64(r.selected)
}

// Next implements Source, returning io.EOF after the last selected event
// and exactly the error the serial Reader would surface otherwise.
func (r *ParallelReader) Next() (trace.Event, error) {
	if r.err != nil {
		return trace.Event{}, r.err
	}
	for r.pos >= len(r.cur) {
		if !r.fetch() {
			return trace.Event{}, r.err
		}
	}
	e := r.cur[r.pos]
	r.pos++
	return e, nil
}

// NextChunk implements ChunkSource: the remaining events of the current
// chunk, valid until the next NextChunk/Next call.
func (r *ParallelReader) NextChunk() ([]trace.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.pos >= len(r.cur) {
		if !r.fetch() {
			return nil, r.err
		}
	}
	out := r.cur[r.pos:]
	r.pos = len(r.cur)
	return out, nil
}

// fetch advances to the next in-order chunk, recycling the previous chunk's
// buffer; it reports false (with r.err set) at end of stream or on error.
func (r *ParallelReader) fetch() bool {
	if r.curBuf != nil {
		select {
		case r.free <- r.curBuf[:0]:
		default:
		}
		r.cur, r.curBuf = nil, nil
	}
	for {
		out, ok := <-r.results
		if !ok {
			r.err = io.EOF
			return false
		}
		res := <-out
		if res.err != nil {
			r.err = res.err
			return false
		}
		r.consumed.Add(1)
		if res.hi <= res.lo {
			select {
			case r.free <- res.buf[:0]:
			default:
			}
			continue
		}
		r.curBuf = res.buf
		r.cur = res.buf[res.lo:res.hi]
		r.pos = 0
		return true
	}
}

// Close stops the workers, waits for them, and closes the underlying file
// (when opened via OpenFileParallel). Idempotent.
func (r *ParallelReader) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		// Drain the window so the dispatcher unblocks; every enqueued
		// result channel is buffered and guaranteed a send, so nothing here
		// can wedge.
		for range r.results {
		}
		r.wg.Wait()
		if r.closer != nil {
			r.closeErr = r.closer.Close()
		}
	})
	return r.closeErr
}
