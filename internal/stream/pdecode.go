// Parallel-by-chunk decode over the chunk index. Chunks are delta-reset at
// their boundaries (codec.go), so each decodes independently: a dispatcher
// hands chunk refs to N workers in stream order while enqueueing each
// chunk's one-shot result channel onto a bounded window, and the consumer
// drains the window in order — parallel execution, serial-identical output.
// Each worker reads a chunk's bytes as one contiguous region (a single
// ReadAt into a reusable scratch buffer, or a zero-copy view of mmap'd
// pages) and batch-decodes it into a struct-of-arrays ChunkSoA region
// (soa.go) with index-based varint arithmetic — no io.ByteReader dispatch.
// SoA regions recycle through a free list, so decode allocates
// O(workers·chunk), not O(chunks).
package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tsm/internal/obs"
	"tsm/internal/trace"
)

// decodeWorkerLane0 is the tracer lane of the first decode worker. Pipeline
// lanes are 0 (producer) and 1..N (consumers); decode workers sit far above
// so the two groups never collide even for wide sweeps.
const decodeWorkerLane0 = 1000

// ParallelOptions configures an indexed (seeking, parallel) trace open.
type ParallelOptions struct {
	// Workers is the number of decode goroutines. Zero or negative selects
	// one per core (Workers(0)); one still uses the indexed path — useful
	// with From/To — just without decode concurrency.
	Workers int
	// From and To bound replay to events with sequence numbers in
	// [From, To); To == 0 means the end of the trace. Events keep the
	// sequence numbers they have in the full trace.
	From, To uint64
	// Mmap maps the file into memory (OpenFileMmap) instead of issuing a
	// ReadAt per chunk, letting workers decode straight out of the mapped
	// pages. Only honoured by OpenFileParallel (OpenIndexed takes whatever
	// io.ReaderAt it is given); on platforms without mmap support the flag
	// silently falls back to ReadAt, producing identical output.
	Mmap bool
	// Metrics, when non-nil, receives per-worker and aggregate decode
	// counters (stream.decode.*).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per decoded chunk on a lane
	// per worker.
	Tracer *obs.Tracer
}

// ParallelReader decodes an indexed trace with a pool of per-chunk workers,
// merging chunks in stream order. It implements Source (and ChunkSource and
// SoASource), yields exactly the byte-for-byte event sequence of the serial
// Reader, and must be Closed to release its goroutines.
type ParallelReader struct {
	meta  Meta
	index *Index

	results chan chan chunkResult
	free    chan *ChunkSoA
	stop    chan struct{}
	wg      sync.WaitGroup

	cur     *ChunkSoA // current in-order chunk region; rows [pos, hi) remain
	pos, hi int
	view    ChunkSoA      // NextChunkSoA's reusable column view into cur
	aos     []trace.Event // NextChunk's reusable adapter buffer
	err     error

	selected uint64
	consumed atomic.Uint64

	closeOnce sync.Once
	closeErr  error
	closer    io.Closer
}

type job struct {
	ref ChunkRef
	out chan chunkResult
}

type chunkResult struct {
	soa    *ChunkSoA
	lo, hi int
	err    error
}

// errReaderClosed surfaces on chunks abandoned by Close before dispatch.
var errReaderClosed = fmt.Errorf("stream: parallel reader closed")

// OpenFileParallel opens path via the chunk index for parallel decode,
// failing with a wrapped ErrNoIndex on version 1/2 traces (callers fall
// back to OpenFile) and ErrCorrupt on an invalid index. With opt.Mmap the
// file is mapped into memory and chunks decode zero-copy from the mapping.
// The caller must Close the reader.
func OpenFileParallel(path string, opt ParallelOptions) (*ParallelReader, error) {
	if opt.Mmap {
		m, err := OpenFileMmap(path)
		if err != nil {
			return nil, err
		}
		r, err := OpenIndexed(m, m.Size(), opt)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		r.closer = m
		return r, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := OpenIndexed(f, st.Size(), opt)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.closer = f
	return r, nil
}

// OpenIndexed builds a ParallelReader over any random-access byte range
// holding a complete version ≥ 3 stream (a file, or bytes.Reader in tests
// and fuzzing). It does not take ownership of ra.
func OpenIndexed(ra io.ReaderAt, size int64, opt ParallelOptions) (*ParallelReader, error) {
	pr := &posReader{r: bufio.NewReader(io.NewSectionReader(ra, 0, size))}
	meta, version, err := parseHeader(pr)
	if err != nil {
		return nil, err
	}
	if version < Version {
		return nil, fmt.Errorf("version %d: %w", version, ErrNoIndex)
	}
	index, err := ReadIndex(ra, size, pr.n)
	if err != nil {
		return nil, err
	}
	if opt.To > 0 && opt.To < opt.From {
		return nil, fmt.Errorf("stream: invalid event range [%d, %d)", opt.From, opt.To)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = Workers(0)
	}
	sel := selectChunks(index, opt.From, opt.To)
	// The window bounds in-flight chunks (decoded-but-unconsumed); a little
	// beyond the worker count keeps workers from idling on a slow consumer.
	window := workers + 2
	r := &ParallelReader{
		meta:     meta,
		index:    index,
		results:  make(chan chan chunkResult, window),
		free:     make(chan *ChunkSoA, window+workers),
		stop:     make(chan struct{}),
		selected: uint64(len(sel)),
	}
	jobs := make(chan job)
	r.wg.Add(1 + workers)
	for i := 0; i < workers; i++ {
		go r.worker(i, ra, jobs, opt)
	}
	go r.dispatch(sel, jobs, opt)
	return r, nil
}

// selectChunks returns the chunks overlapping the event range [from, to).
func selectChunks(ix *Index, from, to uint64) []ChunkRef {
	lo, hi := 0, len(ix.Chunks)
	for lo < hi && ix.Chunks[lo].Start+ix.Chunks[lo].Events <= from {
		lo++
	}
	if to > 0 {
		for hi > lo && ix.Chunks[hi-1].Start >= to {
			hi--
		}
	}
	return ix.Chunks[lo:hi]
}

// dispatch feeds chunk refs to the workers in stream order, enqueueing each
// chunk's result channel onto the bounded window first so the consumer sees
// chunks in exactly index order regardless of which worker finishes when.
func (r *ParallelReader) dispatch(sel []ChunkRef, jobs chan<- job, opt ParallelOptions) {
	defer r.wg.Done()
	defer close(r.results)
	defer close(jobs)
	for _, ref := range sel {
		out := make(chan chunkResult, 1)
		select {
		case r.results <- out:
		case <-r.stop:
			return
		}
		select {
		case jobs <- job{ref: ref, out: out}:
		case <-r.stop:
			out <- chunkResult{err: errReaderClosed}
			return
		}
	}
}

// worker decodes chunks from jobs until the channel closes. Each chunk is
// read as one contiguous region — a single ReadAt into the worker's scratch
// buffer, or a zero-copy view when ra is an mmap — and batch-decoded into a
// recycled SoA region, so per-chunk allocation is limited to free-list
// misses.
func (r *ParallelReader) worker(id int, ra io.ReaderAt, jobs <-chan job, opt ParallelOptions) {
	defer r.wg.Done()
	chunks := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.chunks", id))
	events := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.events", id))
	busyNs := opt.Metrics.Counter(fmt.Sprintf("stream.decode.worker.%d.busy_ns", id))
	allChunks := opt.Metrics.Counter("stream.decode.chunks")
	allEvents := opt.Metrics.Counter("stream.decode.events")
	opt.Tracer.NameLane(decodeWorkerLane0+id, fmt.Sprintf("decode worker %d", id))
	var scratch []byte
	for jb := range jobs {
		var soa *ChunkSoA
		select {
		case soa = <-r.free:
			soa.Reset()
		default:
			soa = &ChunkSoA{}
		}
		sp := opt.Tracer.Begin("chunk", "decode", decodeWorkerLane0+id)
		var t0 time.Time
		if opt.Metrics != nil {
			t0 = time.Now()
		}
		var res chunkResult
		res.soa = soa
		var region []byte
		region, scratch, res.err = readChunkRegion(ra, jb.ref, scratch)
		if res.err == nil {
			res.err = decodeChunkRegion(region, jb.ref, soa)
		}
		if res.err == nil {
			res.hi = soa.Len()
			// Trim boundary chunks to the requested event range; events keep
			// their full-trace sequence numbers.
			if opt.From > jb.ref.Start {
				res.lo = int(opt.From - jb.ref.Start)
			}
			if opt.To > 0 && opt.To < jb.ref.Start+uint64(res.hi) {
				res.hi = int(opt.To - jb.ref.Start)
			}
			if res.hi < res.lo {
				res.hi = res.lo
			}
		}
		if opt.Metrics != nil {
			busyNs.Add(uint64(time.Since(t0).Nanoseconds()))
		}
		sp.Arg("events", jb.ref.Events).Arg("offset", jb.ref.Offset).End()
		if res.err == nil {
			chunks.Inc()
			allChunks.Inc()
			events.Add(uint64(res.hi - res.lo))
			allEvents.Add(uint64(res.hi - res.lo))
		}
		jb.out <- res
	}
}

// Meta returns the stream metadata decoded from the header.
func (r *ParallelReader) Meta() Meta { return r.meta }

// Index returns the decoded chunk index.
func (r *ParallelReader) Index() *Index { return r.index }

// Fraction reports the fraction of selected chunks consumed so far, in
// [0, 1]. Safe to call from any goroutine while another decodes.
func (r *ParallelReader) Fraction() float64 {
	if r.selected == 0 {
		return 0
	}
	return float64(r.consumed.Load()) / float64(r.selected)
}

// Next implements Source, returning io.EOF after the last selected event
// and exactly the error the serial Reader would surface otherwise.
func (r *ParallelReader) Next() (trace.Event, error) {
	if r.err != nil {
		return trace.Event{}, r.err
	}
	for r.pos >= r.hi {
		if !r.fetch() {
			return trace.Event{}, r.err
		}
	}
	e := r.cur.Event(r.pos)
	r.pos++
	return e, nil
}

// NextChunk implements ChunkSource: the remaining events of the current
// chunk, valid until the next NextChunk/Next call.
func (r *ParallelReader) NextChunk() ([]trace.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.pos >= r.hi {
		if !r.fetch() {
			return nil, r.err
		}
	}
	view := r.cur.Slice(r.pos, r.hi)
	r.pos = r.hi
	r.aos = view.AppendTo(r.aos[:0])
	return r.aos, nil
}

// NextChunkSoA implements SoASource: a column view of the remaining events
// of the current chunk, valid until the next NextChunkSoA/NextChunk/Next
// call.
func (r *ParallelReader) NextChunkSoA() (*ChunkSoA, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.pos >= r.hi {
		if !r.fetch() {
			return nil, r.err
		}
	}
	r.view = r.cur.Slice(r.pos, r.hi)
	r.pos = r.hi
	return &r.view, nil
}

// fetch advances to the next in-order chunk, recycling the previous chunk's
// region; it reports false (with r.err set) at end of stream or on error.
func (r *ParallelReader) fetch() bool {
	if r.cur != nil {
		select {
		case r.free <- r.cur:
		default:
		}
		r.cur = nil
	}
	for {
		out, ok := <-r.results
		if !ok {
			r.err = io.EOF
			return false
		}
		res := <-out
		if res.err != nil {
			r.err = res.err
			return false
		}
		r.consumed.Add(1)
		if res.hi <= res.lo {
			if res.soa != nil {
				select {
				case r.free <- res.soa:
				default:
				}
			}
			continue
		}
		r.cur = res.soa
		r.pos = res.lo
		r.hi = res.hi
		return true
	}
}

// Close stops the workers, waits for them, and closes the underlying file
// (when opened via OpenFileParallel). Idempotent.
func (r *ParallelReader) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		// Drain the window so the dispatcher unblocks; every enqueued
		// result channel is buffered and guaranteed a send, so nothing here
		// can wedge.
		for range r.results {
		}
		r.wg.Wait()
		if r.closer != nil {
			r.closeErr = r.closer.Close()
		}
	})
	return r.closeErr
}
