package stream

import (
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/prefetch"
	"tsm/internal/trace"
	"tsm/internal/workload"
)

// workloadTrace generates a small real workload trace for equivalence tests.
func workloadTrace(t testing.TB, name string, nodes int) *trace.Trace {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	gen := spec.New(workload.Config{Nodes: nodes, Seed: 3, Scale: 0.05})
	eng := coherence.New(coherence.Config{Nodes: nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// serialCounts evaluates a model over the full stream on one goroutine —
// the reference the sharded paths must match exactly.
func serialCounts(m Model, tr *trace.Trace) Counts {
	var c Counts
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindConsumption:
			c.Consumptions++
			if m.Consumption(e) {
				c.Covered++
			}
		case trace.KindWrite:
			m.Write(e)
		}
	}
	c.Fetched, c.Discards = m.Finish()
	return c
}

// TestShardedMatchesSerial: for every baseline prefetcher (per-node state),
// the sharded evaluation over both a materialized trace and a stream must be
// bit-identical to the serial evaluation, for several shard widths.
func TestShardedMatchesSerial(t *testing.T) {
	const nodes = 8
	tr := workloadTrace(t, "db2", nodes)
	if tr.ConsumptionCount() < 200 {
		t.Fatalf("trace too small: %d consumptions", tr.ConsumptionCount())
	}

	factories := map[string]func() Model{
		"stride": func() Model {
			cfg := prefetch.DefaultStrideConfig()
			cfg.Nodes = nodes
			return prefetch.NewStride(cfg)
		},
		"ghb-gdc": func() Model {
			cfg := prefetch.DefaultGHBConfig(prefetch.GDC)
			cfg.Nodes = nodes
			return prefetch.NewGHB(cfg)
		},
		"ghb-gac": func() Model {
			cfg := prefetch.DefaultGHBConfig(prefetch.GAC)
			cfg.Nodes = nodes
			return prefetch.NewGHB(cfg)
		},
	}
	var anyFetched bool
	for name, factory := range factories {
		want := serialCounts(factory(), tr)
		if want.Consumptions == 0 {
			t.Fatalf("%s: degenerate serial reference %+v", name, want)
		}
		anyFetched = anyFetched || want.Fetched > 0
		for _, shards := range []int{1, 2, 3, nodes, nodes + 5} {
			cfg := ShardConfig{Shards: shards, Nodes: nodes}
			got := EvaluateShardedTrace(tr, cfg, func(int) Model { return factory() })
			if got != want {
				t.Errorf("%s shards=%d (trace): %+v, want %+v", name, shards, got, want)
			}
			gotStream, err := EvaluateShardedStream(TraceSource(tr), cfg, func(int) Model { return factory() })
			if err != nil {
				t.Fatal(err)
			}
			if gotStream != want {
				t.Errorf("%s shards=%d (stream): %+v, want %+v", name, shards, gotStream, want)
			}
		}
	}
	if !anyFetched {
		t.Fatal("no model fetched any blocks; the equivalence check is vacuous")
	}
}

// orderModel records the order in which it observes events for one node, to
// verify the router preserves per-shard global order.
type orderModel struct {
	node mem.NodeID
	seen []uint64
}

func (m *orderModel) Consumption(e trace.Event) bool {
	if e.Node == m.node {
		m.seen = append(m.seen, e.Seq)
	}
	return false
}
func (m *orderModel) Write(e trace.Event)      { m.seen = append(m.seen, e.Seq) }
func (m *orderModel) Finish() (uint64, uint64) { return 0, 0 }

// TestShardedStreamPreservesOrder: every shard must observe its
// consumptions and all writes in strictly increasing global order.
func TestShardedStreamPreservesOrder(t *testing.T) {
	const nodes = 4
	tr := workloadTrace(t, "em3d", nodes)
	models := make([]*orderModel, nodes)
	_, err := EvaluateShardedStream(TraceSource(tr), ShardConfig{Shards: nodes, Nodes: nodes}, func(shard int) Model {
		m := &orderModel{node: mem.NodeID(shard)}
		models[shard] = m
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if m == nil {
			t.Fatal("factory not called for every shard")
		}
		if len(m.seen) == 0 {
			t.Fatalf("shard %d observed no events", m.node)
		}
		for i := 1; i < len(m.seen); i++ {
			if m.seen[i] <= m.seen[i-1] {
				t.Fatalf("shard %d saw seq %d after %d", m.node, m.seen[i], m.seen[i-1])
			}
		}
	}
}
