package stream

import (
	"os"
	"testing"
)

// TestDescribe: an indexed file reports version, meta, chunk and event
// counts, all without decoding the payload.
func TestDescribe(t *testing.T) {
	tr := randomTrace(10_000, 99)
	meta := Meta{Workload: "db2", Nodes: 16, Scale: 0.25, Seed: 7, Repeat: 2}
	path := t.TempDir() + "/t.tsm"
	if _, err := WriteFile(path, meta, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	info, err := Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || !info.Indexed {
		t.Fatalf("info = %+v, want indexed version %d", info, Version)
	}
	if info.Meta != meta {
		t.Fatalf("meta = %+v, want %+v", info.Meta, meta)
	}
	if info.Events != uint64(tr.Len()) {
		t.Fatalf("events = %d, want %d", info.Events, tr.Len())
	}
	if info.Chunks <= 0 {
		t.Fatalf("chunks = %d, want > 0", info.Chunks)
	}
	st, _ := os.Stat(path)
	if info.Bytes != st.Size() {
		t.Fatalf("bytes = %d, want %d", info.Bytes, st.Size())
	}
}

// TestDescribeUnindexed: version 1/2 files succeed with Indexed false and no
// counts.
func TestDescribeUnindexed(t *testing.T) {
	tr := randomTrace(100, 3)
	path := t.TempDir() + "/v2.tsm"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriterVersion(f, Meta{Nodes: 4, Scale: 1, Seed: 1}, VersionNoIndex)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Indexed || info.Version != VersionNoIndex || info.Events != 0 || info.Chunks != 0 {
		t.Fatalf("unindexed info = %+v", info)
	}
}

// TestDescribeErrors: missing files and foreign bytes fail cleanly.
func TestDescribeErrors(t *testing.T) {
	if _, err := Describe(t.TempDir() + "/missing.tsm"); err == nil {
		t.Fatal("missing file did not error")
	}
	path := t.TempDir() + "/junk.tsm"
	if err := os.WriteFile(path, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Describe(path); err == nil {
		t.Fatal("foreign bytes did not error")
	}
}
