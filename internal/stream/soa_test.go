package stream

// Tests for the struct-of-arrays chunk regions (soa.go) and the mmap-backed
// reader (mmap.go): the adapter round-trip, the batch decoder's differential
// parity with the serial reader, its error-taxonomy mapping (including the
// fuzz counterexample corpus from earlier PRs), and mmap/ReadAt equivalence.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"tsm/internal/trace"
)

// TestChunkSoAAdapterRoundTrip: transposing events into columns and back
// through every adapter (AppendEvent, AppendEvents, AppendSoA, Slice, Event,
// AppendTo) reproduces the original slice exactly, and Reset keeps the arena
// capacity.
func TestChunkSoAAdapterRoundTrip(t *testing.T) {
	tr := randomTrace(137, 3)
	c := NewChunkSoA(8)
	for _, e := range tr.Events[:10] {
		c.AppendEvent(e)
	}
	c.AppendEvents(tr.Events[10:])
	if c.Len() != tr.Len() {
		t.Fatalf("Len() = %d, want %d", c.Len(), tr.Len())
	}
	for i, want := range tr.Events {
		if got := c.Event(i); got != want {
			t.Fatalf("Event(%d) = %+v, want %+v", i, got, want)
		}
	}
	if got := c.AppendTo(nil); len(got) != tr.Len() {
		t.Fatalf("AppendTo yielded %d events, want %d", len(got), tr.Len())
	}

	// A bulk column copy of a slice view is identical to copying the events.
	lo, hi := 13, 77
	var d ChunkSoA
	view := c.Slice(lo, hi)
	d.AppendSoA(&view)
	if d.Len() != hi-lo {
		t.Fatalf("AppendSoA: Len() = %d, want %d", d.Len(), hi-lo)
	}
	for i := 0; i < d.Len(); i++ {
		if d.Event(i) != tr.Events[lo+i] {
			t.Fatalf("AppendSoA row %d = %+v, want %+v", i, d.Event(i), tr.Events[lo+i])
		}
	}

	// Reset empties but keeps capacity: refilling must not grow the columns.
	capBefore := cap(c.Kind)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len() after Reset = %d", c.Len())
	}
	c.AppendEvents(tr.Events)
	if cap(c.Kind) != capBefore {
		t.Fatalf("refill after Reset reallocated: cap %d -> %d", capBefore, cap(c.Kind))
	}
}

// TestBatchDecodeMatchesSerial is the deterministic differential for the
// batch SoA decoder: walking the chunk index with decodeChunkRegion yields
// exactly the serial reader's event sequence, for several chunk geometries.
func TestBatchDecodeMatchesSerial(t *testing.T) {
	meta := Meta{Workload: "moldyn", Nodes: 16, Scale: 0.5, Seed: 3}
	for _, perCh := range []int{1, 7, 64, 1024} {
		tr := randomTrace(64*5+29, int64(perCh))
		data := encodeChunked(t, tr, meta, perCh)
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Collect(sr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := collectSoA(data)
		if err != nil {
			t.Fatalf("perCh=%d: %v", perCh, err)
		}
		if len(got) != want.Len() {
			t.Fatalf("perCh=%d: batch decode yielded %d events, serial %d", perCh, len(got), want.Len())
		}
		for i := range got {
			if got[i] != want.Events[i] {
				t.Fatalf("perCh=%d event %d: batch %+v != serial %+v", perCh, i, got[i], want.Events[i])
			}
		}
	}
}

// chunkRegion hand-encodes a chunk region (count prefix + events) for the
// error-mapping tests.
func chunkRegion(count uint64, body ...byte) []byte {
	return append(binary.AppendUvarint(nil, count), body...)
}

// TestBatchDecodeErrorMapping pins the batch decoder's error taxonomy to the
// serial reader's errTrunc contract: running off the region mid-varint is
// ErrTruncated, a varint overflowing 64 bits is ErrCorrupt, and any
// count/extent disagreement with the index is ErrCorrupt.
func TestBatchDecodeErrorMapping(t *testing.T) {
	overlong := bytes.Repeat([]byte{0x80}, 9) // + terminator = 10 bytes, > 64 bits
	cases := []struct {
		name   string
		region []byte
		events uint64
		want   error
		msg    string
	}{
		{"empty region", nil, 0, ErrTruncated, "chunk count"},
		{"count cut mid-varint", []byte{0x80}, 0, ErrTruncated, "chunk count"},
		{"count overflows", append(bytes.Repeat([]byte{0x80}, 10), 0x02), 0, ErrCorrupt, "varint overflows"},
		{"count disagrees with index", chunkRegion(2, 0x01, 0x00, 0x00, 0x00), 1, ErrCorrupt, "index says"},
		{"region ends before kind", chunkRegion(1), 1, ErrTruncated, "event kind"},
		{"node cut mid-varint", chunkRegion(1, 0x01, 0x80), 1, ErrTruncated, "event node"},
		{"node overflows", chunkRegion(1, append([]byte{0x01}, append(overlong, 0x80, 0x02)...)...), 1, ErrCorrupt, "varint overflows"},
		{"block cut mid-varint", chunkRegion(1, 0x01, 0x00, 0x80), 1, ErrTruncated, "event block"},
		{"block overflows", chunkRegion(1, append([]byte{0x01, 0x00}, append(overlong, 0x80, 0x02)...)...), 1, ErrCorrupt, "varint overflows"},
		{"producer cut mid-varint", chunkRegion(1, 0x01, 0x00, 0x00, 0x80), 1, ErrTruncated, "event producer"},
		{"producer overflows", chunkRegion(1, append([]byte{0x01, 0x00, 0x00}, append(overlong, 0x80, 0x02)...)...), 1, ErrCorrupt, "varint overflows"},
		{"region longer than extent", chunkRegion(1, 0x01, 0x00, 0x00, 0x00, 0xff), 1, ErrCorrupt, "longer than its index extent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var dst ChunkSoA
			ref := ChunkRef{Offset: 30, Length: int64(len(tc.region)), Events: tc.events}
			err := decodeChunkRegion(tc.region, ref, &dst)
			if err == nil {
				t.Fatalf("decodeChunkRegion accepted %x", tc.region)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q should mention %q", err, tc.msg)
			}
		})
	}

	// The happy path the cases above are one byte away from.
	var dst ChunkSoA
	region := chunkRegion(1, 0x01, 0x02, 0x04, 0x03)
	if err := decodeChunkRegion(region, ChunkRef{Length: int64(len(region)), Events: 1, Start: 9}, &dst); err != nil {
		t.Fatal(err)
	}
	want := trace.Event{Seq: 9, Kind: 1, Node: 2, Block: 2, Producer: 2}
	if got := dst.Event(0); got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}

// TestBatchDecodeFuzzCorpus replays the checked-in fuzz counterexamples
// (testdata/fuzz, found by earlier fuzzing of the serial and indexed
// decoders) through the batch SoA decoder: every rejection must carry one of
// the codec's structured errors — never a panic, never a bare message — and
// any accepted input must decode to exactly the serial reader's events.
func TestBatchDecodeFuzzCorpus(t *testing.T) {
	var paths []string
	for _, fuzzer := range []string{"FuzzDecode", "FuzzDecodeIndexed"} {
		got, err := filepath.Glob(filepath.Join("testdata", "fuzz", fuzzer, "*"))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		t.Fatal("no fuzz corpus files found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data := readFuzzCorpus(t, path)
			got, err := collectSoA(data)
			if err != nil {
				for _, structured := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrCorrupt, ErrNoIndex} {
					if errors.Is(err, structured) {
						return
					}
				}
				t.Fatalf("batch decode failed with an unstructured error: %v", err)
			}
			sr, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("batch decode accepted a stream the serial reader rejects at the header: %v", err)
			}
			want, err := Collect(sr)
			if err != nil {
				t.Fatalf("batch decode accepted a stream the serial reader rejects: %v", err)
			}
			if len(got) != want.Len() {
				t.Fatalf("batch decode yielded %d events, serial %d", len(got), want.Len())
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("event %d: batch %+v != serial %+v", i, got[i], want.Events[i])
				}
			}
		})
	}
}

// readFuzzCorpus parses one go-fuzz corpus file ("go test fuzz v1" header and
// a []byte literal per argument).
func readFuzzCorpus(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: unexpected corpus shape", path)
	}
	lit := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(lit)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return []byte(s)
}

// TestMmapReadAtParity: the mmap view serves exactly the file's bytes with
// file-read semantics (short read past the end returns io.EOF), and the
// zero-copy Region fast path is bounds-checked.
func TestMmapReadAtParity(t *testing.T) {
	tr := randomTrace(500, 1)
	data := encodeChunked(t, tr, Meta{Workload: "db2", Nodes: 4}, 64)
	path := filepath.Join(t.TempDir(), "trace.tsm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFileMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Fatal("mmap fell back to ReadAt on linux")
	}
	if m.Size() != int64(len(data)) {
		t.Fatalf("Size() = %d, want %d", m.Size(), len(data))
	}

	full := make([]byte, len(data))
	if n, err := m.ReadAt(full, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt(full) = %d, %v", n, err)
	}
	if !bytes.Equal(full, data) {
		t.Fatal("ReadAt returned different bytes than the file")
	}
	mid := make([]byte, 17)
	if _, err := m.ReadAt(mid, 31); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, data[31:48]) {
		t.Fatal("interior ReadAt returned different bytes than the file")
	}
	// Past-the-end semantics match a file read: short count plus io.EOF.
	tail := make([]byte, 10)
	if n, err := m.ReadAt(tail, m.Size()-3); err != io.EOF || n != 3 {
		t.Fatalf("ReadAt past end = %d, %v; want 3, io.EOF", n, err)
	}
	if n, err := m.ReadAt(tail, m.Size()); err != io.EOF || n != 0 {
		t.Fatalf("ReadAt at end = %d, %v; want 0, io.EOF", n, err)
	}

	if m.Mapped() {
		b, ok := m.Region(31, 17)
		if !ok || !bytes.Equal(b, data[31:48]) {
			t.Fatalf("Region(31, 17) = %x, %v", b, ok)
		}
		for _, r := range [][2]int64{{-1, 4}, {4, -1}, {m.Size(), 1}, {m.Size() - 3, 4}} {
			if _, ok := m.Region(r[0], r[1]); ok {
				t.Fatalf("Region(%d, %d) accepted an out-of-bounds range", r[0], r[1])
			}
		}
	}
}

// TestParallelDecodeMmapMatchesReadAt is the mmap differential: an mmap-fed
// parallel decode yields exactly the ReadAt-fed decode's events at several
// worker counts, full-range and ranged. On platforms without mmap support the
// mapping degrades to ReadAt and the test still pins the fallback.
func TestParallelDecodeMmapMatchesReadAt(t *testing.T) {
	tr := randomTrace(64*9+41, 5)
	meta := Meta{Workload: "ocean", Nodes: 16, Scale: 0.5, Seed: 7}
	data := encodeChunked(t, tr, meta, 64)
	path := filepath.Join(t.TempDir(), "trace.tsm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]uint64{{0, 0}, {100, 400}} {
		for _, workers := range []int{1, 4, 8} {
			opt := ParallelOptions{Workers: workers, From: rg[0], To: rg[1]}
			plain, err := OpenFileParallel(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := collectParallel(t, plain)
			if err := plain.Close(); err != nil {
				t.Fatal(err)
			}

			opt.Mmap = true
			mm, err := OpenFileParallel(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			got := collectParallel(t, mm)
			if err := mm.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("range=%v workers=%d: mmap decode yielded %d events, ReadAt %d", rg, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("range=%v workers=%d event %d: mmap %+v != ReadAt %+v", rg, workers, i, got[i], want[i])
				}
			}
		}
	}
}
