package stream

import (
	"io"
	"sync"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// Model is the structural subset of the evaluation interface
// (internal/prefetch.Model minus Name) the sharded evaluator drives. Any
// prefetcher model satisfies it without an import cycle.
type Model interface {
	// Consumption observes a consumption event and reports whether the
	// model's buffer covered it.
	Consumption(e trace.Event) bool
	// Write observes a write event.
	Write(e trace.Event)
	// Finish flushes state and returns blocks fetched and discarded.
	Finish() (fetched, discards uint64)
}

// Counts is the aggregate outcome of a (possibly sharded) model evaluation.
type Counts struct {
	// Consumptions is the number of consumption events evaluated.
	Consumptions uint64
	// Covered is the number of consumptions the model covered.
	Covered uint64
	// Fetched is the number of blocks the model moved into its buffer.
	Fetched uint64
	// Discards is the number of fetched blocks never used.
	Discards uint64
}

func (c *Counts) add(o Counts) {
	c.Consumptions += o.Consumptions
	c.Covered += o.Covered
	c.Fetched += o.Fetched
	c.Discards += o.Discards
}

// ShardConfig parameterises the sharded evaluator.
type ShardConfig struct {
	// Shards is the number of model replicas / workers (default: one per
	// available CPU).
	Shards int
	// Nodes is the node-id space of the trace. Consumptions from nodes
	// outside [0, Nodes) route to shard 0, matching the serial models'
	// clamp of invalid ids onto node 0.
	Nodes int
}

func (c ShardConfig) normalize() ShardConfig {
	if c.Shards <= 0 {
		c.Shards = Workers(0)
	}
	if c.Nodes > 0 && c.Shards > c.Nodes {
		c.Shards = c.Nodes
	}
	return c
}

// shardOf routes a consuming node to its shard.
func (c ShardConfig) shardOf(n mem.NodeID) int {
	if int(n) < 0 || (c.Nodes > 0 && int(n) >= c.Nodes) {
		return 0
	}
	return int(n) % c.Shards
}

// EvaluateShardedTrace evaluates a model over a materialized trace with the
// consumption stream partitioned by consuming node across cfg.Shards model
// replicas, then merges the per-shard counts in shard order.
//
// Each replica (built by factory, which must return independent instances)
// observes every write event — writes invalidate buffered copies on all
// nodes — but only the consumptions of the nodes in its shard, all in
// global trace order. For models whose mutable state is partitioned by
// consuming node (all the baseline prefetchers: stride and both GHB
// variants), the merged result is bit-identical to a serial evaluation of
// one replica over the full stream, because state for different nodes never
// interacts. Globally coupled models (TSE, whose directory CMOB pointers
// are shared across nodes) must not be sharded this way; they parallelise
// at model granularity instead (see internal/analysis).
func EvaluateShardedTrace(tr *trace.Trace, cfg ShardConfig, factory func(shard int) Model) Counts {
	cfg = cfg.normalize()
	results, _ := RunOrdered(cfg.Shards, cfg.Shards, func(shard int) (Counts, error) {
		m := factory(shard)
		var c Counts
		for i := range tr.Events {
			e := &tr.Events[i]
			switch e.Kind {
			case trace.KindWrite:
				m.Write(*e)
			case trace.KindConsumption:
				if cfg.shardOf(e.Node) == shard {
					c.Consumptions++
					if m.Consumption(*e) {
						c.Covered++
					}
				}
			}
		}
		c.Fetched, c.Discards = m.Finish()
		return c, nil
	})
	var total Counts
	for _, c := range results {
		total.add(c)
	}
	return total
}

// shardBatchEvents is the router's per-shard batch size for the streaming
// evaluator: large enough to amortise channel synchronisation, small enough
// to keep shards busy concurrently.
const shardBatchEvents = 2048

// EvaluateShardedStream is EvaluateShardedTrace over a Source: a single
// pass routes consumptions to their shard and replicates writes to every
// shard, preserving global order within each shard's sequence, so the
// result is identical to the materialized variant (and, for per-node-state
// models, to a serial evaluation) without ever holding the full trace in
// memory.
func EvaluateShardedStream(src Source, cfg ShardConfig, factory func(shard int) Model) (Counts, error) {
	cfg = cfg.normalize()
	chans := make([]chan []trace.Event, cfg.Shards)
	for i := range chans {
		chans[i] = make(chan []trace.Event, 4)
	}

	results := make([]Counts, cfg.Shards)
	var wg sync.WaitGroup
	wg.Add(cfg.Shards)
	for shard := 0; shard < cfg.Shards; shard++ {
		go func(shard int) {
			defer wg.Done()
			m := factory(shard)
			c := &results[shard]
			for batch := range chans[shard] {
				for _, e := range batch {
					if e.Kind == trace.KindWrite {
						m.Write(e)
						continue
					}
					c.Consumptions++
					if m.Consumption(e) {
						c.Covered++
					}
				}
			}
			c.Fetched, c.Discards = m.Finish()
		}(shard)
	}

	batches := make([][]trace.Event, cfg.Shards)
	flush := func(shard int) {
		if len(batches[shard]) > 0 {
			chans[shard] <- batches[shard]
			batches[shard] = nil
		}
	}
	route := func(shard int, e trace.Event) {
		batches[shard] = append(batches[shard], e)
		if len(batches[shard]) >= shardBatchEvents {
			flush(shard)
		}
	}
	var srcErr error
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		switch e.Kind {
		case trace.KindWrite:
			for shard := range batches {
				route(shard, e)
			}
		case trace.KindConsumption:
			route(cfg.shardOf(e.Node), e)
		}
	}
	for shard := range chans {
		flush(shard)
		close(chans[shard])
	}
	wg.Wait()

	var total Counts
	for i := range results {
		total.add(results[i])
	}
	return total, srcErr
}
