//go:build !linux

package stream

import (
	"errors"
	"os"
)

// errNoMmap makes OpenFileMmap take its ReadAt fallback on platforms
// without a wired-up mapping implementation.
var errNoMmap = errors.New("stream: mmap unsupported on this platform")

func mapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func unmapFile(data []byte) error { return nil }
