package stream

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

// encodeEvents renders a valid .tsm byte stream for seeding the fuzzer.
func encodeEvents(tb testing.TB, meta Meta, events []trace.Event, chunkEvents int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, meta)
	if err != nil {
		tb.Fatal(err)
	}
	if chunkEvents > 0 {
		w.perCh = chunkEvents
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary bytes to the trace decoder. The decoder must
// never panic: every input either decodes to a finite event stream ending in
// io.EOF or fails with one of the codec's structured errors. The corpus is
// seeded with small valid streams (several chunk geometries, empty streams,
// negative block deltas, invalid producers) so the fuzzer starts from the
// interesting part of the input space, plus a few hand-broken variants.
func FuzzDecode(f *testing.F) {
	meta := Meta{Workload: "db2", Nodes: 4, Scale: 0.25, Seed: 7}
	events := []trace.Event{
		{Kind: trace.KindWrite, Node: 0, Block: 0x1000, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 1, Block: 0x1000, Producer: 0},
		{Kind: trace.KindConsumption, Node: 2, Block: 0x0040, Producer: 0}, // negative delta
		{Kind: trace.KindReadMiss, Node: 3, Block: 1 << 40, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 3, Block: 0x2000, Producer: 2},
	}
	f.Add(encodeEvents(f, meta, events, 0))
	f.Add(encodeEvents(f, meta, events, 2))       // multi-chunk
	f.Add(encodeEvents(f, meta, nil, 0))          // empty stream
	f.Add(encodeEvents(f, Meta{}, events[:1], 0)) // anonymous trace
	valid := encodeEvents(f, meta, events, 0)
	f.Add(valid[:len(valid)-3])           // truncated trailer
	f.Add(valid[:9])                      // truncated metadata
	f.Add([]byte("TSMS"))                 // magic only
	f.Add([]byte{'T', 'S', 'M', 'S', 99}) // bad version
	f.Add([]byte{})
	// Version 3 footer vectors: truncated mid-index, corrupted index magic,
	// and a doubly-concatenated stream (two complete traces back to back —
	// the trailing-garbage regression the EOF check exists for).
	f.Add(valid[:len(valid)-indexSuffixLen/2])
	badMagic := append([]byte(nil), valid...)
	copy(badMagic[len(badMagic)-len(IndexMagic):], "XXXX")
	f.Add(badMagic)
	f.Add(append(append([]byte(nil), valid...), valid...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			// Header rejection must be one of the structured errors (or an
			// io error surfaced verbatim) — never a panic.
			return
		}
		if r.Meta().Nodes > maxMetaNodes {
			t.Fatalf("decoded metadata escaped the node bound: %+v", r.Meta())
		}
		var n uint64
		for {
			e, err := r.Next()
			if err == io.EOF {
				// A well-formed end: the trailer count matched.
				break
			}
			if err != nil {
				if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) {
					return
				}
				t.Fatalf("decode failed with an unstructured error: %v", err)
			}
			if e.Seq != n {
				t.Fatalf("event %d decoded with Seq %d; sequence numbers must be dense", n, e.Seq)
			}
			n++
		}
	})
}

// collectSoA decodes data by walking the chunk index directly with the batch
// struct-of-arrays decoder — parseHeader, ReadIndex, then readChunkRegion +
// decodeChunkRegion per chunk, no parallel plumbing — returning the
// concatenated events. It mirrors OpenIndexed's open-side acceptance exactly
// so the three decoders (streaming, indexed, batch SoA) can be held to an
// identical accepted-file set.
func collectSoA(data []byte) ([]trace.Event, error) {
	ra := bytes.NewReader(data)
	size := int64(len(data))
	pr := &posReader{r: bufio.NewReader(io.NewSectionReader(ra, 0, size))}
	_, version, err := parseHeader(pr)
	if err != nil {
		return nil, err
	}
	if version < Version {
		return nil, fmt.Errorf("version %d: %w", version, ErrNoIndex)
	}
	ix, err := ReadIndex(ra, size, pr.n)
	if err != nil {
		return nil, err
	}
	var (
		events  []trace.Event
		scratch []byte
		region  []byte
		soa     ChunkSoA
	)
	for _, ref := range ix.Chunks {
		if region, scratch, err = readChunkRegion(ra, ref, scratch); err != nil {
			return events, err
		}
		soa.Reset()
		if err = decodeChunkRegion(region, ref, &soa); err != nil {
			return events, err
		}
		events = soa.AppendTo(events)
	}
	return events, nil
}

// FuzzDecodeIndexed feeds arbitrary bytes to the indexed (seeking, parallel)
// open path with the streaming decoder as the differential oracle, and the
// batch struct-of-arrays decoder (collectSoA) as a third: OpenIndexed must
// never panic, and whenever it succeeds, both the parallel decode and the
// direct SoA walk must yield exactly the event stream the serial Reader
// yields — same events, same sequence numbers, same clean EOF. An input any
// one of the three rejects that another decodes (or decodes differently)
// would be a silent-corruption hole.
func FuzzDecodeIndexed(f *testing.F) {
	meta := Meta{Workload: "db2", Nodes: 4, Scale: 0.25, Seed: 7}
	events := []trace.Event{
		{Kind: trace.KindWrite, Node: 0, Block: 0x1000, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 1, Block: 0x1000, Producer: 0},
		{Kind: trace.KindConsumption, Node: 2, Block: 0x0040, Producer: 0},
		{Kind: trace.KindReadMiss, Node: 3, Block: 1 << 40, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 3, Block: 0x2000, Producer: 2},
	}
	valid := encodeEvents(f, meta, events, 2)
	f.Add(valid)
	f.Add(encodeEvents(f, meta, events, 1))
	f.Add(encodeEvents(f, meta, nil, 0))
	f.Add(valid[:len(valid)-1])                            // clipped footer suffix
	f.Add(valid[:len(valid)-indexSuffixLen])               // suffix gone entirely
	f.Add(append(append([]byte(nil), valid...), valid...)) // concatenated traces
	mutOff := append([]byte(nil), valid...)
	mutOff[len(mutOff)-indexSuffixLen-1] ^= 0x40 // corrupt an index varint
	f.Add(mutOff)
	// Chunk-body mutations aimed at the batch decoder's varint arithmetic:
	// a flipped continuation bit mid-body (an overlong or truncated varint)
	// and a zeroed count byte (count/index disagreement).
	mutBody := append([]byte(nil), valid...)
	mutBody[len(mutBody)/2] ^= 0x80
	f.Add(mutBody)
	mutCount := append([]byte(nil), valid...)
	mutCount[len(mutCount)/3] = 0
	f.Add(mutCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		soa, soaErr := collectSoA(data)
		pr, err := OpenIndexed(bytes.NewReader(data), int64(len(data)), ParallelOptions{Workers: 2})
		if err != nil {
			if soaErr == nil {
				t.Fatalf("batch SoA walk accepted a stream the indexed open rejects: %v", err)
			}
			return // structured rejection; FuzzDecode covers the serial side
		}
		defer pr.Close()
		got, gotErr := Collect(pr)

		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("indexed open accepted a stream the serial reader rejects at the header: %v", err)
		}
		want, wantErr := Collect(sr)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("indexed decode err = %v, serial decode err = %v", gotErr, wantErr)
		}
		if (soaErr == nil) != (wantErr == nil) {
			t.Fatalf("batch SoA decode err = %v, serial decode err = %v", soaErr, wantErr)
		}
		if gotErr != nil {
			return // all three rejected the body; the errors need not match textually
		}
		if got.Len() != want.Len() {
			t.Fatalf("indexed decode yielded %d events, serial %d", got.Len(), want.Len())
		}
		if len(soa) != want.Len() {
			t.Fatalf("batch SoA decode yielded %d events, serial %d", len(soa), want.Len())
		}
		for i := range want.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("event %d: indexed %+v != serial %+v", i, got.Events[i], want.Events[i])
			}
			if soa[i] != want.Events[i] {
				t.Fatalf("event %d: batch SoA %+v != serial %+v", i, soa[i], want.Events[i])
			}
		}
	})
}

// TestFuzzSeedsRoundTrip locks the seed corpus itself: every valid seed must
// decode back to exactly the events it encodes.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	meta := Meta{Workload: "db2", Nodes: 4, Scale: 0.25, Seed: 7}
	events := []trace.Event{
		{Kind: trace.KindWrite, Node: 0, Block: 0x1000, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 1, Block: 0x1000, Producer: 0},
		{Kind: trace.KindConsumption, Node: 2, Block: 0x0040, Producer: 0},
		{Kind: trace.KindReadMiss, Node: 3, Block: 1 << 40, Producer: mem.InvalidNode},
		{Kind: trace.KindConsumption, Node: 3, Block: 0x2000, Producer: 2},
	}
	for _, chunk := range []int{0, 1, 2, 3} {
		data := encodeEvents(t, meta, events, chunk)
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(events) {
			t.Fatalf("chunk=%d: decoded %d events, want %d", chunk, tr.Len(), len(events))
		}
		for i, e := range tr.Events {
			want := events[i]
			want.Seq = uint64(i)
			if e != want {
				t.Fatalf("chunk=%d event %d = %+v, want %+v", chunk, i, e, want)
			}
		}
	}
}
