// Memory-mapped trace files. Codec v3's chunk index made files seekable and
// the parallel decoder reads chunks via ReadAt; an mmap'd view drops the
// per-chunk read syscall and copy entirely — the decode workers parse
// straight out of the mapped pages through the Region fast path (soa.go).
// The mapping is platform-gated (mmap_linux.go); everywhere else — and on
// any mapping failure — Mmap degrades to plain ReadAt over the open file,
// producing identical output.
package stream

import (
	"fmt"
	"io"
	"os"
)

// Mmap is a read-only random-access view of a trace file, memory-mapped
// when the platform supports it and backed by ReadAt otherwise. It
// implements io.ReaderAt (and the decoder's zero-copy Region refinement)
// and must be Closed to release the mapping and the file.
type Mmap struct {
	f    *os.File
	data []byte // the mapping; nil when falling back to ReadAt
	size int64
}

// OpenFileMmap opens path and maps it into memory with a
// madvise(SEQUENTIAL|WILLNEED) access policy. When mapping is unsupported
// (non-Linux builds) or fails (exotic filesystems, zero-length files), the
// returned Mmap silently serves reads via ReadAt instead — mmap is a
// performance hint, not a correctness switch.
func OpenFileMmap(path string) (*Mmap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	m := &Mmap{f: f, size: st.Size()}
	if m.size > 0 && m.size == int64(int(m.size)) {
		if data, err := mapFile(f, m.size); err == nil {
			m.data = data
		}
	}
	return m, nil
}

// Size returns the file size in bytes.
func (m *Mmap) Size() int64 { return m.size }

// Mapped reports whether reads are served from a memory mapping (true) or
// the ReadAt fallback (false).
func (m *Mmap) Mapped() bool { return m.data != nil }

// ReadAt implements io.ReaderAt with the exact semantics of a file read:
// a short read past the end returns the bytes read and io.EOF.
func (m *Mmap) ReadAt(p []byte, off int64) (int, error) {
	if m.data == nil {
		return m.f.ReadAt(p, off)
	}
	if off < 0 {
		return 0, fmt.Errorf("stream: mmap read at negative offset %d", off)
	}
	if off >= m.size {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Region returns a zero-copy view of bytes [off, off+n), or false when the
// range is out of bounds or the mapping is unavailable. The view is valid
// until Close.
func (m *Mmap) Region(off, n int64) ([]byte, bool) {
	if m.data == nil || off < 0 || n < 0 || off > m.size || n > m.size-off {
		return nil, false
	}
	return m.data[off : off+n : off+n], true
}

// Close unmaps the file and closes it. The mapping (and any Region views)
// must not be used after Close.
func (m *Mmap) Close() error {
	var err error
	if m.data != nil {
		err = unmapFile(m.data)
		m.data = nil
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}
