package stream

import (
	"errors"
	"io"
	"testing"

	"tsm/internal/mem"
	"tsm/internal/trace"
)

func TestSliceSourceAndCollect(t *testing.T) {
	tr := randomTrace(100, 1)
	got, err := Collect(TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("collected %d events, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	src := TraceSource(tr)
	for i := 0; i < tr.Len(); i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("exhausted source: %v, want io.EOF", err)
	}
}

// TestCollectReassignsSeq: sequence numbers are implicit in stream order,
// so collecting must produce dense Seq values regardless of the input's.
func TestCollectReassignsSeq(t *testing.T) {
	events := []trace.Event{
		{Seq: 99, Kind: trace.KindWrite, Node: 1, Block: 64, Producer: mem.InvalidNode},
		{Seq: 7, Kind: trace.KindConsumption, Node: 2, Block: 128, Producer: 1},
	}
	got, err := Collect(NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range got.Events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestMultiSinkAndFuncSink(t *testing.T) {
	tr := randomTrace(50, 2)
	var a TraceSink
	var n int
	count := FuncSink(func(e trace.Event) error { n++; return nil })
	if _, err := Copy(MultiSink{&a, count}, TraceSource(tr)); err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != tr.Len() || n != tr.Len() {
		t.Fatalf("fan-out saw %d/%d events, want %d", a.Trace.Len(), n, tr.Len())
	}

	boom := errors.New("boom")
	fail := FuncSink(func(e trace.Event) error { return boom })
	if _, err := Copy(MultiSink{fail}, TraceSource(tr)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunOrdered(t *testing.T) {
	out, err := RunOrdered(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d (merge must preserve index order)", i, v)
		}
	}
	boom := errors.New("boom")
	if _, err := RunOrdered(10, 4, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Serial fallback path.
	out, err = RunOrdered(3, 1, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("serial RunOrdered = %v, %v", out, err)
	}
}

// closerFunc adapts a function to io.Closer for CloseMerge tests.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// TestCloseMerge: the primary error always wins; the close error is adopted
// only when there is nothing to mask, and the closer runs on every path.
func TestCloseMerge(t *testing.T) {
	primary := errors.New("primary")
	closeErr := errors.New("close failed")
	closed := 0
	count := closerFunc(func() error { closed++; return nil })
	failing := closerFunc(func() error { closed++; return closeErr })

	if err := CloseMerge(count, nil); err != nil {
		t.Fatalf("nil + clean close = %v", err)
	}
	if err := CloseMerge(failing, nil); err != closeErr {
		t.Fatalf("nil + failing close = %v, want the close error", err)
	}
	if err := CloseMerge(failing, primary); err != primary {
		t.Fatalf("primary + failing close = %v, want the primary error", err)
	}
	if err := CloseMerge(count, primary); err != primary {
		t.Fatalf("primary + clean close = %v, want the primary error", err)
	}
	if closed != 4 {
		t.Fatalf("closer ran %d times, want 4 (every path closes)", closed)
	}
}
