// The chunk index: a footer appended after the trailer by version ≥ 3
// writers, mapping every chunk to its file offset and event count. Because
// the fixed-width suffix (payload length + magic) sits at the very end of
// the file, a seeking reader recovers the whole index with two ReadAt calls
// and no stream decode — which is what partial replay (-from/-to) and
// parallel-by-chunk decode (pdecode.go) build on.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// IndexMagic terminates the chunk-index footer of a version ≥ 3 stream.
var IndexMagic = [4]byte{'T', 'S', 'M', 'I'}

// indexSuffixLen is the fixed-width tail of the footer: an 8-byte little
// endian payload length followed by IndexMagic.
const indexSuffixLen = 12

// ErrNoIndex is returned (wrapped) when a seeking open is attempted on a
// stream too old to carry a chunk index (version 1 or 2). Callers fall back
// to the serial streaming Reader.
var ErrNoIndex = errors.New("stream: trace has no chunk index (codec version < 3)")

// ChunkRef locates one chunk inside a trace file.
type ChunkRef struct {
	// Offset is the absolute file offset of the chunk's leading event-count
	// uvarint.
	Offset int64
	// Length is the chunk's extent in bytes (count uvarint included).
	Length int64
	// Events is the number of events the chunk holds.
	Events uint64
	// Start is the sequence number of the chunk's first event.
	Start uint64
}

// Index is the decoded chunk index of one trace file.
type Index struct {
	// Chunks lists every chunk in stream order.
	Chunks []ChunkRef
	// Events is the total event count (equal to the trailer's).
	Events uint64
	// End is the absolute file offset of the end-of-stream marker.
	End int64
}

// appendFooter encodes the chunk-index footer (payload + suffix) for chunks
// ending at the end-marker offset end, appending it to dst.
func appendFooter(dst []byte, chunks []ChunkRef, end int64) []byte {
	payloadStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(chunks)))
	prev := int64(0)
	for _, c := range chunks {
		dst = binary.AppendUvarint(dst, uint64(c.Offset-prev))
		dst = binary.AppendUvarint(dst, c.Events)
		prev = c.Offset
	}
	dst = binary.AppendUvarint(dst, uint64(end-prev))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(dst)-payloadStart))
	return append(dst, IndexMagic[:]...)
}

// walkFooterPayload decodes a footer payload from r, invoking visit (when
// non-nil) with each chunk's absolute offset and event count, and returns
// the chunk count, the event-count sum and the absolute end-marker offset.
// Structural bounds (monotonic offsets, per-chunk event limits) fail with
// ErrCorrupt; an early end of input fails with ErrTruncated.
func walkFooterPayload(r io.ByteReader, visit func(i int, offset int64, events uint64) error) (count, sum uint64, end int64, err error) {
	count, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("stream: reading footer chunk count: %w", errTrunc(err))
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("stream: reading footer offset: %w", errTrunc(err))
		}
		if d > uint64(1)<<62 || (i > 0 && d == 0) {
			return 0, 0, 0, fmt.Errorf("%w: footer offsets not increasing", ErrCorrupt)
		}
		off := prev + int64(d)
		events, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("stream: reading footer event count: %w", errTrunc(err))
		}
		if events == 0 || events > maxChunkEvents {
			return 0, 0, 0, fmt.Errorf("%w: footer chunk of %d events", ErrCorrupt, events)
		}
		sum += events
		if visit != nil {
			if err := visit(int(i), off, events); err != nil {
				return 0, 0, 0, err
			}
		}
		prev = off
	}
	d, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("stream: reading footer end offset: %w", errTrunc(err))
	}
	if d > uint64(1)<<62 || (count > 0 && d == 0) {
		return 0, 0, 0, fmt.Errorf("%w: footer end offset not past last chunk", ErrCorrupt)
	}
	return count, sum, prev + int64(d), nil
}

// ReadIndex recovers the chunk index of a version ≥ 3 trace of the given
// size via ra, without decoding the stream. headerLen is the length of the
// already-parsed header (see parseHeader). Every offset is validated
// against the file extents and the footer is cross-checked against the
// trailer, so a corrupt index fails here with ErrCorrupt rather than
// sending decode workers to arbitrary offsets.
func ReadIndex(ra io.ReaderAt, size, headerLen int64) (*Index, error) {
	if size < headerLen+indexSuffixLen {
		return nil, fmt.Errorf("stream: reading footer: %w", ErrTruncated)
	}
	var suffix [indexSuffixLen]byte
	if _, err := ra.ReadAt(suffix[:], size-indexSuffixLen); err != nil {
		return nil, fmt.Errorf("stream: reading footer suffix: %w", errTrunc(err))
	}
	if *(*[4]byte)(suffix[8:]) != IndexMagic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(suffix[:8])
	if payloadLen == 0 || payloadLen > uint64(size-headerLen-indexSuffixLen) {
		return nil, fmt.Errorf("%w: footer length %d", ErrCorrupt, payloadLen)
	}
	footerStart := size - indexSuffixLen - int64(payloadLen)
	payload := make([]byte, payloadLen)
	if _, err := ra.ReadAt(payload, footerStart); err != nil {
		return nil, fmt.Errorf("stream: reading footer: %w", errTrunc(err))
	}
	pr := &posReader{r: newSliceScanner(payload)}
	ix := &Index{}
	_, sum, end, err := walkFooterPayload(pr, func(i int, offset int64, events uint64) error {
		if offset < headerLen {
			return fmt.Errorf("%w: footer offset %d inside header", ErrCorrupt, offset)
		}
		ix.Chunks = append(ix.Chunks, ChunkRef{Offset: offset, Events: events, Start: ix.Events})
		ix.Events += events
		return nil
	})
	if err != nil {
		return nil, err
	}
	if pr.n != int64(payloadLen) {
		return nil, fmt.Errorf("%w: footer length %d, decoded %d bytes", ErrCorrupt, payloadLen, pr.n)
	}
	if end >= footerStart {
		return nil, fmt.Errorf("%w: footer end offset %d past footer", ErrCorrupt, end)
	}
	ix.End = end
	// The chunks must tile the byte range [headerLen, end) exactly — chunk N
	// ends where chunk N+1 begins by construction (Length below), so the only
	// possible gap is between the header and the first chunk (or the end
	// marker, for an empty trace). A gap would be bytes the index silently
	// skips but a streaming decode reads: silent-corruption territory.
	bodyStart := end
	if len(ix.Chunks) > 0 {
		bodyStart = ix.Chunks[0].Offset
	}
	if bodyStart != headerLen {
		return nil, fmt.Errorf("%w: footer leaves a %d-byte gap after the header", ErrCorrupt, bodyStart-headerLen)
	}
	for i := range ix.Chunks {
		next := end
		if i+1 < len(ix.Chunks) {
			next = ix.Chunks[i+1].Offset
		}
		ix.Chunks[i].Length = next - ix.Chunks[i].Offset
		// A chunk needs at least one count byte plus four bytes per event
		// (kind, node, block delta, producer — one byte each at minimum).
		if ix.Chunks[i].Length <= int64(ix.Chunks[i].Events)*4 {
			return nil, fmt.Errorf("%w: footer chunk %d shorter than its events", ErrCorrupt, i)
		}
	}
	// Cross-check the trailer: the bytes between the end marker and the
	// footer must be exactly the end marker and a count matching the index.
	tail := make([]byte, footerStart-end)
	if _, err := ra.ReadAt(tail, end); err != nil {
		return nil, fmt.Errorf("stream: reading trailer: %w", errTrunc(err))
	}
	tr := &posReader{r: newSliceScanner(tail)}
	if marker, err := binary.ReadUvarint(tr); err != nil || marker != 0 {
		return nil, fmt.Errorf("%w: end marker missing at footer end offset", ErrCorrupt)
	}
	total, err := binary.ReadUvarint(tr)
	if err != nil {
		return nil, fmt.Errorf("stream: reading trailer: %w", errTrunc(err))
	}
	if total != sum {
		return nil, fmt.Errorf("%w: trailer count %d, footer counts %d", ErrCorrupt, total, sum)
	}
	if tr.n != int64(len(tail)) {
		return nil, fmt.Errorf("%w: trailing data between trailer and footer", ErrCorrupt)
	}
	return ix, nil
}

// sliceScanner is a minimal byteScanner over a byte slice (bytes.Reader
// would also do, but this keeps posReader's accounting exact and
// allocation-free).
type sliceScanner struct {
	b   []byte
	pos int
}

func newSliceScanner(b []byte) *sliceScanner { return &sliceScanner{b: b} }

func (s *sliceScanner) Read(p []byte) (int, error) {
	if s.pos >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.pos:])
	s.pos += n
	return n, nil
}

func (s *sliceScanner) ReadByte() (byte, error) {
	if s.pos >= len(s.b) {
		return 0, io.EOF
	}
	b := s.b[s.pos]
	s.pos++
	return b, nil
}
