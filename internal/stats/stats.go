// Package stats provides the small statistics toolkit used by the
// measurement harness: means, standard deviations, 95% confidence intervals
// (the paper reports sample-derived commercial results with 95% CIs),
// histograms, cumulative distributions and systematic sampling helpers in
// the spirit of SMARTS.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations and reports summary statistics.
// The zero value is ready to use.
type Sample struct {
	n     int
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or zero for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (zero for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (zero for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (zero for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	// Guard against catastrophic cancellation going slightly negative.
	v := (s.sumSq - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// ConfidenceInterval95 returns the half-width of a 95% confidence interval
// for the mean, using a normal approximation (z = 1.96). For fewer than two
// observations it returns zero.
func (s *Sample) ConfidenceInterval95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String summarises the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g stddev=%.4g ci95=%.4g", s.n, s.Mean(), s.StdDev(), s.ConfidenceInterval95())
}

// Ratio is a convenience for coverage-style metrics: a numerator counted
// against a denominator, reported as a fraction.
type Ratio struct {
	Num   uint64
	Denom uint64
}

// Add increments the numerator by num and the denominator by denom.
func (r *Ratio) Add(num, denom uint64) {
	r.Num += num
	r.Denom += denom
}

// Value returns Num/Denom, or zero when the denominator is zero.
func (r Ratio) Value() float64 {
	if r.Denom == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Denom)
}

// Percent returns the ratio as a percentage.
func (r Ratio) Percent() float64 { return 100 * r.Value() }

// Histogram counts observations in integer-keyed buckets. It is used for
// stream-length distributions (Figure 13) and correlation-distance counts
// (Figure 6).
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add increments bucket by one.
func (h *Histogram) Add(bucket int) { h.AddN(bucket, 1) }

// AddN increments bucket by n.
func (h *Histogram) AddN(bucket int, n uint64) {
	h.counts[bucket] += n
	h.total += n
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the count in a bucket.
func (h *Histogram) Count(bucket int) uint64 { return h.counts[bucket] }

// Buckets returns the sorted list of non-empty buckets.
func (h *Histogram) Buckets() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CumulativeFraction returns the fraction of observations in buckets <= b.
func (h *Histogram) CumulativeFraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for k, n := range h.counts {
		if k <= b {
			c += n
		}
	}
	return float64(c) / float64(h.total)
}

// WeightedCumulativeFraction returns the fraction of *weight* (bucket value
// times count) contributed by buckets <= b. Figure 13 plots the cumulative
// fraction of all SVB hits contributed by streams of each length, which is a
// weighted CDF where the weight of a stream of length L is L.
func (h *Histogram) WeightedCumulativeFraction(b int) float64 {
	var total, c float64
	for k, n := range h.counts {
		w := float64(k) * float64(n)
		total += w
		if k <= b {
			c += w
		}
	}
	if total == 0 {
		return 0
	}
	return c / total
}

// Mean returns the mean bucket value weighted by count.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, n := range h.counts {
		sum += float64(k) * float64(n)
	}
	return sum / float64(h.total)
}

// SystematicSample selects every k-th index from a population of size n,
// starting at offset start, and returns the selected indices. It mirrors the
// SMARTS-style systematic sampling the paper uses to pick measurement
// windows. k must be positive; start is taken modulo k.
func SystematicSample(n, k, start int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	start %= k
	if start < 0 {
		start += k
	}
	out := make([]int, 0, n/k+1)
	for i := start; i < n; i += k {
		out = append(out, i)
	}
	return out
}

// HarmonicMean returns the harmonic mean of xs, ignoring non-positive
// entries. It returns zero when no positive entries exist.
func HarmonicMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// GeometricMean returns the geometric mean of xs, ignoring non-positive
// entries. It returns zero when no positive entries exist.
func GeometricMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
