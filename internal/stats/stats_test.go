package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleBasics(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-9) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.ConfidenceInterval95() <= 0 {
		t.Fatal("CI95 should be positive for a non-degenerate sample")
	}
	if s.String() == "" {
		t.Fatal("String() should not be empty")
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.ConfidenceInterval95() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.ConfidenceInterval95() != 0 {
		t.Fatal("single-observation sample should have zero variance and CI")
	}
}

func TestSampleVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes moderate so the test exercises the
			// cancellation guard rather than float overflow.
			s.Add(math.Mod(x, 1e6))
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("zero ratio should be 0")
	}
	r.Add(3, 4)
	r.Add(1, 4)
	if !almostEqual(r.Value(), 0.5, 1e-12) {
		t.Fatalf("Value = %v, want 0.5", r.Value())
	}
	if !almostEqual(r.Percent(), 50, 1e-12) {
		t.Fatalf("Percent = %v, want 50", r.Percent())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.AddN(4, 2)
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Count(1) != 2 || h.Count(4) != 2 || h.Count(2) != 0 {
		t.Fatal("bucket counts wrong")
	}
	b := h.Buckets()
	if len(b) != 2 || b[0] != 1 || b[1] != 4 {
		t.Fatalf("Buckets = %v, want [1 4]", b)
	}
	if !almostEqual(h.CumulativeFraction(1), 0.5, 1e-12) {
		t.Fatalf("CumulativeFraction(1) = %v, want 0.5", h.CumulativeFraction(1))
	}
	if !almostEqual(h.CumulativeFraction(4), 1.0, 1e-12) {
		t.Fatalf("CumulativeFraction(4) = %v, want 1", h.CumulativeFraction(4))
	}
	// Weighted: weight(1)*2 = 2, weight(4)*2 = 8, total 10.
	if !almostEqual(h.WeightedCumulativeFraction(1), 0.2, 1e-12) {
		t.Fatalf("WeightedCumulativeFraction(1) = %v, want 0.2", h.WeightedCumulativeFraction(1))
	}
	if !almostEqual(h.Mean(), 2.5, 1e-12) {
		t.Fatalf("Mean = %v, want 2.5", h.Mean())
	}
}

func TestHistogramCumulativeMonotone(t *testing.T) {
	f := func(buckets []uint8) bool {
		h := NewHistogram()
		for _, b := range buckets {
			h.Add(int(b))
		}
		prev := -1.0
		for b := 0; b <= 256; b += 8 {
			c := h.CumulativeFraction(b)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return len(buckets) == 0 || almostEqual(h.CumulativeFraction(256), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystematicSample(t *testing.T) {
	idx := SystematicSample(10, 3, 1)
	want := []int{1, 4, 7}
	if len(idx) != len(want) {
		t.Fatalf("SystematicSample = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SystematicSample = %v, want %v", idx, want)
		}
	}
	if SystematicSample(0, 3, 0) != nil {
		t.Fatal("empty population should return nil")
	}
	if SystematicSample(10, 0, 0) != nil {
		t.Fatal("non-positive period should return nil")
	}
	if got := SystematicSample(5, 2, -1); len(got) == 0 {
		t.Fatal("negative start should be normalised, not produce empty output")
	}
}

func TestMeans(t *testing.T) {
	if !almostEqual(HarmonicMean([]float64{1, 2, 4}), 3.0/(1+0.5+0.25), 1e-12) {
		t.Fatal("HarmonicMean wrong")
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{0, -1}) != 0 {
		t.Fatal("HarmonicMean of empty/non-positive should be 0")
	}
	if !almostEqual(GeometricMean([]float64{1, 4}), 2, 1e-12) {
		t.Fatal("GeometricMean wrong")
	}
	if GeometricMean(nil) != 0 {
		t.Fatal("GeometricMean of empty should be 0")
	}
}
