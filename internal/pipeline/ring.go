package pipeline

// The ring broadcast strategy: one shared ring of chunk buffers with a
// per-consumer read cursor, instead of one bounded channel per consumer.
//
// The channel strategy costs one channel send per consumer per chunk and a
// fresh chunk allocation per broadcast, which is fine for the handful of
// consumers file replay needs but does not hold up when an entire sensitivity
// sweep — dozens of TSE configurations — rides one decode pass. The ring
// publishes each chunk exactly once (a slot index increment plus one
// broadcast wakeup, however many consumers are attached) and reuses the ring
// slots' backing arrays once every cursor has moved past them, so a sweep
// allocates O(ring) chunk memory in total instead of O(chunks): the decode
// pass over an arbitrarily long trace stops being an allocation source at
// all. This is the inter-query sharing idea of Shared Arrangements applied to
// trace replay: maintain one stream, attach N cheap readers.
//
// Semantics are identical to the channel strategy, and the differential
// tests pin that:
//
//   - every consumer observes the events in exact decode order;
//   - the producer never runs more than the ring capacity ahead of the
//     SLOWEST live cursor (slowest-cursor backpressure, bounded memory);
//   - terminal conditions are in band: a consumer drains every chunk
//     published before it observes io.EOF, the producer's decode error, or
//     ErrCanceled after another consumer failed;
//   - the first consumer failure cancels the producer and every other
//     consumer promptly, and no goroutine outlives Run.

import (
	"errors"
	"io"
	"sync"
	"time"

	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// ringState is the shared state of one ring-strategy Run: the slot buffers,
// the producer's publish count and the per-consumer cursors, all guarded by
// one mutex with two condition variables (producer waits for a free slot,
// consumers wait for a new chunk or the terminal).
type ringState struct {
	mu       sync.Mutex
	notFull  *sync.Cond // producer: a slot was released or the run stopped
	notEmpty *sync.Cond // consumers: a chunk was published or the run closed

	slots []*bcastChunk // ring of reusable chunk buffers (SoA + AoS view)
	head  uint64        // chunks published so far

	taken    []uint64 // per consumer: chunks handed to its source
	released []uint64 // per consumer: chunks it has finished reading
	done     []bool   // consumer returned; stops constraining backpressure
	ndone    int

	closed   bool  // no more chunks will be published
	terminal error // ending observed after draining (nil means io.EOF)
	stopped  bool  // cancellation: the producer must stop decoding

	o *engineObs // nil when the run is un-instrumented
}

func newRingState(capacity, consumers int, o *engineObs) *ringState {
	r := &ringState{
		slots:    make([]*bcastChunk, capacity),
		taken:    make([]uint64, consumers),
		released: make([]uint64, consumers),
		done:     make([]bool, consumers),
		o:        o,
	}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// minReleased returns the slowest live cursor — the number of chunks every
// still-running consumer has finished with. Finished consumers are excluded,
// so one early return never wedges the producer. Must hold mu.
func (r *ringState) minReleased() uint64 {
	min := r.head
	for i, rel := range r.released {
		if !r.done[i] && rel < min {
			min = rel
		}
	}
	return min
}

// buffer blocks until the next ring slot is reusable — every live consumer
// has released it — and returns its chunk buffer, emptied, for the producer
// to fill outside the lock. It reports false once decoding is pointless
// (cancellation, or every consumer has returned).
func (r *ringState) buffer(chunkEvents int) (*bcastChunk, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var waited time.Duration
	for {
		if r.stopped || r.ndone == len(r.done) {
			return nil, false
		}
		if r.head-r.minReleased() < uint64(len(r.slots)) {
			break
		}
		if r.o.enabled() {
			// The producer is throttled by the slowest live cursor holding
			// this slot: that wait is the ring's backpressure stall.
			t0 := time.Now()
			r.notFull.Wait()
			waited += time.Since(t0)
		} else {
			r.notFull.Wait()
		}
	}
	r.o.producerStall(waited)
	slot := r.slots[r.head%uint64(len(r.slots))]
	if slot == nil {
		slot = &bcastChunk{}
		r.slots[r.head%uint64(len(r.slots))] = slot
	} else {
		slot.reset()
	}
	return slot, true
}

// publish makes the filled chunk visible to every consumer with a single
// head increment (one slot write, one wakeup — no per-consumer send). It
// reports false if the run was canceled while the producer was filling the
// chunk.
func (r *ringState) publish(chunk *bcastChunk) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped || r.ndone == len(r.done) {
		return false
	}
	r.slots[r.head%uint64(len(r.slots))] = chunk
	r.head++
	if r.o.enabled() {
		r.o.ringOccupancy(r.head - r.minReleased())
	}
	r.notEmpty.Broadcast()
	return true
}

// close records the stream's ending. Consumers observe it strictly in band:
// only after draining every published chunk. A nil err is a clean io.EOF.
func (r *ringState) close(err error) {
	r.mu.Lock()
	r.closed = true
	r.terminal = err
	r.notEmpty.Broadcast()
	r.mu.Unlock()
}

// cancel stops the producer at its next slot acquisition or publish. Safe to
// call from any goroutine, any number of times.
func (r *ringState) cancel() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
}

// finish marks one consumer as returned, releasing its backpressure
// constraint; once every consumer has returned, further decoding serves
// nobody and the producer is canceled.
func (r *ringState) finish(id int) {
	r.mu.Lock()
	if !r.done[id] {
		r.done[id] = true
		r.ndone++
		r.notFull.Signal()
	}
	all := r.ndone == len(r.done)
	r.mu.Unlock()
	if all {
		r.cancel()
	}
}

// take returns the consumer's next chunk, releasing the previous one (the
// consumer has exhausted it — that release is what lets the producer reuse
// the slot's region). A false ok is the in-band ending: err is the
// terminal error, or nil for a clean end of stream.
func (r *ringState) take(id int) (chunk *bcastChunk, err error, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken[id] > r.released[id] {
		r.released[id] = r.taken[id]
		r.notFull.Signal()
	}
	var waited time.Duration
	for r.taken[id] == r.head && !r.closed {
		if r.o.enabled() {
			t0 := time.Now()
			r.notEmpty.Wait()
			waited += time.Since(t0)
		} else {
			r.notEmpty.Wait()
		}
	}
	r.o.consumerStall(id, waited)
	if r.taken[id] < r.head {
		// Cursor lag: chunks published ahead of this cursor before the take.
		lag := r.head - r.taken[id]
		ch := r.slots[r.taken[id]%uint64(len(r.slots))]
		r.taken[id]++
		r.o.consumerChunk(id, ch.n, lag)
		return ch, nil, true
	}
	return nil, r.terminal, false
}

// ringSource adapts one consumer's ring cursor to the stream.Source its
// evaluation loop pulls. Like chanSource, terminal conditions are strictly
// in band: every event published to the ring is observed before any ending.
type ringSource struct {
	r    *ringState
	id   int
	cur  *bcastChunk
	aos  []trace.Event // cur's AoS view, fetched on first per-event read
	view stream.ChunkSoA
	pos  int
	err  error
	sampleState
}

// refill advances the cursor to the next published chunk, handling the
// sample pump and in-band terminals. It returns the terminal error once the
// stream ends (also recorded in s.err).
func (s *ringSource) refill() error {
	// The previous chunk is fully processed: offer the consumer a sample
	// at its boundary BEFORE take releases the slot (the boundary seq was
	// captured at adoption — the slot region must not be re-read once the
	// producer can recycle it).
	s.pump(false)
	chunk, err, ok := s.r.take(s.id)
	if !ok {
		if err == nil {
			err = io.EOF
		}
		s.err = err
		// Drop the slot reference; the slot itself was released by take.
		s.cur, s.aos, s.pos = nil, nil, 0
		s.pump(true)
		return err
	}
	s.cur, s.aos, s.pos = chunk, nil, 0
	s.adopt(chunk)
	return nil
}

// Next implements stream.Source.
func (s *ringSource) Next() (trace.Event, error) {
	if s.err != nil {
		return trace.Event{}, s.err
	}
	for s.cur == nil || s.pos >= s.cur.n {
		if err := s.refill(); err != nil {
			return trace.Event{}, err
		}
	}
	if s.aos == nil {
		s.aos = s.cur.aos()
	}
	e := s.aos[s.pos]
	s.pos++
	return e, nil
}

// NextChunkSoA implements stream.SoASource: a column view of the remaining
// events of the current chunk, valid until the next call (which releases
// the underlying slot back to the producer).
func (s *ringSource) NextChunkSoA() (*stream.ChunkSoA, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.cur == nil || s.pos >= s.cur.n {
		if err := s.refill(); err != nil {
			return nil, err
		}
	}
	s.view = s.cur.cols().Slice(s.pos, s.cur.n)
	s.pos = s.cur.n
	return &s.view, nil
}

// runRing is Config.Run's ring strategy (two or more consumers; the 0/1
// fast paths are shared with the channel strategy).
func (c Config) runRing(src stream.Source, consumers []Consumer, smps []Sampler, o *engineObs) error {
	r := newRingState(c.ChunkBuffer, len(consumers), o)
	var wg sync.WaitGroup

	// Producer: the single decode pass, filling reusable ring slots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var start time.Time
		if o.enabled() {
			start = time.Now()
		}
		var total uint64
		sp := o.beginSpan("decode", "pipeline", 0)
		defer func() {
			o.producerDone(time.Since(start))
			if sp != nil {
				sp.Arg("events", total).End()
			}
		}()
		filler := newChunkFiller(src)
		for {
			chunk, ok := r.buffer(c.ChunkEvents)
			if !ok {
				r.close(ErrCanceled)
				return
			}
			var csp *obs.SpanHandle
			if o.tracing() {
				csp = o.tracer.Begin("chunk", "decode", 0)
			}
			terminal := filler.fill(chunk, c.ChunkEvents)
			if n := chunk.n; n > 0 {
				total += uint64(n)
				o.decoded(n)
				csp.Arg("events", n).End()
				if !r.publish(chunk) {
					r.close(ErrCanceled)
					return
				}
			}
			if terminal == io.EOF {
				r.close(nil) // a clean end: consumers drain, then see io.EOF
				return
			}
			if terminal != nil {
				r.close(terminal)
				return
			}
		}
	}()

	// Consumers: one goroutine each over a private cursor. No draining is
	// needed on early return — finish simply removes the cursor from the
	// backpressure constraint.
	errs := make([]error, len(consumers))
	for i, consumer := range consumers {
		wg.Add(1)
		go func(i int, consumer Consumer) {
			defer wg.Done()
			sp := o.beginSpan(o.label(i), "consumer", i+1)
			err := consumer.Run(&ringSource{
				r: r, id: i,
				sampleState: sampleState{sampler: samplerAt(smps, i)},
			})
			o.consumerSpanEnd(i, sp)
			errs[i] = err
			if err != nil && !errors.Is(err, ErrCanceled) {
				r.cancel()
			}
			r.finish(i)
		}(i, consumer)
	}

	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			return err
		}
	}
	return nil
}
