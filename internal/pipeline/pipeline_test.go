package pipeline

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// makeEvents builds a deterministic synthetic event stream.
func makeEvents(n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		kind := trace.KindConsumption
		if i%7 == 3 {
			kind = trace.KindWrite
		}
		events[i] = trace.Event{
			Seq:      uint64(i),
			Kind:     kind,
			Node:     mem.NodeID(i % 4),
			Block:    mem.BlockAddr(i * 64),
			Producer: mem.NodeID((i + 1) % 4),
		}
	}
	return events
}

// strategies enumerates both broadcast strategies, so every engine test pins
// the ring and the channels fan-out to the same observable behaviour.
var strategies = []struct {
	name string
	s    Strategy
}{{"ring", Ring}, {"channels", Channels}}

// recordConsumer keeps every event it sees (events arrive by value, so
// retaining them is fine) and remembers its terminal error.
type recordConsumer struct {
	events   []trace.Event
	terminal error
}

func (c *recordConsumer) Run(src stream.Source) error {
	for {
		e, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			c.terminal = err
			return err
		}
		c.events = append(c.events, e)
	}
}

// TestBroadcastParity: every consumer must observe the complete stream in
// decode order, for chunk sizes that divide the stream, that don't, and that
// exceed it.
func TestBroadcastParity(t *testing.T) {
	events := makeEvents(1000)
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			for _, chunk := range []int{1, 3, 256, 4096} {
				consumers := make([]Consumer, 5)
				records := make([]*recordConsumer, len(consumers))
				for i := range consumers {
					records[i] = &recordConsumer{}
					consumers[i] = records[i]
				}
				cfg := Config{ChunkEvents: chunk, ChunkBuffer: 2, Strategy: st.s}
				if err := cfg.Run(stream.NewSliceSource(events), consumers...); err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				for ci, rec := range records {
					if len(rec.events) != len(events) {
						t.Fatalf("chunk %d consumer %d: saw %d events, want %d", chunk, ci, len(rec.events), len(events))
					}
					for i := range events {
						if rec.events[i] != events[i] {
							t.Fatalf("chunk %d consumer %d: event %d = %+v, want %+v", chunk, ci, i, rec.events[i], events[i])
						}
					}
				}
			}
		})
	}
}

// TestZeroConsumers: a fan-out with no destinations is a no-op that does not
// read the source.
func TestZeroConsumers(t *testing.T) {
	src := &countingSource{src: stream.NewSliceSource(makeEvents(10))}
	if err := Run(src); err != nil {
		t.Fatal(err)
	}
	if n := src.nexts.Load(); n != 0 {
		t.Fatalf("zero-consumer run read the source %d times", n)
	}
}

// TestSingleConsumer: the one-consumer fast path must behave like a plain
// pass over the source.
func TestSingleConsumer(t *testing.T) {
	events := makeEvents(50)
	rec := &recordConsumer{}
	src := &countingSource{src: stream.NewSliceSource(events)}
	if err := Run(src, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != len(events) {
		t.Fatalf("saw %d events, want %d", len(rec.events), len(events))
	}
	if n := src.nexts.Load(); n != int64(len(events)+1) {
		t.Fatalf("source read %d times, want %d (events + one EOF)", n, len(events)+1)
	}
}

// TestEmptyStream: an empty source must deliver a clean immediate EOF to
// every consumer.
func TestEmptyStream(t *testing.T) {
	records := []*recordConsumer{{}, {}, {}}
	if err := Run(stream.NewSliceSource(nil), records[0], records[1], records[2]); err != nil {
		t.Fatal(err)
	}
	for i, rec := range records {
		if len(rec.events) != 0 || rec.terminal != nil {
			t.Fatalf("consumer %d: events=%d terminal=%v on empty stream", i, len(rec.events), rec.terminal)
		}
	}
}

// countingSource counts Next calls on the way through. The counter is
// atomic so tests may sample it while the producer is still decoding.
type countingSource struct {
	src   stream.Source
	nexts atomic.Int64
}

func (c *countingSource) Next() (trace.Event, error) {
	c.nexts.Add(1)
	return c.src.Next()
}

// endlessSource never ends: used to prove that cancellation, not stream
// exhaustion, is what stops the engine.
type endlessSource struct{ n uint64 }

func (s *endlessSource) Next() (trace.Event, error) {
	s.n++
	return trace.Event{Seq: s.n, Kind: trace.KindConsumption, Block: mem.BlockAddr(s.n)}, nil
}

// failAfter errors after consuming n events.
type failAfter struct {
	n   int
	err error
}

func (c *failAfter) Run(src stream.Source) error {
	for i := 0; i < c.n; i++ {
		if _, err := src.Next(); err != nil {
			return err
		}
	}
	return c.err
}

// TestConsumerErrorCancels: when one consumer fails mid-stream over an
// ENDLESS source, the engine must still terminate promptly — the failure has
// to cancel the producer and every other consumer — returning the failing
// consumer's error, with the bystanders seeing ErrCanceled and no goroutine
// outliving the call.
func TestConsumerErrorCancels(t *testing.T) {
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			boom := errors.New("boom")
			bystanders := []*recordConsumer{{}, {}}
			done := make(chan error, 1)
			go func() {
				done <- Config{ChunkEvents: 8, ChunkBuffer: 2, Strategy: st.s}.Run(
					&endlessSource{},
					bystanders[0],
					&failAfter{n: 100, err: boom},
					bystanders[1],
				)
			}()
			select {
			case err := <-done:
				if !errors.Is(err, boom) {
					t.Fatalf("Run = %v, want %v", err, boom)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("consumer error did not cancel the pipeline (endless source still running)")
			}
			for i, b := range bystanders {
				if !errors.Is(b.terminal, ErrCanceled) {
					t.Errorf("bystander %d terminal = %v, want ErrCanceled", i, b.terminal)
				}
			}
			// All goroutines are joined before Run returns; allow a brief
			// settle for the runtime's own bookkeeping only.
			for i := 0; i < 50; i++ {
				if runtime.NumGoroutine() <= before {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		})
	}
}

// TestDecodeErrorPropagates: a terminal source error must reach every
// consumer as its own terminal error, and Run must return it.
func TestDecodeErrorPropagates(t *testing.T) {
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			corrupt := fmt.Errorf("decode: %w", stream.ErrCorrupt)
			src := &erroringSource{events: makeEvents(100), err: corrupt}
			records := []*recordConsumer{{}, {}, {}}
			err := Config{ChunkEvents: 16, Strategy: st.s}.Run(src, records[0], records[1], records[2])
			if !errors.Is(err, stream.ErrCorrupt) {
				t.Fatalf("Run = %v, want the decode error", err)
			}
			for i, rec := range records {
				if !errors.Is(rec.terminal, stream.ErrCorrupt) {
					t.Errorf("consumer %d terminal = %v, want the decode error", i, rec.terminal)
				}
				if len(rec.events) != 100 {
					t.Errorf("consumer %d saw %d events before the error, want 100", i, len(rec.events))
				}
			}
		})
	}
}

// erroringSource yields its events, then a terminal error instead of EOF.
type erroringSource struct {
	events []trace.Event
	pos    int
	err    error
}

func (s *erroringSource) Next() (trace.Event, error) {
	if s.pos >= len(s.events) {
		return trace.Event{}, s.err
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// earlyStop returns nil after n events without draining to EOF; the engine
// must not deadlock on its undrained channel.
type earlyStop struct{ n int }

func (c *earlyStop) Run(src stream.Source) error {
	for i := 0; i < c.n; i++ {
		if _, err := src.Next(); err != nil {
			return nil
		}
	}
	return nil
}

// TestEarlyReturnDoesNotWedge: a consumer that stops pulling before EOF must
// not block the producer or the other consumers.
func TestEarlyReturnDoesNotWedge(t *testing.T) {
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			events := makeEvents(5000)
			rec := &recordConsumer{}
			done := make(chan error, 1)
			go func() {
				done <- Config{ChunkEvents: 8, ChunkBuffer: 1, Strategy: st.s}.Run(stream.NewSliceSource(events), &earlyStop{n: 3}, rec)
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("early-returning consumer wedged the pipeline")
			}
			if len(rec.events) != len(events) {
				t.Fatalf("full consumer saw %d events, want %d", len(rec.events), len(events))
			}
		})
	}
}

// TestAllEarlyReturnsStopProducer: once EVERY consumer has returned —
// cleanly, before io.EOF — the producer must stop decoding, even over an
// endless source; Run returns nil (no consumer failed).
func TestAllEarlyReturnsStopProducer(t *testing.T) {
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			src := &countingSource{src: &endlessSource{}}
			done := make(chan error, 1)
			go func() {
				done <- Config{ChunkEvents: 8, ChunkBuffer: 2, Strategy: st.s}.Run(src, &earlyStop{n: 3}, &earlyStop{n: 40})
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("producer kept decoding an endless source after every consumer returned")
			}
		})
	}
}

// TestBackpressure: the producer must not run unboundedly ahead of a stalled
// consumer — the broadcast window (ring capacity / channel bounds) caps the
// decoded-but-unconsumed events under BOTH strategies; for the ring this is
// the slowest-cursor backpressure rule.
func TestBackpressure(t *testing.T) {
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			cfg := Config{ChunkEvents: 10, ChunkBuffer: 2, Strategy: st.s}
			events := makeEvents(100_000)
			src := &countingSource{src: stream.NewSliceSource(events)}
			release := make(chan struct{})
			var stalledSeen int
			stalled := ConsumerFunc(func(s stream.Source) error {
				if _, err := s.Next(); err != nil {
					return err
				}
				stalledSeen++
				<-release // stall with one event consumed
				for {
					if _, err := s.Next(); err == io.EOF {
						return nil
					} else if err != nil {
						return err
					}
					stalledSeen++
				}
			})
			fast := &recordConsumer{}
			done := make(chan error, 1)
			go func() { done <- cfg.Run(src, stalled, fast) }()

			// Give the producer every chance to run ahead, then check the
			// window: at most ChunkBuffer queued chunks, one in flight per
			// consumer, and one being assembled (doubled for slack — the
			// point is "hundreds, not the whole 100k trace").
			time.Sleep(200 * time.Millisecond)
			decoded := int(src.nexts.Load())
			bound := (cfg.ChunkBuffer + 2) * cfg.ChunkEvents * 2
			if decoded > bound {
				t.Errorf("producer decoded %d events ahead of a stalled consumer (bound %d)", decoded, bound)
			}
			close(release)
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if stalledSeen != len(events) || len(fast.events) != len(events) {
				t.Fatalf("stalled saw %d, fast saw %d, want %d", stalledSeen, len(fast.events), len(events))
			}
		})
	}
}

// chunkedSource is a stream.ChunkSource that hands out its events in fixed
// chunks THROUGH A REUSED BUFFER, like the codec readers do: the returned
// slice is invalid after the next call. The broadcast must copy chunks, so
// consumers still observe pristine events — this pins the bulk-copy fast
// path the producers take for pre-decoded chunks.
type chunkedSource struct {
	events    []trace.Event
	pos       int
	chunk     int
	buf       []trace.Event
	nexts     int // per-event Next calls observed (fast path must avoid them)
	fail      error
	failAfter int // fail after this many chunks when fail != nil
}

func (s *chunkedSource) Next() (trace.Event, error) {
	s.nexts++
	if s.pos >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

func (s *chunkedSource) NextChunk() ([]trace.Event, error) {
	if s.fail != nil && s.failAfter == 0 {
		return nil, s.fail
	}
	if s.pos >= len(s.events) {
		return nil, io.EOF
	}
	n := s.chunk
	if rest := len(s.events) - s.pos; n > rest {
		n = rest
	}
	s.buf = append(s.buf[:0], s.events[s.pos:s.pos+n]...)
	s.pos += n
	if s.fail != nil {
		s.failAfter--
	}
	// Scramble the previous hand-out: anyone holding the old slice sees it.
	for i := range s.buf {
		s.buf[i].Seq = s.events[s.pos-n+i].Seq
	}
	return s.buf, nil
}

// TestChunkSourceParity: a ChunkSource feeds both strategies through the
// bulk-copy path, and every consumer still observes the exact event stream —
// even though the source reuses its chunk buffer between calls.
func TestChunkSourceParity(t *testing.T) {
	events := makeEvents(1000)
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			for _, chunk := range []int{1, 13, 256, 4096} {
				src := &chunkedSource{events: events, chunk: chunk}
				consumers := make([]Consumer, 3)
				records := make([]*recordConsumer, len(consumers))
				for i := range consumers {
					records[i] = &recordConsumer{}
					consumers[i] = records[i]
				}
				cfg := Config{ChunkEvents: 64, ChunkBuffer: 2, Strategy: st.s}
				if err := cfg.Run(src, consumers...); err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				if src.nexts > 0 {
					t.Fatalf("chunk %d: producer made %d per-event Next calls; ChunkSource fast path not taken", chunk, src.nexts)
				}
				for ci, rec := range records {
					if len(rec.events) != len(events) {
						t.Fatalf("chunk %d consumer %d: saw %d events, want %d", chunk, ci, len(rec.events), len(events))
					}
					for i := range events {
						if rec.events[i] != events[i] {
							t.Fatalf("chunk %d consumer %d: event %d = %+v, want %+v (chunks must be copied out of the reused buffer)", chunk, ci, i, rec.events[i], events[i])
						}
					}
				}
			}
		})
	}
}

// TestChunkSourceErrorPropagates: a terminal error from NextChunk reaches
// every consumer in band, after the events that preceded it.
func TestChunkSourceErrorPropagates(t *testing.T) {
	events := makeEvents(300)
	decodeErr := errors.New("chunk decode failed")
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			src := &chunkedSource{events: events, chunk: 100, fail: decodeErr, failAfter: 2}
			records := []*recordConsumer{{}, {}}
			err := Config{Strategy: st.s, ChunkBuffer: 2}.Run(src, records[0], records[1])
			if !errors.Is(err, decodeErr) {
				t.Fatalf("err = %v, want the decode error", err)
			}
			for ci, rec := range records {
				if !errors.Is(rec.terminal, decodeErr) {
					t.Fatalf("consumer %d terminal = %v, want the decode error", ci, rec.terminal)
				}
				if len(rec.events) != 200 {
					t.Fatalf("consumer %d saw %d events before the error, want 200", ci, len(rec.events))
				}
			}
		})
	}
}
