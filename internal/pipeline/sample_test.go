package pipeline

import (
	"io"
	"testing"

	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// samplingConsumer records every pump it receives alongside the event count
// it had processed at that moment, so tests can check that a sample at seq N
// fires only after the consumer consumed exactly the events through N.
type samplingConsumer struct {
	recordConsumer
	series  *obs.Series
	samples []pumpRecord
}

type pumpRecord struct {
	seq       uint64
	final     bool
	processed int
}

func (c *samplingConsumer) AttachSeries(s *obs.Series) { c.series = s }

func (c *samplingConsumer) SampleAt(seq uint64, final bool) {
	if !c.series.Ready(seq, final) {
		return
	}
	c.samples = append(c.samples, pumpRecord{seq: seq, final: final, processed: len(c.events)})
	c.series.Record(seq, map[string]float64{"processed": float64(len(c.events))})
}

// TestSamplingPump: under every strategy (and the single-consumer fast
// path), a sampling consumer is pumped at chunk boundaries and flushed at
// end of stream, each sample firing exactly at its boundary (processed ==
// seq+1 for a dense stream) and landing in the per-consumer series under the
// consumer's label.
func TestSamplingPump(t *testing.T) {
	events := makeEvents(1000)
	const chunk = 256
	run := func(t *testing.T, n int, strategy Strategy) {
		ss := obs.NewSeriesSet()
		consumers := make([]Consumer, n)
		scs := make([]*samplingConsumer, n)
		names := make([]string, n)
		for i := range consumers {
			scs[i] = &samplingConsumer{}
			consumers[i] = scs[i]
			names[i] = "cell-" + string(rune('a'+i))
		}
		cfg := Config{ChunkEvents: chunk, Strategy: strategy, ConsumerNames: names, Series: ss}
		if err := cfg.Run(stream.NewSliceSource(events), consumers...); err != nil {
			t.Fatal(err)
		}
		for i, sc := range scs {
			if len(sc.events) != len(events) {
				t.Fatalf("consumer %d saw %d events, want %d", i, len(sc.events), len(events))
			}
			// 1000 events in 256-chunks → boundaries at seq 255, 511, 767,
			// then one sample at the last event (whether the trailing chunk
			// boundary or the terminal flush records it, Ready dedupes the
			// other — the guarantee is exactly one sample at seq 999 carrying
			// the complete cumulative state).
			want := []pumpRecord{
				{seq: 255, processed: 256},
				{seq: 511, processed: 512},
				{seq: 767, processed: 768},
				{seq: 999, processed: 1000},
			}
			if len(sc.samples) != len(want) {
				t.Fatalf("consumer %d samples = %+v, want %d boundaries", i, sc.samples, len(want))
			}
			for j, w := range want {
				g := sc.samples[j]
				if g.seq != w.seq || g.processed != w.processed {
					t.Fatalf("consumer %d sample %d = %+v, want %+v", i, j, g, w)
				}
			}
			// The samples landed in the set under the consumer's label.
			pts := ss.Series(names[i]).Points()
			if len(pts) != len(want) {
				t.Fatalf("series %q has %d points, want %d", names[i], len(pts), len(want))
			}
			if final := pts[len(pts)-1]; final.Seq != 999 || final.Values["processed"] != 1000 {
				t.Fatalf("series %q final point = %+v", names[i], final)
			}
		}
	}
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) { run(t, 3, st.s) })
	}
	t.Run("single", func(t *testing.T) { run(t, 1, Ring) })
}

// TestSamplingRespectsInterval: the epoch interval filters boundary pumps —
// only interval crossings (plus the first and final samples) record.
func TestSamplingRespectsInterval(t *testing.T) {
	events := makeEvents(1000)
	ss := obs.NewSeriesSet()
	ss.SetInterval(500)
	sc := &samplingConsumer{}
	cfg := Config{ChunkEvents: 100, Series: ss, ConsumerNames: []string{"x"}}
	if err := cfg.Run(stream.NewSliceSource(events), sc, &recordConsumer{}); err != nil {
		t.Fatal(err)
	}
	// Boundaries at 99, 199, …, 999: the first (99), the crossing ≥ 599, and
	// the final flush at 999.
	want := []uint64{99, 599, 999}
	if len(sc.samples) != len(want) {
		t.Fatalf("samples = %+v, want seqs %v", sc.samples, want)
	}
	for i, w := range want {
		if sc.samples[i].seq != w {
			t.Fatalf("sample %d seq = %d, want %d", i, sc.samples[i].seq, w)
		}
	}
}

// TestSamplingNilSeries: without Config.Series no sampler is attached and no
// pump fires, whatever the consumer implements.
func TestSamplingNilSeries(t *testing.T) {
	events := makeEvents(100)
	sc := &samplingConsumer{}
	cfg := Config{ChunkEvents: 10}
	if err := cfg.Run(stream.NewSliceSource(events), sc, &recordConsumer{}); err != nil {
		t.Fatal(err)
	}
	if sc.series != nil || len(sc.samples) != 0 {
		t.Fatalf("sampling ran without Config.Series: series=%v samples=%+v", sc.series, sc.samples)
	}
}

// TestSamplingMixedConsumers: only the consumers that implement Sampler get
// series; the rest run unchanged alongside them.
func TestSamplingMixedConsumers(t *testing.T) {
	events := makeEvents(300)
	ss := obs.NewSeriesSet()
	sc := &samplingConsumer{}
	plain := &recordConsumer{}
	cfg := Config{ChunkEvents: 100, Series: ss, ConsumerNames: []string{"smp", "plain"}}
	if err := cfg.Run(stream.NewSliceSource(events), sc, plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.events) != len(events) {
		t.Fatalf("plain consumer saw %d events", len(plain.events))
	}
	if got := ss.Series("smp").Len(); got == 0 {
		t.Fatal("sampling consumer recorded nothing")
	}
	snap := ss.Snapshot()
	if _, ok := snap.Series["plain"]; ok {
		t.Fatal("non-sampler consumer grew a series")
	}
}

// TestSamplingTerminalError: a decode error still flushes a final sample —
// the consumer's last consistent state before the failure.
func TestSamplingTerminalError(t *testing.T) {
	events := makeEvents(250)
	ss := obs.NewSeriesSet()
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			sc := &samplingConsumer{}
			src := &failingSource{events: events, failAt: len(events)}
			cfg := Config{ChunkEvents: 100, Strategy: st.s, Series: ss, ConsumerNames: []string{"f-" + st.name}}
			err := cfg.Run(src, sc, &recordConsumer{})
			if err == nil {
				t.Fatal("decode error not reported")
			}
			if len(sc.samples) == 0 {
				t.Fatal("no samples before the failure")
			}
			last := sc.samples[len(sc.samples)-1]
			if last.seq != 249 || last.processed != 250 {
				t.Fatalf("final flush = %+v, want seq 249 with all 250 events", last)
			}
		})
	}
}

// failingSource yields events then a non-EOF terminal error.
type failingSource struct {
	events []trace.Event
	pos    int
	failAt int
}

func (s *failingSource) Next() (trace.Event, error) {
	if s.pos >= s.failAt {
		return trace.Event{}, errDecode
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

var errDecode = io.ErrUnexpectedEOF
