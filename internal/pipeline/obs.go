package pipeline

// Engine instrumentation. When Config.Metrics or Config.Tracer is set, Run
// reports what the fan-out actually did — events/chunks decoded, ring slot
// occupancy, per-consumer cursor lag and stall time, backpressure wait
// distributions for both broadcast strategies, and one trace span per stage
// (the decode pass, each decoded chunk, every consumer). With both nil
// (the default) the engine builds no engineObs at all and every hook below
// is a nil-receiver no-op: the un-instrumented path costs a pointer check,
// allocates nothing, and BenchmarkSweep/BenchmarkFileReplay numbers are
// unchanged (pinned by obs.TestNopAllocs and TestObsDisabledAllocs).
//
// Metric names (all under the "pipeline." prefix; <label> is the consumer's
// Config.ConsumerNames entry, or its index):
//
//	pipeline.events_decoded            counter  events decoded by the producer
//	pipeline.chunks_decoded            counter  chunks broadcast
//	pipeline.decode_ns                 counter  producer wall time
//	pipeline.decode_events_per_sec     gauge    decode throughput at finish
//	pipeline.wall_ns                   counter  whole-Run wall time
//	pipeline.producer.stall_ns         counter  producer blocked on backpressure
//	pipeline.producer.wait_ns          histogram per-wait backpressure distribution
//	pipeline.consumer_wait_ns          histogram per-wait chunk-wait distribution (all consumers)
//	pipeline.ring.occupancy            gauge    ring slots in flight (ring strategy)
//	pipeline.ring.occupancy_max        gauge    peak ring occupancy
//	pipeline.consumer.<label>.events   counter  events delivered to the consumer
//	pipeline.consumer.<label>.stall_ns counter  consumer blocked waiting for chunks
//	pipeline.consumer.<label>.lag_max  gauge    peak cursor lag behind the producer, in chunks
//
// Trace lanes: lane 0 is the producer (spans "decode" and per-chunk
// "chunk"), lane i+1 is consumer i (one span per consumer, with events and
// events_per_sec args) — which is exactly the per-cell throughput view a
// sweep needs.

import (
	"fmt"
	"time"

	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// engineObs bundles the pre-resolved metric handles of one Run. The nil
// *engineObs is the disabled default; every method is nil-safe.
type engineObs struct {
	tracer *obs.Tracer

	eventsDecoded   *obs.Counter
	chunksDecoded   *obs.Counter
	decodeNs        *obs.Counter
	decodeRate      *obs.Gauge
	wallNs          *obs.Counter
	producerStallNs *obs.Counter
	producerWait    *obs.Histogram
	consumerWait    *obs.Histogram
	ringOcc         *obs.Gauge
	ringOccMax      *obs.Gauge

	consumers []consumerObs
}

// consumerObs is one consumer's handles.
type consumerObs struct {
	label   string
	events  *obs.Counter
	stallNs *obs.Counter
	lagMax  *obs.Gauge
}

// consumerLabel returns consumer i's label — its ConsumerNames entry, or its
// index — shared by the metric/trace names and the per-consumer Series.
func (c Config) consumerLabel(i int) string {
	if i < len(c.ConsumerNames) && c.ConsumerNames[i] != "" {
		return c.ConsumerNames[i]
	}
	return fmt.Sprintf("%d", i)
}

// newObs resolves the handles for n consumers, or returns nil when the
// configuration requests no instrumentation.
func (c Config) newObs(n int) *engineObs {
	if c.Metrics == nil && c.Tracer == nil {
		return nil
	}
	m := c.Metrics
	o := &engineObs{
		tracer:          c.Tracer,
		eventsDecoded:   m.Counter("pipeline.events_decoded"),
		chunksDecoded:   m.Counter("pipeline.chunks_decoded"),
		decodeNs:        m.Counter("pipeline.decode_ns"),
		decodeRate:      m.Gauge("pipeline.decode_events_per_sec"),
		wallNs:          m.Counter("pipeline.wall_ns"),
		producerStallNs: m.Counter("pipeline.producer.stall_ns"),
		producerWait:    m.Histogram("pipeline.producer.wait_ns"),
		consumerWait:    m.Histogram("pipeline.consumer_wait_ns"),
		ringOcc:         m.Gauge("pipeline.ring.occupancy"),
		ringOccMax:      m.Gauge("pipeline.ring.occupancy_max"),
		consumers:       make([]consumerObs, n),
	}
	c.Tracer.NameLane(0, "producer")
	for i := range o.consumers {
		label := c.consumerLabel(i)
		o.consumers[i] = consumerObs{
			label:   label,
			events:  m.Counter("pipeline.consumer." + label + ".events"),
			stallNs: m.Counter("pipeline.consumer." + label + ".stall_ns"),
			lagMax:  m.Gauge("pipeline.consumer." + label + ".lag_max"),
		}
		c.Tracer.NameLane(i+1, "consumer "+label)
	}
	return o
}

// enabled reports whether any instrumentation is attached.
func (o *engineObs) enabled() bool { return o != nil }

// label returns consumer i's metric/trace label ("" when disabled).
func (o *engineObs) label(i int) string {
	if o == nil {
		return ""
	}
	return o.consumers[i].label
}

// decoded records one broadcast chunk of n events.
func (o *engineObs) decoded(n int) {
	if o == nil {
		return
	}
	o.eventsDecoded.Add(uint64(n))
	o.chunksDecoded.Inc()
}

// producerDone records the producer's total wall time and finishing
// throughput.
func (o *engineObs) producerDone(elapsed time.Duration) {
	if o == nil {
		return
	}
	o.decodeNs.Add(uint64(elapsed))
	if s := elapsed.Seconds(); s > 0 {
		o.decodeRate.Set(int64(float64(o.eventsDecoded.Value()) / s))
	}
}

// producerStall records one backpressure wait (ring: slowest cursor holding
// the next slot; channels: a full consumer channel).
func (o *engineObs) producerStall(d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	o.producerStallNs.Add(uint64(d))
	o.producerWait.Observe(uint64(d))
}

// consumerStall records consumer id blocking until the next chunk arrived.
func (o *engineObs) consumerStall(id int, d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	o.consumers[id].stallNs.Add(uint64(d))
	o.consumerWait.Observe(uint64(d))
}

// consumerChunk records a chunk of n events delivered to consumer id, with
// the cursor's current lag behind the producer head (in chunks).
func (o *engineObs) consumerChunk(id, n int, lag uint64) {
	if o == nil {
		return
	}
	o.consumers[id].events.Add(uint64(n))
	o.consumers[id].lagMax.SetMax(int64(lag))
}

// ringOccupancy records the in-flight slot count after a publish.
func (o *engineObs) ringOccupancy(occ uint64) {
	if o == nil {
		return
	}
	o.ringOcc.Set(int64(occ))
	o.ringOccMax.SetMax(int64(occ))
}

// beginSpan opens a stage span (no-op without a tracer).
func (o *engineObs) beginSpan(name, cat string, lane int) *obs.SpanHandle {
	if o == nil {
		return nil
	}
	return o.tracer.Begin(name, cat, lane)
}

// tracing reports whether span emission is on (guards the per-chunk spans,
// which would otherwise pay a time.Now per chunk for nothing).
func (o *engineObs) tracing() bool { return o != nil && o.tracer != nil }

// runDone records the whole-Run wall time.
func (o *engineObs) runDone(start time.Time) {
	if o == nil {
		return
	}
	o.wallNs.Add(uint64(time.Since(start)))
}

// consumerSpanEnd completes consumer id's span with throughput args.
func (o *engineObs) consumerSpanEnd(id int, sp *obs.SpanHandle) {
	if o == nil || sp == nil {
		return
	}
	events := o.consumers[id].events.Value()
	sp.Arg("events", events)
	if s := sp.Elapsed().Seconds(); s > 0 {
		sp.Arg("events_per_sec", uint64(float64(events)/s))
	}
	sp.End()
}

// singleSource counts events through the 1-consumer fast path (which decodes
// directly on the caller's goroutine, no broadcast), batching the counter
// updates so the per-event cost stays one local increment. Run flushes the
// remainder after the consumer returns, keeping the events_decoded ==
// per-consumer events invariant true in every consumer count.
type singleSource struct {
	src     stream.Source
	o       *engineObs
	pending uint64
}

func (s *singleSource) Next() (trace.Event, error) {
	e, err := s.src.Next()
	if err == nil {
		s.pending++
		if s.pending == uint64(DefaultChunkEvents) {
			s.flush()
		}
	}
	return e, err
}

// flush moves the locally batched count into the shared counters.
func (s *singleSource) flush() {
	s.o.eventsDecoded.Add(s.pending)
	s.o.consumers[0].events.Add(s.pending)
	s.pending = 0
}
