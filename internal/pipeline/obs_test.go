package pipeline

import (
	"strconv"
	"testing"
	"time"

	"tsm/internal/obs"
	"tsm/internal/stream"
)

// TestObsInvariants runs a ring-strategy fan-out at sweep widths and checks
// the metrics snapshot against the engine's own guarantees: every consumer
// received exactly what the producer decoded, stalls fit inside the wall
// time, the chunk count matches the chunk size, and ring occupancy never
// exceeded the configured window.
func TestObsInvariants(t *testing.T) {
	const chunkEvents, chunkBuffer, nEvents = 64, 4, 10_000
	for _, n := range []int{4, 16, 64} {
		events := makeEvents(nEvents)
		reg := obs.NewRegistry()
		tr := obs.NewTracer()
		consumers := make([]Consumer, n)
		counts := make([]*drainCount, n)
		for i := range consumers {
			counts[i] = &drainCount{}
			consumers[i] = counts[i]
		}
		cfg := Config{
			ChunkEvents: chunkEvents,
			ChunkBuffer: chunkBuffer,
			Strategy:    Ring,
			Metrics:     reg,
			Tracer:      tr,
		}
		if err := cfg.Run(stream.NewSliceSource(events), consumers...); err != nil {
			t.Fatalf("n=%d: Run: %v", n, err)
		}
		s := reg.Snapshot()

		decoded := s.Counters["pipeline.events_decoded"]
		if decoded != nEvents {
			t.Fatalf("n=%d: events_decoded = %d, want %d", n, decoded, nEvents)
		}
		wantChunks := uint64((nEvents + chunkEvents - 1) / chunkEvents)
		if got := s.Counters["pipeline.chunks_decoded"]; got != wantChunks {
			t.Fatalf("n=%d: chunks_decoded = %d, want %d", n, got, wantChunks)
		}

		wall := s.Counters["pipeline.wall_ns"]
		if wall == 0 {
			t.Fatalf("n=%d: wall_ns not recorded", n)
		}
		if stall := s.Counters["pipeline.producer.stall_ns"]; stall > wall {
			t.Fatalf("n=%d: producer stall %d ns exceeds wall %d ns", n, stall, wall)
		}

		for i, c := range counts {
			if c.n != nEvents {
				t.Fatalf("n=%d: consumer %d drained %d events, want %d", n, i, c.n, nEvents)
			}
			label := labelFor(t, s.Counters, i)
			if got := s.Counters[label+".events"]; got != decoded {
				t.Fatalf("n=%d: %s.events = %d, want events_decoded = %d", n, label, got, decoded)
			}
			if stall := s.Counters[label+".stall_ns"]; stall > wall {
				t.Fatalf("n=%d: %s.stall_ns = %d exceeds wall %d", n, label, stall, wall)
			}
			if lag := s.Gauges[label+".lag_max"]; lag < 1 || lag > chunkBuffer {
				t.Fatalf("n=%d: %s.lag_max = %d, want within [1, %d]", n, label, lag, chunkBuffer)
			}
		}

		if occ := s.Gauges["pipeline.ring.occupancy_max"]; occ < 1 || occ > chunkBuffer {
			t.Fatalf("n=%d: ring.occupancy_max = %d, want within [1, %d]", n, occ, chunkBuffer)
		}
		if rate := s.Gauges["pipeline.decode_events_per_sec"]; rate <= 0 {
			t.Fatalf("n=%d: decode_events_per_sec = %d, want > 0", n, rate)
		}

		// One decode span, one span per chunk, one span per consumer.
		spans := tr.Spans()
		want := 1 + int(wantChunks) + n
		if len(spans) != want {
			t.Fatalf("n=%d: recorded %d spans, want %d", n, len(spans), want)
		}
	}
}

// labelFor resolves consumer i's metric prefix and fails the test if the
// expected default (index) label is missing from the snapshot.
func labelFor(t *testing.T, counters map[string]uint64, i int) string {
	t.Helper()
	label := "pipeline.consumer." + strconv.Itoa(i)
	if _, ok := counters[label+".events"]; !ok {
		t.Fatalf("snapshot has no %s.events counter", label)
	}
	return label
}

// TestObsConsumerNames: ConsumerNames relabel the per-consumer metrics.
func TestObsConsumerNames(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		ChunkEvents:   8,
		ChunkBuffer:   2,
		Metrics:       reg,
		ConsumerNames: []string{"LA=8", ""},
	}
	a, b := &drainCount{}, &drainCount{}
	if err := cfg.Run(stream.NewSliceSource(makeEvents(100)), a, b); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["pipeline.consumer.LA=8.events"]; got != 100 {
		t.Fatalf("named consumer events = %d, want 100", got)
	}
	if got := s.Counters["pipeline.consumer.1.events"]; got != 100 {
		t.Fatalf("index-labelled consumer events = %d, want 100", got)
	}
}

// TestObsChannelsStrategy: the channels strategy feeds the same counters.
func TestObsChannelsStrategy(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{ChunkEvents: 32, ChunkBuffer: 2, Strategy: Channels, Metrics: reg}
	a, b := &drainCount{}, &drainCount{}
	if err := cfg.Run(stream.NewSliceSource(makeEvents(1000)), a, b); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["pipeline.events_decoded"]; got != 1000 {
		t.Fatalf("events_decoded = %d, want 1000", got)
	}
	for _, label := range []string{"pipeline.consumer.0", "pipeline.consumer.1"} {
		if got := s.Counters[label+".events"]; got != 1000 {
			t.Fatalf("%s.events = %d, want 1000", label, got)
		}
	}
}

// TestObsSingleConsumer: the 1-consumer fast path still counts the stream,
// keeping events_decoded == per-consumer events in every consumer count.
func TestObsSingleConsumer(t *testing.T) {
	reg := obs.NewRegistry()
	c := &drainCount{}
	// 2.5 chunks: exercises the batched counter flush on a partial tail.
	if err := (Config{Metrics: reg}).Run(stream.NewSliceSource(makeEvents(2*DefaultChunkEvents+512)), c); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	want := uint64(2*DefaultChunkEvents + 512)
	if got := s.Counters["pipeline.events_decoded"]; got != want {
		t.Fatalf("events_decoded = %d, want %d", got, want)
	}
	if got := s.Counters["pipeline.consumer.0.events"]; got != want {
		t.Fatalf("consumer events = %d, want %d", got, want)
	}
	if s.Counters["pipeline.wall_ns"] == 0 {
		t.Fatal("wall_ns not recorded on the single-consumer path")
	}
}

// TestObsDisabledAllocs pins the contract that lets the engine instrument
// unconditionally: with Metrics and Tracer nil, Run builds no engineObs and
// the per-event overhead is zero allocations beyond the un-instrumented
// engine's own (measured as a delta against a pre-warmed baseline run).
func TestObsDisabledAllocs(t *testing.T) {
	if (Config{}).newObs(3) != nil {
		t.Fatal("newObs without Metrics/Tracer must return nil")
	}
	var o *engineObs
	allocs := testing.AllocsPerRun(1000, func() {
		o.decoded(64)
		o.producerStall(5)
		o.consumerStall(0, 5)
		o.consumerChunk(0, 64, 2)
		o.ringOccupancy(2)
		o.runDone(time.Time{})
		o.beginSpan("x", "y", 0).End()
		o.consumerSpanEnd(0, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs hooks allocate (%v allocs/op), want 0", allocs)
	}
}
