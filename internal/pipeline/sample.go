package pipeline

// Domain time-series sampling. Config.Series attaches an obs.SeriesSet to
// the run; consumers that implement Sampler then get a periodic pump from
// their OWN source, at broadcast-chunk boundaries, telling them "now is a
// consistent moment to record an epoch sample". The pump runs on the
// consumer's goroutine between chunks — never mid-event, never from another
// goroutine — so a consumer's SampleAt may read its model state without
// locks, and the sample at sequence number N reflects exactly the events
// through N (which is what makes a final-epoch sample byte-identical to the
// end-of-run report).
//
// The boundary seq is captured when a chunk is ADOPTED, not when the pump
// fires: under the ring strategy the consumer releases its slot back to the
// producer before the next take, and the slot's backing array may already be
// overwritten by the time the pump runs — the chunk's last event must not be
// re-read from the buffer.
//
// Cadence: one sample opportunity per broadcast chunk, filtered by the
// consumer's obs.Series.Ready (epoch interval, dedupe, final flush). With a
// nil Config.Series nothing here runs at all — sources carry a nil Sampler
// and the hot loop pays one pointer check per refill.

import (
	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// Sampler is the optional consumer interface for domain time series: a
// Consumer that also implements Sampler is handed a per-consumer Series
// (named by its metric label) before the run starts, then pumped at chunk
// boundaries while it runs. SampleAt is always invoked on the consumer's own
// goroutine, after it has fully processed every event up to and including
// seq; final marks the end-of-stream flush. Implementations decide whether a
// sample is due via the attached Series' Ready.
type Sampler interface {
	AttachSeries(s *obs.Series)
	SampleAt(seq uint64, final bool)
}

// samplers resolves the sampling hooks for a run: entry i is non-nil when
// Config.Series is attached and consumer i implements Sampler. Attachment
// (series creation under the consumer's label) happens here, on the caller's
// goroutine, before any consumer goroutine exists. Returns nil — disabling
// the pump entirely — when no consumer samples.
func (c Config) samplers(consumers []Consumer) []Sampler {
	if c.Series == nil {
		return nil
	}
	var out []Sampler
	for i, consumer := range consumers {
		smp, ok := consumer.(Sampler)
		if !ok {
			continue
		}
		if out == nil {
			out = make([]Sampler, len(consumers))
		}
		smp.AttachSeries(c.Series.Series(c.consumerLabel(i)))
		out[i] = smp
	}
	return out
}

// samplerAt returns entry i of a possibly-nil sampler slice.
func samplerAt(smps []Sampler, i int) Sampler {
	if i < len(smps) {
		return smps[i]
	}
	return nil
}

// sampleState is the per-source boundary bookkeeping embedded in every
// source adapter: the seq of the newest adopted event, captured at chunk
// adoption (see the package comment on slot reuse).
type sampleState struct {
	sampler Sampler
	last    uint64
	seen    bool
}

// adopt records the boundary seq of a freshly adopted chunk. The seq was
// captured when the producer filled the chunk, so adoption never reads the
// chunk buffers themselves (nor races their lazy form conversion).
func (s *sampleState) adopt(b *bcastChunk) {
	if s.sampler != nil && b.n > 0 {
		s.last = b.last
		s.seen = true
	}
}

// pump offers the consumer a sample at the last adopted boundary. The final
// pump fires once; Series.Ready dedupes any further offers at the same seq.
func (s *sampleState) pump(final bool) {
	if s.sampler != nil && s.seen {
		s.sampler.SampleAt(s.last, final)
	}
}

// pumpSource wraps the single-consumer fast path (which runs the consumer
// directly on the caller's goroutine, no broadcast) with the same
// chunk-cadence pump the fan-out sources provide.
type pumpSource struct {
	src stream.Source
	sampleState
	n           int
	chunkEvents int
}

// Next implements stream.Source: events pass through, with a sample offer
// every chunkEvents events (before the next fetch, so the sample reflects
// exactly the events delivered) and a final offer at the terminal error.
func (s *pumpSource) Next() (trace.Event, error) {
	if s.n >= s.chunkEvents {
		s.pump(false)
		s.n = 0
	}
	e, err := s.src.Next()
	if err != nil {
		s.pump(true)
		return e, err
	}
	s.last, s.seen = e.Seq, true
	s.n++
	return e, nil
}
