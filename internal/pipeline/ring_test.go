package pipeline

import (
	"io"
	"testing"

	"tsm/internal/stream"
)

// drainCount counts the events it sees without retaining them — the cheapest
// possible consumer, used to isolate the broadcast machinery itself.
type drainCount struct{ n int }

func (c *drainCount) Run(src stream.Source) error {
	for {
		if _, err := src.Next(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		c.n++
	}
}

// TestManyConsumersParity runs a sweep-width fan-out — 64 consumers, the
// widest cell count the experiments use — under both strategies: every
// consumer must see the complete stream, and one full recorder validates
// content, not just counts.
func TestManyConsumersParity(t *testing.T) {
	events := makeEvents(10_000)
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			consumers := make([]Consumer, 64)
			counts := make([]*drainCount, len(consumers))
			for i := range consumers {
				counts[i] = &drainCount{}
				consumers[i] = counts[i]
			}
			rec := &recordConsumer{}
			consumers = append(consumers, rec)
			cfg := Config{ChunkEvents: 128, ChunkBuffer: 3, Strategy: st.s}
			if err := cfg.Run(stream.NewSliceSource(events), consumers...); err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c.n != len(events) {
					t.Fatalf("consumer %d saw %d events, want %d", i, c.n, len(events))
				}
			}
			if len(rec.events) != len(events) {
				t.Fatalf("recording consumer saw %d events, want %d", len(rec.events), len(events))
			}
			for i := range events {
				if rec.events[i] != events[i] {
					t.Fatalf("event %d = %+v, want %+v", i, rec.events[i], events[i])
				}
			}
		})
	}
}

// TestRingSlotReuse pins the ring's O(ring) allocation property at the state
// level: after a run that publishes far more chunks than the ring has slots,
// the ring must still hold exactly ChunkBuffer slot buffers, each at its
// original chunk capacity — recycled lap after lap, never one fresh buffer
// per published chunk (the channel strategy's cost).
func TestRingSlotReuse(t *testing.T) {
	const chunkEvents, ringChunks = 32, 3
	events := makeEvents(chunkEvents * 100) // 100 chunks through a 3-slot ring

	// Drive the ring state machine directly (the same calls runRing makes)
	// so the final ringState stays observable after the run.
	r := newRingState(ringChunks, 2, nil)
	done := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go func(id int) {
			c := &drainCount{}
			err := c.Run(&ringSource{r: r, id: id})
			r.finish(id)
			done <- err
		}(id)
	}
	filler := newChunkFiller(stream.NewSliceSource(events))
	for {
		chunk, ok := r.buffer(chunkEvents)
		if !ok {
			r.close(ErrCanceled)
			break
		}
		terminal := filler.fill(chunk, chunkEvents)
		if chunk.n > 0 && !r.publish(chunk) {
			r.close(ErrCanceled)
			break
		}
		if terminal != nil {
			r.close(nil) // the slice source only ends with io.EOF
			break
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	if got, want := int(r.head), len(events)/chunkEvents; got != want {
		t.Fatalf("published %d chunks, want %d", got, want)
	}
	if len(r.slots) != ringChunks {
		t.Fatalf("ring grew to %d slots, want %d (slots must be reused, not appended)", len(r.slots), ringChunks)
	}
	for i, s := range r.slots {
		if cap(s.events) < chunkEvents || cap(s.events) > 2*chunkEvents {
			t.Fatalf("slot %d has event cap %d, want ~%d (buffers are allocated once and recycled)", i, cap(s.events), chunkEvents)
		}
	}
}
