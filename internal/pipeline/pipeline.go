// Package pipeline is the single-decode fan-out replay engine: it tees ONE
// pass over a stream.Source into N independent consumers, each running on its
// own goroutine behind a bounded channel.
//
// The paper's evaluation is inherently multi-consumer — one memory-access
// stream feeds the TSE coverage model, the baseline timing model and the TSE
// timing model — yet before this package existed the file-replay facade
// decoded the trace file once per consumer, so the varint/delta codec pass
// dominated streamed replay cost (see BenchmarkFileReplay). The engine here
// decodes the stream exactly once and broadcasts chunk-batched events to
// every consumer:
//
//   - events are batched into chunks to amortize channel operations (one send
//     per chunk per consumer instead of one per event);
//   - channels are bounded, so a slow consumer exerts backpressure on the
//     producer instead of forcing unbounded buffering — replay stays
//     bounded-memory no matter how large the trace file is;
//   - each consumer observes the events in exactly the decode order
//     (deterministic per-consumer ordering), which is what lets the fused
//     replay produce reports bit-identical to independent passes;
//   - the first consumer failure cancels the producer and every other
//     consumer promptly (their sources return ErrCanceled), and a decode
//     error is delivered to every consumer as its terminal source error.
//
// Consumers only need to implement Run(stream.Source) error, so any existing
// pull-based evaluation loop (tse.System.RunSource, timing.SimulateSource,
// analysis.EvaluateModelStream) adapts without modification.
//
// Two broadcast strategies implement those semantics. The default Ring
// strategy (ring.go) publishes each chunk once into a shared ring of
// reusable buffers and gives every consumer its own read cursor, so the
// per-chunk cost — and the allocation footprint — is independent of the
// consumer count; it is what lets a whole sensitivity sweep (dozens of TSE
// configurations) ride one decode pass. The Channels strategy is the
// original per-consumer bounded-channel fan-out, retained as the
// differential-testing reference. Config.Strategy selects; the observable
// behaviour is identical by construction and pinned by parity tests.
package pipeline

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tsm/internal/obs"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// ErrCanceled is the terminal error a consumer's source returns once another
// consumer has failed: the stream ends early through no fault of this
// consumer. Run never returns ErrCanceled itself — it reports the error that
// caused the cancellation.
var ErrCanceled = errors.New("pipeline: canceled by another consumer's error")

// Consumer is one independent destination of the fan-out: Run drains the
// source to io.EOF (or fails) and stores whatever result it computes.
// Implementations receive their own private Source and run on their own
// goroutine. Events arrive by value from Next (the chunk slices shared
// between consumers never escape the engine), so a Consumer may keep them
// freely; a Consumer that returns before io.EOF is fine too — once every
// consumer has returned, the engine stops decoding.
type Consumer interface {
	Run(src stream.Source) error
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(src stream.Source) error

// Run implements Consumer.
func (f ConsumerFunc) Run(src stream.Source) error { return f(src) }

// DefaultChunkEvents is the number of events batched per broadcast chunk.
const DefaultChunkEvents = 1024

// DefaultChunkBuffer is the broadcast window in chunks — the ring capacity
// of the Ring strategy, or the per-consumer channel capacity of the Channels
// strategy; together with the chunk size it bounds how far the decoder may
// run ahead of the slowest consumer.
const DefaultChunkBuffer = 4

// Strategy selects how one decoded chunk reaches N consumers.
type Strategy int

const (
	// Ring, the default, broadcasts through one shared ring of reusable
	// chunk buffers with a read cursor per consumer: publishing a chunk is
	// one slot write and one wakeup regardless of the consumer count, the
	// producer throttles on the slowest cursor, and slot backing arrays are
	// recycled once every cursor has passed them (O(ring) chunk allocation
	// in total, however long the trace). See ring.go.
	Ring Strategy = iota
	// Channels is the original fan-out — one bounded channel per consumer,
	// one send per consumer per chunk, a fresh chunk buffer per broadcast.
	// It is retained as the differential-testing reference for the ring
	// (the same role -multipass plays for the fused replay path).
	Channels
)

// Config tunes the engine. The zero value selects the defaults.
type Config struct {
	// ChunkEvents is the number of events batched per chunk (default
	// DefaultChunkEvents).
	ChunkEvents int
	// ChunkBuffer is the broadcast window in chunks — ring capacity for
	// Ring, per-consumer channel capacity for Channels (default
	// DefaultChunkBuffer).
	ChunkBuffer int
	// Strategy selects the broadcast mechanism (default Ring).
	Strategy Strategy
	// Metrics, when non-nil, receives the engine's counters, gauges and
	// backpressure histograms under the "pipeline." prefix (see obs.go for
	// the full name list). Nil — the default — disables metric collection
	// entirely: the hot paths then perform a pointer check and nothing else.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per stage: the decode pass and
	// each decoded chunk on lane 0, every consumer on its own lane. Nil
	// disables tracing.
	Tracer *obs.Tracer
	// ConsumerNames optionally labels consumers (sweep cells, model names)
	// in metrics and trace lanes; consumers beyond the list — or empty
	// entries — fall back to their index.
	ConsumerNames []string
	// Series, when non-nil, attaches domain time-series sampling: every
	// consumer implementing Sampler receives a per-consumer obs.Series (named
	// by its label) and is pumped at broadcast-chunk boundaries (see
	// sample.go). Nil — the default — disables sampling entirely.
	Series *obs.SeriesSet
}

func (c Config) normalize() Config {
	if c.ChunkEvents <= 0 {
		c.ChunkEvents = DefaultChunkEvents
	}
	if c.ChunkBuffer <= 0 {
		c.ChunkBuffer = DefaultChunkBuffer
	}
	return c
}

// Run tees a single decode pass over src into every consumer with the
// default configuration. See Config.Run.
func Run(src stream.Source, consumers ...Consumer) error {
	return Config{}.Run(src, consumers...)
}

// item is one broadcast unit: a chunk of events, or a terminal decode error.
type item struct {
	chunk *bcastChunk
	err   error
}

// bcastChunk is one broadcast unit's buffer, holding the same rows in up to
// two forms: struct-of-arrays columns and an []trace.Event view. The
// producer fills whichever form its source yields natively — columns from a
// SoASource (the parallel decoder: five memmoves, no per-event work), events
// from everything else (one struct copy per event, exactly what an []Event
// broadcast used to cost) — and the OTHER form materializes lazily, once per
// chunk, when the first consumer that needs it asks. Column-aware consumers
// (SoASource pulls) sweep dense columns; per-event consumers (Next pulls)
// index a plain event slice; neither pays a per-event transpose, and a
// needed transpose runs once per chunk, amortized across every consumer.
// Row count and boundary seq are captured at fill time so the sampling pump
// and metrics never race the lazy conversion.
type bcastChunk struct {
	n    int    // rows, set at fill time
	last uint64 // seq of the final row (valid when n > 0), set at fill time

	mu     sync.Mutex
	soa    stream.ChunkSoA // column form; empty unless matSoA
	matSoA bool
	events []trace.Event // event form; empty unless matAoS
	matAoS bool
}

// reset empties the chunk for refill, keeping both buffers' capacity. The
// caller guarantees no consumer still reads the chunk (ring slot recycling
// provides that ordering).
func (b *bcastChunk) reset() {
	b.n = 0
	b.soa.Reset()
	b.matSoA = false
	b.events = b.events[:0]
	b.matAoS = false
}

// aos returns the chunk's rows as []trace.Event, transposing them out of the
// columns on the chunk's first per-event read.
func (b *bcastChunk) aos() []trace.Event {
	b.mu.Lock()
	if !b.matAoS {
		b.events = b.soa.AppendTo(b.events[:0])
		b.matAoS = true
	}
	ev := b.events
	b.mu.Unlock()
	return ev
}

// cols returns the chunk's rows as columns, transposing them out of the
// event slice on the chunk's first column read. The returned region is
// shared read-only by every consumer on the chunk.
func (b *bcastChunk) cols() *stream.ChunkSoA {
	b.mu.Lock()
	if !b.matSoA {
		b.soa.AppendEvents(b.events)
		b.matSoA = true
	}
	b.mu.Unlock()
	return &b.soa
}

// chunkFiller pre-resolves src's bulk interfaces once per run, so the
// per-chunk fill pays type assertions zero times instead of once per chunk.
type chunkFiller struct {
	src stream.Source
	cs  stream.ChunkSource
	ss  stream.SoASource
}

func newChunkFiller(src stream.Source) chunkFiller {
	f := chunkFiller{src: src}
	f.cs, _ = src.(stream.ChunkSource)
	f.ss, _ = src.(stream.SoASource)
	return f
}

// fill fills one broadcast chunk from the source, in the form the source
// yields natively. A stream.SoASource (the parallel decoder) hands over a
// whole pre-decoded region in one bulk column copy — five memmoves, no
// per-event work; a stream.ChunkSource (the codec Reader) and the generic
// Next pull fill the event form, one struct copy per event. A non-nil
// terminal accompanies whatever partial chunk was filled before it
// (possibly none).
func (f chunkFiller) fill(dst *bcastChunk, chunkEvents int) (terminal error) {
	if f.ss != nil {
		soa, err := f.ss.NextChunkSoA()
		if err != nil {
			return err
		}
		dst.soa.AppendSoA(soa)
		dst.matSoA = true
		if dst.n = dst.soa.Len(); dst.n > 0 {
			dst.last = dst.soa.Seq[dst.n-1]
		}
		return nil
	}
	if cap(dst.events) < chunkEvents {
		dst.events = make([]trace.Event, 0, chunkEvents)
	}
	if f.cs != nil {
		events, err := f.cs.NextChunk()
		if err == nil {
			dst.events = append(dst.events, events...)
		}
		terminal = err
	} else {
		for len(dst.events) < chunkEvents {
			e, err := f.src.Next()
			if err != nil {
				terminal = err
				break
			}
			dst.events = append(dst.events, e)
		}
	}
	dst.matAoS = true
	if dst.n = len(dst.events); dst.n > 0 {
		dst.last = dst.events[dst.n-1].Seq
	}
	return terminal
}

// chanSource adapts a consumer's chunk channel to the stream.Source pulled
// by the consumer's evaluation loop. Terminal conditions arrive strictly in
// band, so a consumer always observes every event broadcast to it before any
// ending: a closed channel is a clean end of stream (io.EOF), and an item
// carrying an error — the producer's terminal decode error, or ErrCanceled
// after another consumer failed — is this source's own terminal error.
type chanSource struct {
	ch   <-chan item
	cur  *bcastChunk
	aos  []trace.Event // cur's AoS view, fetched on first per-event read
	view stream.ChunkSoA
	pos  int
	err  error
	o    *engineObs
	id   int
	sampleState
}

// refill blocks until the source holds an unconsumed chunk, handling the
// sample pump, stall timing and in-band terminals. It returns the terminal
// error once the stream ends (also recorded in s.err).
func (s *chanSource) refill() error {
	// The previous chunk is fully processed: offer the consumer a sample
	// at its boundary before fetching more.
	s.pump(false)
	var it item
	var ok bool
	if s.o.enabled() {
		// Receive without blocking when a chunk is already buffered;
		// otherwise time the wait — that is this consumer's stall.
		select {
		case it, ok = <-s.ch:
		default:
			t0 := time.Now()
			it, ok = <-s.ch
			s.o.consumerStall(s.id, time.Since(t0))
		}
	} else {
		it, ok = <-s.ch
	}
	if !ok {
		s.err = io.EOF
		s.pump(true)
		return io.EOF
	}
	if it.err != nil {
		s.err = it.err
		s.pump(true)
		return it.err
	}
	s.cur, s.aos, s.pos = it.chunk, nil, 0
	s.adopt(it.chunk)
	// Cursor lag for the channel strategy is the chunks still buffered
	// behind the producer after this receive.
	s.o.consumerChunk(s.id, it.chunk.n, uint64(len(s.ch)))
	return nil
}

// Next implements stream.Source.
func (s *chanSource) Next() (trace.Event, error) {
	if s.err != nil {
		return trace.Event{}, s.err
	}
	for s.cur == nil || s.pos >= s.cur.n {
		if err := s.refill(); err != nil {
			return trace.Event{}, err
		}
	}
	if s.aos == nil {
		s.aos = s.cur.aos()
	}
	e := s.aos[s.pos]
	s.pos++
	return e, nil
}

// NextChunkSoA implements stream.SoASource: a column view of the remaining
// events of the current chunk, valid until the next call.
func (s *chanSource) NextChunkSoA() (*stream.ChunkSoA, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.cur == nil || s.pos >= s.cur.n {
		if err := s.refill(); err != nil {
			return nil, err
		}
	}
	s.view = s.cur.cols().Slice(s.pos, s.cur.n)
	s.pos = s.cur.n
	return &s.view, nil
}

// Run decodes src exactly once and broadcasts the events to every consumer
// through the configured strategy, blocking until the producer and all
// consumers have finished (no goroutine outlives the call). With zero
// consumers it returns nil without reading src; with one consumer it runs
// the consumer directly on the caller's goroutine (no broadcast needed — a
// plain single pass).
//
// On success every consumer has drained the full stream in decode order. On
// failure Run returns the first error in consumer order — a consumer's own
// failure, or the decode error every consumer observed — never ErrCanceled.
func (c Config) Run(src stream.Source, consumers ...Consumer) error {
	switch len(consumers) {
	case 0:
		return nil
	case 1:
		smps := c.samplers(consumers)
		o := c.newObs(1)
		if o == nil && smps == nil {
			return consumers[0].Run(src)
		}
		runSrc := src
		if smp := samplerAt(smps, 0); smp != nil {
			n := c.ChunkEvents
			if n <= 0 {
				n = DefaultChunkEvents
			}
			runSrc = &pumpSource{src: src, sampleState: sampleState{sampler: smp}, chunkEvents: n}
		}
		if o == nil {
			return consumers[0].Run(runSrc)
		}
		start := time.Now()
		sp := o.beginSpan(o.consumers[0].label, "consumer", 1)
		counted := &singleSource{src: runSrc, o: o}
		err := consumers[0].Run(counted)
		counted.flush()
		o.producerDone(time.Since(start))
		o.consumerSpanEnd(0, sp)
		o.runDone(start)
		return err
	}
	c = c.normalize()
	smps := c.samplers(consumers)
	o := c.newObs(len(consumers))
	if o.enabled() {
		defer o.runDone(time.Now())
	}
	if c.Strategy == Ring {
		return c.runRing(src, consumers, smps, o)
	}
	return c.runChannels(src, consumers, smps, o)
}

// runChannels is Config.Run's channel strategy: per-consumer bounded
// channels, one send per consumer per chunk.
func (c Config) runChannels(src stream.Source, consumers []Consumer, smps []Sampler, o *engineObs) error {
	chans := make([]chan item, len(consumers))
	for i := range chans {
		chans[i] = make(chan item, c.ChunkBuffer)
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	// broadcast delivers one chunk to every consumer, honouring
	// backpressure; it reports false once a cancellation makes further
	// decoding pointless (the stop channel only ever unblocks the PRODUCER —
	// consumers learn of every ending in band, via sendAll). With metrics
	// attached, a send that cannot complete immediately is timed: that block
	// is the producer's backpressure wait on a full consumer channel.
	broadcast := func(it item) bool {
		for _, ch := range chans {
			if o.enabled() {
				select {
				case ch <- it:
					continue
				case <-stop:
					return false
				default:
				}
				t0 := time.Now()
				select {
				case ch <- it:
					o.producerStall(time.Since(t0))
				case <-stop:
					return false
				}
				continue
			}
			select {
			case ch <- it:
			case <-stop:
				return false
			}
		}
		return true
	}

	// sendAll delivers a terminal item to every consumer unconditionally.
	// The blocking sends cannot deadlock: a consumer goroutine drains its
	// channel until it is closed, both inside Run and after Run returns.
	// Delivering terminal errors in band (behind any buffered chunks) is
	// what makes the error a consumer observes deterministic: it sees every
	// event that was broadcast to it, then the ending.
	sendAll := func(it item) {
		for _, ch := range chans {
			ch <- it
		}
	}

	var wg sync.WaitGroup

	// Producer: the single decode pass.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, ch := range chans {
				close(ch)
			}
		}()
		var start time.Time
		if o.enabled() {
			start = time.Now()
		}
		var total uint64
		sp := o.beginSpan("decode", "pipeline", 0)
		defer func() {
			o.producerDone(time.Since(start))
			if sp != nil {
				sp.Arg("events", total).End()
			}
		}()
		filler := newChunkFiller(src)
		for {
			select {
			case <-stop:
				sendAll(item{err: ErrCanceled})
				return
			default:
			}
			var csp *obs.SpanHandle
			if o.tracing() {
				csp = o.tracer.Begin("chunk", "decode", 0)
			}
			// A fresh region per broadcast: the chunk is shared read-only by
			// every consumer, so it cannot be recycled (the ring strategy is
			// the allocation-free path).
			chunk := &bcastChunk{}
			terminal := filler.fill(chunk, c.ChunkEvents)
			if n := chunk.n; n > 0 {
				total += uint64(n)
				o.decoded(n)
				csp.Arg("events", n).End()
				if !broadcast(item{chunk: chunk}) {
					sendAll(item{err: ErrCanceled})
					return
				}
			}
			if terminal == io.EOF {
				return // closing the channels is the consumers' io.EOF
			}
			if terminal != nil {
				sendAll(item{err: terminal})
				return
			}
		}
	}()

	// Consumers: one goroutine each, draining their channel after Run so an
	// early return (error or a consumer that stops before io.EOF) can never
	// wedge the producer on a full channel.
	errs := make([]error, len(consumers))
	var remaining atomic.Int32
	remaining.Store(int32(len(consumers)))
	for i, consumer := range consumers {
		wg.Add(1)
		go func(i int, consumer Consumer) {
			defer wg.Done()
			sp := o.beginSpan(o.label(i), "consumer", i+1)
			err := consumer.Run(&chanSource{
				ch: chans[i], o: o, id: i,
				sampleState: sampleState{sampler: samplerAt(smps, i)},
			})
			o.consumerSpanEnd(i, sp)
			errs[i] = err
			if err != nil && !errors.Is(err, ErrCanceled) {
				cancel()
			}
			// Once every consumer has returned — cleanly before io.EOF
			// included — further decoding serves nobody: stop the producer.
			if remaining.Add(-1) == 0 {
				cancel()
			}
			for range chans[i] {
			}
		}(i, consumer)
	}

	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			return err
		}
	}
	return nil
}
