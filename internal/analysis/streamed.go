package analysis

import (
	"tsm/internal/stream"
	"tsm/internal/tse"
)

// EvaluateTSEStream is EvaluateTSE over a stream.Source: the TSE system
// observes the events in stream order without the trace ever being
// materialized, so arbitrarily large trace files evaluate the full
// CMOB/engine/directory stack in bounded memory. The results are
// bit-identical to EvaluateTSE over the equivalent in-memory trace.
func EvaluateTSEStream(cfg tse.Config, src stream.Source) (CoverageResult, tse.Result, error) {
	sys := tse.NewSystem(cfg)
	full, err := sys.RunSource(src)
	return CoverageResult{
		Name:         sys.Name(),
		Consumptions: full.Consumptions,
		Covered:      full.Covered,
		Fetched:      full.BlocksFetched,
		Discards:     full.Discards,
	}, full, err
}
