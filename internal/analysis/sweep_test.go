package analysis

import (
	"errors"
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/pipeline"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// sweepTestTrace builds one real workload trace for the sweep tests.
func sweepTestTrace(t *testing.T) (*trace.Trace, tse.Config) {
	t.Helper()
	gen := workload.NewOLTP(workload.Config{Nodes: 4, Seed: 3, Scale: 0.05}, "DB2")
	eng := coherence.New(coherence.Config{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tse.DefaultConfig()
	cfg.Nodes = 4
	cfg.Lookahead = gen.Timing().Lookahead
	return tr, cfg
}

// sweepTestConfigs varies the lookahead across n cells from a base config.
func sweepTestConfigs(base tse.Config, n int) []tse.Config {
	lookaheads := []int{1, 2, 4, 8, 16, 24}
	cfgs := make([]tse.Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Lookahead = lookaheads[i%len(lookaheads)]
		cfgs[i] = cfg
	}
	return cfgs
}

// countingSource counts Next calls: a full single pass over an N-event trace
// is exactly N+1 calls (the events plus one io.EOF).
type countingSource struct {
	src   stream.Source
	nexts int
}

func (c *countingSource) Next() (trace.Event, error) {
	c.nexts++
	return c.src.Next()
}

// TestSweepSinglePassMatchesPerCell is the sweep evaluator's contract in one
// test: evaluating N configurations through Sweep must (a) walk the stream
// exactly ONCE — N events + one EOF — and (b) produce per-cell results
// bit-identical to one EvaluateTSE pass per cell.
func TestSweepSinglePassMatchesPerCell(t *testing.T) {
	tr, base := sweepTestTrace(t)
	for _, cells := range []int{1, 4, 16} {
		cfgs := sweepTestConfigs(base, cells)
		src := &countingSource{src: stream.TraceSource(tr)}
		got, err := Sweep(cfgs, src)
		if err != nil {
			t.Fatal(err)
		}
		if want := tr.Len() + 1; src.nexts != want {
			t.Fatalf("%d-cell sweep read the source %d times, want %d (one pass)", cells, src.nexts, want)
		}
		if len(got) != cells {
			t.Fatalf("sweep returned %d cells, want %d", len(got), cells)
		}
		for i, cfg := range cfgs {
			wantCov, wantFull := EvaluateTSE(cfg, tr)
			if got[i].Coverage != wantCov {
				t.Fatalf("cell %d coverage %+v differs from per-cell EvaluateTSE %+v", i, got[i].Coverage, wantCov)
			}
			if got[i].Full.Covered != wantFull.Covered || got[i].Full.Discards != wantFull.Discards ||
				got[i].Full.Traffic != wantFull.Traffic || got[i].Full.CMOBPeakBytes != wantFull.CMOBPeakBytes {
				t.Fatalf("cell %d full result differs: %+v vs %+v", i, got[i].Full, wantFull)
			}
		}
	}
}

// TestSweepEmpty: no configurations means no results and an unread source.
func TestSweepEmpty(t *testing.T) {
	tr, _ := sweepTestTrace(t)
	src := &countingSource{src: stream.TraceSource(tr)}
	got, err := Sweep(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty sweep returned %d cells", len(got))
	}
	if src.nexts != 0 {
		t.Fatalf("empty sweep read the source %d times", src.nexts)
	}
}

// TestSweepStrategiesAgree: the ring broadcast and the channels reference
// must produce identical sweep results — the pipeline-strategy differential
// at the evaluator level (the facade repeats it across every workload).
func TestSweepStrategiesAgree(t *testing.T) {
	tr, base := sweepTestTrace(t)
	cfgs := sweepTestConfigs(base, 6)
	ring, err := SweepWith(pipeline.Config{Strategy: pipeline.Ring}, cfgs, stream.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	chans, err := SweepWith(pipeline.Config{Strategy: pipeline.Channels}, cfgs, stream.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if ring[i].Coverage != chans[i].Coverage {
			t.Fatalf("cell %d: ring %+v != channels %+v", i, ring[i].Coverage, chans[i].Coverage)
		}
	}

	// SweepTrace is the same single pass over the materialized trace.
	viaTrace, err := SweepTrace(cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if viaTrace[i].Coverage != ring[i].Coverage {
			t.Fatalf("cell %d: SweepTrace %+v != Sweep %+v", i, viaTrace[i].Coverage, ring[i].Coverage)
		}
	}
}

// TestSweepPropagatesSourceError: a terminal decode error must fail the
// sweep with that error, under both strategies.
func TestSweepPropagatesSourceError(t *testing.T) {
	_, base := sweepTestTrace(t)
	cfgs := sweepTestConfigs(base, 3)
	for _, s := range []pipeline.Strategy{pipeline.Ring, pipeline.Channels} {
		if _, err := SweepWith(pipeline.Config{Strategy: s}, cfgs, brokenSource{}); !errors.Is(err, errBroken) {
			t.Fatalf("strategy %v: err = %v, want errBroken", s, err)
		}
	}
}
