// Package analysis implements the trace analyses of Section 5: the temporal
// correlation opportunity study (Figure 6), the coverage/discard evaluation
// harness used for TSE and the baseline prefetchers (Figures 7–10 and 12),
// and the stream-length and bandwidth summaries (Figures 11 and 13).
package analysis

import (
	"tsm/internal/mem"
	"tsm/internal/trace"
)

// MaxCorrelationDistance is the largest reordering window the opportunity
// study considers (Figure 6 plots ±1 through ±16).
const MaxCorrelationDistance = 16

// referenceStreams is the number of recently-followed orders each node keeps
// as candidate references while measuring correlation distance. The paper
// measures the distance "along the most recent sharer's order between
// consecutive processor consumptions"; keeping a small set of recent
// reference orders (rather than exactly one) makes the measurement robust to
// uncorrelated misses interleaved between correlated ones — precisely the
// small deviations the SVB window tolerates in the hardware (Section 3.3).
const referenceStreams = 4

// CorrelationResult reports, for each temporal correlation distance d, the
// fraction of consumptions whose distance from the node's current position
// in a recently-followed sharer's order is within ±d.
type CorrelationResult struct {
	// Total is the number of consumptions analysed.
	Total uint64
	// WithinDistance[d] is the count of consumptions with |distance| <= d
	// (index 0 unused; valid indices 1..MaxCorrelationDistance).
	WithinDistance [MaxCorrelationDistance + 1]uint64
}

// CumulativeFraction returns the fraction of consumptions with correlation
// distance within ±d.
func (r CorrelationResult) CumulativeFraction(d int) float64 {
	if r.Total == 0 {
		return 0
	}
	if d < 1 {
		return 0
	}
	if d > MaxCorrelationDistance {
		d = MaxCorrelationDistance
	}
	return float64(r.WithinDistance[d]) / float64(r.Total)
}

// PerfectFraction returns the fraction of consumptions that precisely follow
// a recent sharer's order (distance 1).
func (r CorrelationResult) PerfectFraction() float64 { return r.CumulativeFraction(1) }

// occurrence locates one appearance of a block in some node's consumption
// order.
type occurrence struct {
	node mem.NodeID
	pos  int
}

// reference is one candidate order a node may currently be following: a
// position within some (possibly its own, earlier) node's consumption order.
type reference struct {
	node mem.NodeID
	pos  int
	lru  uint64
}

// CorrelationDistance performs the Figure 6 opportunity analysis on a
// consumption trace. For every consumption it measures how far along a
// recently-followed sharer's order the processor has moved; distances within
// ±d for small d indicate the consumption would be captured by temporal
// streaming with a lookahead of roughly d.
func CorrelationDistance(tr *trace.Trace, nodes int) CorrelationResult {
	var res CorrelationResult

	// Per-node consumption orders, grown as the trace is scanned.
	orders := make([][]mem.BlockAddr, nodes)
	// Most recent occurrences of each block in any node's order (newest
	// first, bounded).
	const keepOccurrences = 4
	occ := make(map[mem.BlockAddr][]occurrence)
	// Per-node set of candidate reference orders currently being followed.
	refs := make([][]reference, nodes)
	var clock uint64

	for _, e := range tr.Events {
		if e.Kind != trace.KindConsumption {
			continue
		}
		if int(e.Node) < 0 || int(e.Node) >= nodes {
			continue
		}
		n := e.Node
		res.Total++
		clock++

		// Try to find this block near one of the node's current reference
		// positions; the best (smallest) distance wins.
		best := 0
		bestIdx := -1
		for i := range refs[n] {
			r := &refs[n][i]
			order := orders[r.node]
			for d := 1; d <= MaxCorrelationDistance; d++ {
				if best != 0 && d >= best {
					break
				}
				if r.pos+d < len(order) && order[r.pos+d] == e.Block {
					best, bestIdx = d, i
					break
				}
				if r.pos-d >= 0 && order[r.pos-d] == e.Block {
					best, bestIdx = d, i
					break
				}
			}
		}
		if bestIdx >= 0 {
			for d := best; d <= MaxCorrelationDistance; d++ {
				res.WithinDistance[d]++
			}
			// Advance the matched reference to the block's position so the
			// next consumption is measured from there.
			r := &refs[n][bestIdx]
			if r.pos+best < len(orders[r.node]) && orders[r.node][r.pos+best] == e.Block {
				r.pos += best
			} else {
				r.pos -= best
			}
			r.lru = clock
		} else {
			// Not following any current reference: start (or replace) a
			// reference at the most recent prior occurrence of this block in
			// any node's order — the "most recent sharer".
			if prior := occ[e.Block]; len(prior) > 0 {
				newRef := reference{node: prior[0].node, pos: prior[0].pos, lru: clock}
				if len(refs[n]) < referenceStreams {
					refs[n] = append(refs[n], newRef)
				} else {
					victim := 0
					for i := 1; i < len(refs[n]); i++ {
						if refs[n][i].lru < refs[n][victim].lru {
							victim = i
						}
					}
					refs[n][victim] = newRef
				}
			}
		}

		// Record this consumption in the node's own order and in the
		// occurrence index.
		pos := len(orders[n])
		orders[n] = append(orders[n], e.Block)
		list := occ[e.Block]
		list = append([]occurrence{{node: n, pos: pos}}, list...)
		if len(list) > keepOccurrences {
			list = list[:keepOccurrences]
		}
		occ[e.Block] = list
	}
	return res
}
