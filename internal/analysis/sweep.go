package analysis

import (
	"tsm/internal/pipeline"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// The sweep evaluator: an entire sensitivity sweep — many TSE configurations
// over the SAME access stream — evaluated as N concurrent consumers of ONE
// pass. The paper's Figures 7–9 (and the node-count study) are exactly this
// shape: before this file existed the experiments layer ran one full
// EvaluateTSE pass per sweep cell (Figure 7 alone was 44 passes over eleven
// traces), paying the stream walk once per cell; now each workload's stream
// is walked once per figure, however many cells the figure sweeps. This is
// the inter-query sharing argument of Shared Arrangements applied to trace
// evaluation: maintain one stream, share it across every concurrent query.

// SweepResult is one cell of a TSE configuration sweep: the common coverage
// summary plus the full TSE result (stream lengths, traffic, CMOB
// footprint), exactly what EvaluateTSEStream returns for the cell's config.
type SweepResult struct {
	// Coverage is the cell's coverage/discard summary.
	Coverage CoverageResult
	// Full is the cell's complete TSE result.
	Full tse.Result
}

// Sweep evaluates every TSE configuration as a concurrent consumer of a
// SINGLE pass over src: the fan-out engine in internal/pipeline decodes the
// stream exactly once and broadcasts it (ring strategy — one chunk copy,
// per-cell cursors), so the cost of adding a sweep cell is one more TSE
// model, never another walk of the stream. Results are returned in config
// order and are bit-identical to running EvaluateTSE per cell, a property
// the differential tests pin. An empty config list returns no results
// without reading src.
func Sweep(cfgs []tse.Config, src stream.Source) ([]SweepResult, error) {
	return SweepWith(pipeline.Config{}, cfgs, src)
}

// SweepTrace is Sweep over an in-memory trace.
func SweepTrace(cfgs []tse.Config, tr *trace.Trace) ([]SweepResult, error) {
	return Sweep(cfgs, stream.TraceSource(tr))
}

// SweepWith is Sweep under an explicit pipeline configuration — the seam the
// ring-vs-channels differential tests and the broadcast benchmarks use.
func SweepWith(pcfg pipeline.Config, cfgs []tse.Config, src stream.Source) ([]SweepResult, error) {
	cells := make([]*TSEConsumer, len(cfgs))
	consumers := make([]pipeline.Consumer, len(cfgs))
	for i, cfg := range cfgs {
		cells[i] = NewTSEConsumer(cfg)
		consumers[i] = cells[i]
	}
	if err := pcfg.Run(src, consumers...); err != nil {
		return nil, err
	}
	out := make([]SweepResult, len(cells))
	for i, c := range cells {
		out[i] = SweepResult{Coverage: c.Result, Full: c.Full}
	}
	return out, nil
}
