package analysis

import (
	"math/rand"
	"testing"

	"tsm/internal/mem"
	"tsm/internal/prefetch"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// perfectlyCorrelatedTrace: node 0 consumes blocks 0..n-1 in order, then
// node 1 consumes the identical sequence.
func perfectlyCorrelatedTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for node := 0; node < 2; node++ {
		for i := 0; i < n; i++ {
			tr.Append(trace.Event{Kind: trace.KindConsumption, Node: mem.NodeID(node), Block: mem.BlockAddr(i * 64)})
		}
	}
	return tr
}

// uncorrelatedTrace: node 0 consumes blocks in order, node 1 consumes random
// blocks from a large disjoint-order permutation.
func uncorrelatedTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 1, Block: mem.BlockAddr(i * 64)})
	}
	return tr
}

func TestCorrelationDistancePerfect(t *testing.T) {
	tr := perfectlyCorrelatedTrace(500)
	res := CorrelationDistance(tr, 2)
	if res.Total != 1000 {
		t.Fatalf("Total = %d, want 1000", res.Total)
	}
	// Node 1's consumptions (half the total) follow node 0's order exactly,
	// so roughly half of all consumptions are perfectly correlated.
	if got := res.PerfectFraction(); got < 0.45 || got > 0.55 {
		t.Fatalf("PerfectFraction = %v, want ~0.5", got)
	}
	// Cumulative fractions are monotone in d.
	prev := 0.0
	for d := 1; d <= MaxCorrelationDistance; d++ {
		c := res.CumulativeFraction(d)
		if c < prev {
			t.Fatalf("cumulative fraction decreased at d=%d", d)
		}
		prev = c
	}
}

func TestCorrelationDistanceUncorrelated(t *testing.T) {
	res := CorrelationDistance(uncorrelatedTrace(2000, 3), 2)
	if got := res.CumulativeFraction(16); got > 0.15 {
		t.Fatalf("uncorrelated trace shows %.2f correlation, want near zero", got)
	}
}

func TestCorrelationDistanceBounds(t *testing.T) {
	res := CorrelationDistance(perfectlyCorrelatedTrace(100), 2)
	if res.CumulativeFraction(0) != 0 {
		t.Fatal("distance 0 should report 0")
	}
	if res.CumulativeFraction(100) != res.CumulativeFraction(MaxCorrelationDistance) {
		t.Fatal("distances beyond the max should clamp")
	}
	empty := CorrelationResult{}
	if empty.CumulativeFraction(4) != 0 {
		t.Fatal("empty result should report 0")
	}
}

func TestCorrelationDistanceSmallReordering(t *testing.T) {
	// Node 1 follows node 0's order but with adjacent pairs swapped: not
	// perfectly correlated, but within distance 2.
	n := 400
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	for i := 0; i < n; i += 2 {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 1, Block: mem.BlockAddr((i + 1) * 64)})
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 1, Block: mem.BlockAddr(i * 64)})
	}
	res := CorrelationDistance(tr, 2)
	// Node 1's consumptions are all correlated once small reorderings are
	// allowed (node 1 contributes half of all consumptions), whereas the
	// strictly "perfect" fraction is smaller.
	within1 := res.CumulativeFraction(1)
	within4 := res.CumulativeFraction(4)
	if within4 < 0.45 {
		t.Fatalf("swapped order should be largely within distance 4, got %v", within4)
	}
	if within4 <= within1 {
		t.Fatalf("distance-4 fraction (%v) should exceed distance-1 fraction (%v)", within4, within1)
	}
}

func TestEvaluateModelStride(t *testing.T) {
	// A strided consumption stream should give the stride prefetcher high
	// coverage through the generic evaluation harness.
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	cfg := prefetch.DefaultStrideConfig()
	cfg.Nodes = 1
	res := EvaluateModel(prefetch.NewStride(cfg), tr)
	if res.Name != "Stride" {
		t.Fatalf("Name = %q", res.Name)
	}
	if res.Coverage() < 0.8 {
		t.Fatalf("stride coverage on strided trace = %v, want high", res.Coverage())
	}
	if res.Consumptions != 200 {
		t.Fatalf("consumptions = %d", res.Consumptions)
	}
	if res.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestEvaluateTSEOutperformsLocalPrefetchersOnMigratoryStreams(t *testing.T) {
	// Recreate the paper's qualitative Figure 12 result on a small
	// migratory trace: the consumption sequence is irregular (no strides)
	// but recurs across nodes, so TSE covers it while the stride prefetcher
	// and a node-local GHB cannot.
	rng := rand.New(rand.NewSource(11))
	seq := make([]mem.BlockAddr, 400)
	for i := range seq {
		seq[i] = mem.BlockAddr(uint64(rng.Intn(1<<20)) &^ 63)
	}
	tr := &trace.Trace{}
	for node := 0; node < 4; node++ {
		for _, b := range seq {
			tr.Append(trace.Event{Kind: trace.KindConsumption, Node: mem.NodeID(node), Block: b})
		}
	}

	tseCfg := tse.DefaultConfig()
	tseCfg.Nodes = 4
	tseRes, full := EvaluateTSE(tseCfg, tr)

	strideCfg := prefetch.DefaultStrideConfig()
	strideCfg.Nodes = 4
	strideRes := EvaluateModel(prefetch.NewStride(strideCfg), tr)

	ghbCfg := prefetch.DefaultGHBConfig(prefetch.GAC)
	ghbCfg.Nodes = 4
	ghbRes := EvaluateModel(prefetch.NewGHB(ghbCfg), tr)

	if tseRes.Coverage() < 0.6 {
		t.Fatalf("TSE coverage = %v, want high on recurring migratory streams", tseRes.Coverage())
	}
	if strideRes.Coverage() > tseRes.Coverage()/2 {
		t.Fatalf("stride coverage %v should be far below TSE %v", strideRes.Coverage(), tseRes.Coverage())
	}
	if ghbRes.Coverage() >= tseRes.Coverage() {
		t.Fatalf("node-local GHB coverage %v should not reach TSE %v", ghbRes.Coverage(), tseRes.Coverage())
	}
	if full.Consumptions != tseRes.Consumptions {
		t.Fatal("full TSE result and coverage summary disagree")
	}
}

func TestStreamLengthCDF(t *testing.T) {
	cfg := tse.DefaultConfig()
	cfg.Nodes = 2
	sys := tse.NewSystem(cfg)
	tr := perfectlyCorrelatedTrace(300)
	res := sys.Run(tr)
	buckets := Figure13Buckets()
	cdf := StreamLengthCDF(res, buckets)
	if len(cdf) != len(buckets) {
		t.Fatalf("CDF length %d != buckets %d", len(cdf), len(buckets))
	}
	prev := -1.0
	for i, v := range cdf {
		if v < prev-1e-9 || v < 0 || v > 1+1e-9 {
			t.Fatalf("CDF not monotone in [0,1] at bucket %d: %v", buckets[i], v)
		}
		prev = v
	}
	if cdf[len(cdf)-1] < 0.999 {
		t.Fatalf("CDF should reach 1.0, got %v", cdf[len(cdf)-1])
	}
	if buckets[0] != 0 || buckets[1] != 1 || buckets[len(buckets)-1] != 128*1024 {
		t.Fatalf("unexpected Figure 13 buckets: %v", buckets[:3])
	}
}

func TestCoverageResultZeroDivision(t *testing.T) {
	r := CoverageResult{}
	if r.Coverage() != 0 || r.DiscardRate() != 0 {
		t.Fatal("zero-consumption result should report zeros")
	}
}
