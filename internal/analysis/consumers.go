package analysis

import (
	"io"

	"tsm/internal/obs"
	"tsm/internal/prefetch"
	"tsm/internal/stream"
	"tsm/internal/tse"
)

// The consumer adapters below let the coverage evaluations ride the
// single-decode fan-out engine in internal/pipeline: each implements
// Run(stream.Source) error (pipeline.Consumer, satisfied structurally) by
// draining its private tee of the stream and storing the result for the
// caller to collect once the pipeline run returns. The Sweep evaluator
// (sweep.go) builds directly on TSEConsumer: one consumer per sweep cell,
// all riding a single pipeline.Run.
//
// Both consumers also satisfy pipeline.Sampler (again structurally): when
// the run attaches an obs.SeriesSet, the pipeline pumps SampleAt at chunk
// boundaries — on the consumer's own goroutine, between events — and the
// consumer records its live cumulative state as one epoch sample. The final
// flush lands a sample whose coverage equals the end-of-run report exactly
// (tse.System.Probe does not flush; see LiveStats).

// ModelConsumer evaluates one baseline prefetcher over its tee of the
// stream. After a successful Run, Result holds the coverage summary.
type ModelConsumer struct {
	model prefetch.Model
	// Result is the coverage summary. It is updated live during Run (the
	// sampling pump reads it mid-stream) and complete once Run returns nil.
	Result CoverageResult
	series *obs.Series
}

// NewModelConsumer wraps a baseline prefetcher model.
func NewModelConsumer(m prefetch.Model) *ModelConsumer {
	return &ModelConsumer{model: m}
}

// Run implements the pipeline consumer contract.
func (c *ModelConsumer) Run(src stream.Source) error {
	c.Result = CoverageResult{Name: c.model.Name()}
	return evaluateModelInto(c.model, src, &c.Result)
}

// AttachSeries implements pipeline.Sampler.
func (c *ModelConsumer) AttachSeries(s *obs.Series) { c.series = s }

// SampleAt implements pipeline.Sampler: one epoch sample of the live
// cumulative coverage counts. Runs on the consumer's goroutine between
// events.
func (c *ModelConsumer) SampleAt(seq uint64, final bool) {
	if !c.series.Ready(seq, final) {
		return
	}
	c.series.Record(seq, map[string]float64{
		"consumptions": float64(c.Result.Consumptions),
		"covered":      float64(c.Result.Covered),
		"coverage":     c.Result.Coverage(),
	})
}

// TSEConsumer evaluates the trace-driven TSE coverage model over its tee of
// the stream. After a successful Run, Result holds the common coverage
// summary and Full the complete tse.Result (stream lengths, traffic, CMOB
// footprint).
type TSEConsumer struct {
	cfg tse.Config
	// Result is the coverage summary, valid after Run returns nil.
	Result CoverageResult
	// Full is the complete TSE result, valid after Run returns nil.
	Full   tse.Result
	series *obs.Series
	sys    *tse.System // live system while Run is in flight (sampling only)
}

// NewTSEConsumer wraps a TSE system model built from cfg at Run time.
func NewTSEConsumer(cfg tse.Config) *TSEConsumer {
	return &TSEConsumer{cfg: cfg}
}

// Run implements the pipeline consumer contract. The system is built here
// and exposed to SampleAt for the duration of the run; the final numbers are
// bit-identical to EvaluateTSEStream (both are NewSystem + RunSource). A
// source holding struct-of-arrays chunks (the pipeline's fan-out sources,
// the parallel decoder) is driven through the columnar inner loop instead —
// same numbers, no per-event interface call.
func (c *TSEConsumer) Run(src stream.Source) error {
	sys := tse.NewSystem(c.cfg)
	c.sys = sys
	var full tse.Result
	var err error
	if ss, ok := src.(stream.SoASource); ok {
		full, err = runTSEColumns(sys, ss)
	} else {
		full, err = sys.RunSource(src)
	}
	c.sys = nil
	c.Result = CoverageResult{
		Name:         sys.Name(),
		Consumptions: full.Consumptions,
		Covered:      full.Covered,
		Fetched:      full.BlocksFetched,
		Discards:     full.Discards,
	}
	c.Full = full
	return err
}

// runTSEColumns drives the system over dense column chunks, mirroring
// RunSource's terminal semantics exactly: Finish runs on both the clean and
// the error ending, and the partial result accompanies a terminal error.
func runTSEColumns(sys *tse.System, ss stream.SoASource) (tse.Result, error) {
	for {
		ch, err := ss.NextChunkSoA()
		if err == io.EOF {
			return sys.Finish(), nil
		}
		if err != nil {
			return sys.Finish(), err
		}
		sys.RunColumns(ch.Kind, ch.Node, ch.Block)
	}
}

// AttachSeries implements pipeline.Sampler.
func (c *TSEConsumer) AttachSeries(s *obs.Series) { c.series = s }

// SampleAt implements pipeline.Sampler: one epoch sample probed from the
// live system — cumulative coverage plus the resident state (SVB occupancy,
// CMOB storage) the end-of-run result cannot show. Runs on the consumer's
// goroutine between events; outside Run (c.sys nil) it is a no-op.
func (c *TSEConsumer) SampleAt(seq uint64, final bool) {
	if c.sys == nil || !c.series.Ready(seq, final) {
		return
	}
	ls := c.sys.Probe()
	c.series.Record(seq, map[string]float64{
		"consumptions": float64(ls.Consumptions),
		"covered":      float64(ls.Covered),
		"coverage":     ls.Coverage(),
		"fetched":      float64(ls.BlocksFetched),
		"discards":     float64(ls.Discards),
		"streams":      float64(ls.StreamsAllocated),
		"svb_resident": float64(ls.SVBResident),
		"cmob_bytes":   float64(ls.CMOBBytes),
	})
}
