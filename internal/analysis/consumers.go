package analysis

import (
	"tsm/internal/prefetch"
	"tsm/internal/stream"
	"tsm/internal/tse"
)

// The consumer adapters below let the coverage evaluations ride the
// single-decode fan-out engine in internal/pipeline: each implements
// Run(stream.Source) error (pipeline.Consumer, satisfied structurally) by
// draining its private tee of the stream and storing the result for the
// caller to collect once the pipeline run returns. The Sweep evaluator
// (sweep.go) builds directly on TSEConsumer: one consumer per sweep cell,
// all riding a single pipeline.Run.

// ModelConsumer evaluates one baseline prefetcher over its tee of the
// stream. After a successful Run, Result holds the coverage summary.
type ModelConsumer struct {
	model prefetch.Model
	// Result is the coverage summary, valid after Run returns nil.
	Result CoverageResult
}

// NewModelConsumer wraps a baseline prefetcher model.
func NewModelConsumer(m prefetch.Model) *ModelConsumer {
	return &ModelConsumer{model: m}
}

// Run implements the pipeline consumer contract.
func (c *ModelConsumer) Run(src stream.Source) error {
	res, err := EvaluateModelStream(c.model, src)
	c.Result = res
	return err
}

// TSEConsumer evaluates the trace-driven TSE coverage model over its tee of
// the stream. After a successful Run, Result holds the common coverage
// summary and Full the complete tse.Result (stream lengths, traffic, CMOB
// footprint).
type TSEConsumer struct {
	cfg tse.Config
	// Result is the coverage summary, valid after Run returns nil.
	Result CoverageResult
	// Full is the complete TSE result, valid after Run returns nil.
	Full tse.Result
}

// NewTSEConsumer wraps a TSE system model built from cfg at Run time.
func NewTSEConsumer(cfg tse.Config) *TSEConsumer {
	return &TSEConsumer{cfg: cfg}
}

// Run implements the pipeline consumer contract.
func (c *TSEConsumer) Run(src stream.Source) error {
	cov, full, err := EvaluateTSEStream(c.cfg, src)
	c.Result, c.Full = cov, full
	return err
}
