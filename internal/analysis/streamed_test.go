package analysis

import (
	"errors"
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// TestEvaluateTSEStreamMatchesEvaluateTSE: the streamed TSE evaluation must
// be bit-identical to the materialized one on a real workload trace.
func TestEvaluateTSEStreamMatchesEvaluateTSE(t *testing.T) {
	gen := workload.NewOLTP(workload.Config{Nodes: 4, Seed: 3, Scale: 0.05}, "DB2")
	eng := coherence.New(coherence.Config{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}

	cfg := tse.DefaultConfig()
	cfg.Nodes = 4
	cfg.Lookahead = gen.Timing().Lookahead

	wantCov, wantFull := EvaluateTSE(cfg, tr)
	gotCov, gotFull, err := EvaluateTSEStream(cfg, stream.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if gotCov != wantCov {
		t.Fatalf("streamed coverage %+v differs from materialized %+v", gotCov, wantCov)
	}
	if gotFull.Consumptions != wantFull.Consumptions || gotFull.Covered != wantFull.Covered ||
		gotFull.Discards != wantFull.Discards || gotFull.Traffic != wantFull.Traffic ||
		gotFull.CMOBPeakBytes != wantFull.CMOBPeakBytes {
		t.Fatalf("streamed full result differs: %+v vs %+v", gotFull, wantFull)
	}
}

// brokenSource fails immediately.
type brokenSource struct{}

var errBroken = errors.New("analysis test: source failed")

func (brokenSource) Next() (trace.Event, error) { return trace.Event{}, errBroken }

func TestEvaluateTSEStreamPropagatesError(t *testing.T) {
	cfg := tse.DefaultConfig()
	cfg.Nodes = 2
	if _, _, err := EvaluateTSEStream(cfg, brokenSource{}); !errors.Is(err, errBroken) {
		t.Fatalf("err = %v, want errBroken", err)
	}
}
