package analysis

import (
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// suiteTrace builds a small real workload trace plus the matching TSE
// configuration.
func suiteTrace(t *testing.T, name string, nodes int) (*trace.Trace, tse.Config) {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	gen := spec.New(workload.Config{Nodes: nodes, Seed: 5, Scale: 0.05})
	eng := coherence.New(coherence.Config{Nodes: nodes, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tse.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Lookahead = gen.Timing().Lookahead
	return tr, cfg
}

func TestEvaluateModelStreamMatchesSerial(t *testing.T) {
	tr, _ := suiteTrace(t, "oracle", 8)
	for _, spec := range BaselineSpecs(8) {
		want := EvaluateModel(spec.New(), tr)
		got, err := EvaluateModelStream(spec.New(), stream.TraceSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: streamed %+v, want %+v", spec.Name, got, want)
		}
	}
}

// TestEvaluateParallelMatchesSerial: the parallel, node-sharded evaluation
// must produce bit-identical coverage numbers to the serial evaluator.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	tr, _ := suiteTrace(t, "db2", 8)
	specs := BaselineSpecs(8)
	got := EvaluateParallel(specs, tr, 8)
	if len(got) != len(specs) {
		t.Fatalf("got %d results, want %d", len(got), len(specs))
	}
	for i, spec := range specs {
		want := EvaluateModel(spec.New(), tr)
		if got[i] != want {
			t.Errorf("%s: parallel %+v, want serial %+v", spec.Name, got[i], want)
		}
		if got[i].Name != spec.Name {
			t.Errorf("result %d named %q, want %q (ordered merge)", i, got[i].Name, spec.Name)
		}
	}
}

// TestEvaluateSuiteMatchesSerial: the whole Figure 12 comparison, run
// concurrently, must match the serial per-model path including TSE.
func TestEvaluateSuiteMatchesSerial(t *testing.T) {
	tr, cfg := suiteTrace(t, "db2", 8)
	results, full := EvaluateSuite(cfg, tr, 8)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	wantTSE, wantFull := EvaluateTSE(cfg, tr)
	if results[3] != wantTSE {
		t.Errorf("TSE: suite %+v, want %+v", results[3], wantTSE)
	}
	if full.Covered != wantFull.Covered || full.Consumptions != wantFull.Consumptions ||
		full.Discards != wantFull.Discards || full.BlocksFetched != wantFull.BlocksFetched {
		t.Errorf("TSE full result differs: %+v vs %+v", full, wantFull)
	}
	for i, spec := range BaselineSpecs(8) {
		want := EvaluateModel(spec.New(), tr)
		if results[i] != want {
			t.Errorf("%s: suite %+v, want %+v", spec.Name, results[i], want)
		}
	}
}
