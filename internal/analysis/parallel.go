package analysis

import (
	"io"

	"tsm/internal/prefetch"
	"tsm/internal/stream"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// EvaluateModelStream is EvaluateModel over a stream.Source: the model
// observes the events in stream order without the trace ever being
// materialized, so arbitrarily large trace files evaluate in constant
// memory.
func EvaluateModelStream(m prefetch.Model, src stream.Source) (CoverageResult, error) {
	res := CoverageResult{Name: m.Name()}
	err := evaluateModelInto(m, src, &res)
	return res, err
}

// evaluateModelInto runs the model evaluation loop updating res IN PLACE
// after every event, which is what lets a sampling consumer read live
// cumulative state mid-run (ModelConsumer.SampleAt) — the counts at any
// chunk boundary are exactly the counts a run truncated there would report.
// Fetched/Discards are only known at Finish and set on a clean end of
// stream.
func evaluateModelInto(m prefetch.Model, src stream.Source, res *CoverageResult) error {
	if ss, ok := src.(stream.SoASource); ok {
		return evaluateModelColumns(m, ss, res)
	}
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch e.Kind {
		case trace.KindConsumption:
			res.Consumptions++
			if m.Consumption(e) {
				res.Covered++
			}
		case trace.KindWrite:
			m.Write(e)
		}
	}
	res.Fetched, res.Discards = m.Finish()
	return nil
}

// evaluateModelColumns is evaluateModelInto over struct-of-arrays chunks:
// the classify switch sweeps the dense kind column — no interface call, no
// 40-byte struct copy per event — and only the consumption/write rows the
// model actually observes are reassembled into events. Results are
// bit-identical to the per-event path.
func evaluateModelColumns(m prefetch.Model, ss stream.SoASource, res *CoverageResult) error {
	for {
		c, err := ss.NextChunkSoA()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i, k := range c.Kind {
			switch k {
			case trace.KindConsumption:
				res.Consumptions++
				if m.Consumption(c.Event(i)) {
					res.Covered++
				}
			case trace.KindWrite:
				m.Write(c.Event(i))
			}
		}
	}
	res.Fetched, res.Discards = m.Finish()
	return nil
}

// ModelSpec describes a lazily constructed model for parallel evaluation.
type ModelSpec struct {
	// Name identifies the model in comparison tables.
	Name string
	// New constructs one replica. Replicas must be independent: the
	// sharded evaluator builds one per shard.
	New func() prefetch.Model
	// PerNodeState marks models whose mutable state is partitioned by
	// consuming node (writes excepted, which commute across nodes). Such
	// models are evaluated node-sharded across the worker pool with
	// results identical to a serial run; others are evaluated serially on
	// their own worker.
	PerNodeState bool
}

// BaselineSpecs returns the Figure 12 baseline prefetchers (stride and both
// GHB variants) for the given node count. All three keep per-node state.
func BaselineSpecs(nodes int) []ModelSpec {
	strideCfg := prefetch.DefaultStrideConfig()
	strideCfg.Nodes = nodes
	gdc := prefetch.DefaultGHBConfig(prefetch.GDC)
	gdc.Nodes = nodes
	gac := prefetch.DefaultGHBConfig(prefetch.GAC)
	gac.Nodes = nodes
	return []ModelSpec{
		{Name: prefetch.NewStride(strideCfg).Name(), New: func() prefetch.Model { return prefetch.NewStride(strideCfg) }, PerNodeState: true},
		{Name: prefetch.NewGHB(gdc).Name(), New: func() prefetch.Model { return prefetch.NewGHB(gdc) }, PerNodeState: true},
		{Name: prefetch.NewGHB(gac).Name(), New: func() prefetch.Model { return prefetch.NewGHB(gac) }, PerNodeState: true},
	}
}

// EvaluateModelSharded evaluates one model over a materialized trace using
// the node-sharded parallel evaluator when the spec allows it, falling back
// to the serial path otherwise. Results are identical either way.
func EvaluateModelSharded(spec ModelSpec, tr *trace.Trace, nodes int) CoverageResult {
	if !spec.PerNodeState {
		return EvaluateModel(spec.New(), tr)
	}
	c := stream.EvaluateShardedTrace(tr, stream.ShardConfig{Nodes: nodes}, func(int) stream.Model {
		return spec.New()
	})
	return CoverageResult{
		Name:         spec.Name,
		Consumptions: c.Consumptions,
		Covered:      c.Covered,
		Fetched:      c.Fetched,
		Discards:     c.Discards,
	}
}

// EvaluateParallel fans the per-model coverage analyses out over the worker
// pool — one task per model, each per-node-state model further sharded
// internally — and merges the results in spec order. The numbers are
// bit-identical to evaluating each model serially.
func EvaluateParallel(specs []ModelSpec, tr *trace.Trace, nodes int) []CoverageResult {
	out, _ := stream.RunOrdered(len(specs), 0, func(i int) (CoverageResult, error) {
		return EvaluateModelSharded(specs[i], tr, nodes), nil
	})
	return out
}

// EvaluateSuite evaluates the Figure 12 comparison — the three baseline
// prefetchers and TSE — over the same trace concurrently: the baselines are
// node-sharded across the pool while TSE (whose directory state is globally
// coupled and cannot shard without changing results) runs serially on its
// own worker. Results arrive in presentation order (Stride, G/DC, G/AC,
// TSE) and are identical to the serial evaluation path.
func EvaluateSuite(cfg tse.Config, tr *trace.Trace, nodes int) ([]CoverageResult, tse.Result) {
	specs := BaselineSpecs(nodes)
	var full tse.Result
	out, _ := stream.RunOrdered(len(specs)+1, 0, func(i int) (CoverageResult, error) {
		if i < len(specs) {
			return EvaluateModelSharded(specs[i], tr, nodes), nil
		}
		var cov CoverageResult
		cov, full = EvaluateTSE(cfg, tr)
		return cov, nil
	})
	return out, full
}
