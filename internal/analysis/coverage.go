package analysis

import (
	"fmt"

	"tsm/internal/prefetch"
	"tsm/internal/trace"
	"tsm/internal/tse"
)

// CoverageResult is the common coverage/discard summary used to compare TSE
// with the baseline prefetchers (Figures 7–10 and 12). Coverage is the
// fraction of consumptions eliminated; discards are erroneously fetched
// blocks, also normalised to consumptions (and can therefore exceed 1).
type CoverageResult struct {
	// Name identifies the model.
	Name string
	// Consumptions is the number of consumption events evaluated.
	Consumptions uint64
	// Covered is the number of consumptions the model's buffer satisfied.
	Covered uint64
	// Fetched is the number of blocks the model moved into its buffer.
	Fetched uint64
	// Discards is the number of fetched blocks that were never used.
	Discards uint64
}

// Coverage returns Covered/Consumptions.
func (r CoverageResult) Coverage() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Consumptions)
}

// DiscardRate returns Discards/Consumptions.
func (r CoverageResult) DiscardRate() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.Discards) / float64(r.Consumptions)
}

// String summarises the result.
func (r CoverageResult) String() string {
	return fmt.Sprintf("%s: coverage=%.1f%% discards=%.1f%%", r.Name, 100*r.Coverage(), 100*r.DiscardRate())
}

// EvaluateModel replays a trace through a baseline prefetcher model and
// returns its coverage summary.
func EvaluateModel(m prefetch.Model, tr *trace.Trace) CoverageResult {
	res := CoverageResult{Name: m.Name()}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindConsumption:
			res.Consumptions++
			if m.Consumption(e) {
				res.Covered++
			}
		case trace.KindWrite:
			m.Write(e)
		}
	}
	res.Fetched, res.Discards = m.Finish()
	return res
}

// EvaluateTSE replays a trace through a TSE system model and returns both
// the common coverage summary and the full TSE result (stream lengths,
// traffic, CMOB footprint).
func EvaluateTSE(cfg tse.Config, tr *trace.Trace) (CoverageResult, tse.Result) {
	sys := tse.NewSystem(cfg)
	full := sys.Run(tr)
	return CoverageResult{
		Name:         sys.Name(),
		Consumptions: full.Consumptions,
		Covered:      full.Covered,
		Fetched:      full.BlocksFetched,
		Discards:     full.Discards,
	}, full
}

// StreamLengthCDF converts a TSE stream-length histogram into the Figure 13
// series: for each length bucket, the cumulative fraction of all SVB hits
// contributed by streams no longer than that bucket.
func StreamLengthCDF(res tse.Result, buckets []int) []float64 {
	out := make([]float64, len(buckets))
	for i, b := range buckets {
		out[i] = res.StreamLengths.WeightedCumulativeFraction(b)
	}
	return out
}

// Figure13Buckets are the stream-length buckets the paper plots
// (0,1,2,4,...,128K).
func Figure13Buckets() []int {
	buckets := []int{0, 1}
	for v := 2; v <= 128*1024; v *= 2 {
		buckets = append(buckets, v)
	}
	return buckets
}
