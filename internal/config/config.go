// Package config collects the system and application parameters of the
// paper's Tables 1 and 2 in one place, together with the latency derivations
// (nanoseconds to cycles at the 4 GHz core clock) used by the timing model.
package config

import (
	"fmt"

	"tsm/internal/cache"
	"tsm/internal/interconnect"
	"tsm/internal/mem"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// SystemConfig is the Table 1 machine description.
type SystemConfig struct {
	// Nodes is the number of processing nodes (16).
	Nodes int
	// ClockGHz is the processor clock (4 GHz).
	ClockGHz float64
	// L1 and L2 are the cache geometries.
	L1, L2 cache.Config
	// L1LatencyCycles and L2LatencyCycles are load-to-use latencies.
	L1LatencyCycles, L2LatencyCycles uint64
	// L2MSHRs bounds outstanding misses per node (32); Section 5.6 caps
	// the ocean lookahead with it.
	L2MSHRs int
	// MemoryLatencyNs is the DRAM access latency (60 ns).
	MemoryLatencyNs float64
	// Torus is the interconnect description.
	Torus interconnect.Config
	// ROBEntries, a processor-side limit, bounds how far the core can run
	// ahead (256).
	ROBEntries int
	// Geometry is the coherence-unit geometry (64-byte blocks).
	Geometry mem.Geometry
}

// DefaultSystem returns the Table 1 configuration.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		Nodes:    16,
		ClockGHz: 4.0,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 * 1024, Ways: 2, BlockSize: mem.DefaultBlockSize,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 8 << 20, Ways: 8, BlockSize: mem.DefaultBlockSize,
		},
		L1LatencyCycles: 2,
		L2LatencyCycles: 25,
		L2MSHRs:         32,
		MemoryLatencyNs: 60,
		Torus:           interconnect.DefaultConfig(),
		ROBEntries:      256,
		Geometry:        mem.DefaultGeometry(),
	}
}

// Validate reports whether the configuration is usable.
func (c SystemConfig) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("config: nodes must be positive")
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("config: clock must be positive")
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.Torus.Validate(); err != nil {
		return err
	}
	return c.Geometry.Validate()
}

// NsToCycles converts nanoseconds to cycles at the configured clock.
func (c SystemConfig) NsToCycles(ns float64) uint64 {
	return uint64(ns*c.ClockGHz + 0.5)
}

// MemoryLatencyCycles is the DRAM latency in cycles.
func (c SystemConfig) MemoryLatencyCycles() uint64 {
	return c.NsToCycles(c.MemoryLatencyNs)
}

// HopLatencyCycles is one interconnect hop in cycles.
func (c SystemConfig) HopLatencyCycles() uint64 { return c.Torus.HopLatencyCycles }

// averageHops is the mean routing distance of the configured torus.
func (c SystemConfig) averageHops() float64 {
	return interconnect.New(c.Torus).AverageHops()
}

// TwoHopLatencyCycles approximates a coherent read satisfied at the home
// node: request to home, directory + memory access, data back.
func (c SystemConfig) TwoHopLatencyCycles() uint64 {
	hop := float64(c.HopLatencyCycles()) * c.averageHops()
	return uint64(2*hop) + c.MemoryLatencyCycles() + c.L2LatencyCycles
}

// ThreeHopLatencyCycles approximates a dirty coherent read miss: request to
// home, forward to the owner, owner's L2 access, data to the requester.
// This is the "3-hop coherence miss latency" Section 5.6 uses to size the
// stream lookahead.
func (c SystemConfig) ThreeHopLatencyCycles() uint64 {
	hop := float64(c.HopLatencyCycles()) * c.averageHops()
	return uint64(3*hop) + c.L2LatencyCycles*2
}

// SVBHitLatencyCycles is the latency of a consumption satisfied by the SVB
// (probed in parallel with the L2, so an L2-like latency).
func (c SystemConfig) SVBHitLatencyCycles() uint64 { return c.L2LatencyCycles }

// Table1 returns the Table 1 rows as (parameter, value) pairs for display.
func (c SystemConfig) Table1() [][2]string {
	return [][2]string{
		{"Processing Nodes", fmt.Sprintf("%d nodes, UltraSPARC III ISA, %.0f GHz, 8-wide, %d-entry ROB", c.Nodes, c.ClockGHz, c.ROBEntries)},
		{"L1 Caches", fmt.Sprintf("Split I/D, %dKB %d-way, %d-cycle load-to-use", c.L1.SizeBytes/1024, c.L1.Ways, c.L1LatencyCycles)},
		{"L2 Cache", fmt.Sprintf("Unified, %dMB %d-way, %d-cycle hit latency, %d MSHRs", c.L2.SizeBytes>>20, c.L2.Ways, c.L2LatencyCycles, c.L2MSHRs)},
		{"Main Memory", fmt.Sprintf("%.0f ns access latency, %d-byte coherence unit", c.MemoryLatencyNs, c.Geometry.BlockSize)},
		{"Interconnect", fmt.Sprintf("%dx%d 2D torus, %d cycles/hop, %.0f GB/s peak bisection bandwidth", c.Torus.Width, c.Torus.Height, c.Torus.HopLatencyCycles, c.Torus.PeakBisectionGBs)},
	}
}

// Table2 returns the Table 2 rows (application, parameters): the default
// workload suite, excluding the Extra cross-workload mixes (which have no
// Table 2 analogue — they colocate suite entries).
func Table2() [][2]string {
	var out [][2]string
	for _, s := range workload.Registry() {
		if s.Extra {
			continue
		}
		out = append(out, [2]string{s.Name, s.Parameters})
	}
	return out
}

// DefaultTSE returns the paper's chosen TSE configuration matched to this
// system configuration.
func (c SystemConfig) DefaultTSE() tse.Config {
	cfg := tse.DefaultConfig()
	cfg.Nodes = c.Nodes
	cfg.Geometry = c.Geometry
	return cfg
}
