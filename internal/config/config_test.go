package config

import (
	"testing"
)

func TestDefaultSystemValid(t *testing.T) {
	c := DefaultSystem()
	if err := c.Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
	if c.Nodes != 16 || c.ClockGHz != 4.0 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	c := DefaultSystem()
	c.Nodes = 0
	if c.Validate() == nil {
		t.Fatal("zero nodes should fail")
	}
	c = DefaultSystem()
	c.ClockGHz = 0
	if c.Validate() == nil {
		t.Fatal("zero clock should fail")
	}
	c = DefaultSystem()
	c.L2.Ways = 0
	if c.Validate() == nil {
		t.Fatal("bad L2 should fail")
	}
}

func TestLatencyDerivations(t *testing.T) {
	c := DefaultSystem()
	// 60 ns at 4 GHz = 240 cycles.
	if got := c.MemoryLatencyCycles(); got != 240 {
		t.Fatalf("MemoryLatencyCycles = %d, want 240", got)
	}
	// 25 ns per hop at 4 GHz = 100 cycles.
	if got := c.HopLatencyCycles(); got != 100 {
		t.Fatalf("HopLatencyCycles = %d, want 100", got)
	}
	if c.SVBHitLatencyCycles() != c.L2LatencyCycles {
		t.Fatal("SVB hit should cost an L2-like latency")
	}
	// A 3-hop miss must cost more than a 2-hop miss, and both must exceed
	// the local L2 latency by a wide margin.
	if c.ThreeHopLatencyCycles() <= c.TwoHopLatencyCycles()-200 {
		// allow difference because 2-hop includes memory latency
		t.Logf("2-hop=%d 3-hop=%d", c.TwoHopLatencyCycles(), c.ThreeHopLatencyCycles())
	}
	if c.ThreeHopLatencyCycles() < 10*c.L2LatencyCycles {
		t.Fatalf("3-hop latency %d suspiciously small", c.ThreeHopLatencyCycles())
	}
	if c.NsToCycles(1) != 4 {
		t.Fatalf("NsToCycles(1) = %d, want 4", c.NsToCycles(1))
	}
}

func TestTables(t *testing.T) {
	c := DefaultSystem()
	t1 := c.Table1()
	if len(t1) < 5 {
		t.Fatalf("Table1 has %d rows", len(t1))
	}
	for _, row := range t1 {
		if row[0] == "" || row[1] == "" {
			t.Fatal("Table1 row has empty cells")
		}
	}
	t2 := Table2()
	if len(t2) != 10 {
		t.Fatalf("Table2 has %d rows, want 10 (paper suite + extended matrix)", len(t2))
	}
}

func TestDefaultTSEMatchesSystem(t *testing.T) {
	c := DefaultSystem()
	tcfg := c.DefaultTSE()
	if tcfg.Nodes != c.Nodes {
		t.Fatal("TSE config should inherit the node count")
	}
	if err := tcfg.Validate(); err != nil {
		t.Fatalf("derived TSE config invalid: %v", err)
	}
}
