// Package directory implements the DSM directory: per-block sharing state
// (a full-map MSI directory with owner and sharer set) plus the TSE
// extension of Section 3.2 — one or more CMOB pointers per entry, each
// naming a node and an offset into that node's coherence miss order buffer
// where the block's address was most recently appended.
//
// Blocks are home-distributed across nodes by block index; the Directory
// type here models the aggregate of all per-node directory slices, which is
// sufficient because the functional and timing models only need the home
// node's identity to charge latency and traffic.
package directory

import (
	"fmt"

	"tsm/internal/mem"
)

// State is the directory-visible sharing state of a block.
type State uint8

const (
	// Uncached means no cache holds the block.
	Uncached State = iota
	// Shared means one or more caches hold a clean copy.
	Shared
	// Modified means exactly one cache holds a dirty copy.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Uncached:
		return "uncached"
	case Shared:
		return "shared"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// CMOBPointer locates the most recent appearance of a block's address in
// some node's CMOB.
type CMOBPointer struct {
	// Node is the node whose CMOB holds the entry.
	Node mem.NodeID
	// Offset is the absolute append index within that CMOB (monotonically
	// increasing; the CMOB maps it onto its circular storage).
	Offset uint64
	// Valid reports whether the pointer has been set.
	Valid bool
}

// Entry is the directory state for one block.
type Entry struct {
	State      State
	Owner      mem.NodeID // valid when State == Modified
	Sharers    SharerSet
	LastWriter mem.NodeID // most recent writer ever (InvalidNode if none)
	// CMOBPtrs holds the most recent CMOB pointers, newest first. Its
	// length is bounded by the directory's PointersPerEntry.
	CMOBPtrs []CMOBPointer
}

// SharerSet is a bitmap of nodes holding a shared copy. It supports up to 64
// nodes, which covers the paper's 16-node system with room to spare.
type SharerSet uint64

// Add inserts a node into the set.
func (s *SharerSet) Add(n mem.NodeID) { *s |= 1 << uint(n) }

// Remove deletes a node from the set.
func (s *SharerSet) Remove(n mem.NodeID) { *s &^= 1 << uint(n) }

// Contains reports whether the node is in the set.
func (s SharerSet) Contains(n mem.NodeID) bool { return s&(1<<uint(n)) != 0 }

// Count returns the number of nodes in the set.
func (s SharerSet) Count() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Clear empties the set.
func (s *SharerSet) Clear() { *s = 0 }

// Nodes returns the members of the set in ascending order.
func (s SharerSet) Nodes() []mem.NodeID {
	var out []mem.NodeID
	for i := 0; i < 64; i++ {
		if s.Contains(mem.NodeID(i)) {
			out = append(out, mem.NodeID(i))
		}
	}
	return out
}

// Config parameterises the directory.
type Config struct {
	// Nodes is the number of nodes in the system.
	Nodes int
	// Geometry supplies the block size used to home blocks.
	Geometry mem.Geometry
	// PointersPerEntry is the number of CMOB pointers stored per block.
	// Basic temporal streaming needs one; the paper's TSE configuration
	// keeps pointers from a few recent consumers (two, matching the two
	// compared streams).
	PointersPerEntry int
}

// DefaultConfig returns a 16-node directory with two CMOB pointers per
// entry.
func DefaultConfig() Config {
	return Config{Nodes: 16, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > 64 {
		return fmt.Errorf("directory: node count %d out of range [1,64]", c.Nodes)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.PointersPerEntry < 0 {
		return fmt.Errorf("directory: negative pointers per entry")
	}
	return nil
}

// Directory is the aggregate full-map directory.
type Directory struct {
	cfg     Config
	entries map[uint64]*Entry // keyed by block index
}

// New builds an empty directory. It panics on an invalid configuration.
func New(cfg Config) *Directory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Directory{cfg: cfg, entries: make(map[uint64]*Entry)}
}

// Config returns the directory configuration.
func (d *Directory) Config() Config { return d.cfg }

// HomeNode returns the node whose memory (and directory slice) owns the
// block. Blocks are interleaved across nodes at block granularity.
func (d *Directory) HomeNode(b mem.BlockAddr) mem.NodeID {
	return mem.NodeID(d.cfg.Geometry.BlockIndex(mem.Addr(b)) % uint64(d.cfg.Nodes))
}

// Entries returns the number of blocks with directory state allocated.
func (d *Directory) Entries() int { return len(d.entries) }

// Lookup returns the entry for a block, or nil if the block has never been
// referenced.
func (d *Directory) Lookup(b mem.BlockAddr) *Entry {
	return d.entries[d.cfg.Geometry.BlockIndex(mem.Addr(b))]
}

// entry returns the entry for a block, allocating it if needed.
func (d *Directory) entry(b mem.BlockAddr) *Entry {
	idx := d.cfg.Geometry.BlockIndex(mem.Addr(b))
	e, ok := d.entries[idx]
	if !ok {
		e = &Entry{State: Uncached, Owner: mem.InvalidNode, LastWriter: mem.InvalidNode}
		d.entries[idx] = e
	}
	return e
}

// ReadResult describes the directory's response to a read request.
type ReadResult struct {
	// Coherent reports whether the miss is a coherent read miss (the
	// directory had to obtain the data from another node's dirty copy, or
	// the block was last written by a different node). The paper's TSE
	// triggers only on these.
	Coherent bool
	// Producer is the node that wrote the value being read
	// (InvalidNode when the value comes from untouched memory).
	Producer mem.NodeID
	// Owner is the previous owner that must forward/downgrade its copy
	// (InvalidNode when memory supplies the data).
	Owner mem.NodeID
	// CMOBPtrs is a copy of the CMOB pointers recorded for the block at
	// request time (newest first).
	CMOBPtrs []CMOBPointer
}

// Read processes a read request from a node that missed in its private
// cache hierarchy and updates sharing state.
func (d *Directory) Read(node mem.NodeID, b mem.BlockAddr) ReadResult {
	e := d.entry(b)
	res := ReadResult{Producer: e.LastWriter, Owner: mem.InvalidNode}
	if len(e.CMOBPtrs) > 0 {
		res.CMOBPtrs = append([]CMOBPointer(nil), e.CMOBPtrs...)
	}
	switch e.State {
	case Modified:
		res.Owner = e.Owner
		res.Coherent = e.Owner != node
		// Owner's copy is downgraded to shared.
		e.Sharers.Add(e.Owner)
		e.Sharers.Add(node)
		e.Owner = mem.InvalidNode
		e.State = Shared
	case Shared, Uncached:
		// Coherent when the last value was produced by another node and
		// this node is not already recorded as holding the block
		// (producer->consumer communication).
		res.Coherent = e.LastWriter != mem.InvalidNode && e.LastWriter != node && !e.Sharers.Contains(node)
		e.Sharers.Add(node)
		e.State = Shared
	}
	return res
}

// WriteResult describes the directory's response to a write (or upgrade)
// request.
type WriteResult struct {
	// Invalidated lists the nodes whose copies were invalidated.
	Invalidated []mem.NodeID
	// PreviousOwner is the node whose dirty copy was taken (InvalidNode
	// if none).
	PreviousOwner mem.NodeID
	// Coherent reports whether the write required invalidating or
	// fetching another node's copy.
	Coherent bool
}

// Write processes a write request (including upgrades from Shared) and
// updates sharing state.
func (d *Directory) Write(node mem.NodeID, b mem.BlockAddr) WriteResult {
	e := d.entry(b)
	var res WriteResult
	res.PreviousOwner = mem.InvalidNode
	switch e.State {
	case Modified:
		if e.Owner != node {
			res.PreviousOwner = e.Owner
			res.Invalidated = append(res.Invalidated, e.Owner)
			res.Coherent = true
		}
	case Shared:
		for _, s := range e.Sharers.Nodes() {
			if s != node {
				res.Invalidated = append(res.Invalidated, s)
				res.Coherent = true
			}
		}
	}
	e.Sharers.Clear()
	e.State = Modified
	e.Owner = node
	e.LastWriter = node
	return res
}

// Evict notes that a node dropped its copy of a block (clean eviction or
// writeback). Dirty evictions leave LastWriter untouched because the value
// written lives on in memory.
func (d *Directory) Evict(node mem.NodeID, b mem.BlockAddr, dirty bool) {
	e := d.entries[d.cfg.Geometry.BlockIndex(mem.Addr(b))]
	if e == nil {
		return
	}
	if e.State == Modified && e.Owner == node {
		e.State = Uncached
		e.Owner = mem.InvalidNode
		return
	}
	e.Sharers.Remove(node)
	if e.State == Shared && e.Sharers.Count() == 0 {
		e.State = Uncached
	}
}

// RecordCMOBPointer stores a CMOB pointer for a block, keeping at most
// PointersPerEntry pointers with the newest first. A newer pointer from the
// same node replaces that node's older pointer rather than occupying an
// extra slot, so the retained pointers come from distinct recent consumers.
func (d *Directory) RecordCMOBPointer(b mem.BlockAddr, ptr CMOBPointer) {
	if d.cfg.PointersPerEntry == 0 {
		return
	}
	e := d.entry(b)
	ptr.Valid = true
	// Drop any existing pointer from the same node.
	kept := e.CMOBPtrs[:0]
	for _, p := range e.CMOBPtrs {
		if p.Node != ptr.Node {
			kept = append(kept, p)
		}
	}
	e.CMOBPtrs = append([]CMOBPointer{ptr}, kept...)
	if len(e.CMOBPtrs) > d.cfg.PointersPerEntry {
		e.CMOBPtrs = e.CMOBPtrs[:d.cfg.PointersPerEntry]
	}
}

// CMOBPointers returns the stored CMOB pointers for a block, newest first.
func (d *Directory) CMOBPointers(b mem.BlockAddr) []CMOBPointer {
	e := d.entries[d.cfg.Geometry.BlockIndex(mem.Addr(b))]
	if e == nil {
		return nil
	}
	return append([]CMOBPointer(nil), e.CMOBPtrs...)
}

// PointerStorageBits returns the directory storage overhead, in bits per
// entry, of the CMOB pointer extension:
// pointers × (log2(nodes) + log2(cmobEntries)), per Section 3.2.
func (d *Directory) PointerStorageBits(cmobEntries int) int {
	if cmobEntries <= 0 {
		return 0
	}
	return d.cfg.PointersPerEntry * (ceilLog2(d.cfg.Nodes) + ceilLog2(cmobEntries))
}

func ceilLog2(n int) int {
	bits := 0
	for v := 1; v < n; v <<= 1 {
		bits++
	}
	return bits
}

// Reset clears all directory state.
func (d *Directory) Reset() {
	d.entries = make(map[uint64]*Entry)
}
