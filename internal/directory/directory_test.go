package directory

import (
	"testing"
	"testing/quick"

	"tsm/internal/mem"
)

func newDir(t *testing.T) *Directory {
	t.Helper()
	return New(Config{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Nodes: 0, Geometry: mem.DefaultGeometry()},
		{Nodes: 65, Geometry: mem.DefaultGeometry()},
		{Nodes: 4, Geometry: mem.Geometry{BlockSize: 60}},
		{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
}

func TestSharerSet(t *testing.T) {
	var s SharerSet
	s.Add(3)
	s.Add(7)
	s.Add(3)
	if !s.Contains(3) || !s.Contains(7) || s.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	nodes := s.Nodes()
	if len(nodes) != 2 || nodes[0] != 3 || nodes[1] != 7 {
		t.Fatalf("Nodes = %v, want [3 7]", nodes)
	}
	s.Remove(3)
	if s.Contains(3) || s.Count() != 1 {
		t.Fatal("Remove failed")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestHomeNodeInterleaving(t *testing.T) {
	d := newDir(t)
	seen := map[mem.NodeID]int{}
	for i := 0; i < 64; i++ {
		h := d.HomeNode(mem.BlockAddr(i * 64))
		if h < 0 || int(h) >= 4 {
			t.Fatalf("home node %d out of range", h)
		}
		seen[h]++
	}
	for n, count := range seen {
		if count != 16 {
			t.Fatalf("node %d homes %d blocks, want 16", n, count)
		}
	}
}

func TestProducerConsumerReadIsCoherent(t *testing.T) {
	d := newDir(t)
	b := mem.BlockAddr(0x1000)
	// Node 0 writes, node 1 reads: classic producer->consumer.
	wr := d.Write(0, b)
	if wr.Coherent {
		t.Fatal("first write to uncached block should not be coherent")
	}
	rd := d.Read(1, b)
	if !rd.Coherent {
		t.Fatal("read of another node's dirty block must be coherent")
	}
	if rd.Producer != 0 || rd.Owner != 0 {
		t.Fatalf("read result %+v, want producer/owner 0", rd)
	}
	// Re-read by the same node after it holds the block: not coherent.
	rd = d.Read(1, b)
	if rd.Coherent {
		t.Fatal("second read by the same sharer should not be coherent")
	}
	// Another node reads the now-shared block written by node 0: coherent
	// (producer->consumer communication).
	rd = d.Read(2, b)
	if !rd.Coherent || rd.Producer != 0 {
		t.Fatalf("read by new sharer = %+v, want coherent with producer 0", rd)
	}
	// The producer reading its own data back is not a consumption.
	rd = d.Read(0, b)
	if rd.Coherent {
		t.Fatal("producer re-reading its own block should not be coherent")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := newDir(t)
	b := mem.BlockAddr(0x2000)
	d.Write(0, b)
	d.Read(1, b)
	d.Read(2, b)
	wr := d.Write(3, b)
	if !wr.Coherent {
		t.Fatal("write to shared block must be coherent")
	}
	if len(wr.Invalidated) != 3 {
		t.Fatalf("invalidated %v, want 3 nodes", wr.Invalidated)
	}
	e := d.Lookup(b)
	if e.State != Modified || e.Owner != 3 || e.LastWriter != 3 {
		t.Fatalf("entry after write = %+v", e)
	}
	// Writer writes again: silent, no invalidations.
	wr = d.Write(3, b)
	if wr.Coherent || len(wr.Invalidated) != 0 {
		t.Fatalf("owner rewrite = %+v, want silent", wr)
	}
}

func TestWriteTakesDirtyCopy(t *testing.T) {
	d := newDir(t)
	b := mem.BlockAddr(0x3000)
	d.Write(0, b)
	wr := d.Write(1, b)
	if !wr.Coherent || wr.PreviousOwner != 0 {
		t.Fatalf("write over dirty copy = %+v, want coherent with previous owner 0", wr)
	}
}

func TestEvict(t *testing.T) {
	d := newDir(t)
	b := mem.BlockAddr(0x4000)
	d.Write(0, b)
	d.Evict(0, b, true)
	e := d.Lookup(b)
	if e.State != Uncached || e.Owner != mem.InvalidNode {
		t.Fatalf("entry after dirty evict = %+v", e)
	}
	if e.LastWriter != 0 {
		t.Fatal("LastWriter must survive eviction (value lives in memory)")
	}
	// Read after eviction is still a consumption for another node.
	rd := d.Read(1, b)
	if !rd.Coherent || rd.Producer != 0 {
		t.Fatalf("read after writeback = %+v, want coherent from producer 0", rd)
	}
	// Evicting a shared copy removes the sharer.
	d.Evict(1, b, false)
	if d.Lookup(b).Sharers.Count() != 0 {
		t.Fatal("sharer not removed on eviction")
	}
	// Evicting an unknown block is a no-op.
	d.Evict(1, mem.BlockAddr(0xdead00), false)
}

func TestCMOBPointers(t *testing.T) {
	d := newDir(t)
	b := mem.BlockAddr(0x5000)
	if got := d.CMOBPointers(b); got != nil {
		t.Fatal("pointers for untouched block should be nil")
	}
	d.RecordCMOBPointer(b, CMOBPointer{Node: 1, Offset: 10})
	d.RecordCMOBPointer(b, CMOBPointer{Node: 2, Offset: 20})
	ptrs := d.CMOBPointers(b)
	if len(ptrs) != 2 || ptrs[0].Node != 2 || ptrs[1].Node != 1 {
		t.Fatalf("pointers = %+v, want newest (node 2) first", ptrs)
	}
	// Same node again: replaces its old pointer, still 2 entries.
	d.RecordCMOBPointer(b, CMOBPointer{Node: 1, Offset: 30})
	ptrs = d.CMOBPointers(b)
	if len(ptrs) != 2 || ptrs[0].Node != 1 || ptrs[0].Offset != 30 || ptrs[1].Node != 2 {
		t.Fatalf("pointers = %+v, want node1@30 then node2@20", ptrs)
	}
	// Third distinct node: oldest drops.
	d.RecordCMOBPointer(b, CMOBPointer{Node: 3, Offset: 40})
	ptrs = d.CMOBPointers(b)
	if len(ptrs) != 2 || ptrs[0].Node != 3 || ptrs[1].Node != 1 {
		t.Fatalf("pointers = %+v, want node3 then node1", ptrs)
	}
	// Read returns a copy of the pointers.
	rd := d.Read(1, b)
	if len(rd.CMOBPtrs) != 2 {
		t.Fatalf("Read CMOBPtrs = %+v", rd.CMOBPtrs)
	}
}

func TestPointerStorageBits(t *testing.T) {
	d := New(Config{Nodes: 16, Geometry: mem.DefaultGeometry(), PointersPerEntry: 2})
	// 2 * (log2(16) + log2(1M)) = 2 * (4 + 20) = 48 bits.
	if got := d.PointerStorageBits(1 << 20); got != 48 {
		t.Fatalf("PointerStorageBits = %d, want 48", got)
	}
	if d.PointerStorageBits(0) != 0 {
		t.Fatal("zero CMOB entries should have zero overhead")
	}
}

func TestZeroPointerConfig(t *testing.T) {
	d := New(Config{Nodes: 4, Geometry: mem.DefaultGeometry(), PointersPerEntry: 0})
	b := mem.BlockAddr(0x100)
	d.RecordCMOBPointer(b, CMOBPointer{Node: 1, Offset: 1})
	if len(d.CMOBPointers(b)) != 0 {
		t.Fatal("directory with 0 pointers per entry must not store pointers")
	}
}

func TestDirectoryInvariants(t *testing.T) {
	d := newDir(t)
	// Property: after any sequence of reads/writes, a Modified entry has
	// exactly zero sharers recorded as such, and Shared entries have at
	// least one sharer.
	f := func(ops []uint16) bool {
		for _, op := range ops {
			node := mem.NodeID(op % 4)
			block := mem.BlockAddr(uint64(op%32) * 64)
			if op&0x8000 != 0 {
				d.Write(node, block)
			} else {
				d.Read(node, block)
			}
			e := d.Lookup(block)
			switch e.State {
			case Modified:
				if e.Owner == mem.InvalidNode {
					return false
				}
			case Shared:
				if e.Sharers.Count() == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Uncached.String() != "uncached" || Shared.String() != "shared" || Modified.String() != "modified" {
		t.Fatal("unexpected state strings")
	}
	if State(7).String() == "" {
		t.Fatal("unknown state should have a string")
	}
}

func TestReset(t *testing.T) {
	d := newDir(t)
	d.Write(0, 0x40)
	if d.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", d.Entries())
	}
	d.Reset()
	if d.Entries() != 0 {
		t.Fatal("Reset should clear entries")
	}
}
