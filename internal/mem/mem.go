// Package mem defines the basic memory-system vocabulary shared by every
// other package in the repository: physical addresses, cache-block geometry,
// node identifiers and memory access records.
//
// The paper's system (Table 1) uses a 64-byte coherence unit across a
// 16-node distributed shared-memory machine; those values are the defaults
// here but every structure is parameterised so tests can use smaller
// geometries.
package mem

import (
	"fmt"
)

// Addr is a physical byte address.
type Addr uint64

// BlockAddr is a cache-block-aligned address (the low offset bits are zero).
type BlockAddr uint64

// NodeID identifies a node (processor + caches + directory slice + memory
// slice) in the DSM system. NodeID values are dense, starting at zero.
type NodeID int

// InvalidNode is returned by lookups that found no node.
const InvalidNode NodeID = -1

// DefaultBlockSize is the coherence unit from Table 1 of the paper.
const DefaultBlockSize = 64

// AccessType distinguishes the kinds of memory operations that appear in
// workload traces.
type AccessType uint8

const (
	// Read is a data load.
	Read AccessType = iota
	// Write is a data store.
	Write
	// AtomicRMW is an atomic read-modify-write (lock acquire/release,
	// barrier operations). The analysis excludes spins on such addresses
	// from the consumption counts, mirroring Section 5 of the paper.
	AtomicRMW
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "read"
	case Write:
		return "write"
	case AtomicRMW:
		return "rmw"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// Geometry captures the block geometry of the memory system.
type Geometry struct {
	// BlockSize is the coherence unit in bytes. Must be a power of two.
	BlockSize int
}

// DefaultGeometry returns the paper's 64-byte block geometry.
func DefaultGeometry() Geometry { return Geometry{BlockSize: DefaultBlockSize} }

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.BlockSize <= 0 {
		return fmt.Errorf("mem: block size must be positive, got %d", g.BlockSize)
	}
	if g.BlockSize&(g.BlockSize-1) != 0 {
		return fmt.Errorf("mem: block size must be a power of two, got %d", g.BlockSize)
	}
	return nil
}

// BlockOf returns the block-aligned address containing a.
func (g Geometry) BlockOf(a Addr) BlockAddr {
	return BlockAddr(uint64(a) &^ uint64(g.BlockSize-1))
}

// Offset returns the byte offset of a within its block.
func (g Geometry) Offset(a Addr) int {
	return int(uint64(a) & uint64(g.BlockSize-1))
}

// BlockIndex returns the dense block number of a (address divided by the
// block size). Useful for keying maps without wasting the offset bits.
func (g Geometry) BlockIndex(a Addr) uint64 {
	return uint64(a) / uint64(g.BlockSize)
}

// AddrOfBlock converts a block number back into a block address.
func (g Geometry) AddrOfBlock(index uint64) BlockAddr {
	return BlockAddr(index * uint64(g.BlockSize))
}

// Access is a single memory operation performed by a node. Workload
// generators emit Access values; the functional coherence engine turns them
// into classified events (hits, private misses, consumptions).
type Access struct {
	// Node is the node performing the access.
	Node NodeID
	// Addr is the byte address accessed.
	Addr Addr
	// Type is the operation type.
	Type AccessType
	// Shared marks accesses to data the workload knows to be actively
	// shared. It is advisory; the coherence engine classifies misses from
	// directory state regardless.
	Shared bool
	// Spin marks accesses that are part of a spin on a contended lock or
	// barrier. The paper excludes these from consumption counts because
	// there is no benefit to streaming them.
	Spin bool
}

// Consumption is a coherent read miss that is not a spin: the unit the paper
// calls a "consumption" and the event stream every TSE/prefetcher model in
// this repository operates on.
type Consumption struct {
	// Seq is the global order of the consumption across all nodes.
	Seq uint64
	// Node is the consuming node.
	Node NodeID
	// Block is the block-aligned address consumed.
	Block BlockAddr
	// Producer is the node whose write produced the value being consumed
	// (InvalidNode when the block came from memory).
	Producer NodeID
	// Cycle is the (approximate) cycle at which the consumption was
	// issued; zero in purely functional traces.
	Cycle uint64
}
