package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.BlockSize != 64 {
		t.Fatalf("default block size = %d, want 64", g.BlockSize)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		size int
		ok   bool
	}{
		{64, true}, {32, true}, {1, true}, {128, true},
		{0, false}, {-8, false}, {63, false}, {96, false},
	}
	for _, c := range cases {
		err := Geometry{BlockSize: c.size}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(BlockSize=%d) error=%v, want ok=%v", c.size, err, c.ok)
		}
	}
}

func TestBlockOfAndOffset(t *testing.T) {
	g := Geometry{BlockSize: 64}
	cases := []struct {
		addr   Addr
		block  BlockAddr
		offset int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{65, 64, 1},
		{0xFFFF, 0xFFC0, 0x3F},
	}
	for _, c := range cases {
		if got := g.BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%#x) = %#x, want %#x", c.addr, got, c.block)
		}
		if got := g.Offset(c.addr); got != c.offset {
			t.Errorf("Offset(%#x) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestBlockIndexRoundTrip(t *testing.T) {
	g := Geometry{BlockSize: 64}
	f := func(raw uint32) bool {
		a := Addr(raw)
		idx := g.BlockIndex(a)
		back := g.AddrOfBlock(idx)
		return back == g.BlockOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOfIdempotent(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		b := g.BlockOf(Addr(raw))
		return g.BlockOf(Addr(b)) == b && g.Offset(Addr(b)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessTypeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || AtomicRMW.String() != "rmw" {
		t.Fatalf("unexpected AccessType strings: %v %v %v", Read, Write, AtomicRMW)
	}
	if AccessType(200).String() == "" {
		t.Fatal("unknown AccessType should still produce a string")
	}
}
