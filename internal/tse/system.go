package tse

import (
	"fmt"
	"io"

	"tsm/internal/directory"
	"tsm/internal/mem"
	"tsm/internal/stats"
	"tsm/internal/trace"
)

// Traffic accumulates the interconnect bytes attributable to TSE, by
// category, plus the baseline coherence traffic the same consumptions would
// generate. Section 5.4 / Figure 11 report the overhead categories relative
// to base traffic; correctly streamed blocks replace baseline coherent read
// misses one-for-one and are therefore not overhead.
type Traffic struct {
	// PointerUpdateBytes is CMOB-pointer update messages to directories.
	PointerUpdateBytes uint64
	// StreamRequestBytes is stream request messages from directories to
	// recent consumers.
	StreamRequestBytes uint64
	// StreamAddressBytes is the address streams forwarded between nodes
	// (the dominant overhead component per Section 5.4).
	StreamAddressBytes uint64
	// DiscardedDataBytes is data blocks streamed but never used.
	DiscardedDataBytes uint64
	// BaseBytes is the baseline traffic of the consumptions themselves
	// (request + data reply), used as the denominator of Figure 11's
	// ratio annotations.
	BaseBytes uint64
}

// requestMessageBytes approximates a coherence request/control message.
const requestMessageBytes = 8

// dataHeaderBytes approximates the header carried with a data reply.
const dataHeaderBytes = 8

// OverheadBytes returns the TSE overhead traffic.
func (t Traffic) OverheadBytes() uint64 {
	return t.PointerUpdateBytes + t.StreamRequestBytes + t.StreamAddressBytes + t.DiscardedDataBytes
}

// OverheadRatio returns overhead traffic as a fraction of base traffic.
func (t Traffic) OverheadRatio() float64 {
	if t.BaseBytes == 0 {
		return 0
	}
	return float64(t.OverheadBytes()) / float64(t.BaseBytes)
}

// Result summarises a trace-driven TSE run.
type Result struct {
	// Consumptions is the number of consumption events processed.
	Consumptions uint64
	// Covered is the number of consumptions eliminated (SVB hits).
	Covered uint64
	// BlocksFetched is the number of blocks streamed into SVBs.
	BlocksFetched uint64
	// Discards is the number of streamed blocks never used.
	Discards uint64
	// StreamsAllocated counts stream-queue allocations across all nodes.
	StreamsAllocated uint64
	// StreamLengths is the distribution of SVB hits per stream.
	StreamLengths *stats.Histogram
	// Traffic is the interconnect accounting.
	Traffic Traffic
	// CMOBPeakBytes is the largest per-node CMOB residency observed.
	CMOBPeakBytes int
}

// Coverage returns the fraction of consumptions eliminated.
func (r Result) Coverage() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Consumptions)
}

// DiscardRate returns discarded blocks as a fraction of consumptions (the
// paper's normalisation for Figures 7–9 and 12; it can exceed 1).
func (r Result) DiscardRate() float64 {
	if r.Consumptions == 0 {
		return 0
	}
	return float64(r.Discards) / float64(r.Consumptions)
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("consumptions=%d coverage=%.1f%% discards=%.1f%%",
		r.Consumptions, 100*r.Coverage(), 100*r.DiscardRate())
}

// System is the whole-machine trace-driven TSE model: one CMOB and one
// stream engine per node, plus the directory CMOB-pointer extension. It
// consumes the globally ordered consumption/write event stream produced by
// the functional coherence engine and accumulates the metrics the paper
// reports.
//
// System implements the model interface used by internal/analysis, so it can
// be evaluated side by side with the baseline prefetchers of Figure 12.
type System struct {
	cfg     Config
	cmobs   []*CMOB
	engines []*Engine
	dir     *directory.Directory
	traffic Traffic
	peak    int
}

// NewSystem builds a TSE system model. It panics on an invalid
// configuration.
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{cfg: cfg}
	s.dir = directory.New(directory.Config{
		Nodes:            cfg.Nodes,
		Geometry:         cfg.Geometry,
		PointersPerEntry: cfg.ComparedStreams,
	})
	s.cmobs = make([]*CMOB, cfg.Nodes)
	s.engines = make([]*Engine, cfg.Nodes)
	read := func(node mem.NodeID, offset uint64, n int) ([]mem.BlockAddr, uint64) {
		return s.cmobs[node].ReadStream(offset, n)
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.cmobs[i] = NewCMOB(cfg.CMOBEntries)
		e := NewEngine(mem.NodeID(i), cfg, read)
		e.SetRefillHandler(func(source mem.NodeID, addresses int) {
			s.traffic.StreamRequestBytes += requestMessageBytes
			s.traffic.StreamAddressBytes += uint64(addresses) * CMOBEntryBytes
		})
		e.SVB().SetDiscardHandler(func(b mem.BlockAddr, reason DiscardReason) {
			s.traffic.DiscardedDataBytes += uint64(cfg.Geometry.BlockSize + dataHeaderBytes + requestMessageBytes)
		})
		s.engines[i] = e
	}
	return s
}

// Name identifies the model in comparison tables.
func (s *System) Name() string { return "TSE" }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Engine returns the stream engine of one node (for white-box tests).
func (s *System) Engine(node mem.NodeID) *Engine { return s.engines[node] }

// CMOB returns the CMOB of one node (for white-box tests).
func (s *System) CMOB(node mem.NodeID) *CMOB { return s.cmobs[node] }

// Consumption processes a consumption event in global order and reports
// whether TSE eliminated it (the block was already in the node's SVB).
func (s *System) Consumption(e trace.Event) bool { return s.consume(e.Node, e.Block) }

// consume is the consumption inner loop over the only two fields a
// consumption uses, shared by the per-event path and RunColumns.
func (s *System) consume(node mem.NodeID, block mem.BlockAddr) bool {
	if int(node) < 0 || int(node) >= s.cfg.Nodes {
		panic(fmt.Sprintf("tse: consumption from node %d outside [0,%d)", node, s.cfg.Nodes))
	}

	// The directory lookup happens on the miss path; the engine only uses
	// the pointers if the SVB misses.
	ptrs := s.dir.CMOBPointers(block)
	covered := s.engines[node].Consumption(block, ptrs)

	// Record the consumption in the node's CMOB (useful streamed hits are
	// recorded too, since they replace the misses they eliminated), and
	// send the CMOB pointer update to the directory.
	offset := s.cmobs[node].Append(block)
	s.dir.RecordCMOBPointer(block, directory.CMOBPointer{Node: node, Offset: offset})
	s.traffic.PointerUpdateBytes += CMOBPointerBytes
	if sb := s.cmobs[node].StorageBytes(); sb > s.peak {
		s.peak = sb
	}

	// Baseline traffic for this consumption (request + data reply). With
	// TSE a covered consumption's data arrived via streaming instead, but
	// it replaces the baseline transfer one-for-one, so the base bytes are
	// charged either way.
	s.traffic.BaseBytes += requestMessageBytes + uint64(s.cfg.Geometry.BlockSize) + dataHeaderBytes
	return covered
}

// Write processes a write event: streamed copies of the block anywhere in
// the system are invalidated.
func (s *System) Write(e trace.Event) { s.writeBlock(e.Block) }

// writeBlock is the write inner loop, shared by the per-event path and
// RunColumns.
func (s *System) writeBlock(block mem.BlockAddr) {
	for _, eng := range s.engines {
		eng.Write(block)
	}
}

// RunColumns processes one chunk of events held as parallel columns (the
// struct-of-arrays regions decoded by internal/stream), in column order.
// This is the columnar form of RunSource's inner loop: the kind classify
// sweeps a dense same-typed array and each event touches only the columns
// its kind actually uses — consumptions read node+block, writes read block,
// read-miss annotations are skipped without assembling anything. Results
// are bit-identical to feeding the same events through Consumption/Write
// one at a time.
func (s *System) RunColumns(kinds []trace.EventKind, nodes []mem.NodeID, blocks []mem.BlockAddr) {
	for i, k := range kinds {
		switch k {
		case trace.KindConsumption:
			s.consume(nodes[i], blocks[i])
		case trace.KindWrite:
			s.writeBlock(blocks[i])
		}
	}
}

// Finish flushes all per-node state (counting unconsumed streamed blocks as
// discards) and returns the aggregated result. The System must not be used
// after Finish.
func (s *System) Finish() Result {
	res := Result{StreamLengths: stats.NewHistogram()}
	for _, eng := range s.engines {
		eng.Finish()
	}
	for _, eng := range s.engines {
		es := eng.Stats()
		res.Consumptions += es.Consumptions
		res.Covered += es.Covered
		res.BlocksFetched += es.BlocksFetched
		res.StreamsAllocated += es.StreamsAllocated
		res.Discards += eng.SVB().Stats().Discards
		for _, b := range eng.StreamLengths().Buckets() {
			res.StreamLengths.AddN(b, eng.StreamLengths().Count(b))
		}
	}
	res.Traffic = s.traffic
	res.CMOBPeakBytes = s.peak
	return res
}

// LiveStats is a mid-run snapshot of the whole-machine TSE state, cheap
// enough to take at every sampling epoch: pure aggregation over per-node
// counters, no flushing, no mutation. Unlike Finish it leaves the System
// fully usable, and unlike Result it reports the RESIDENT state too (blocks
// currently sitting in SVBs, CMOB storage in use) — the curves of the
// paper's occupancy figures rather than end-of-run totals.
type LiveStats struct {
	// Consumptions and Covered are the cumulative totals so far; at end of
	// stream they equal the final Result's (Finish only adds unused resident
	// blocks to Discards), so a final-epoch Coverage matches the report
	// exactly.
	Consumptions uint64
	Covered      uint64
	// BlocksFetched is blocks streamed into SVBs so far.
	BlocksFetched uint64
	// Discards is streamed blocks already discarded (resident blocks that
	// would become end-of-run discards are not counted until they actually
	// are).
	Discards uint64
	// StreamsAllocated is cumulative stream-queue allocations.
	StreamsAllocated uint64
	// SVBResident is the blocks currently held across all SVBs.
	SVBResident int
	// CMOBBytes is the current CMOB storage in use across all nodes.
	CMOBBytes int
}

// Coverage returns the fraction of consumptions eliminated so far.
func (ls LiveStats) Coverage() float64 {
	if ls.Consumptions == 0 {
		return 0
	}
	return float64(ls.Covered) / float64(ls.Consumptions)
}

// Probe aggregates the current per-node state without flushing anything. It
// must run between events (same goroutine as Consumption/Write), which is
// exactly when the pipeline's sampling pump fires.
func (s *System) Probe() LiveStats {
	var ls LiveStats
	for i, eng := range s.engines {
		es := eng.Stats()
		ls.Consumptions += es.Consumptions
		ls.Covered += es.Covered
		ls.BlocksFetched += es.BlocksFetched
		ls.StreamsAllocated += es.StreamsAllocated
		ls.Discards += eng.SVB().Stats().Discards
		ls.SVBResident += eng.SVB().Len()
		ls.CMOBBytes += s.cmobs[i].StorageBytes()
	}
	return ls
}

// EventSource is the pull-based event iterator RunSource consumes: Next
// returns io.EOF when the stream ends. It is structurally identical to
// stream.Source, declared locally so that the tse package (which prefetch
// depends on) stays independent of the stream package's import graph.
type EventSource interface {
	Next() (trace.Event, error)
}

// sliceSource iterates an in-memory event slice (Run's adapter onto
// RunSource).
type sliceSource struct {
	events []trace.Event
	pos    int
}

func (s *sliceSource) Next() (trace.Event, error) {
	if s.pos >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// Run processes every event of a trace and returns the final result. It is
// a convenience wrapper over Consumption/Write/Finish.
func (s *System) Run(tr *trace.Trace) Result {
	res, _ := s.RunSource(&sliceSource{events: tr.Events})
	return res
}

// RunSource processes every event of a pull-based event stream and returns
// the final result. The events are observed one at a time in stream order —
// the trace is never materialized — so a trace file of any size drives the
// full TSE system in bounded memory, and the result is bit-identical to
// Run over the equivalent in-memory trace. A source error other than io.EOF
// aborts the run; the partial result (flushed via Finish) is returned with
// the error, and the System must not be used afterwards either way.
func (s *System) RunSource(src EventSource) (Result, error) {
	for {
		e, err := src.Next()
		if err == io.EOF {
			return s.Finish(), nil
		}
		if err != nil {
			return s.Finish(), err
		}
		switch e.Kind {
		case trace.KindConsumption:
			s.Consumption(e)
		case trace.KindWrite:
			s.Write(e)
		}
	}
}
