package tse

import (
	"testing"

	"tsm/internal/directory"
	"tsm/internal/mem"
)

// testConfig returns a small TSE configuration for unit tests.
func testConfig() Config {
	return Config{
		Nodes:           2,
		Geometry:        mem.DefaultGeometry(),
		CMOBEntries:     0,
		SVBEntries:      0,
		StreamQueues:    4,
		ComparedStreams: 2,
		Lookahead:       4,
		StreamOnSingle:  true,
	}
}

// staticReader builds a CMOBReader over fixed per-node orders.
func staticReader(orders map[mem.NodeID][]mem.BlockAddr) CMOBReader {
	cmobs := map[mem.NodeID]*CMOB{}
	for n, order := range orders {
		c := NewCMOB(0)
		for _, b := range order {
			c.Append(b)
		}
		cmobs[n] = c
	}
	return func(node mem.NodeID, offset uint64, n int) ([]mem.BlockAddr, uint64) {
		c, ok := cmobs[node]
		if !ok {
			return nil, offset
		}
		return c.ReadStream(offset, n)
	}
}

func blocks(idx ...int) []mem.BlockAddr {
	out := make([]mem.BlockAddr, len(idx))
	for i, v := range idx {
		out[i] = mem.BlockAddr(v * 64)
	}
	return out
}

func ptr(node mem.NodeID, offset uint64) directory.CMOBPointer {
	return directory.CMOBPointer{Node: node, Offset: offset, Valid: true}
}

func TestEngineFollowsSingleStream(t *testing.T) {
	// Node 1's order is A B C D E F; node 0 misses on B and the engine is
	// handed a pointer to B's position in node 1's CMOB. Subsequent
	// consumptions C,D,E,F must hit the SVB (Figure 1's scenario).
	order := blocks(0, 1, 2, 3, 4, 5) // A..F
	e := NewEngine(0, testConfig(), staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))

	if covered := e.Consumption(order[1], []directory.CMOBPointer{ptr(1, 1)}); covered {
		t.Fatal("the stream head itself cannot be covered")
	}
	for i := 2; i < 6; i++ {
		if covered := e.Consumption(order[i], nil); !covered {
			t.Fatalf("consumption of block %d should hit the SVB", i)
		}
	}
	st := e.Stats()
	if st.Covered != 4 || st.Consumptions != 5 {
		t.Fatalf("stats = %+v, want 4 covered of 5", st)
	}
	if st.StreamsAllocated != 1 {
		t.Fatalf("StreamsAllocated = %d, want 1", st.StreamsAllocated)
	}
}

func TestEngineLookaheadLimitsOutstanding(t *testing.T) {
	order := make([]mem.BlockAddr, 64)
	for i := range order {
		order[i] = mem.BlockAddr(i * 64)
	}
	cfg := testConfig()
	cfg.Lookahead = 4
	e := NewEngine(0, cfg, staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	if got := e.SVB().Len(); got != 4 {
		t.Fatalf("SVB holds %d blocks after allocation, want lookahead=4", got)
	}
	// Each hit retrieves one more block, keeping lookahead outstanding.
	e.Consumption(order[1], nil)
	if got := e.SVB().Len(); got != 4 {
		t.Fatalf("SVB holds %d blocks after a hit, want 4", got)
	}
}

func TestEngineFollowsLongStreamViaRefills(t *testing.T) {
	// A stream much longer than the FIFO capacity must still be followed
	// end to end thanks to half-empty refills (Section 3.3); this is what
	// distinguishes TSE from fixed-depth prefetchers.
	n := 500
	order := make([]mem.BlockAddr, n)
	for i := range order {
		order[i] = mem.BlockAddr(i * 64)
	}
	e := NewEngine(0, testConfig(), staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	covered := 0
	for i := 1; i < n; i++ {
		if e.Consumption(order[i], nil) {
			covered++
		}
	}
	if covered != n-1 {
		t.Fatalf("covered %d of %d, want all after the head", covered, n-1)
	}
	if e.Stats().RefillRequests == 0 {
		t.Fatal("long stream should have triggered CMOB refills")
	}
}

func TestEngineTwoStreamAgreement(t *testing.T) {
	// Both recent consumers followed the same order: the engine streams.
	order := blocks(10, 11, 12, 13, 14)
	reader := staticReader(map[mem.NodeID][]mem.BlockAddr{1: order, 2: order})
	e := NewEngine(0, testConfig(), reader)
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0), ptr(2, 0)})
	if e.SVB().Len() == 0 {
		t.Fatal("agreeing streams should be fetched")
	}
	for i := 1; i < 5; i++ {
		if !e.Consumption(order[i], nil) {
			t.Fatalf("block %d should be covered", i)
		}
	}
}

func TestEngineDivergingStreamsStallThenResolve(t *testing.T) {
	// The two recent consumers followed different orders after the head:
	// the engine must stall (fetch nothing) until a processor miss
	// identifies which stream is being followed, then follow only that one.
	head := mem.BlockAddr(0)
	orderA := append([]mem.BlockAddr{head}, blocks(1, 2, 3, 4, 5)...)
	orderB := append([]mem.BlockAddr{head}, blocks(11, 12, 13, 14, 15)...)
	reader := staticReader(map[mem.NodeID][]mem.BlockAddr{1: orderA, 2: orderB})
	e := NewEngine(0, testConfig(), reader)

	e.Consumption(head, []directory.CMOBPointer{ptr(1, 0), ptr(2, 0)})
	if e.SVB().Len() != 0 {
		t.Fatalf("diverging streams must not fetch; SVB holds %d", e.SVB().Len())
	}
	if e.Stats().StreamsStalled != 1 {
		t.Fatalf("StreamsStalled = %d, want 1", e.Stats().StreamsStalled)
	}
	// The processor follows order B: the miss on block 11 resolves the
	// stall and subsequent blocks stream from order B only.
	if covered := e.Consumption(mem.BlockAddr(11*64), nil); covered {
		t.Fatal("the resolving miss itself is not covered")
	}
	if e.Stats().StreamsResolved != 1 {
		t.Fatalf("StreamsResolved = %d, want 1", e.Stats().StreamsResolved)
	}
	for _, b := range blocks(12, 13, 14, 15) {
		if !e.Consumption(b, nil) {
			t.Fatalf("block %#x should be covered after reselection", b)
		}
	}
	// Nothing from order A was ever fetched.
	for _, b := range blocks(1, 2, 3, 4, 5) {
		if e.SVB().Contains(b) {
			t.Fatalf("block %#x from the losing stream should not be fetched", b)
		}
	}
}

func TestEngineSingleStreamNoComparisonFetchesImmediately(t *testing.T) {
	// With only one compared stream there is no accuracy gauge: the engine
	// streams unconditionally, which is exactly why Figure 7 shows very
	// high discard rates for commercial workloads with one stream.
	cfg := testConfig()
	cfg.ComparedStreams = 1
	order := blocks(1, 2, 3, 4, 5)
	e := NewEngine(0, cfg, staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	if e.SVB().Len() != 4 {
		t.Fatalf("single-stream engine should fetch lookahead blocks, SVB=%d", e.SVB().Len())
	}
}

func TestEngineStreamOnSingleAblation(t *testing.T) {
	cfg := testConfig()
	cfg.StreamOnSingle = false
	order := blocks(1, 2, 3, 4, 5)
	e := NewEngine(0, cfg, staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	// Only one pointer available but two compared streams requested: the
	// conservative variant refuses to stream.
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	if e.SVB().Len() != 0 {
		t.Fatal("StreamOnSingle=false should not fetch from a lone stream")
	}
}

func TestEngineWriteInvalidatesStreamedBlock(t *testing.T) {
	order := blocks(1, 2, 3, 4, 5)
	e := NewEngine(0, testConfig(), staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	target := order[2]
	if !e.SVB().Contains(target) {
		t.Fatal("expected block to be streamed")
	}
	e.Write(target)
	if e.SVB().Contains(target) {
		t.Fatal("write must invalidate the streamed copy")
	}
	// The invalidated block now misses.
	if e.Consumption(target, nil) {
		t.Fatal("invalidated block must not count as covered")
	}
}

func TestEngineNoPointersNoStream(t *testing.T) {
	e := NewEngine(0, testConfig(), staticReader(nil))
	if e.Consumption(64, nil) {
		t.Fatal("consumption with no history cannot be covered")
	}
	if e.Stats().StreamsAllocated != 0 || e.SVB().Len() != 0 {
		t.Fatal("no stream should be allocated without pointers")
	}
}

func TestEngineQueueLRUReplacementRecordsStreamLength(t *testing.T) {
	cfg := testConfig()
	cfg.StreamQueues = 1
	orders := map[mem.NodeID][]mem.BlockAddr{
		1: blocks(1, 2, 3, 4, 5),
	}
	e := NewEngine(0, cfg, staticReader(orders))
	e.Consumption(blocks(1)[0], []directory.CMOBPointer{ptr(1, 0)})
	e.Consumption(blocks(2)[0], nil) // one hit on the stream
	// A new unrelated head forces the single queue to be recycled.
	e.Consumption(mem.BlockAddr(100*64), []directory.CMOBPointer{ptr(1, 0)})
	e.Finish()
	h := e.StreamLengths()
	if h.Total() == 0 {
		t.Fatal("retired streams should be recorded in the length histogram")
	}
}

func TestEngineFinishFlushesSVB(t *testing.T) {
	order := blocks(1, 2, 3, 4, 5)
	e := NewEngine(0, testConfig(), staticReader(map[mem.NodeID][]mem.BlockAddr{1: order}))
	e.Consumption(order[0], []directory.CMOBPointer{ptr(1, 0)})
	fetched := e.Stats().BlocksFetched
	if fetched == 0 {
		t.Fatal("expected fetched blocks")
	}
	e.Finish()
	if e.SVB().Len() != 0 {
		t.Fatal("Finish must flush the SVB")
	}
	if e.SVB().Stats().Discards != fetched {
		t.Fatalf("discards = %d, want %d (all unused)", e.SVB().Stats().Discards, fetched)
	}
}
