package tse

import (
	"testing"
	"testing/quick"

	"tsm/internal/mem"
)

func TestCMOBAppendAndAt(t *testing.T) {
	c := NewCMOB(4)
	if c.Capacity() != 4 || c.Len() != 0 {
		t.Fatalf("fresh CMOB: capacity=%d len=%d", c.Capacity(), c.Len())
	}
	offsets := make([]uint64, 0, 6)
	for i := 0; i < 6; i++ {
		offsets = append(offsets, c.Append(mem.BlockAddr(i*64)))
	}
	if c.Appends() != 6 || c.Len() != 4 {
		t.Fatalf("appends=%d len=%d, want 6/4", c.Appends(), c.Len())
	}
	// Oldest two entries (offsets 0,1) have been overwritten.
	if _, ok := c.At(offsets[0]); ok {
		t.Fatal("offset 0 should be overwritten")
	}
	if _, ok := c.At(offsets[1]); ok {
		t.Fatal("offset 1 should be overwritten")
	}
	for i := 2; i < 6; i++ {
		b, ok := c.At(offsets[i])
		if !ok || b != mem.BlockAddr(i*64) {
			t.Fatalf("At(%d) = %#x,%v want %#x", offsets[i], b, ok, i*64)
		}
	}
	if _, ok := c.At(99); ok {
		t.Fatal("future offset should not be resident")
	}
}

func TestCMOBUnlimited(t *testing.T) {
	c := NewCMOB(0)
	for i := 0; i < 1000; i++ {
		c.Append(mem.BlockAddr(i * 64))
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", c.Len())
	}
	if b, ok := c.At(0); !ok || b != 0 {
		t.Fatal("unlimited CMOB should retain the first entry")
	}
	if c.StorageBytes() != 1000*CMOBEntryBytes {
		t.Fatalf("StorageBytes = %d, want %d", c.StorageBytes(), 1000*CMOBEntryBytes)
	}
}

func TestCMOBReadStream(t *testing.T) {
	c := NewCMOB(0)
	for i := 0; i < 10; i++ {
		c.Append(mem.BlockAddr(i * 64))
	}
	// Stream following entry 3 is entries 4..7 for n=4.
	addrs, last := c.ReadStream(3, 4)
	if len(addrs) != 4 || last != 7 {
		t.Fatalf("ReadStream(3,4) = %v last=%d", addrs, last)
	}
	for i, a := range addrs {
		if a != mem.BlockAddr((4+i)*64) {
			t.Fatalf("stream entry %d = %#x, want %#x", i, a, (4+i)*64)
		}
	}
	// Continue from last: entries 8,9 only.
	addrs, last = c.ReadStream(last, 4)
	if len(addrs) != 2 || last != 9 {
		t.Fatalf("continued ReadStream = %v last=%d", addrs, last)
	}
	// Nothing beyond the end.
	addrs, _ = c.ReadStream(9, 4)
	if addrs != nil {
		t.Fatalf("ReadStream at tail = %v, want nil", addrs)
	}
	// Nothing for zero or negative n.
	if addrs, _ := c.ReadStream(0, 0); addrs != nil {
		t.Fatal("ReadStream with n=0 should return nil")
	}
}

func TestCMOBReadStreamOverwritten(t *testing.T) {
	c := NewCMOB(4)
	for i := 0; i < 10; i++ {
		c.Append(mem.BlockAddr(i * 64))
	}
	// Offset 2 is long overwritten: no stream available.
	if addrs, _ := c.ReadStream(2, 4); addrs != nil {
		t.Fatalf("stream from overwritten offset = %v, want nil", addrs)
	}
	// Offset 6 is still resident; stream = entries 7,8,9.
	addrs, last := c.ReadStream(6, 8)
	if len(addrs) != 3 || last != 9 {
		t.Fatalf("ReadStream(6,8) = %v last=%d", addrs, last)
	}
}

func TestCMOBReset(t *testing.T) {
	c := NewCMOB(8)
	c.Append(64)
	c.Reset()
	if c.Len() != 0 || c.Appends() != 0 {
		t.Fatal("Reset should clear the CMOB")
	}
	u := NewCMOB(0)
	u.Append(64)
	u.Reset()
	if u.Len() != 0 {
		t.Fatal("Reset should clear the unlimited CMOB")
	}
}

func TestCMOBStreamMatchesAppendOrder(t *testing.T) {
	// Property: for an unlimited CMOB, ReadStream(i, n) returns exactly
	// the blocks appended at positions i+1..i+n.
	f := func(raw []uint32, start uint8, n uint8) bool {
		c := NewCMOB(0)
		blocks := make([]mem.BlockAddr, len(raw))
		for i, r := range raw {
			blocks[i] = mem.BlockAddr(uint64(r) &^ 63)
			c.Append(blocks[i])
		}
		if len(raw) == 0 {
			return true
		}
		i := uint64(start) % uint64(len(raw))
		want := int(n%16) + 1
		addrs, _ := c.ReadStream(i, want)
		for j, a := range addrs {
			idx := int(i) + 1 + j
			if idx >= len(blocks) || a != blocks[idx] {
				return false
			}
		}
		return len(addrs) <= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
