package tse

import (
	"tsm/internal/mem"
)

// DiscardReason classifies why a streamed block left the SVB without being
// used.
type DiscardReason uint8

const (
	// DiscardEvicted means the block was replaced by a newer streamed
	// block (SVB capacity pressure).
	DiscardEvicted DiscardReason = iota
	// DiscardInvalidated means a write to the block (by any node)
	// invalidated the clean streamed copy.
	DiscardInvalidated
	// DiscardUnused means the block was still sitting unused in the SVB
	// when the measurement ended or its queue was torn down.
	DiscardUnused
)

// SVBStats accumulates streamed value buffer statistics.
type SVBStats struct {
	Inserted    uint64
	Hits        uint64
	Discards    uint64
	Evicted     uint64
	Invalidated uint64
	Unused      uint64
}

// svbEntry is one streamed block held by the SVB.
type svbEntry struct {
	block   mem.BlockAddr
	queue   int // id of the stream queue that streamed it (-1 if unknown)
	lru     uint64
	fifoSeq uint64 // insertion order, for FIFO replacement ablation
}

// SVB is the Streamed Value Buffer: a small fully-associative buffer holding
// clean streamed cache blocks, probed in parallel with the L2 on every L1
// miss (Section 3.3). Entries are invalidated on any write to the block and
// replaced with an LRU policy.
type SVB struct {
	capacity int // 0 = unlimited
	fifoRepl bool
	entries  map[mem.BlockAddr]*svbEntry
	clock    uint64
	seq      uint64
	stats    SVBStats
	// onDiscard, if non-nil, is invoked whenever a block leaves the SVB
	// without having been hit.
	onDiscard func(b mem.BlockAddr, reason DiscardReason)
}

// NewSVB returns an SVB with the given capacity in blocks (0 = unlimited).
func NewSVB(capacity int) *SVB {
	return &SVB{capacity: capacity, entries: make(map[mem.BlockAddr]*svbEntry)}
}

// SetFIFOReplacement switches the replacement policy to FIFO (ablation).
func (s *SVB) SetFIFOReplacement(on bool) { s.fifoRepl = on }

// SetDiscardHandler registers a callback invoked on every discard.
func (s *SVB) SetDiscardHandler(fn func(b mem.BlockAddr, reason DiscardReason)) {
	s.onDiscard = fn
}

// Capacity returns the configured capacity (0 = unlimited).
func (s *SVB) Capacity() int { return s.capacity }

// Len returns the number of blocks currently held.
func (s *SVB) Len() int { return len(s.entries) }

// Stats returns a copy of the statistics.
func (s *SVB) Stats() SVBStats { return s.stats }

// Contains reports whether the SVB holds the block, without changing state.
func (s *SVB) Contains(b mem.BlockAddr) bool {
	_, ok := s.entries[b]
	return ok
}

func (s *SVB) discard(e *svbEntry, reason DiscardReason) {
	s.stats.Discards++
	switch reason {
	case DiscardEvicted:
		s.stats.Evicted++
	case DiscardInvalidated:
		s.stats.Invalidated++
	case DiscardUnused:
		s.stats.Unused++
	}
	if s.onDiscard != nil {
		s.onDiscard(e.block, reason)
	}
}

// Insert places a streamed block into the SVB, associated with the stream
// queue that streamed it. If the block is already present the entry is
// refreshed. If the SVB is full the victim (LRU or FIFO per configuration)
// is discarded.
func (s *SVB) Insert(b mem.BlockAddr, queue int) {
	s.clock++
	s.seq++
	if e, ok := s.entries[b]; ok {
		e.queue = queue
		e.lru = s.clock
		return
	}
	if s.capacity > 0 && len(s.entries) >= s.capacity {
		s.evictOne()
	}
	s.entries[b] = &svbEntry{block: b, queue: queue, lru: s.clock, fifoSeq: s.seq}
	s.stats.Inserted++
}

func (s *SVB) evictOne() {
	var victim *svbEntry
	for _, e := range s.entries {
		if victim == nil {
			victim = e
			continue
		}
		if s.fifoRepl {
			if e.fifoSeq < victim.fifoSeq {
				victim = e
			}
		} else if e.lru < victim.lru {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(s.entries, victim.block)
	s.discard(victim, DiscardEvicted)
}

// Hit probes the SVB for a block on a processor access. On a hit the entry
// is removed (the block moves to the L1 data cache) and the id of the stream
// queue that streamed it is returned so the engine can retrieve a subsequent
// block from that queue.
func (s *SVB) Hit(b mem.BlockAddr) (queue int, ok bool) {
	e, present := s.entries[b]
	if !present {
		return -1, false
	}
	delete(s.entries, b)
	s.stats.Hits++
	return e.queue, true
}

// Invalidate removes a block on a write by any processor; the streamed copy
// is clean so it is simply dropped (and counted as a discard).
func (s *SVB) Invalidate(b mem.BlockAddr) bool {
	e, ok := s.entries[b]
	if !ok {
		return false
	}
	delete(s.entries, b)
	s.discard(e, DiscardInvalidated)
	return true
}

// Flush discards every remaining entry as unused. Called at the end of a
// measurement so that blocks streamed but never consumed count against
// accuracy.
func (s *SVB) Flush() {
	for b, e := range s.entries {
		delete(s.entries, b)
		s.discard(e, DiscardUnused)
	}
}
