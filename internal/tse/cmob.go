package tse

import (
	"tsm/internal/mem"
)

// CMOB is a node's Coherence Miss Order Buffer: a circular buffer, resident
// in a private region of main memory, that records the node's coherent read
// misses (and useful streamed hits, which replace the misses they
// eliminated) in program order (Section 3.1).
//
// Entries are addressed by a monotonically increasing append offset; the
// circular storage retains only the most recent Capacity entries, so reads
// of overwritten offsets fail, which is how a too-small CMOB loses coverage
// (Figure 10).
type CMOB struct {
	capacity int // 0 = unlimited
	entries  []mem.BlockAddr
	next     uint64 // next append offset (== number of appends so far)
}

// NewCMOB returns a CMOB with the given capacity in entries (0 = unlimited).
func NewCMOB(capacity int) *CMOB {
	c := &CMOB{capacity: capacity}
	if capacity > 0 {
		c.entries = make([]mem.BlockAddr, capacity)
	}
	return c
}

// Capacity returns the configured capacity (0 = unlimited).
func (c *CMOB) Capacity() int { return c.capacity }

// Len returns the number of entries currently retained.
func (c *CMOB) Len() int {
	if c.capacity == 0 || c.next < uint64(c.capacity) {
		return int(c.next)
	}
	return c.capacity
}

// Appends returns the total number of appends performed.
func (c *CMOB) Appends() uint64 { return c.next }

// Append records a block address and returns the offset at which it was
// stored. The recording node sends this offset to the block's directory
// entry as a CMOB pointer.
func (c *CMOB) Append(b mem.BlockAddr) uint64 {
	offset := c.next
	if c.capacity == 0 {
		c.entries = append(c.entries, b)
	} else {
		c.entries[offset%uint64(c.capacity)] = b
	}
	c.next++
	return offset
}

// resident reports whether the entry at offset is still retained.
func (c *CMOB) resident(offset uint64) bool {
	if offset >= c.next {
		return false
	}
	if c.capacity == 0 {
		return true
	}
	return c.next-offset <= uint64(c.capacity)
}

// At returns the entry at offset, if still resident.
func (c *CMOB) At(offset uint64) (mem.BlockAddr, bool) {
	if !c.resident(offset) {
		return 0, false
	}
	if c.capacity == 0 {
		return c.entries[offset], true
	}
	return c.entries[offset%uint64(c.capacity)], true
}

// ReadStream returns up to n addresses starting at the entry *following*
// offset — the stream that followed the pointed-to miss — together with the
// offset of the last address returned (so the caller can continue reading
// when the FIFO runs half empty). It returns a nil slice when the pointed
// entry has been overwritten or no subsequent entries exist.
func (c *CMOB) ReadStream(offset uint64, n int) ([]mem.BlockAddr, uint64) {
	if n <= 0 || !c.resident(offset) {
		return nil, offset
	}
	out := make([]mem.BlockAddr, 0, n)
	last := offset
	for i := 0; i < n; i++ {
		next := offset + 1 + uint64(i)
		b, ok := c.At(next)
		if !ok {
			break
		}
		out = append(out, b)
		last = next
	}
	if len(out) == 0 {
		return nil, offset
	}
	return out, last
}

// StorageBytes returns the memory footprint of the retained entries using
// the paper's 6-byte packed entries.
func (c *CMOB) StorageBytes() int { return c.Len() * CMOBEntryBytes }

// Reset discards all entries.
func (c *CMOB) Reset() {
	c.next = 0
	if c.capacity == 0 {
		c.entries = nil
	}
}
