package tse

import (
	"tsm/internal/mem"
)

// streamSource identifies where a FIFO's addresses come from: a position in
// some node's CMOB.
type streamSource struct {
	node mem.NodeID
	// nextOffset is the CMOB offset of the last address already read into
	// the FIFO; refills continue from here.
	nextOffset uint64
	exhausted  bool
}

// streamFIFO is one of the FIFO queues inside a stream queue. It buffers
// addresses read from one recent consumer's CMOB.
type streamFIFO struct {
	source streamSource
	addrs  []mem.BlockAddr
}

func (f *streamFIFO) empty() bool { return len(f.addrs) == 0 }

func (f *streamFIFO) head() (mem.BlockAddr, bool) {
	if len(f.addrs) == 0 {
		return 0, false
	}
	return f.addrs[0], true
}

func (f *streamFIFO) pop() (mem.BlockAddr, bool) {
	if len(f.addrs) == 0 {
		return 0, false
	}
	b := f.addrs[0]
	f.addrs = f.addrs[1:]
	return b, true
}

// contains reports whether the FIFO holds the block anywhere (used to let
// the SVB window tolerate small reorderings: a miss that matches a block a
// few entries down the FIFO still identifies this stream).
func (f *streamFIFO) contains(b mem.BlockAddr) int {
	for i, a := range f.addrs {
		if a == b {
			return i
		}
	}
	return -1
}

// dropThrough removes entries up to and including index i.
func (f *streamFIFO) dropThrough(i int) {
	if i+1 >= len(f.addrs) {
		f.addrs = f.addrs[:0]
		return
	}
	f.addrs = f.addrs[i+1:]
}

// streamQueue groups the FIFOs fetched for one stream head and tracks the
// comparison/stall state of Section 3.3.
type streamQueue struct {
	id          int
	head        mem.BlockAddr
	fifos       []*streamFIFO
	stalled     bool
	outstanding int    // blocks from this queue currently sitting in the SVB
	hits        uint64 // SVB hits attributed to this queue (stream length)
	fetched     uint64 // blocks streamed into the SVB by this queue
	lru         uint64
	active      bool
}

// liveFIFOs returns the FIFOs that can still supply addresses (non-empty or
// refillable).
func (q *streamQueue) liveFIFOs() []*streamFIFO {
	var out []*streamFIFO
	for _, f := range q.fifos {
		if !f.empty() || !f.source.exhausted {
			out = append(out, f)
		}
	}
	return out
}

// headsAgree checks whether every non-empty FIFO agrees on the next address.
// It returns the agreed address, whether agreement holds, and whether any
// address is available at all.
func (q *streamQueue) headsAgree() (mem.BlockAddr, bool, bool) {
	var agreed mem.BlockAddr
	found := false
	for _, f := range q.fifos {
		h, ok := f.head()
		if !ok {
			continue
		}
		if !found {
			agreed = h
			found = true
			continue
		}
		if h != agreed {
			return 0, false, true
		}
	}
	if !found {
		return 0, false, false
	}
	return agreed, true, true
}

// popAgreed removes the agreed head from every FIFO whose head matches it.
func (q *streamQueue) popAgreed(b mem.BlockAddr) {
	for _, f := range q.fifos {
		if h, ok := f.head(); ok && h == b {
			f.pop()
		}
	}
}

// selectFIFO keeps only the FIFO at index keep, discarding the others'
// contents (the reselection step after a stall, Section 3.3).
func (q *streamQueue) selectFIFO(keep int) {
	chosen := q.fifos[keep]
	q.fifos = []*streamFIFO{chosen}
}

// matchStalledHead checks whether a processor miss to b matches one of the
// stalled queue's FIFO heads (or an entry within the SVB-lookahead window of
// a FIFO). It returns the index of the matching FIFO and the position of the
// match, or (-1, -1).
func (q *streamQueue) matchStalledHead(b mem.BlockAddr, window int) (int, int) {
	for i, f := range q.fifos {
		if pos := f.contains(b); pos >= 0 && pos < window {
			return i, pos
		}
	}
	return -1, -1
}
