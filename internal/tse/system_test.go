package tse

import (
	"errors"
	"testing"

	"tsm/internal/mem"
	"tsm/internal/stream"
	"tsm/internal/trace"
)

// migratoryTrace builds a trace in which node 0 produces a sequence of
// blocks and nodes 1..n-1 consume the exact same sequence in turn — the
// canonical temporal-streaming scenario.
func migratoryTrace(nodes, length int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < length; i++ {
		tr.Append(trace.Event{Kind: trace.KindWrite, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	for n := 1; n < nodes; n++ {
		for i := 0; i < length; i++ {
			tr.Append(trace.Event{
				Kind: trace.KindConsumption, Node: mem.NodeID(n),
				Block: mem.BlockAddr(i * 64), Producer: 0,
			})
		}
	}
	return tr
}

func smallSystemConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CMOBEntries = 0
	cfg.SVBEntries = 0
	cfg.Lookahead = 8
	return cfg
}

func TestSystemCoversRecurringStreams(t *testing.T) {
	cfg := smallSystemConfig()
	s := NewSystem(cfg)
	tr := migratoryTrace(4, 200)
	res := s.Run(tr)

	// Node 1 sees the sequence first with no prior sharer: zero coverage.
	// Nodes 2 and 3 follow node 1's (and 2's) recorded order: near-total
	// coverage apart from each node's first miss (the stream head).
	total := uint64(3 * 200)
	if res.Consumptions != total {
		t.Fatalf("consumptions = %d, want %d", res.Consumptions, total)
	}
	wantMin := uint64(2*200 - 10)
	if res.Covered < wantMin {
		t.Fatalf("covered = %d, want >= %d", res.Covered, wantMin)
	}
	if res.Coverage() < 0.6 {
		t.Fatalf("coverage = %v, want >= 0.6", res.Coverage())
	}
	// Discards should be small: the streams are perfectly correlated.
	if res.DiscardRate() > 0.2 {
		t.Fatalf("discard rate = %v, want <= 0.2", res.DiscardRate())
	}
}

func TestSystemUncorrelatedTrafficLowCoverage(t *testing.T) {
	cfg := smallSystemConfig()
	cfg.ComparedStreams = 2
	s := NewSystem(cfg)
	tr := &trace.Trace{}
	// Producer writes blocks; consumers read them in completely different
	// orders (reversed vs shuffled by stride), so streams never recur.
	n := 300
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Kind: trace.KindWrite, Node: 0, Block: mem.BlockAddr(i * 64)})
	}
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 1, Block: mem.BlockAddr(i * 64), Producer: 0})
	}
	for i := n - 1; i >= 0; i-- {
		tr.Append(trace.Event{Kind: trace.KindConsumption, Node: 2, Block: mem.BlockAddr(i * 64), Producer: 0})
	}
	res := s.Run(tr)
	if res.Coverage() > 0.2 {
		t.Fatalf("coverage on uncorrelated orders = %v, want small", res.Coverage())
	}
}

func TestSystemWriteInvalidatesEverywhere(t *testing.T) {
	cfg := smallSystemConfig()
	s := NewSystem(cfg)
	// Node 1 records order A,B,C. Node 2 misses on A, streams B,C. A write
	// to B by node 3 invalidates node 2's streamed copy, so node 2's read
	// of B is NOT covered.
	a, b, c := mem.BlockAddr(0), mem.BlockAddr(64), mem.BlockAddr(128)
	for _, blk := range []mem.BlockAddr{a, b, c} {
		s.Consumption(trace.Event{Kind: trace.KindConsumption, Node: 1, Block: blk})
	}
	if covered := s.Consumption(trace.Event{Kind: trace.KindConsumption, Node: 2, Block: a}); covered {
		t.Fatal("head miss cannot be covered")
	}
	s.Write(trace.Event{Kind: trace.KindWrite, Node: 3, Block: b})
	if covered := s.Consumption(trace.Event{Kind: trace.KindConsumption, Node: 2, Block: b}); covered {
		t.Fatal("invalidated streamed block must not be covered")
	}
	if covered := s.Consumption(trace.Event{Kind: trace.KindConsumption, Node: 2, Block: c}); !covered {
		t.Fatal("unaffected streamed block should still be covered")
	}
}

func TestSystemCMOBCapacityLimitsCoverage(t *testing.T) {
	// With a CMOB far smaller than the working set, the recorded order is
	// overwritten before the next sharer follows it, so coverage collapses
	// (the mechanism behind Figure 10).
	big := smallSystemConfig()
	small := smallSystemConfig()
	small.CMOBEntries = 16

	length := 2000
	resBig := NewSystem(big).Run(migratoryTrace(4, length))
	resSmall := NewSystem(small).Run(migratoryTrace(4, length))
	if resSmall.Coverage() >= resBig.Coverage()/2 {
		t.Fatalf("small CMOB coverage %v not much less than unlimited %v",
			resSmall.Coverage(), resBig.Coverage())
	}
}

func TestSystemTrafficAccounting(t *testing.T) {
	cfg := smallSystemConfig()
	s := NewSystem(cfg)
	res := s.Run(migratoryTrace(4, 100))
	tr := res.Traffic
	if tr.PointerUpdateBytes == 0 {
		t.Fatal("pointer updates should be charged")
	}
	if tr.StreamAddressBytes == 0 || tr.StreamRequestBytes == 0 {
		t.Fatal("stream address/request traffic should be charged")
	}
	if tr.BaseBytes == 0 {
		t.Fatal("base traffic should be charged")
	}
	// Base traffic per consumption is request + block + header bytes.
	wantBase := res.Consumptions * uint64(requestMessageBytes+cfg.Geometry.BlockSize+dataHeaderBytes)
	if tr.BaseBytes != wantBase {
		t.Fatalf("BaseBytes = %d, want %d", tr.BaseBytes, wantBase)
	}
	if tr.OverheadRatio() <= 0 {
		t.Fatal("overhead ratio should be positive")
	}
	// For perfectly correlated streams the overhead should be a modest
	// fraction of base traffic (the paper reports 16%-57%).
	if tr.OverheadRatio() > 1.0 {
		t.Fatalf("overhead ratio = %v, unexpectedly high for perfect streams", tr.OverheadRatio())
	}
}

func TestSystemStreamLengthHistogram(t *testing.T) {
	cfg := smallSystemConfig()
	s := NewSystem(cfg)
	res := s.Run(migratoryTrace(4, 300))
	if res.StreamLengths.Total() == 0 {
		t.Fatal("stream length histogram should not be empty")
	}
	// The dominant streams should be long (hundreds of hits).
	if res.StreamLengths.Mean() < 50 {
		t.Fatalf("mean stream length = %v, want long streams", res.StreamLengths.Mean())
	}
}

func TestSystemResultHelpers(t *testing.T) {
	r := Result{Consumptions: 200, Covered: 100, Discards: 50}
	if r.Coverage() != 0.5 || r.DiscardRate() != 0.25 {
		t.Fatalf("Coverage/DiscardRate = %v/%v", r.Coverage(), r.DiscardRate())
	}
	if (Result{}).Coverage() != 0 || (Result{}).DiscardRate() != 0 {
		t.Fatal("empty result should report zeros")
	}
	if r.String() == "" {
		t.Fatal("String should not be empty")
	}
	tr := Traffic{}
	if tr.OverheadRatio() != 0 {
		t.Fatal("zero base traffic should give zero ratio")
	}
}

func TestSystemPanicsOnBadConfigOrNode(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSystem with invalid config should panic")
			}
		}()
		NewSystem(Config{})
	}()
	s := NewSystem(smallSystemConfig())
	defer func() {
		if recover() == nil {
			t.Error("consumption from out-of-range node should panic")
		}
	}()
	s.Consumption(trace.Event{Kind: trace.KindConsumption, Node: 99, Block: 0})
}

func TestSystemNameAndAccessors(t *testing.T) {
	s := NewSystem(smallSystemConfig())
	if s.Name() != "TSE" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().Nodes != 4 {
		t.Fatal("Config accessor wrong")
	}
	if s.Engine(0) == nil || s.CMOB(0) == nil {
		t.Fatal("accessors should not return nil")
	}
}

func TestConfigValidateAndHelpers(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{Nodes: 4, Geometry: mem.DefaultGeometry(), StreamQueues: 0, ComparedStreams: 1, Lookahead: 1},
		{Nodes: 4, Geometry: mem.DefaultGeometry(), StreamQueues: 1, ComparedStreams: 0, Lookahead: 1},
		{Nodes: 4, Geometry: mem.DefaultGeometry(), StreamQueues: 1, ComparedStreams: 1, Lookahead: 0},
		{Nodes: 4, Geometry: mem.DefaultGeometry(), StreamQueues: 1, ComparedStreams: 1, Lookahead: 1, CMOBEntries: -1},
		{Nodes: 100, Geometry: mem.DefaultGeometry(), StreamQueues: 1, ComparedStreams: 1, Lookahead: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	cfg := DefaultConfig()
	if cfg.CMOBBytes() != cfg.CMOBEntries*CMOBEntryBytes {
		t.Fatal("CMOBBytes wrong")
	}
	if cfg.SVBBytes() != 32*64 {
		t.Fatalf("SVBBytes = %d, want 2048", cfg.SVBBytes())
	}
	if cfg.fifoCapacity() != 16 {
		t.Fatalf("fifoCapacity = %d, want 2*lookahead", cfg.fifoCapacity())
	}
	cfg.FIFOCapacity = 5
	if cfg.fifoCapacity() != 5 {
		t.Fatal("explicit FIFO capacity should be used")
	}
}

// errorSource yields a few events and then fails with a non-EOF error.
type errorSource struct {
	events []trace.Event
	err    error
	pos    int
}

func (s *errorSource) Next() (trace.Event, error) {
	if s.pos >= len(s.events) {
		return trace.Event{}, s.err
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// TestRunSourceMatchesRun: driving the system from a pull-based stream must
// reproduce the materialized Run result bit for bit — the whole-system half
// of the streamed-pipeline parity the facade relies on.
func TestRunSourceMatchesRun(t *testing.T) {
	cfg := smallSystemConfig()
	tr := migratoryTrace(4, 300)

	want := NewSystem(cfg).Run(tr)
	got, err := NewSystem(cfg).RunSource(stream.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Consumptions != want.Consumptions || got.Covered != want.Covered ||
		got.BlocksFetched != want.BlocksFetched || got.Discards != want.Discards ||
		got.StreamsAllocated != want.StreamsAllocated || got.Traffic != want.Traffic ||
		got.CMOBPeakBytes != want.CMOBPeakBytes {
		t.Fatalf("streamed result %+v differs from Run result %+v", got, want)
	}
	for _, b := range want.StreamLengths.Buckets() {
		if got.StreamLengths.Count(b) != want.StreamLengths.Count(b) {
			t.Fatalf("stream-length bucket %d: %d vs %d", b, got.StreamLengths.Count(b), want.StreamLengths.Count(b))
		}
	}
}

// TestRunSourceReportsSourceError: a failing source must surface its error
// along with the flushed partial result.
func TestRunSourceReportsSourceError(t *testing.T) {
	cfg := smallSystemConfig()
	tr := migratoryTrace(4, 10)
	src := &errorSource{events: tr.Events, err: errTestSource}
	res, err := NewSystem(cfg).RunSource(src)
	if err != errTestSource {
		t.Fatalf("err = %v, want errTestSource", err)
	}
	if res.Consumptions == 0 {
		t.Fatal("partial result should include the events seen before the error")
	}
}

// errTestSource is the sentinel error used by errorSource.
var errTestSource = errors.New("tse test: source failed")

// TestSystemProbe pins the live-snapshot contract: Probe never mutates the
// system, its cumulative counters agree with an independent full run, and a
// probe taken after the last event matches the final Result exactly on
// Consumptions/Covered (Finish only moves resident blocks into Discards).
func TestSystemProbe(t *testing.T) {
	tr := migratoryTrace(4, 200)

	// Reference run without probes.
	want := NewSystem(smallSystemConfig()).Run(tr)

	s := NewSystem(smallSystemConfig())
	var mid LiveStats
	for i, e := range tr.Events {
		switch e.Kind {
		case trace.KindConsumption:
			s.Consumption(e)
		case trace.KindWrite:
			s.Write(e)
		}
		// Probe at every event: the run's outcome must be unaffected.
		ls := s.Probe()
		if i == len(tr.Events)/2 {
			mid = ls
		}
	}
	final := s.Probe()
	if mid.Consumptions == 0 || mid.Consumptions >= final.Consumptions {
		t.Fatalf("mid-run probe not strictly inside the run: mid=%+v final=%+v", mid, final)
	}
	if final.Consumptions != want.Consumptions || final.Covered != want.Covered {
		t.Fatalf("probed run diverged: probe=%+v want=%+v", final, want)
	}
	if final.BlocksFetched != want.BlocksFetched {
		t.Fatalf("BlocksFetched: probe=%d want=%d", final.BlocksFetched, want.BlocksFetched)
	}
	if got := final.Coverage(); got != want.Coverage() {
		t.Fatalf("final-probe coverage %v != report coverage %v", got, want.Coverage())
	}
	if final.Discards > want.Discards {
		t.Fatalf("live discards %d exceed final discards %d", final.Discards, want.Discards)
	}

	res := s.Finish()
	if res.Consumptions != want.Consumptions || res.Covered != want.Covered || res.Discards != want.Discards {
		t.Fatalf("Finish after probes diverged: %+v vs %+v", res, want)
	}
}
