package tse

import (
	"tsm/internal/directory"
	"tsm/internal/mem"
	"tsm/internal/stats"
)

// CMOBReader supplies stream addresses from another node's CMOB: it returns
// up to n addresses following offset in node's CMOB, plus the offset of the
// last address returned. The System wires this to the per-node CMOBs and
// charges interconnect traffic for the transfer.
type CMOBReader func(node mem.NodeID, offset uint64, n int) ([]mem.BlockAddr, uint64)

// EngineStats accumulates per-node stream-engine statistics.
type EngineStats struct {
	// Consumptions is the number of consumption events presented.
	Consumptions uint64
	// Covered is the number of consumptions satisfied by the SVB.
	Covered uint64
	// StreamsAllocated counts stream-queue allocations.
	StreamsAllocated uint64
	// StreamsResolved counts stalled queues reselected by a matching miss.
	StreamsResolved uint64
	// StreamsStalled counts head-divergence stall events.
	StreamsStalled uint64
	// BlocksFetched counts blocks streamed into the SVB.
	BlocksFetched uint64
	// RefillRequests counts CMOB refill requests for active streams.
	RefillRequests uint64
	// AddressesReceived counts stream addresses delivered to this node.
	AddressesReceived uint64
}

// Engine is the per-node stream engine plus SVB (the grey components of
// Figure 2 other than the CMOB/directory, which the System owns).
type Engine struct {
	node    mem.NodeID
	cfg     Config
	svb     *SVB
	queues  []*streamQueue
	nextQID int
	clock   uint64
	read    CMOBReader
	stats   EngineStats
	// streamLengths records the number of SVB hits each retired stream
	// produced (Figure 13).
	streamLengths *stats.Histogram
	// onFetch is called for every block streamed into the SVB so the
	// System can charge data traffic for it.
	onFetch func(block mem.BlockAddr)
	// onRefill is called for every refill request (source node, addresses
	// transferred) so the System can charge address-stream traffic.
	onRefill func(source mem.NodeID, addresses int)
}

// NewEngine builds a stream engine for one node. read supplies remote CMOB
// contents; it must not be nil.
func NewEngine(node mem.NodeID, cfg Config, read CMOBReader) *Engine {
	e := &Engine{
		node:          node,
		cfg:           cfg,
		svb:           NewSVB(cfg.SVBEntries),
		read:          read,
		streamLengths: stats.NewHistogram(),
	}
	e.svb.SetFIFOReplacement(cfg.SVBFIFOReplacement)
	return e
}

// SVB exposes the node's streamed value buffer.
func (e *Engine) SVB() *SVB { return e.svb }

// Stats returns a copy of the engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// StreamLengths returns the histogram of hits per retired stream.
func (e *Engine) StreamLengths() *stats.Histogram { return e.streamLengths }

// SetFetchHandler registers a callback invoked for each streamed block.
func (e *Engine) SetFetchHandler(fn func(mem.BlockAddr)) { e.onFetch = fn }

// SetRefillHandler registers a callback invoked for each CMOB address
// transfer into this engine.
func (e *Engine) SetRefillHandler(fn func(mem.NodeID, int)) { e.onRefill = fn }

// Consumption processes a coherent read miss by this node. ptrs are the
// CMOB pointers the directory returned for the block (newest first).
// It reports whether the SVB already held the block (the consumption is
// covered/eliminated).
func (e *Engine) Consumption(b mem.BlockAddr, ptrs []directory.CMOBPointer) bool {
	e.stats.Consumptions++
	e.clock++
	if qid, ok := e.svb.Hit(b); ok {
		e.stats.Covered++
		if q := e.findQueue(qid); q != nil {
			q.hits++
			if q.outstanding > 0 {
				q.outstanding--
			}
			q.lru = e.clock
			e.fill(q)
		}
		return true
	}

	// The miss did not hit the SVB. First check whether it matches a
	// stalled stream: that identifies which of the diverging histories the
	// processor is actually following (Section 3.3).
	for _, q := range e.queues {
		if !q.active || !q.stalled {
			continue
		}
		if idx, pos := q.matchStalledHead(b, e.cfg.Lookahead); idx >= 0 {
			q.selectFIFO(idx)
			q.fifos[0].dropThrough(pos)
			q.stalled = false
			q.lru = e.clock
			e.stats.StreamsResolved++
			e.fill(q)
			return false
		}
	}

	// Next check whether it matches an upcoming address of an active
	// stream (the processor ran slightly ahead of streaming, or skipped a
	// few recorded blocks such as another consumer's interleaved noise);
	// resynchronise that stream rather than allocating a duplicate. The
	// tolerated window is the stream lookahead, mirroring the SVB's role
	// as a window over small deviations (Section 3.3).
	for _, q := range e.queues {
		if !q.active || q.stalled {
			continue
		}
		if idx, pos := q.matchStalledHead(b, e.cfg.Lookahead); idx >= 0 {
			q.fifos[idx].dropThrough(pos)
			// Drop the skipped prefix from the other FIFOs too so heads
			// stay comparable.
			for j, f := range q.fifos {
				if j == idx {
					continue
				}
				if p := f.contains(b); p >= 0 {
					f.dropThrough(p)
				}
			}
			q.lru = e.clock
			e.fill(q)
			return false
		}
	}

	// Otherwise allocate a new stream for this head if the directory knows
	// recent consumers.
	e.allocate(b, ptrs)
	return false
}

// Write invalidates any streamed copy of the block (writes by any node,
// including this one, reach the SVB).
func (e *Engine) Write(b mem.BlockAddr) {
	e.svb.Invalidate(b)
}

// findQueue returns the queue with the given id, if it is still active.
func (e *Engine) findQueue(id int) *streamQueue {
	for _, q := range e.queues {
		if q.active && q.id == id {
			return q
		}
	}
	return nil
}

// allocate sets up a stream queue for a stream head using the directory's
// CMOB pointers, fetching the initial addresses from the source CMOBs.
func (e *Engine) allocate(head mem.BlockAddr, ptrs []directory.CMOBPointer) {
	if len(ptrs) == 0 {
		return
	}
	limit := e.cfg.ComparedStreams
	if limit > len(ptrs) {
		limit = len(ptrs)
	}
	var fifos []*streamFIFO
	for _, p := range ptrs[:limit] {
		if !p.Valid {
			continue
		}
		addrs, last := e.read(p.Node, p.Offset, e.cfg.fifoCapacity())
		if e.onRefill != nil && len(addrs) > 0 {
			e.onRefill(p.Node, len(addrs))
		}
		e.stats.AddressesReceived += uint64(len(addrs))
		if len(addrs) == 0 {
			continue
		}
		fifos = append(fifos, &streamFIFO{
			source: streamSource{node: p.Node, nextOffset: last},
			addrs:  addrs,
		})
	}
	if len(fifos) == 0 {
		return
	}
	if len(fifos) == 1 && !e.cfg.StreamOnSingle && e.cfg.ComparedStreams > 1 {
		// Ablation: demand a second confirming stream before fetching.
		return
	}
	q := e.acquireQueue()
	q.head = head
	q.fifos = fifos
	q.stalled = false
	q.outstanding = 0
	q.hits = 0
	q.fetched = 0
	q.lru = e.clock
	q.active = true
	e.stats.StreamsAllocated++
	e.fill(q)
}

// acquireQueue returns a free stream queue, retiring the least recently used
// one if all are busy (avoiding unbounded growth while still letting useful
// streams persist — the stream-thrashing concern of Section 5.3).
func (e *Engine) acquireQueue() *streamQueue {
	for _, q := range e.queues {
		if !q.active {
			return q
		}
	}
	if len(e.queues) < e.cfg.StreamQueues {
		q := &streamQueue{id: e.nextQID}
		e.nextQID++
		e.queues = append(e.queues, q)
		return q
	}
	victim := e.queues[0]
	for _, q := range e.queues[1:] {
		if q.lru < victim.lru {
			victim = q
		}
	}
	e.retire(victim)
	// Re-use the slot under a fresh id so stale SVB entries do not
	// advance the new stream.
	victim.id = e.nextQID
	e.nextQID++
	return victim
}

// retire records the stream's length and deactivates it.
func (e *Engine) retire(q *streamQueue) {
	if !q.active {
		return
	}
	if q.fetched > 0 || q.hits > 0 {
		e.streamLengths.Add(int(q.hits))
	}
	q.active = false
	q.fifos = nil
}

// fill streams blocks for a queue until the configured lookahead is
// outstanding in the SVB, the FIFO heads diverge, or the sources are
// exhausted.
func (e *Engine) fill(q *streamQueue) {
	for q.outstanding < e.cfg.Lookahead {
		e.refill(q)
		agreed, agree, any := q.headsAgree()
		if !any {
			if len(q.liveFIFOs()) == 0 {
				e.retire(q)
			}
			return
		}
		if !agree {
			if !q.stalled {
				q.stalled = true
				e.stats.StreamsStalled++
			}
			return
		}
		q.popAgreed(agreed)
		// Do not re-stream a block the SVB already holds.
		if !e.svb.Contains(agreed) {
			e.svb.Insert(agreed, q.id)
			q.outstanding++
			q.fetched++
			e.stats.BlocksFetched++
			if e.onFetch != nil {
				e.onFetch(agreed)
			}
		}
	}
}

// refill tops up any FIFO that has fallen below half of its capacity by
// reading further addresses from its source CMOB (Section 3.3: "When a
// stream queue is half empty, the stream engine requests additional
// addresses from the source CMOB").
func (e *Engine) refill(q *streamQueue) {
	capacity := e.cfg.fifoCapacity()
	for _, f := range q.fifos {
		if f.source.exhausted || len(f.addrs) > capacity/2 {
			continue
		}
		want := capacity - len(f.addrs)
		addrs, last := e.read(f.source.node, f.source.nextOffset, want)
		e.stats.RefillRequests++
		if len(addrs) == 0 {
			f.source.exhausted = true
			continue
		}
		if e.onRefill != nil {
			e.onRefill(f.source.node, len(addrs))
		}
		e.stats.AddressesReceived += uint64(len(addrs))
		f.addrs = append(f.addrs, addrs...)
		f.source.nextOffset = last
	}
}

// Finish retires every live stream (recording their lengths) and flushes the
// SVB so unconsumed blocks count as discards.
func (e *Engine) Finish() {
	for _, q := range e.queues {
		e.retire(q)
	}
	e.svb.Flush()
}
