// Package tse implements the Temporal Streaming Engine, the paper's primary
// contribution (Section 3). It provides:
//
//   - the per-node Coherence Miss Order Buffer (CMOB), a memory-resident
//     circular buffer recording the node's order of coherent read misses
//     (Section 3.1);
//   - the directory CMOB-pointer extension used to locate streams
//     (Section 3.2; storage lives in internal/directory, the lookup logic
//     here);
//   - the per-node stream engine: stream queues holding one FIFO per
//     compared stream, head comparison, stall/reselect on divergence, and
//     half-empty refill from the source CMOB (Section 3.3);
//   - the Streamed Value Buffer (SVB), a small fully-associative buffer of
//     streamed blocks probed in parallel with the L2 (Section 3.3);
//   - a whole-system trace-driven model (System) that consumes the global
//     consumption/write event stream and reports coverage, discards, stream
//     lengths and traffic — the quantities plotted in Figures 7–13.
package tse

import (
	"fmt"

	"tsm/internal/mem"
)

// CMOBEntryBytes is the size of one CMOB entry when packetized to memory:
// a 6-byte physical address (Section 5.4).
const CMOBEntryBytes = 6

// CMOBPointerBytes is the approximate size of a CMOB pointer update message
// payload (node id + offset).
const CMOBPointerBytes = 8

// Config collects every TSE hardware parameter. The defaults follow the
// configuration the paper settles on: two compared streams, a stream
// lookahead of eight, a 32-entry (2 KB) SVB, and a 1.5 MB CMOB per node.
type Config struct {
	// Nodes is the number of DSM nodes.
	Nodes int
	// Geometry supplies the block size.
	Geometry mem.Geometry
	// CMOBEntries is the per-node CMOB capacity in entries. Zero means
	// effectively unlimited (used for the opportunity studies).
	CMOBEntries int
	// SVBEntries is the per-node SVB capacity in blocks. Zero means
	// unlimited.
	SVBEntries int
	// StreamQueues is the number of stream queues per node. Multiple
	// queues avoid stream thrashing (Section 5.3).
	StreamQueues int
	// ComparedStreams is the number of streams fetched and compared per
	// stream head (the paper settles on two, Section 5.2). It also sets
	// the number of CMOB pointers kept per directory entry.
	ComparedStreams int
	// Lookahead is the number of streamed blocks kept outstanding in the
	// SVB per active stream (Section 5.6 chooses it per workload).
	Lookahead int
	// FIFOCapacity is the number of addresses buffered per FIFO before
	// a refill is requested. Zero selects 2×Lookahead.
	FIFOCapacity int
	// StreamOnSingle controls behaviour when only a single recent stream
	// is available for a head: if true (the default model) the engine
	// streams it without waiting for agreement; if false it stalls until
	// a second occurrence confirms the stream. This is an ablation knob.
	StreamOnSingle bool
	// SVBFIFOReplacement selects FIFO instead of LRU replacement for the
	// SVB (ablation knob; the paper uses LRU).
	SVBFIFOReplacement bool
}

// DefaultConfig returns the paper's chosen TSE configuration for a 16-node
// system.
func DefaultConfig() Config {
	return Config{
		Nodes:           16,
		Geometry:        mem.DefaultGeometry(),
		CMOBEntries:     (1536 * 1024) / CMOBEntryBytes, // 1.5 MB per node
		SVBEntries:      32,                             // 2 KB of 64-byte blocks
		StreamQueues:    8,
		ComparedStreams: 2,
		Lookahead:       8,
		StreamOnSingle:  true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > 64 {
		return fmt.Errorf("tse: node count %d out of range [1,64]", c.Nodes)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.CMOBEntries < 0 || c.SVBEntries < 0 {
		return fmt.Errorf("tse: negative capacity")
	}
	if c.StreamQueues <= 0 {
		return fmt.Errorf("tse: need at least one stream queue")
	}
	if c.ComparedStreams <= 0 {
		return fmt.Errorf("tse: need at least one compared stream")
	}
	if c.Lookahead <= 0 {
		return fmt.Errorf("tse: lookahead must be positive")
	}
	if c.FIFOCapacity < 0 {
		return fmt.Errorf("tse: negative FIFO capacity")
	}
	return nil
}

// fifoCapacity returns the effective per-FIFO address capacity.
func (c Config) fifoCapacity() int {
	if c.FIFOCapacity > 0 {
		return c.FIFOCapacity
	}
	return 2 * c.Lookahead
}

// CMOBBytes returns the per-node CMOB storage in bytes.
func (c Config) CMOBBytes() int { return c.CMOBEntries * CMOBEntryBytes }

// SVBBytes returns the per-node SVB storage in bytes.
func (c Config) SVBBytes() int { return c.SVBEntries * c.Geometry.BlockSize }
