package tse

import (
	"testing"

	"tsm/internal/mem"
)

func TestSVBInsertHit(t *testing.T) {
	s := NewSVB(4)
	s.Insert(64, 1)
	s.Insert(128, 2)
	if s.Len() != 2 || !s.Contains(64) {
		t.Fatalf("Len=%d Contains(64)=%v", s.Len(), s.Contains(64))
	}
	q, ok := s.Hit(64)
	if !ok || q != 1 {
		t.Fatalf("Hit(64) = %d,%v want 1,true", q, ok)
	}
	if s.Contains(64) {
		t.Fatal("hit entry must be removed (moved to L1)")
	}
	if _, ok := s.Hit(64); ok {
		t.Fatal("second hit on the same block should miss")
	}
	st := s.Stats()
	if st.Inserted != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSVBLRUEviction(t *testing.T) {
	var discarded []mem.BlockAddr
	s := NewSVB(2)
	s.SetDiscardHandler(func(b mem.BlockAddr, r DiscardReason) {
		if r != DiscardEvicted {
			t.Fatalf("discard reason = %v, want evicted", r)
		}
		discarded = append(discarded, b)
	})
	s.Insert(64, 0)
	s.Insert(128, 0)
	// Touch 64 so 128 becomes LRU... touching means a hit which removes it;
	// instead re-insert 64 to refresh recency.
	s.Insert(64, 0)
	s.Insert(192, 0)
	if len(discarded) != 1 || discarded[0] != 128 {
		t.Fatalf("discarded = %v, want [128]", discarded)
	}
	if s.Stats().Evicted != 1 || s.Stats().Discards != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	if !s.Contains(64) || !s.Contains(192) {
		t.Fatal("wrong survivor set")
	}
}

func TestSVBFIFOReplacement(t *testing.T) {
	s := NewSVB(2)
	s.SetFIFOReplacement(true)
	s.Insert(64, 0)
	s.Insert(128, 0)
	s.Insert(64, 0) // refresh recency, but FIFO ignores recency
	s.Insert(192, 0)
	if s.Contains(64) {
		t.Fatal("FIFO replacement should evict the oldest insertion (64)")
	}
	if !s.Contains(128) || !s.Contains(192) {
		t.Fatal("FIFO survivors wrong")
	}
}

func TestSVBInvalidate(t *testing.T) {
	s := NewSVB(4)
	s.Insert(64, 3)
	if !s.Invalidate(64) {
		t.Fatal("Invalidate of present block should return true")
	}
	if s.Invalidate(64) {
		t.Fatal("Invalidate of absent block should return false")
	}
	st := s.Stats()
	if st.Invalidated != 1 || st.Discards != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSVBFlushCountsUnused(t *testing.T) {
	s := NewSVB(0)
	for i := 0; i < 10; i++ {
		s.Insert(mem.BlockAddr(i*64), 0)
	}
	s.Hit(0)
	s.Flush()
	st := s.Stats()
	if st.Unused != 9 || st.Discards != 9 || st.Hits != 1 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if s.Len() != 0 {
		t.Fatal("Flush should empty the SVB")
	}
}

func TestSVBUnlimitedNeverEvicts(t *testing.T) {
	s := NewSVB(0)
	for i := 0; i < 10000; i++ {
		s.Insert(mem.BlockAddr(i*64), 0)
	}
	if s.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", s.Len())
	}
	if s.Stats().Evicted != 0 {
		t.Fatal("unlimited SVB must not evict")
	}
}

func TestSVBReinsertRefreshesWithoutDoubleCount(t *testing.T) {
	s := NewSVB(4)
	s.Insert(64, 1)
	s.Insert(64, 2)
	if s.Stats().Inserted != 1 {
		t.Fatalf("Inserted = %d, want 1 (refresh, not new entry)", s.Stats().Inserted)
	}
	q, ok := s.Hit(64)
	if !ok || q != 2 {
		t.Fatalf("Hit = %d,%v; queue id should be updated to 2", q, ok)
	}
}

func TestSVBCapacityRespected(t *testing.T) {
	s := NewSVB(8)
	for i := 0; i < 100; i++ {
		s.Insert(mem.BlockAddr(i*64), 0)
		if s.Len() > 8 {
			t.Fatalf("SVB grew to %d entries, capacity 8", s.Len())
		}
	}
	st := s.Stats()
	if st.Inserted != 100 || st.Evicted != 92 {
		t.Fatalf("stats = %+v, want 100 inserted / 92 evicted", st)
	}
}
