package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Address-space regions used by the key-value store generator.
const (
	regionKVChains = 16 // hash-bucket / item-header / value-block chains
	regionKVMeta   = 17 // LRU heads, slab statistics (hot migratory metadata)
	regionKVHeap   = 18 // recycled network/connection buffers (uncorrelated)
	regionKVLocks  = 19 // contended slab/LRU lock words (spin accesses)
)

// KVStore models a memcached-style in-memory key-value store serving a
// skewed GET/SET mix. Its sharing texture sits between OLTP and the web
// servers: each key resolves through a short fixed-order chain (hash bucket
// → item header → value blocks), so the temporally correlated streams are
// much shorter than OLTP's record-group traversals, but the Zipf-skewed
// popularity means the same hot chains recur at every node within a short
// window, giving the TSE frequent, short, highly repetitive streams. SETs
// rewrite a chain's value blocks (invalidating cached copies everywhere),
// LRU-head and statistics updates form hot migratory metadata, and recycled
// network buffers contribute the uncorrelated consumption noise.
type KVStore struct {
	cfg    Config
	chains int
	ops    int
}

// NewKVStore builds a key-value store generator.
func NewKVStore(cfg Config) *KVStore {
	cfg = cfg.normalize()
	return &KVStore{
		cfg:    cfg,
		chains: scaled(1200, cfg.Scale, 96),
		ops:    repeated(scaled(9000, cfg.Scale, 700), cfg.Repeat),
	}
}

// Name implements Generator.
func (k *KVStore) Name() string { return "memkv" }

// Class implements Generator.
func (k *KVStore) Class() Class { return Commercial }

// Timing implements Generator. The key-value server spends most of its time
// in network processing and hash-table walks (busy + other stalls); the
// coherent component is comparable to the web servers, and the short request
// handlers keep the consumption MLP low.
func (k *KVStore) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.30,
		OtherStallFraction:    0.35,
		CoherentStallFraction: 0.35,
		MLP:                   1.4,
		Lookahead:             8,
	}
}

// Emit implements Generator. Operations execute on round-robin nodes;
// each GET walks the key's chain in canonical order, each SET rewrites the
// chain's value blocks, and both touch the LRU/statistics metadata.
func (k *KVStore) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(k.cfg.Seed + 211))

	// Chains are scattered across the record space (hash tables do not keep
	// related items adjacent) but always walked in the same order. Chain
	// length: 1 bucket block + 1 header block + 1-3 value blocks.
	chains := make([][]int, k.chains)
	for i := range chains {
		length := 3 + rng.Intn(3)
		blocks := make([]int, length)
		for j := range blocks {
			blocks[j] = rng.Intn(recordSpaceBlocks)
		}
		chains[i] = blocks
	}

	// Zipf-skewed key popularity: the defining property of cache workloads.
	zipf := rand.NewZipf(rng, 1.07, 1, uint64(k.chains-1))

	// Hot migratory metadata: LRU list heads and slab statistics.
	const metaBlocks = 24
	hotMeta := make([]int, metaBlocks)
	for i := range hotMeta {
		hotMeta[i] = rng.Intn(recordSpaceBlocks)
	}

	// Recycled network buffers (see the commercial generators): reads are
	// coherent but never in a repeating order.
	hotHeap := make([]int, 2048)
	for i := range hotHeap {
		hotHeap[i] = rng.Intn(1 << 20)
	}

	em := &emitter{yield: yield}
	add := func(node, region, index int, typ mem.AccessType, spin bool) {
		em.emit(mem.Access{
			Node:   mem.NodeID(node),
			Addr:   blockAddr(k.cfg.Geometry, region, index),
			Type:   typ,
			Shared: true,
			Spin:   spin,
		})
	}

	node := 0
	for op := 0; op < k.ops && !em.failed(); op++ {
		// Connection handling is distributed round-robin with some affinity.
		if rng.Float64() < 0.85 {
			node = (node + 1) % k.cfg.Nodes
		}
		chain := chains[zipf.Uint64()]

		if rng.Float64() < 0.10 {
			// SET: take the slab lock, rewrite the chain's value blocks and
			// update the LRU head.
			lock := rng.Intn(4)
			for s := 0; s < 1+rng.Intn(2); s++ {
				add(node, regionKVLocks, lock, mem.Read, true)
			}
			add(node, regionKVLocks, lock, mem.AtomicRMW, false)
			for _, b := range chain {
				add(node, regionKVChains, b, mem.Write, false)
			}
			meta := hotMeta[rng.Intn(metaBlocks)]
			add(node, regionKVMeta, meta, mem.Read, false)
			add(node, regionKVMeta, meta, mem.Write, false)
		} else {
			// GET: walk the chain in canonical order, then bump the LRU head
			// for a fraction of hits (memcached-style lazy LRU).
			for _, b := range chain {
				add(node, regionKVChains, b, mem.Read, false)
			}
			if rng.Float64() < 0.25 {
				meta := hotMeta[rng.Intn(metaBlocks)]
				add(node, regionKVMeta, meta, mem.Read, false)
				add(node, regionKVMeta, meta, mem.Write, false)
			}
		}

		// Network/connection buffer traffic around the operation: coherent
		// but uncorrelated reads, plus the writes that recycle the pool.
		for i := 0; i < 2; i++ {
			add(node, regionKVHeap, hotHeap[rng.Intn(len(hotHeap))], mem.Read, false)
		}
		add(node, regionKVHeap, hotHeap[rng.Intn(len(hotHeap))], mem.Write, false)
	}
	return em.err
}

// Generate implements Generator.
func (k *KVStore) Generate() []mem.Access { return Collect(k) }
