// Package workload provides synthetic shared-memory workload generators
// standing in for the applications of Table 2: the scientific codes em3d,
// moldyn and ocean, the OLTP workloads (TPC-C on DB2 and Oracle) and the web
// server workloads (SPECweb99 on Apache and Zeus).
//
// The real applications (and the Simics full-system environment that ran
// them) are not available, so each generator reproduces the *sharing
// behaviour* the paper measures rather than the computation: which blocks
// are written by which node, in what order other nodes then read them, how
// repetitive those orders are across iterations or transactions, how long
// the recurring streams are, and how much uncorrelated traffic surrounds
// them. The calibration targets are the paper's own characterisation:
// Figure 6 (fraction of temporally correlated consumptions), Figure 13
// (stream length distribution) and Table 3 (consumption MLP). DESIGN.md
// documents the substitution in detail.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"tsm/internal/mem"
)

// Class distinguishes the two halves of the application suite.
type Class int

const (
	// Scientific covers em3d, moldyn and ocean.
	Scientific Class = iota
	// Commercial covers the OLTP and web server workloads.
	Commercial
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Commercial {
		return "commercial"
	}
	return "scientific"
}

// Config is the common generator configuration.
type Config struct {
	// Nodes is the number of DSM nodes (16 in the paper).
	Nodes int
	// Seed makes generation deterministic.
	Seed int64
	// Scale multiplies the default problem size; tests use small scales,
	// the benchmark harness uses 1.0.
	Scale float64
	// Repeat multiplies the workload's run length — iterations,
	// transactions, requests — WITHOUT growing its data-structure
	// footprint. Scale grows the problem (and with it the per-generator
	// state); Repeat only lengthens the trace, which is what makes
	// paper-scale runs affordable now that generation streams in constant
	// memory. Zero or negative means 1.
	Repeat float64
	// Geometry supplies the block size.
	Geometry mem.Geometry
}

// DefaultConfig returns a 16-node configuration at full scale.
func DefaultConfig() Config {
	return Config{Nodes: 16, Seed: 1, Scale: 1.0, Repeat: 1.0, Geometry: mem.DefaultGeometry()}
}

// normalize fills in zero fields with defaults.
func (c Config) normalize() Config {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Repeat <= 0 {
		c.Repeat = 1.0
	}
	if c.Geometry.BlockSize == 0 {
		c.Geometry = mem.DefaultGeometry()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled returns max(min, int(base*scale)).
func scaled(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		return min
	}
	return v
}

// repeated applies the Repeat run-length multiplier to a count, never going
// below one. At Repeat=1 it is the identity, which is what keeps the default
// traces (and every pinned golden) byte-identical.
func repeated(base int, repeat float64) int {
	v := int(float64(base) * repeat)
	if v < 1 {
		return 1
	}
	return v
}

// TimingProfile carries the per-workload characteristics the timing model
// needs. The stall-fraction targets are taken from Figure 14's baseline
// breakdown and the MLP/lookahead values from Table 3.
type TimingProfile struct {
	// BusyFraction is the fraction of baseline execution time spent
	// committing instructions.
	BusyFraction float64
	// OtherStallFraction is the fraction spent on non-coherent stalls
	// (private misses, pipeline stalls).
	OtherStallFraction float64
	// CoherentStallFraction is the fraction spent stalled on coherent
	// read misses — the component TSE attacks.
	CoherentStallFraction float64
	// MLP is the consumption memory-level parallelism (average coherent
	// read misses outstanding when at least one is outstanding).
	MLP float64
	// Lookahead is the stream lookahead Table 3 derives for the workload.
	Lookahead int
}

// Validate checks that the fractions form a distribution.
func (p TimingProfile) Validate() error {
	sum := p.BusyFraction + p.OtherStallFraction + p.CoherentStallFraction
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: timing fractions sum to %v, want 1.0", sum)
	}
	if p.MLP < 1 {
		return fmt.Errorf("workload: MLP %v < 1", p.MLP)
	}
	if p.Lookahead <= 0 {
		return fmt.Errorf("workload: lookahead must be positive")
	}
	return nil
}

// Generator produces the global interleaved access stream of one workload.
//
// Emit is the primary contract: it pushes the globally ordered stream one
// access at a time, holding only the generator's fixed problem state (graphs,
// record groups, interaction lists) — never a buffer proportional to the
// trace length — so arbitrarily long traces generate in constant memory.
// Generate is the thin collect-adapter over Emit (see Collect) retained for
// callers that want the materialized slice; both paths produce the exact same
// sequence by construction.
type Generator interface {
	// Name returns the workload name as used in the paper's figures.
	Name() string
	// Class returns the workload class.
	Class() Class
	// Emit streams the globally ordered accesses to yield, one at a time.
	// A non-nil error from yield aborts emission promptly and is returned.
	Emit(yield func(mem.Access) error) error
	// Generate produces the globally ordered access stream by collecting
	// Emit into a slice.
	Generate() []mem.Access
	// Timing returns the workload's timing profile.
	Timing() TimingProfile
}

// Spec describes one registered workload.
type Spec struct {
	// Name is the canonical lower-case name ("em3d", "db2", ...).
	Name string
	// Class is the workload class.
	Class Class
	// Parameters summarises the Table 2 configuration being modelled.
	Parameters string
	// Extra marks workloads outside the default evaluation suite (the
	// cross-workload mixes): ByName finds them and every pipeline accepts
	// them, but suite-wide experiments do not iterate them by default, so
	// the pinned per-suite goldens are independent of how many extras are
	// registered.
	Extra bool
	// New constructs a generator.
	New func(Config) Generator
}

// Registry returns every workload: the paper's seven applications in
// presentation order, followed by the extended scenario matrix.
func Registry() []Spec {
	return []Spec{
		{Name: "em3d", Class: Scientific,
			Parameters: "400K nodes, degree 2, span 5, 15% remote",
			New:        func(c Config) Generator { return NewEM3D(c) }},
		{Name: "moldyn", Class: Scientific,
			Parameters: "19652 molecules, boxsize 17, 2.56M max interactions",
			New:        func(c Config) Generator { return NewMoldyn(c) }},
		{Name: "ocean", Class: Scientific,
			Parameters: "514x514 grid, 9600s relaxations, 20K res., err. tol. 1e-07",
			New:        func(c Config) Generator { return NewOcean(c) }},
		{Name: "apache", Class: Commercial,
			Parameters: "16K connections, fastCGI, worker threading model",
			New:        func(c Config) Generator { return NewWebServer(c, "Apache") }},
		{Name: "db2", Class: Commercial,
			Parameters: "100 warehouses (10 GB), 64 clients, 450 MB buffer pool",
			New:        func(c Config) Generator { return NewOLTP(c, "DB2") }},
		{Name: "oracle", Class: Commercial,
			Parameters: "100 warehouses (10 GB), 16 clients, 1.4 GB SGA",
			New:        func(c Config) Generator { return NewOLTP(c, "Oracle") }},
		{Name: "zeus", Class: Commercial,
			Parameters: "16K connections, fastCGI",
			New:        func(c Config) Generator { return NewWebServer(c, "Zeus") }},
		// Extended scenario matrix (beyond the paper's seven applications):
		// the same Section 4 methodology — synthesise the sharing behaviour,
		// not the computation — applied to workload classes the paper never
		// measured. See each generator's doc comment for the sharing texture.
		{Name: "memkv", Class: Commercial,
			Parameters: "memcached-style KV store, Zipf(1.07) keys, 90/10 GET/SET",
			New:        func(c Config) Generator { return NewKVStore(c) }},
		{Name: "pagerank", Class: Scientific,
			Parameters: "24K-vertex scale-free graph, 16 hubs, 30% cut edges",
			New:        func(c Config) Generator { return NewPageRank(c) }},
		{Name: "cdn", Class: Commercial,
			Parameters: "600 multi-block objects, Zipf(1.05) popularity, origin refresh",
			New:        func(c Config) Generator { return NewCDN(c) }},
		// Cross-workload mixes (Extra: addressable everywhere, excluded from
		// the default suite iteration so the suite goldens stay pinned).
		{Name: "mix", Class: Commercial, Extra: true,
			Parameters: "memkv + cdn colocated, phase-alternating 64-access bursts",
			New:        func(c Config) Generator { return NewMix(c) }},
		{Name: "mix-sci-com", Class: Commercial, Extra: true,
			Parameters: "em3d + db2 colocated, phase-alternating 64-access bursts",
			New:        func(c Config) Generator { return NewMixSciCom(c) }},
	}
}

// Names returns the default evaluation suite's workload names in order — the
// paper's seven applications plus the extended scenario matrix, excluding the
// Extra cross-workload mixes. Suite-wide experiments iterate this list.
func Names() []string {
	var names []string
	for _, s := range Registry() {
		if !s.Extra {
			names = append(names, s.Name)
		}
	}
	return names
}

// AllNames returns every registered workload name in order, including the
// Extra cross-workload mixes.
func AllNames() []string {
	specs := Registry()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName looks up a workload by its canonical name.
func ByName(name string) (Spec, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// interleave merges per-node access slices into a single global order by
// taking chunks from each node in round-robin fashion, approximating the
// simultaneous progress of the nodes within a phase. chunk controls how many
// consecutive accesses a node performs before the next node runs. It is the
// materialized form of interleaveEmit (see emit.go), retained for tests and
// differential checks; the generators stream through interleaveEmit directly.
func interleave(perNode [][]mem.Access, chunk int, rng *rand.Rand) []mem.Access {
	total := 0
	for _, s := range perNode {
		total += len(s)
	}
	out := make([]mem.Access, 0, total)
	// The yield never fails, so neither does the merge.
	_ = interleaveEmit(sliceCursors(perNode), chunk, rng, func(a mem.Access) error {
		out = append(out, a)
		return nil
	})
	return out
}

// blockAddr builds a block-aligned address within a named region. Regions
// keep the different data structures of a workload from aliasing.
func blockAddr(g mem.Geometry, region int, index int) mem.Addr {
	const regionBits = 32
	return mem.Addr(uint64(region)<<regionBits | uint64(index)*uint64(g.BlockSize))
}

// sortedKeys returns the keys of a map in sorted order (deterministic
// iteration for generation).
func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
