package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Address-space regions used by the commercial generators.
const (
	regionOLTPMeta    = 8  // hot migratory metadata (latches, log tail, free lists)
	regionOLTPRecords = 9  // record/index block groups touched by transactions
	regionOLTPHeap    = 10 // large buffer pool accessed with little reuse
	regionOLTPLocks   = 11 // contended lock words (spin accesses)
	regionWebConn     = 12 // per-connection / per-URL metadata groups
	regionWebShared   = 13 // shared counters and caches
	regionWebHeap     = 14 // network buffers and OS structures
)

// recordGroup is an ordered set of blocks that is always traversed in the
// same order (a table fragment, an index path plus its leaf records, a file
// descriptor chain). Recurring traversals of such groups by different nodes
// are what gives commercial workloads their temporally correlated streams;
// the group length distribution is what Figure 13 measures.
type recordGroup struct {
	blocks []int
}

// commercialShape collects the tunables that differ between the OLTP and web
// generators. The values are calibrated against the paper's measurements:
// roughly 40-60% of OLTP consumptions and ~43% of web consumptions are
// temporally correlated (Figure 6), and 30-45% of commercial stream hits
// come from streams shorter than eight blocks (Figure 13).
type commercialShape struct {
	groups          int     // number of record groups
	meanGroupLen    int     // mean blocks per group (geometric-ish mixture)
	longGroupFrac   float64 // fraction of groups that are long scans
	longGroupLen    int     // length of the long groups
	noiseFraction   float64 // fraction of shared reads with no reuse structure
	heapBlocks      int     // size of the no-reuse heap
	metaBlocks      int     // number of hot migratory metadata blocks
	metaPerTxn      int     // metadata blocks touched per transaction
	groupsPerTxn    int     // record groups traversed per transaction
	evolveEvery     int     // transactions between data-structure evolution steps
	evolveFraction  float64 // fraction of a group remapped when it evolves
	transactions    int     // total transactions at Scale=1
	lockSpinPerTxn  int     // spin reads per transaction (excluded from consumptions)
	writeBackGroups bool    // whether traversals write the blocks they read (migratory)
}

// commercial is the shared implementation behind the OLTP and web server
// generators.
type commercial struct {
	cfg     Config
	name    string
	class   Class
	shape   commercialShape
	timing  TimingProfile
	regions struct {
		meta, records, heap, locks int
	}
}

// NewOLTP builds a TPC-C-like OLTP generator for the given database name
// ("DB2" or "Oracle"). The two databases share sharing behaviour but differ
// slightly in how much uncorrelated buffer-pool traffic they generate and in
// their timing profiles (Figure 14 shows DB2 with the largest user-level
// coherent-read stall fraction).
func NewOLTP(cfg Config, name string) Generator {
	cfg = cfg.normalize()
	c := &commercial{cfg: cfg, name: name, class: Commercial}
	c.regions.meta = regionOLTPMeta
	c.regions.records = regionOLTPRecords
	c.regions.heap = regionOLTPHeap
	c.regions.locks = regionOLTPLocks
	c.shape = commercialShape{
		groups:          scaled(600, cfg.Scale, 64),
		meanGroupLen:    16,
		longGroupFrac:   0.08,
		longGroupLen:    96,
		noiseFraction:   0.55,
		heapBlocks:      scaled(200000, cfg.Scale, 4096),
		metaBlocks:      48,
		metaPerTxn:      4,
		groupsPerTxn:    3,
		evolveEvery:     40,
		evolveFraction:  0.15,
		transactions:    repeated(scaled(2500, cfg.Scale, 200), cfg.Repeat),
		lockSpinPerTxn:  1,
		writeBackGroups: true,
	}
	switch name {
	case "Oracle":
		c.shape.noiseFraction = 0.65
		c.timing = TimingProfile{
			BusyFraction: 0.31, OtherStallFraction: 0.37, CoherentStallFraction: 0.32,
			MLP: 1.2, Lookahead: 8,
		}
	default: // DB2
		c.timing = TimingProfile{
			BusyFraction: 0.28, OtherStallFraction: 0.37, CoherentStallFraction: 0.35,
			MLP: 1.3, Lookahead: 8,
		}
	}
	return c
}

// NewWebServer builds a SPECweb99-like web server generator ("Apache" or
// "Zeus"). Web servers share less data than OLTP and a larger fraction of
// their coherent misses comes from OS and network structures with little
// reuse, so the correlated fraction is lower (~43% in Figure 6) and streams
// are shorter.
func NewWebServer(cfg Config, name string) Generator {
	cfg = cfg.normalize()
	c := &commercial{cfg: cfg, name: name, class: Commercial}
	c.regions.meta = regionWebShared
	c.regions.records = regionWebConn
	c.regions.heap = regionWebHeap
	c.regions.locks = regionOLTPLocks
	c.shape = commercialShape{
		groups:          scaled(900, cfg.Scale, 64),
		meanGroupLen:    10,
		longGroupFrac:   0.04,
		longGroupLen:    48,
		noiseFraction:   0.95,
		heapBlocks:      scaled(250000, cfg.Scale, 4096),
		metaBlocks:      32,
		metaPerTxn:      3,
		groupsPerTxn:    2,
		evolveEvery:     30,
		evolveFraction:  0.20,
		transactions:    repeated(scaled(3000, cfg.Scale, 200), cfg.Repeat),
		lockSpinPerTxn:  1,
		writeBackGroups: true,
	}
	c.timing = TimingProfile{
		BusyFraction: 0.32, OtherStallFraction: 0.38, CoherentStallFraction: 0.30,
		MLP: 1.3, Lookahead: 8,
	}
	if name == "Apache" {
		// Apache's worker threading model shares slightly more request
		// state between nodes than Zeus's event-driven model, and shows a
		// marginally larger coherent-read stall fraction in Figure 14.
		c.shape.meanGroupLen = 11
		c.shape.noiseFraction = 0.90
		c.timing.BusyFraction = 0.30
		c.timing.OtherStallFraction = 0.38
		c.timing.CoherentStallFraction = 0.32
	} else {
		c.shape.transactions = repeated(scaled(2800, cfg.Scale, 200), cfg.Repeat)
		c.shape.noiseFraction = 1.0
		c.cfg.Seed += 7
	}
	return c
}

// Name implements Generator.
func (c *commercial) Name() string { return c.name }

// Class implements Generator.
func (c *commercial) Class() Class { return c.class }

// Timing implements Generator.
func (c *commercial) Timing() TimingProfile { return c.timing }

// recordSpaceBlocks is the size of the block index space record groups are
// scattered over. Database records and index nodes are not physically
// contiguous, so group members are drawn at random from this space — which
// also keeps the traversals free of the strided patterns a stride prefetcher
// could exploit (the paper's stride baseline rarely fires, Figure 12).
const recordSpaceBlocks = 1 << 22

// buildGroups creates the record groups with a mixture of short traversals
// and occasional long scans. Each group's blocks are scattered across the
// record space but always traversed in the same order.
func (c *commercial) buildGroups(rng *rand.Rand) []recordGroup {
	groups := make([]recordGroup, c.shape.groups)
	for i := range groups {
		length := 2 + rng.Intn(2*c.shape.meanGroupLen-2)
		if rng.Float64() < c.shape.longGroupFrac {
			length = c.shape.longGroupLen/2 + rng.Intn(c.shape.longGroupLen)
		}
		blocks := make([]int, length)
		for j := range blocks {
			blocks[j] = rng.Intn(recordSpaceBlocks)
		}
		groups[i] = recordGroup{blocks: blocks}
	}
	return groups
}

// Emit implements Generator. Transactions execute one after another on
// round-robin nodes (with occasional repeats, modelling affinity); each
// transaction touches hot migratory metadata, traverses a few record groups
// in their canonical order (reading and then updating each block, which is
// what makes the data migratory), sprinkles uncorrelated buffer-pool reads
// between them, and occasionally spins on a contended lock. The only state
// held across the run is the record groups and hot pools — the emitted
// stream itself is never buffered.
func (c *commercial) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(c.cfg.Seed + 101))
	groups := c.buildGroups(rng)
	freshBlock := recordSpaceBlocks // source of new block indices for evolved groups

	// Hot migratory metadata blocks are likewise scattered (latches, log
	// tail, free lists live in unrelated allocations), but are visited in a
	// fixed rotation so their short access sequences recur.
	hotMeta := make([]int, c.shape.metaBlocks)
	for i := range hotMeta {
		hotMeta[i] = rng.Intn(recordSpaceBlocks)
	}

	// hotHeap models the recycled OS / network-buffer / buffer-pool pages
	// that both databases and web servers constantly rewrite and re-read on
	// different nodes. Reads of these blocks are coherent misses (the last
	// writer is usually another node) but their order never repeats — the
	// uncorrelated component of the commercial consumption mix. The pool is
	// long-lived, so after warm-up each block has been consumed by several
	// nodes, which is what lets the TSE's stream comparison recognise these
	// misses as non-correlated and stall instead of streaming garbage.
	hotHeapBlocks := 4096
	if hotHeapBlocks > c.shape.heapBlocks {
		hotHeapBlocks = c.shape.heapBlocks
	}
	hotHeap := make([]int, hotHeapBlocks)
	for i := range hotHeap {
		hotHeap[i] = rng.Intn(c.shape.heapBlocks)
	}

	em := &emitter{yield: yield}
	appendAccess := func(node int, region, index int, typ mem.AccessType, spin bool) {
		em.emit(mem.Access{
			Node:   mem.NodeID(node),
			Addr:   blockAddr(c.cfg.Geometry, region, index),
			Type:   typ,
			Shared: true,
			Spin:   spin,
		})
	}

	node := 0
	for txn := 0; txn < c.shape.transactions && !em.failed(); txn++ {
		// Transaction placement: mostly round-robin across nodes, with some
		// affinity (same node runs consecutive transactions occasionally).
		if rng.Float64() < 0.8 {
			node = (node + 1) % c.cfg.Nodes
		}

		// Periodic data-structure evolution: parts of some groups are
		// replaced by fresh blocks (inserts/deletes, B-tree splits), which
		// is why commercial streams decay over time.
		if c.shape.evolveEvery > 0 && txn > 0 && txn%c.shape.evolveEvery == 0 {
			g := &groups[rng.Intn(len(groups))]
			for j := range g.blocks {
				if rng.Float64() < c.shape.evolveFraction {
					g.blocks[j] = freshBlock
					freshBlock++
				}
			}
		}

		// Hot migratory metadata: read-modify-write a few well-known blocks
		// in a fixed rotation (log tail, free lists, statistics).
		metaStart := rng.Intn(c.shape.metaBlocks)
		for i := 0; i < c.shape.metaPerTxn; i++ {
			idx := hotMeta[(metaStart+i)%c.shape.metaBlocks]
			appendAccess(node, c.regions.meta, idx, mem.Read, false)
			appendAccess(node, c.regions.meta, idx, mem.Write, false)
		}

		// Occasionally spin on a contended lock before doing work. These
		// coherent reads are excluded from consumptions by the analysis.
		for i := 0; i < c.shape.lockSpinPerTxn; i++ {
			lock := rng.Intn(8)
			spins := 1 + rng.Intn(3)
			for s := 0; s < spins; s++ {
				appendAccess(node, c.regions.locks, lock, mem.Read, true)
			}
			appendAccess(node, c.regions.locks, lock, mem.AtomicRMW, false)
		}

		// Record-group traversals: the temporally correlated portion. The
		// blocks of one group are always visited in the same order, and the
		// transaction updates each block it reads, which is what makes the
		// data migratory.
		for gidx := 0; gidx < c.shape.groupsPerTxn; gidx++ {
			g := groups[rng.Intn(len(groups))]
			for _, b := range g.blocks {
				appendAccess(node, c.regions.records, b, mem.Read, false)
				if c.shape.writeBackGroups {
					appendAccess(node, c.regions.records, b, mem.Write, false)
				}
			}
			// Uncorrelated traffic follows in a burst: OS, network and
			// buffer-manager activity between database operations. Each
			// noise read targets a hot heap block some node wrote recently,
			// so it is a coherent miss, but the selection is random so the
			// order never repeats.
			noiseReads := int(c.shape.noiseFraction*float64(len(g.blocks)) + 0.5)
			for i := 0; i < noiseReads; i++ {
				heapIdx := hotHeap[rng.Intn(len(hotHeap))]
				appendAccess(node, c.regions.heap, heapIdx, mem.Read, false)
			}
		}

		// Recycle some hot heap blocks: the writes invalidate the other
		// nodes' copies so later reads of those blocks are consumptions
		// again. The write volume is sized so that a typical hot block is
		// read by two or three different nodes between rewrites: the
		// uncorrelated misses then have more than one recorded history,
		// whose disagreement makes the TSE stall rather than stream
		// (the accuracy mechanism of Section 5.2).
		heapWrites := 6 + rng.Intn(6)
		for i := 0; i < heapWrites; i++ {
			appendAccess(node, c.regions.heap, hotHeap[rng.Intn(len(hotHeap))], mem.Write, false)
		}
	}
	return em.err
}

// Generate implements Generator.
func (c *commercial) Generate() []mem.Access { return Collect(c) }
