package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Address-space region used by the graph analytics generator.
const regionGraphRank = 20 // per-vertex rank values

// PageRank models an iterative graph-analytics kernel (PageRank-style
// push/pull) over a scale-free graph partitioned across the nodes. Unlike
// em3d's uniform bipartite graph, the edge distribution is power-law: most
// edges stay within a partition or reach the adjacent one, but a small set
// of hub vertices is read by every node in every iteration. The fixed
// traversal order makes the remote-read streams perfectly repetitive (long
// streams, near-total temporal correlation), while the hubs add the
// single-producer/many-consumer sharing the paper highlights for producer-
// consumer workloads — each hub's consumption sequence recurs at many
// different nodes between updates.
type PageRank struct {
	cfg        Config
	vertices   int
	hubs       int
	iterations int
	// gather lists, per node: the vertex ids read during one iteration, in
	// fixed order. Built once; the graph does not change.
	gather [][]int
}

// NewPageRank builds a graph-analytics generator.
func NewPageRank(cfg Config) *PageRank {
	cfg = cfg.normalize()
	g := &PageRank{
		cfg:        cfg,
		vertices:   scaled(24000, cfg.Scale, 64*cfg.Nodes),
		hubs:       16,
		iterations: repeated(12, cfg.Repeat),
	}
	g.buildGather()
	return g
}

// Name implements Generator.
func (g *PageRank) Name() string { return "pagerank" }

// Class implements Generator.
func (g *PageRank) Class() Class { return Scientific }

// Timing implements Generator. Graph analytics is dominated by irregular
// remote reads (rank gathers), so the coherent stall fraction is high and
// the gather loop sustains a few misses in flight.
func (g *PageRank) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.25,
		OtherStallFraction:    0.15,
		CoherentStallFraction: 0.60,
		MLP:                   2.4,
		Lookahead:             16,
	}
}

func (g *PageRank) buildGather() {
	rng := rand.New(rand.NewSource(g.cfg.Seed + 307))
	per := (g.vertices + g.cfg.Nodes - 1) / g.cfg.Nodes
	// Hub vertices are spread across the partitions (one partition would
	// serialise every gather on a single producer node).
	hubIDs := make([]int, g.hubs)
	for i := range hubIDs {
		hubIDs[i] = rng.Intn(g.vertices)
	}
	g.gather = make([][]int, g.cfg.Nodes)
	for p := 0; p < g.cfg.Nodes; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > g.vertices {
			hi = g.vertices
		}
		for v := lo; v < hi; v++ {
			degree := 1 + rng.Intn(3)
			for d := 0; d < degree; d++ {
				var src int
				switch r := rng.Float64(); {
				case r < 0.05:
					// Power-law tail: an edge from a global hub.
					src = hubIDs[rng.Intn(g.hubs)]
				case r < 0.30:
					// Cut edge to the adjacent partition (spatial locality of
					// the partitioner). Ceil-division can leave the last
					// partition empty (or clamped shorter than qlo); fall back
					// to an intra-partition edge rather than drawing from an
					// empty range.
					q := (p + 1) % g.cfg.Nodes
					qlo, qhi := q*per, (q+1)*per
					if qhi > g.vertices {
						qhi = g.vertices
					}
					if qhi > qlo {
						src = qlo + rng.Intn(qhi-qlo)
					} else {
						src = lo + rng.Intn(hi-lo)
					}
				default:
					// Intra-partition edge (a private read after the owner's
					// own update; not a coherent miss).
					src = lo + rng.Intn(hi-lo)
				}
				g.gather[p] = append(g.gather[p], src)
			}
		}
	}
}

// Emit implements Generator. Each iteration every node scatters its own
// vertices' ranks (writes) and then gathers along its in-edges in fixed
// order; remote and hub sources are the coherent read misses.
func (g *PageRank) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(g.cfg.Seed + 311))
	per := (g.vertices + g.cfg.Nodes - 1) / g.cfg.Nodes
	writes := make([]cursor, g.cfg.Nodes)
	reads := make([]cursor, g.cfg.Nodes)
	for it := 0; it < g.iterations; it++ {
		// Scatter phase: owners update their vertices.
		for p := 0; p < g.cfg.Nodes; p++ {
			lo, hi := band(p, per, g.vertices)
			writes[p] = rangeCursor(g.cfg.Geometry, mem.NodeID(p), regionGraphRank, lo, hi, mem.Write)
		}
		if err := interleaveEmit(writes, 64, rng, yield); err != nil {
			return err
		}

		// Gather phase: fixed-order rank reads along the in-edges.
		for p := 0; p < g.cfg.Nodes; p++ {
			list := g.gather[p]
			reads[p] = indexCursor(g.cfg.Geometry, mem.NodeID(p), regionGraphRank, len(list),
				func(i int) int { return list[i] }, mem.Read)
		}
		if err := interleaveEmit(reads, 64, rng, yield); err != nil {
			return err
		}
	}
	return nil
}

// Generate implements Generator.
func (g *PageRank) Generate() []mem.Access { return Collect(g) }
