package workload

import (
	"math/rand"
	"testing"

	"tsm/internal/coherence"
	"tsm/internal/mem"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	return Config{Nodes: 4, Seed: 7, Scale: 0.05, Geometry: mem.DefaultGeometry()}
}

func TestRegistryComplete(t *testing.T) {
	specs := Registry()
	if len(specs) != 12 {
		t.Fatalf("registry has %d workloads, want 12", len(specs))
	}
	wantOrder := []string{"em3d", "moldyn", "ocean", "apache", "db2", "oracle", "zeus", "memkv", "pagerank", "cdn", "mix", "mix-sci-com"}
	for i, s := range specs {
		if s.Name != wantOrder[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, s.Name, wantOrder[i])
		}
		if s.Parameters == "" {
			t.Errorf("workload %q has no Table 2 parameters", s.Name)
		}
		if s.New == nil {
			t.Errorf("workload %q has no constructor", s.Name)
		}
		if s.Extra != (s.Name == "mix" || s.Name == "mix-sci-com") {
			t.Errorf("workload %q Extra = %v; only the cross-workload mixes are extras", s.Name, s.Extra)
		}
	}
	// Names() is the default suite — everything but the extras — so the
	// suite-wide experiment goldens are independent of registered mixes.
	names := Names()
	if len(names) != 10 {
		t.Fatalf("Names() = %v, want the 10 suite workloads", names)
	}
	for i := range names {
		if names[i] != wantOrder[i] {
			t.Fatalf("Names() = %v", names)
		}
	}
	all := AllNames()
	if len(all) != len(wantOrder) {
		t.Fatalf("AllNames() = %v", all)
	}
	for i := range wantOrder {
		if all[i] != wantOrder[i] {
			t.Fatalf("AllNames() = %v", all)
		}
	}
	if _, ok := ByName("db2"); !ok {
		t.Fatal("ByName(db2) should succeed")
	}
	if _, ok := ByName("mix"); !ok {
		t.Fatal("ByName(mix) should find the extra workloads")
	}
	if _, ok := ByName("notarealworkload"); ok {
		t.Fatal("ByName of unknown workload should fail")
	}
}

func TestClassString(t *testing.T) {
	if Scientific.String() != "scientific" || Commercial.String() != "commercial" {
		t.Fatal("unexpected class strings")
	}
}

func TestTimingProfilesValid(t *testing.T) {
	for _, spec := range Registry() {
		g := spec.New(testConfig())
		p := g.Timing()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid timing profile: %v", spec.Name, err)
		}
		if spec.Class != g.Class() {
			t.Errorf("%s: class mismatch", spec.Name)
		}
	}
	bad := TimingProfile{BusyFraction: 0.5, OtherStallFraction: 0.1, CoherentStallFraction: 0.1, MLP: 1, Lookahead: 8}
	if bad.Validate() == nil {
		t.Fatal("non-normalised profile should fail validation")
	}
	bad = TimingProfile{BusyFraction: 0.5, OtherStallFraction: 0.3, CoherentStallFraction: 0.2, MLP: 0.5, Lookahead: 8}
	if bad.Validate() == nil {
		t.Fatal("MLP < 1 should fail validation")
	}
	bad = TimingProfile{BusyFraction: 0.5, OtherStallFraction: 0.3, CoherentStallFraction: 0.2, MLP: 2, Lookahead: 0}
	if bad.Validate() == nil {
		t.Fatal("zero lookahead should fail validation")
	}
}

func TestGeneratorsProduceValidAccesses(t *testing.T) {
	cfg := testConfig()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.New(cfg)
			accesses := g.Generate()
			if len(accesses) < 1000 {
				t.Fatalf("%s generated only %d accesses", spec.Name, len(accesses))
			}
			reads, writes := 0, 0
			for _, a := range accesses {
				if int(a.Node) < 0 || int(a.Node) >= cfg.Nodes {
					t.Fatalf("access with node %d outside [0,%d)", a.Node, cfg.Nodes)
				}
				switch a.Type {
				case mem.Read:
					reads++
				case mem.Write, mem.AtomicRMW:
					writes++
				}
			}
			if reads == 0 || writes == 0 {
				t.Fatalf("%s: reads=%d writes=%d, want both nonzero", spec.Name, reads, writes)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := testConfig()
	for _, spec := range Registry() {
		a := spec.New(cfg).Generate()
		b := spec.New(cfg).Generate()
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic length %d vs %d", spec.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs between runs", spec.Name, i)
			}
		}
	}
}

func TestGeneratorsProduceConsumptions(t *testing.T) {
	cfg := testConfig()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.New(cfg)
			eng := coherence.New(coherence.Config{
				Nodes: cfg.Nodes, Geometry: cfg.Geometry, PointersPerEntry: 2,
			})
			tr := eng.Run(g.Generate())
			cons := tr.ConsumptionCount()
			if cons < 500 {
				t.Fatalf("%s produced only %d consumptions", spec.Name, cons)
			}
			// Every node should consume something.
			perNode := tr.NodeConsumptions(cfg.Nodes)
			for n, evs := range perNode {
				if len(evs) == 0 {
					t.Errorf("%s: node %d has no consumptions", spec.Name, n)
				}
			}
		})
	}
}

func TestCommercialWorkloadsEmitSpins(t *testing.T) {
	cfg := testConfig()
	for _, name := range []string{"db2", "oracle", "apache", "zeus", "memkv"} {
		spec, _ := ByName(name)
		accesses := spec.New(cfg).Generate()
		spins := 0
		for _, a := range accesses {
			if a.Spin {
				spins++
			}
		}
		if spins == 0 {
			t.Errorf("%s emits no spin accesses", name)
		}
	}
}

func TestScientificRepetitionAcrossIterations(t *testing.T) {
	// The per-node consumption order of em3d must repeat across iterations:
	// take node 1's consumptions, split in half (≈ per-iteration groups are
	// equal because there are 10 identical iterations) and check large
	// overlap in sequence.
	cfg := testConfig()
	spec, _ := ByName("em3d")
	g := spec.New(cfg)
	eng := coherence.New(coherence.Config{Nodes: cfg.Nodes, Geometry: cfg.Geometry, PointersPerEntry: 2})
	tr := eng.Run(g.Generate())
	per := tr.NodeConsumptions(cfg.Nodes)[1]
	if len(per) < 100 {
		t.Skip("not enough consumptions to check repetition")
	}
	// Count how many blocks appear more than once in the node's order —
	// with 10 iterations nearly every consumed block should recur.
	seen := map[mem.BlockAddr]int{}
	for _, e := range per {
		seen[e.Block]++
	}
	recurring := 0
	for _, c := range seen {
		if c > 1 {
			recurring++
		}
	}
	if float64(recurring) < 0.9*float64(len(seen)) {
		t.Fatalf("only %d of %d consumed blocks recur; em3d should be highly repetitive", recurring, len(seen))
	}
}

func TestPageRankDegeneratePartitions(t *testing.T) {
	// Ceil-division partitioning can leave the last partition empty when the
	// node count is large relative to the vertex count; generation must fall
	// back to intra-partition edges instead of panicking on an empty range.
	// Nodes=100, Scale=0.267 → 6408 vertices, per=ceil(6408/100)=65, so
	// partition 99 spans [6435, 6408): empty.
	cfg := Config{Nodes: 100, Seed: 3, Scale: 0.267, Geometry: mem.DefaultGeometry()}
	g := NewPageRank(cfg)
	if got := len(g.Generate()); got == 0 {
		t.Fatalf("degenerate partitioning generated %d accesses", got)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Nodes != 16 || c.Scale != 1.0 || c.Geometry.BlockSize != 64 || c.Seed == 0 {
		t.Fatalf("normalize() = %+v", c)
	}
	if scaled(100, 0.5, 10) != 50 || scaled(100, 0.001, 10) != 10 {
		t.Fatal("scaled() wrong")
	}
}

func TestInterleaveCoversAllAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	perNode := [][]mem.Access{
		make([]mem.Access, 10),
		make([]mem.Access, 25),
		make([]mem.Access, 3),
	}
	for n := range perNode {
		for i := range perNode[n] {
			perNode[n][i] = mem.Access{Node: mem.NodeID(n), Addr: mem.Addr(i * 64)}
		}
	}
	out := interleave(perNode, 4, rng)
	if len(out) != 38 {
		t.Fatalf("interleave dropped accesses: got %d, want 38", len(out))
	}
	// Per-node relative order must be preserved.
	next := map[mem.NodeID]mem.Addr{}
	for _, a := range out {
		if a.Addr < next[a.Node] {
			t.Fatal("interleave reordered a node's accesses")
		}
		next[a.Node] = a.Addr
	}
	// Zero chunk defaults sanely.
	if got := interleave(perNode, 0, nil); len(got) != 38 {
		t.Fatal("interleave with zero chunk should still cover everything")
	}
}

func TestBlockAddrRegionsDoNotCollide(t *testing.T) {
	g := mem.DefaultGeometry()
	a := blockAddr(g, regionOLTPRecords, 12345)
	b := blockAddr(g, regionOLTPHeap, 12345)
	if a == b {
		t.Fatal("different regions must not produce the same address")
	}
	if g.Offset(a) != 0 {
		t.Fatal("region addresses must be block aligned")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]struct{}{3: {}, 1: {}, 2: {}}
	k := sortedKeys(m)
	if len(k) != 3 || k[0] != 1 || k[1] != 2 || k[2] != 3 {
		t.Fatalf("sortedKeys = %v", k)
	}
}
