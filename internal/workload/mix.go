package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Mix colocates several workloads on one machine — the cross-workload
// scenario none of the paper's single-application runs exhibits. The default
// mix pairs the key-value store with the content-distribution tier: a serving
// stack where short, Zipf-hot KV chains (frequent short streams) interleave
// with long ordered CDN payload runs (scientific-length streams) on the SAME
// nodes, so each node's consumption order alternates between the two
// workloads' textures. That phase alternation is what stresses the TSE's
// per-node stream following: streams are repeatedly interrupted and resumed,
// unlike any single workload in the suite.
//
// Mix is built directly on the streaming emission path: each part's Emit
// runs on its own producer goroutine behind a bounded buffer (see pull in
// emit.go), and the mixer pulls phase-alternating bursts from each live part
// in rng-shuffled order until all parts are exhausted. Memory is bounded by
// the parts' own state plus the fixed pull buffers — never by trace length —
// and the output is deterministic because a single consumer drains the
// buffers in a seed-fixed order.
//
// The mixer takes ANY parts; two are registered: "mix" (memkv + cdn, two
// commercial textures) and "mix-sci-com" (em3d + db2, a scientific texture
// alternating with a commercial one — the paper's two workload classes
// colocated on the same machine).
type Mix struct {
	cfg   Config
	name  string
	parts []Generator
}

// mixChunk is the burst length: how many consecutive accesses one part
// contributes before the mixer switches to the next, mirroring how colocated
// services timeshare a node between request handlers.
const mixChunk = 64

// newMix assembles a named mix from already-constructed parts.
func newMix(cfg Config, name string, parts ...Generator) *Mix {
	return &Mix{cfg: cfg, name: name, parts: parts}
}

// NewMix builds the memkv+cdn colocated mix. Both parts run over all nodes
// at the shared configuration; their address regions are disjoint by
// construction (regionKV* vs regionCDN*), so the mix stresses scheduling and
// stream interleaving rather than accidental aliasing.
func NewMix(cfg Config) *Mix {
	cfg = cfg.normalize()
	return newMix(cfg, "mix", NewKVStore(cfg), NewCDN(cfg))
}

// NewMixSciCom builds the em3d+db2 colocated mix: a scientific code's long,
// highly repetitive producer/consumer streams phase-alternating with an OLTP
// workload's short migratory streams on the same nodes — the cross-CLASS
// colocation none of the paper's runs exhibits. The parts' address regions
// are disjoint by construction (the graph regions vs regionOLTP*).
func NewMixSciCom(cfg Config) *Mix {
	cfg = cfg.normalize()
	return newMix(cfg, "mix-sci-com", NewEM3D(cfg), NewOLTP(cfg, "DB2"))
}

// Name implements Generator.
func (m *Mix) Name() string { return m.name }

// Class implements Generator: a colocated stack is commercial if any part
// serves commercial traffic (its noise floor and stream interruptions
// dominate the node's texture); a mix of purely scientific parts stays
// scientific.
func (m *Mix) Class() Class {
	for _, g := range m.parts {
		if g.Class() == Commercial {
			return Commercial
		}
	}
	return Scientific
}

// Timing implements Generator: the equal-share blend of the parts' profiles
// (each part owns half of every node's time), with the lookahead of the
// longer-lookahead part so the TSE can still run ahead on the CDN payload
// streams.
func (m *Mix) Timing() TimingProfile {
	var p TimingProfile
	for _, g := range m.parts {
		t := g.Timing()
		p.BusyFraction += t.BusyFraction
		p.OtherStallFraction += t.OtherStallFraction
		p.CoherentStallFraction += t.CoherentStallFraction
		p.MLP += t.MLP
		if t.Lookahead > p.Lookahead {
			p.Lookahead = t.Lookahead
		}
	}
	n := float64(len(m.parts))
	p.BusyFraction /= n
	p.OtherStallFraction /= n
	p.CoherentStallFraction /= n
	p.MLP /= n
	return p
}

// Emit implements Generator: pull phase-alternating bursts from each part's
// bounded-buffer stream, shuffling the visit order each round, until every
// part is exhausted.
func (m *Mix) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 503))
	pulls := make([]*pull, len(m.parts))
	for i, g := range m.parts {
		pulls[i] = newPull(g)
	}
	defer func() {
		for _, p := range pulls {
			p.stop()
		}
	}()

	order := make([]int, len(pulls))
	for i := range order {
		order[i] = i
	}
	done := make([]bool, len(pulls))
	alive := len(pulls)
	var yerr error
	for alive > 0 && yerr == nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			if done[i] {
				continue
			}
			for k := 0; k < mixChunk; k++ {
				a, ok := pulls[i].next()
				if !ok {
					done[i] = true
					alive--
					break
				}
				if yerr = yield(a); yerr != nil {
					break
				}
			}
			if yerr != nil {
				break
			}
		}
	}

	// Stop the producers and surface any generation error a part reported
	// (the early-stop sentinel is already mapped to nil by the adapter).
	for _, p := range pulls {
		p.stop()
	}
	for _, p := range pulls {
		if err := p.err(); err != nil && yerr == nil {
			yerr = err
		}
	}
	return yerr
}

// Generate implements Generator.
func (m *Mix) Generate() []mem.Access { return Collect(m) }
