package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Address-space regions used by the scientific generators.
const (
	regionEM3DValues = 1
	regionMoldynPos  = 2
	regionOceanGrid  = 3
	regionOceanGrid2 = 4
)

// EM3D models the electromagnetic-force kernel of Culler et al.'s em3d: a
// bipartite graph whose nodes are partitioned across processors. Each
// iteration every processor updates its own graph nodes and then reads the
// values of its neighbours; remote neighbours (a configurable percentage,
// 15% in Table 2) cause coherent read misses. Because the graph is fixed,
// each processor's remote-read order is identical across iterations, which
// is the source of em3d's near-perfect temporal correlation and very long
// streams (Figures 6 and 13).
type EM3D struct {
	cfg        Config
	graphNodes int
	degree     int
	span       int
	remotePct  float64
	iterations int
	neighbors  [][]int // per graph node, neighbour graph-node indices
}

// NewEM3D builds an em3d generator. The default problem is scaled down from
// the paper's 400K graph nodes to keep trace sizes tractable; Scale restores
// larger problems.
func NewEM3D(cfg Config) *EM3D {
	cfg = cfg.normalize()
	g := &EM3D{
		cfg:        cfg,
		graphNodes: scaled(40000, cfg.Scale, 64*cfg.Nodes),
		degree:     2,
		span:       5,
		remotePct:  0.15,
		iterations: repeated(15, cfg.Repeat),
	}
	g.buildGraph()
	return g
}

// Name implements Generator.
func (g *EM3D) Name() string { return "em3d" }

// Class implements Generator.
func (g *EM3D) Class() Class { return Scientific }

// Timing implements Generator. The stall breakdown follows Figure 14's
// baseline bars (em3d is communication bound) and the MLP/lookahead values
// follow Table 3.
func (g *EM3D) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.20,
		OtherStallFraction:    0.10,
		CoherentStallFraction: 0.70,
		MLP:                   2.0,
		Lookahead:             18,
	}
}

// owner returns the processor owning a graph node (contiguous partition).
func (g *EM3D) owner(node int) int {
	per := (g.graphNodes + g.cfg.Nodes - 1) / g.cfg.Nodes
	return node / per
}

func (g *EM3D) buildGraph() {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	per := (g.graphNodes + g.cfg.Nodes - 1) / g.cfg.Nodes
	g.neighbors = make([][]int, g.graphNodes)
	for n := 0; n < g.graphNodes; n++ {
		owner := g.owner(n)
		for d := 0; d < g.degree; d++ {
			var nb int
			if rng.Float64() < g.remotePct {
				// Remote neighbour on a processor within +/- span.
				offset := rng.Intn(2*g.span) - g.span
				if offset == 0 {
					offset = 1
				}
				p := ((owner+offset)%g.cfg.Nodes + g.cfg.Nodes) % g.cfg.Nodes
				nb = p*per + rng.Intn(per)
			} else {
				nb = owner*per + rng.Intn(per)
			}
			if nb >= g.graphNodes {
				nb = g.graphNodes - 1
			}
			g.neighbors[n] = append(g.neighbors[n], nb)
		}
	}
}

// Emit implements Generator.
func (g *EM3D) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(g.cfg.Seed + 17))
	per := (g.graphNodes + g.cfg.Nodes - 1) / g.cfg.Nodes
	// Per-node phase lengths are fixed across iterations; count the
	// neighbour reads once.
	readCount := make([]int, g.cfg.Nodes)
	for p := 0; p < g.cfg.Nodes; p++ {
		lo, hi := band(p, per, g.graphNodes)
		for n := lo; n < hi; n++ {
			readCount[p] += len(g.neighbors[n])
		}
	}
	writes := make([]cursor, g.cfg.Nodes)
	reads := make([]cursor, g.cfg.Nodes)
	for it := 0; it < g.iterations; it++ {
		// Phase 1: every processor updates its own graph nodes.
		for p := 0; p < g.cfg.Nodes; p++ {
			lo, hi := band(p, per, g.graphNodes)
			writes[p] = rangeCursor(g.cfg.Geometry, mem.NodeID(p), regionEM3DValues, lo, hi, mem.Write)
		}
		if err := interleaveEmit(writes, 64, rng, yield); err != nil {
			return err
		}

		// Phase 2: every processor reads its neighbours' values in graph
		// order; remote neighbours are the coherent read misses.
		for p := 0; p < g.cfg.Nodes; p++ {
			p := p
			lo, _ := band(p, per, g.graphNodes)
			n, d := lo, 0
			reads[p] = cursor{n: readCount[p], next: func() mem.Access {
				for d >= len(g.neighbors[n]) {
					n++
					d = 0
				}
				nb := g.neighbors[n][d]
				d++
				return mem.Access{
					Node: mem.NodeID(p), Addr: blockAddr(g.cfg.Geometry, regionEM3DValues, nb),
					Type: mem.Read, Shared: true,
				}
			}}
		}
		if err := interleaveEmit(reads, 64, rng, yield); err != nil {
			return err
		}
	}
	return nil
}

// Generate implements Generator.
func (g *EM3D) Generate() []mem.Access { return Collect(g) }

// Moldyn models the molecular-dynamics kernel of Mukherjee et al.: molecules
// are partitioned across processors; every iteration each processor updates
// its molecules' positions and then walks its interaction list, reading the
// positions of partner molecules, a fraction of which live on other
// processors. The interaction list is rebuilt periodically (molecules move
// between neighbourhoods), so streams are long and repetitive but not
// perfectly persistent.
type Moldyn struct {
	cfg          Config
	molecules    int
	interactions int
	rebuildEvery int
	churn        float64
	iterations   int
}

// NewMoldyn builds a moldyn generator (scaled down from 19652 molecules /
// 2.56M interactions).
func NewMoldyn(cfg Config) *Moldyn {
	cfg = cfg.normalize()
	m := &Moldyn{
		cfg:          cfg,
		molecules:    scaled(8192, cfg.Scale, 64*cfg.Nodes),
		rebuildEvery: 6,
		churn:        0.08,
		iterations:   repeated(15, cfg.Repeat),
	}
	m.interactions = m.molecules * 6
	return m
}

// Name implements Generator.
func (m *Moldyn) Name() string { return "moldyn" }

// Class implements Generator.
func (m *Moldyn) Class() Class { return Scientific }

// Timing implements Generator (Table 3: MLP 1.6, lookahead 16).
func (m *Moldyn) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.35,
		OtherStallFraction:    0.20,
		CoherentStallFraction: 0.45,
		MLP:                   1.6,
		Lookahead:             16,
	}
}

func (m *Moldyn) owner(mol int) int {
	per := (m.molecules + m.cfg.Nodes - 1) / m.cfg.Nodes
	return mol / per
}

// Emit implements Generator.
func (m *Moldyn) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 29))
	per := (m.molecules + m.cfg.Nodes - 1) / m.cfg.Nodes
	// Interaction list: pairs (local molecule, partner molecule). Partners
	// are drawn mostly from the same processor with a remote fraction that
	// produces the coherent traffic.
	type pair struct{ local, partner int }
	buildPairs := func() [][]pair {
		perNode := make([][]pair, m.cfg.Nodes)
		for p := 0; p < m.cfg.Nodes; p++ {
			lo, hi := p*per, (p+1)*per
			if hi > m.molecules {
				hi = m.molecules
			}
			count := m.interactions / m.cfg.Nodes
			for i := 0; i < count; i++ {
				local := lo + rng.Intn(hi-lo)
				var partner int
				if rng.Float64() < 0.25 {
					// Remote partner. With a spatial decomposition almost
					// all remote interactions reach the adjacent processor
					// and each boundary molecule is read by essentially one
					// remote consumer, which is what gives moldyn its
					// near-perfect temporal correlation.
					q := (p + 1) % m.cfg.Nodes
					if m.cfg.Nodes > 2 && rng.Float64() < 0.05 {
						q = rng.Intn(m.cfg.Nodes)
					}
					qlo := q * per
					qhi := qlo + per
					if qhi > m.molecules {
						qhi = m.molecules
					}
					partner = qlo + rng.Intn(qhi-qlo)
				} else {
					partner = lo + rng.Intn(hi-lo)
				}
				perNode[p] = append(perNode[p], pair{local, partner})
			}
		}
		return perNode
	}
	pairs := buildPairs()

	writes := make([]cursor, m.cfg.Nodes)
	reads := make([]cursor, m.cfg.Nodes)
	for it := 0; it < m.iterations; it++ {
		if it > 0 && it%m.rebuildEvery == 0 {
			// Periodic neighbour-list rebuild: a fraction of pairs change.
			// New partners come from the same spatial neighbourhood (the
			// owning processor's band or the adjacent one), as molecules
			// drift only gradually between neighbourhoods.
			for p := range pairs {
				for i := range pairs[p] {
					if rng.Float64() < m.churn {
						q := p
						if rng.Float64() < 0.25 {
							q = (p + 1) % m.cfg.Nodes
						}
						qlo := q * per
						qhi := qlo + per
						if qhi > m.molecules {
							qhi = m.molecules
						}
						pairs[p][i].partner = qlo + rng.Intn(qhi-qlo)
					}
				}
			}
		}
		// Phase 1: position updates (writes by owners).
		for p := 0; p < m.cfg.Nodes; p++ {
			lo, hi := band(p, per, m.molecules)
			writes[p] = rangeCursor(m.cfg.Geometry, mem.NodeID(p), regionMoldynPos, lo, hi, mem.Write)
		}
		if err := interleaveEmit(writes, 64, rng, yield); err != nil {
			return err
		}

		// Phase 2: force computation reads partner positions in list order.
		for p := 0; p < m.cfg.Nodes; p++ {
			list := pairs[p]
			reads[p] = indexCursor(m.cfg.Geometry, mem.NodeID(p), regionMoldynPos, len(list),
				func(i int) int { return list[i].partner }, mem.Read)
		}
		if err := interleaveEmit(reads, 64, rng, yield); err != nil {
			return err
		}
	}
	return nil
}

// Generate implements Generator.
func (m *Moldyn) Generate() []mem.Access { return Collect(m) }

// Ocean models the SPLASH-2 ocean current simulation: a 2D grid partitioned
// into horizontal bands, one per processor. Each relaxation sweep a
// processor updates its band and then reads the boundary rows of its
// neighbours. The boundary exchange arrives in bursts (ocean blocks its
// computation), which is why ocean shows the high consumption MLP of
// Table 3 and why even a large lookahead only partially hides its misses.
type Ocean struct {
	cfg        Config
	rows, cols int
	iterations int
}

// NewOcean builds an ocean generator (scaled down from the 514x514 grid).
func NewOcean(cfg Config) *Ocean {
	cfg = cfg.normalize()
	side := scaled(258, cfg.Scale, 4*cfg.Nodes)
	return &Ocean{cfg: cfg, rows: side, cols: side, iterations: repeated(12, cfg.Repeat)}
}

// Name implements Generator.
func (o *Ocean) Name() string { return "ocean" }

// Class implements Generator.
func (o *Ocean) Class() Class { return Scientific }

// Timing implements Generator (Table 3: MLP 6.6, lookahead 24).
func (o *Ocean) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.45,
		OtherStallFraction:    0.30,
		CoherentStallFraction: 0.25,
		MLP:                   6.6,
		Lookahead:             24,
	}
}

// Emit implements Generator.
func (o *Ocean) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(o.cfg.Seed + 43))
	bandRows := (o.rows + o.cfg.Nodes - 1) / o.cfg.Nodes
	// Ocean keeps several grids (stream function, vorticity, ...); the
	// boundary exchange reads the same row of more than one grid, which is
	// why its coherent read misses do not form a simple strided sequence
	// even though the data is array based.
	cellA := func(r, c int) mem.Addr {
		return blockAddr(o.cfg.Geometry, regionOceanGrid, r*o.cols+c)
	}
	cellB := func(r, c int) mem.Addr {
		return blockAddr(o.cfg.Geometry, regionOceanGrid2, r*o.cols+c)
	}
	// rowCursor walks nrows rows (row(0)..row(nrows-1)) cell by cell,
	// emitting the grid-A and grid-B access of each cell back to back.
	rowCursor := func(p, nrows int, row func(int) int, typ mem.AccessType) cursor {
		ri, c, second := 0, 0, false
		return cursor{n: 2 * o.cols * nrows, next: func() mem.Access {
			r := row(ri)
			var addr mem.Addr
			if second {
				addr = cellB(r, c)
				c++
				if c == o.cols {
					c = 0
					ri++
				}
			} else {
				addr = cellA(r, c)
			}
			second = !second
			return mem.Access{Node: mem.NodeID(p), Addr: addr, Type: typ, Shared: true}
		}}
	}
	writes := make([]cursor, o.cfg.Nodes)
	reads := make([]cursor, o.cfg.Nodes)
	for it := 0; it < o.iterations; it++ {
		// Phase 1: interior update — each processor writes its band of both
		// grids.
		for p := 0; p < o.cfg.Nodes; p++ {
			lo, hi := band(p, bandRows, o.rows)
			nrows := hi - lo
			if nrows < 0 {
				nrows = 0
			}
			writes[p] = rowCursor(p, nrows, func(i int) int { return lo + i }, mem.Write)
		}
		if err := interleaveEmit(writes, 128, rng, yield); err != nil {
			return err
		}

		// Phase 2: boundary exchange — each processor reads the rows just
		// outside its band from both grids, in a tight burst (large
		// interleave chunk), which is what gives ocean its bursty
		// consumption behaviour and high MLP.
		for p := 0; p < o.cfg.Nodes; p++ {
			lo, hi := band(p, bandRows, o.rows)
			// The rows just outside the band: above (when the band does not
			// start the grid) and below (when it does not end it).
			var boundary [2]int
			nrows := 0
			if lo > 0 {
				boundary[nrows] = lo - 1
				nrows++
			}
			if hi < o.rows {
				boundary[nrows] = hi
				nrows++
			}
			reads[p] = rowCursor(p, nrows, func(i int) int { return boundary[i] }, mem.Read)
		}
		if err := interleaveEmit(reads, 2*o.cols, rng, yield); err != nil {
			return err
		}
	}
	return nil
}

// Generate implements Generator.
func (o *Ocean) Generate() []mem.Access { return Collect(o) }
