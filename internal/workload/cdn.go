package workload

import (
	"math/rand"

	"tsm/internal/mem"
)

// Address-space regions used by the content-distribution generator.
const (
	regionCDNObjects = 24 // content object payload runs
	regionCDNConn    = 25 // recycled per-request connection state
)

// CDN models a content-distribution / media-serving tier: origin nodes
// publish multi-block content objects that edge nodes then serve. Every
// request reads its object's payload blocks in order, so each object forms
// one long, perfectly ordered consumption stream with a single producer and
// many consumers — scientific-length streams wrapped in commercial noise,
// a mix none of the paper's seven workloads exhibits. Object popularity is
// Zipf-skewed; periodic refreshes (the origin rewriting an object)
// invalidate the edges' cached copies, so hot objects are re-streamed again
// and again while cold objects decay. Per-request connection state over a
// recycled pool contributes the uncorrelated consumption noise.
type CDN struct {
	cfg      Config
	objects  int
	requests int
	// base block index and length of each object's payload run.
	base []int
	size []int
}

// NewCDN builds a content-distribution generator.
func NewCDN(cfg Config) *CDN {
	cfg = cfg.normalize()
	c := &CDN{
		cfg:      cfg,
		objects:  scaled(600, cfg.Scale, 64),
		requests: repeated(scaled(6000, cfg.Scale, 500), cfg.Repeat),
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 401))
	c.base = make([]int, c.objects)
	c.size = make([]int, c.objects)
	next := 0
	for i := 0; i < c.objects; i++ {
		c.base[i] = next
		c.size[i] = 4 + rng.Intn(28)
		next += c.size[i]
	}
	return c
}

// Name implements Generator.
func (c *CDN) Name() string { return "cdn" }

// Class implements Generator.
func (c *CDN) Class() Class { return Commercial }

// Timing implements Generator. Serving content is I/O- and copy-heavy
// (large busy/other components); payload reads arrive back to back while an
// object is transferred, sustaining more outstanding misses than the
// request/response web servers.
func (c *CDN) Timing() TimingProfile {
	return TimingProfile{
		BusyFraction:          0.33,
		OtherStallFraction:    0.37,
		CoherentStallFraction: 0.30,
		MLP:                   1.8,
		Lookahead:             12,
	}
}

// Emit implements Generator. Requests execute on round-robin edge
// nodes; each reads one Zipf-popular object's payload run in order.
// Periodically the object's origin node refreshes the payload, invalidating
// every edge copy.
func (c *CDN) Emit(yield func(mem.Access) error) error {
	rng := rand.New(rand.NewSource(c.cfg.Seed + 409))
	zipf := rand.NewZipf(rng, 1.05, 1, uint64(c.objects-1))

	// Recycled connection/socket state, constantly rewritten on one node and
	// read on another (the uncorrelated commercial noise component).
	conn := make([]int, 2048)
	for i := range conn {
		conn[i] = rng.Intn(1 << 20)
	}

	em := &emitter{yield: yield}
	add := func(node, region, index int, typ mem.AccessType) {
		em.emit(mem.Access{
			Node:   mem.NodeID(node),
			Addr:   blockAddr(c.cfg.Geometry, region, index),
			Type:   typ,
			Shared: true,
		})
	}
	// origin returns the node that publishes an object (its home).
	origin := func(obj int) int { return obj % c.cfg.Nodes }

	// Initial publication: origins write every object once so the first
	// requests stream from the producers. Each node's publication sequence —
	// its objects in id order, blocks in payload order — is walked by a
	// cursor instead of being materialized.
	pubCount := make([]int, c.cfg.Nodes)
	for obj := 0; obj < c.objects; obj++ {
		pubCount[origin(obj)] += c.size[obj]
	}
	pub := make([]cursor, c.cfg.Nodes)
	for p := 0; p < c.cfg.Nodes; p++ {
		p := p
		obj, b := 0, 0
		pub[p] = cursor{n: pubCount[p], next: func() mem.Access {
			for origin(obj) != p || b >= c.size[obj] {
				obj++
				b = 0
			}
			a := mem.Access{
				Node: mem.NodeID(p), Addr: blockAddr(c.cfg.Geometry, regionCDNObjects, c.base[obj]+b),
				Type: mem.Write, Shared: true,
			}
			b++
			return a
		}}
	}
	if err := interleaveEmit(pub, 32, rng, yield); err != nil {
		return err
	}

	node := 0
	for req := 0; req < c.requests && !em.failed(); req++ {
		node = (node + 1) % c.cfg.Nodes
		obj := int(zipf.Uint64())

		// Periodic refresh: the origin rewrites a popular object, so the
		// next request from each edge re-streams the whole payload.
		if req%7 == 3 {
			fresh := int(zipf.Uint64())
			p := origin(fresh)
			for b := c.base[fresh]; b < c.base[fresh]+c.size[fresh]; b++ {
				add(p, regionCDNObjects, b, mem.Write)
			}
		}

		// Serve the request: payload blocks in order.
		for b := c.base[obj]; b < c.base[obj]+c.size[obj]; b++ {
			add(node, regionCDNObjects, b, mem.Read)
		}

		// Connection state around the transfer.
		for i := 0; i < 2; i++ {
			add(node, regionCDNConn, conn[rng.Intn(len(conn))], mem.Read)
		}
		add(node, regionCDNConn, conn[rng.Intn(len(conn))], mem.Write)
	}
	return em.err
}

// Generate implements Generator.
func (c *CDN) Generate() []mem.Access { return Collect(c) }
