package workload

import (
	"errors"
	"math/rand"
	"sync"

	"tsm/internal/mem"
)

// This file is the streaming half of the generator contract: every generator
// implements Emit (push one access at a time to a yield callback) and derives
// Generate from it via Collect. The pieces here let the generators express
// their phase structure without materializing per-node slices:
//
//   - cursor: one node's access sequence within a phase, as a known length
//     plus a pull function holding O(1) state;
//   - interleaveEmit: the bounded deterministic k-way interleaver that merges
//     per-node cursors into the global order, reproducing interleave's output
//     (including its rng draws) exactly — the property the byte-identical
//     goldens pin;
//   - emitter: a yield wrapper that latches the first error so straight-line
//     generators can emit without an error check at every call site;
//   - pull: a bounded-buffer adapter that converts a generator's push-style
//     Emit into a pull iterator (used by the cross-workload mix generator).

// Collect materializes a generator's emission stream. It is the shared
// Generate implementation: every generator's Generate method is this thin
// collect-adapter over Emit, which keeps the streamed and materialized paths
// identical by construction.
func Collect(g Generator) []mem.Access {
	var out []mem.Access
	// The yield below never fails, and generator-internal errors do not
	// exist on the collect path, so the returned error is structurally nil.
	_ = g.Emit(func(a mem.Access) error {
		out = append(out, a)
		return nil
	})
	return out
}

// cursor is one node's access sequence for a single interleaved phase: n is
// the exact number of accesses and next returns them in order (it is called
// exactly n times). Knowing n up front lets interleaveEmit make the same
// number of interleave rounds — and therefore the same rng draws — as the
// materialized interleave did, without buffering the sequence.
type cursor struct {
	n    int
	next func() mem.Access
}

// band returns partition p's index range [lo, hi) when n items are split
// across the nodes in ceil-division bands of size per. For trailing
// partitions lo may reach or exceed hi (an empty band); rangeCursor and
// plain lo..hi loops both treat that as zero items.
func band(p, per, n int) (lo, hi int) {
	lo, hi = p*per, (p+1)*per
	if hi > n {
		hi = n
	}
	return lo, hi
}

// indexCursor walks n region indices chosen by index(0..n-1), emitting one
// access per step — the shared shape behind the list-walk phases.
func indexCursor(g mem.Geometry, node mem.NodeID, region, n int, index func(int) int, typ mem.AccessType) cursor {
	i := 0
	return cursor{n: n, next: func() mem.Access {
		a := mem.Access{Node: node, Addr: blockAddr(g, region, index(i)), Type: typ, Shared: true}
		i++
		return a
	}}
}

// rangeCursor walks the contiguous index range [lo, hi) of a region (empty
// when lo >= hi) — the shared shape behind the owner-update phases.
func rangeCursor(g mem.Geometry, node mem.NodeID, region, lo, hi int, typ mem.AccessType) cursor {
	if lo > hi {
		lo = hi
	}
	return indexCursor(g, node, region, hi-lo, func(i int) int { return lo + i }, typ)
}

// sliceCursors adapts materialized per-node slices to cursors.
func sliceCursors(perNode [][]mem.Access) []cursor {
	out := make([]cursor, len(perNode))
	for i, s := range perNode {
		s := s
		pos := 0
		out[i] = cursor{n: len(s), next: func() mem.Access {
			a := s[pos]
			pos++
			return a
		}}
	}
	return out
}

// interleaveEmit merges per-node cursors into a single global order by taking
// chunks from each node in round-robin fashion, shuffling the node visit
// order each round, exactly as interleave does over materialized slices —
// same rounds, same rng draws, same output order — while holding only
// O(nodes) state. A non-nil error from yield aborts the merge immediately.
func interleaveEmit(perNode []cursor, chunk int, rng *rand.Rand, yield func(mem.Access) error) error {
	if chunk <= 0 {
		chunk = 8
	}
	total := 0
	for _, c := range perNode {
		if c.n > 0 {
			total += c.n
		}
	}
	idx := make([]int, len(perNode))
	order := make([]int, len(perNode))
	for i := range order {
		order[i] = i
	}
	emitted := 0
	for emitted < total {
		// Shuffle node visit order each round so no node is always first.
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		progressed := false
		for _, n := range order {
			c := perNode[n]
			if idx[n] >= c.n {
				continue
			}
			end := idx[n] + chunk
			if end > c.n {
				end = c.n
			}
			for ; idx[n] < end; idx[n]++ {
				if err := yield(c.next()); err != nil {
					return err
				}
				emitted++
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return nil
}

// emitter wraps a yield callback and latches its first error, so generators
// with long straight-line bodies can emit without checking an error at every
// call site and poll failed() at natural boundaries (once per transaction /
// request) instead.
type emitter struct {
	yield func(a mem.Access) error
	err   error
}

// emit forwards one access unless a previous yield already failed.
func (e *emitter) emit(a mem.Access) {
	if e.err == nil {
		e.err = e.yield(a)
	}
}

// failed reports whether a yield error has been latched.
func (e *emitter) failed() bool { return e.err != nil }

// errPullStopped is the sentinel a pull adapter's producer goroutine returns
// when the consumer stopped early; it is swallowed (an early stop is not a
// generation failure).
var errPullStopped = errors.New("workload: pull consumer stopped")

// pullBuffer bounds the per-generator buffer of a pull adapter: large enough
// to decouple producer and consumer bursts, small enough that a mix of
// arbitrarily long workloads still generates in constant memory.
const pullBuffer = 256

// pull converts a generator's push-style Emit into a bounded pull iterator:
// the generator runs on its own goroutine and blocks once pullBuffer accesses
// are waiting (backpressure), so the consumer controls the pace and the
// buffer — not the trace length — bounds memory. The consumption order is
// deterministic regardless of scheduling because a single consumer drains the
// buffer in channel order.
type pull struct {
	ch       chan mem.Access
	errc     chan error
	quit     chan struct{}
	stopOnce sync.Once
}

// newPull starts g's emission on a producer goroutine.
func newPull(g Generator) *pull {
	p := &pull{
		ch:   make(chan mem.Access, pullBuffer),
		errc: make(chan error, 1),
		quit: make(chan struct{}),
	}
	go func() {
		err := g.Emit(func(a mem.Access) error {
			select {
			case p.ch <- a:
				return nil
			case <-p.quit:
				return errPullStopped
			}
		})
		if err == errPullStopped {
			err = nil
		}
		close(p.ch)
		p.errc <- err
	}()
	return p
}

// next returns the next access; ok is false once the generator is exhausted.
func (p *pull) next() (mem.Access, bool) {
	a, ok := <-p.ch
	return a, ok
}

// stop tells the producer goroutine to exit at its next yield. Safe to call
// more than once.
func (p *pull) stop() { p.stopOnce.Do(func() { close(p.quit) }) }

// err blocks until the producer goroutine finishes and returns its error
// (nil when the generator completed or was stopped early).
func (p *pull) err() error { return <-p.errc }
