package workload

// Paper-scale presets. The default problem sizes were chosen when the whole
// access stream had to fit in memory; with generation now streaming in
// constant memory, the cap is gone and traces can approach the footprints
// the paper actually ran (Table 2). A preset raises Scale (the data-structure
// footprint) and Repeat (the run length) together:
//
//   - em3d:     Scale 10 restores the 400K-node graph (default 40K).
//   - moldyn:   Scale 2.4 restores ~19.6K molecules (default 8192).
//   - ocean:    Scale 2 restores the 514x514 grid (default 258x258; the grid
//               side scales linearly, cells quadratically).
//   - db2/oracle: Scale 4 grows the record-group working set toward the
//               100-warehouse buffer pools; Repeat 4 runs 40K transactions.
//   - apache/zeus: Scale 2 widens the per-connection metadata toward 16K
//               connections; Repeat 4 sustains the request stream.
//   - memkv:    Scale 2 doubles the keyspace; Repeat 4 serves 72K operations.
//   - pagerank: Scale 4 grows the graph toward ~100K vertices.
//   - cdn:      Scale 2 doubles the catalog; Repeat 4 serves 48K requests.
//   - mix:      the memkv/cdn preset applied to both colocated parts.
//   - mix-sci-com: a middle ground between the em3d and db2 presets — the
//               scientific part's graph grows 4x while the commercial part
//               sustains 4x the transactions.
//
// Repeat lengthens the trace without growing generator state, so a preset
// run's memory footprint is still the (scaled) problem state alone.

// Preset is a named problem-size configuration for one workload.
type Preset struct {
	// Scale multiplies the data-structure footprint (Config.Scale).
	Scale float64
	// Repeat multiplies the run length (Config.Repeat).
	Repeat float64
}

// paperPresets maps workload name to its paper-scale preset.
var paperPresets = map[string]Preset{
	"em3d":     {Scale: 10, Repeat: 1},
	"moldyn":   {Scale: 2.4, Repeat: 1},
	"ocean":    {Scale: 2, Repeat: 1},
	"apache":   {Scale: 2, Repeat: 4},
	"db2":      {Scale: 4, Repeat: 4},
	"oracle":   {Scale: 4, Repeat: 4},
	"zeus":     {Scale: 2, Repeat: 4},
	"memkv":    {Scale: 2, Repeat: 4},
	"pagerank": {Scale: 4, Repeat: 1},
	"cdn":      {Scale: 2, Repeat: 4},
	"mix":      {Scale: 2, Repeat: 4},

	"mix-sci-com": {Scale: 4, Repeat: 4},
}

// PaperPreset returns the Scale/Repeat at which the named workload's
// synthetic problem approaches the footprint the paper ran (see the package
// comment above for the per-workload mapping). ok is false for unknown
// workload names.
func PaperPreset(name string) (Preset, bool) {
	p, ok := paperPresets[name]
	return p, ok
}
