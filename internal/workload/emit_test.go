package workload

import (
	"errors"
	"math/rand"
	"testing"

	"tsm/internal/mem"
)

// TestEmitMatchesGenerate is the streaming-generation parity criterion: for
// EVERY registered workload — the paper's seven, the extended matrix and the
// cross-workload mix — the streamed emission must produce exactly the
// sequence the materialized Generate path produces, element for element.
// Since Generate is Collect over a fresh generator's Emit, comparing two
// independently constructed generators also re-proves determinism across the
// push path.
func TestEmitMatchesGenerate(t *testing.T) {
	cfg := testConfig()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want := spec.New(cfg).Generate()
			var got []mem.Access
			if err := spec.New(cfg).Emit(func(a mem.Access) error {
				got = append(got, a)
				return nil
			}); err != nil {
				t.Fatalf("Emit failed: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("Emit produced %d accesses, Generate %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("access %d: Emit %+v != Generate %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEmitStopsOnYieldError: a failing sink must abort emission promptly —
// the generator must not keep producing the rest of the trace — and the
// yield's error must come back unchanged.
func TestEmitStopsOnYieldError(t *testing.T) {
	cfg := testConfig()
	sentinel := errors.New("sink full")
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			total := len(spec.New(cfg).Generate())
			const stopAfter = 100
			seen := 0
			err := spec.New(cfg).Emit(func(a mem.Access) error {
				seen++
				if seen >= stopAfter {
					return sentinel
				}
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("Emit returned %v, want the yield error", err)
			}
			// "Promptly" = well before the end of the trace; the emitter
			// latching pattern may finish the current transaction/phase
			// bookkeeping, but must not run generation to completion.
			if seen >= total/2 {
				t.Fatalf("Emit yielded %d of %d accesses after the error; abort is not prompt", seen, total)
			}
		})
	}
}

// TestInterleaveEmitMatchesInterleave: the bounded-buffer streaming
// interleaver must reproduce the materialized interleave exactly — same
// output order AND same rng consumption — for awkward shapes (empty nodes,
// unequal lengths, chunk boundaries).
func TestInterleaveEmitMatchesInterleave(t *testing.T) {
	shapes := [][]int{
		{10, 25, 3},
		{0, 7, 0, 129},
		{64, 64, 64, 64},
		{1},
		{},
	}
	for _, chunk := range []int{0, 1, 4, 64} {
		for _, shape := range shapes {
			perNode := make([][]mem.Access, len(shape))
			for n, ln := range shape {
				for i := 0; i < ln; i++ {
					perNode[n] = append(perNode[n], mem.Access{Node: mem.NodeID(n), Addr: mem.Addr(i * 64)})
				}
			}
			want := interleave(perNode, chunk, rand.New(rand.NewSource(42)))
			// interleave is itself built on interleaveEmit, so drive
			// interleaveEmit with independently constructed cursors to make
			// this a real two-implementation check.
			cursors := make([]cursor, len(shape))
			for n, ln := range shape {
				n, ln := n, ln
				i := 0
				cursors[n] = cursor{n: ln, next: func() mem.Access {
					a := mem.Access{Node: mem.NodeID(n), Addr: mem.Addr(i * 64)}
					i++
					return a
				}}
			}
			var got []mem.Access
			rngB := rand.New(rand.NewSource(42))
			if err := interleaveEmit(cursors, chunk, rngB, func(a mem.Access) error {
				got = append(got, a)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("chunk %d shape %v: %d streamed vs %d materialized", chunk, shape, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("chunk %d shape %v: access %d differs", chunk, shape, i)
				}
			}
			// Both rngs must have advanced identically (same number of
			// shuffle rounds): their next outputs agree.
			rngA := rand.New(rand.NewSource(42))
			interleave(perNode, chunk, rngA)
			if rngA.Int63() != rngB.Int63() {
				t.Fatalf("chunk %d shape %v: rng consumption diverged", chunk, shape)
			}
		}
	}
}

// TestInterleaveEmitPropagatesError: a yield error aborts the merge at once.
func TestInterleaveEmitPropagatesError(t *testing.T) {
	sentinel := errors.New("stop")
	i := 0
	c := cursor{n: 100, next: func() mem.Access {
		i++
		return mem.Access{}
	}}
	err := interleaveEmit([]cursor{c}, 8, nil, func(mem.Access) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if i != 1 {
		t.Fatalf("interleaveEmit pulled %d accesses after the error, want 1", i)
	}
}

// TestMixColocatesParts: the mix must interleave BOTH parts' traffic —
// key-value chains and CDN payload/connection regions — across all nodes, in
// bursts no longer than the mix chunk.
func TestMixColocatesParts(t *testing.T) {
	cfg := testConfig()
	m := NewMix(cfg)
	if m.Name() != "mix" || m.Class() != Commercial {
		t.Fatalf("mix identity wrong: %q/%v", m.Name(), m.Class())
	}
	if err := m.Timing().Validate(); err != nil {
		t.Fatalf("mix timing profile invalid: %v", err)
	}
	accesses := m.Generate()
	if len(accesses) == 0 {
		t.Fatal("mix generated nothing")
	}
	kv := NewKVStore(cfg).Generate()
	cdn := NewCDN(cfg).Generate()
	if len(accesses) != len(kv)+len(cdn) {
		t.Fatalf("mix emitted %d accesses, want %d (kv) + %d (cdn)", len(accesses), len(kv), len(cdn))
	}
	const regionShift = 32
	regions := map[int]int{}
	for _, a := range accesses {
		regions[int(uint64(a.Addr)>>regionShift)]++
	}
	for _, r := range []int{regionKVChains, regionKVMeta, regionCDNObjects, regionCDNConn} {
		if regions[r] == 0 {
			t.Errorf("mix emitted no accesses in region %d; parts not colocated", r)
		}
	}
	// Per-part subsequences must be preserved: filtering the mix by region
	// family must reproduce each part's own stream.
	var gotKV, gotCDN []mem.Access
	for _, a := range accesses {
		switch r := int(uint64(a.Addr) >> regionShift); r {
		case regionKVChains, regionKVMeta, regionKVHeap, regionKVLocks:
			gotKV = append(gotKV, a)
		case regionCDNObjects, regionCDNConn:
			gotCDN = append(gotCDN, a)
		default:
			t.Fatalf("mix emitted access in unexpected region %d", r)
		}
	}
	for i := range kv {
		if gotKV[i] != kv[i] {
			t.Fatalf("mix reordered the kv subsequence at %d", i)
		}
	}
	for i := range cdn {
		if gotCDN[i] != cdn[i] {
			t.Fatalf("mix reordered the cdn subsequence at %d", i)
		}
	}
}

// TestMixSciComColocatesParts: the scientific+commercial mix must interleave
// em3d's graph traffic with db2's OLTP traffic on the same nodes, preserving
// each part's own stream order — the cross-class colocation the second
// registered mix models.
func TestMixSciComColocatesParts(t *testing.T) {
	cfg := testConfig()
	m := NewMixSciCom(cfg)
	if m.Name() != "mix-sci-com" || m.Class() != Commercial {
		t.Fatalf("mix-sci-com identity wrong: %q/%v", m.Name(), m.Class())
	}
	if err := m.Timing().Validate(); err != nil {
		t.Fatalf("mix-sci-com timing profile invalid: %v", err)
	}
	accesses := m.Generate()
	if len(accesses) == 0 {
		t.Fatal("mix-sci-com generated nothing")
	}
	em3d := NewEM3D(cfg).Generate()
	db2 := NewOLTP(cfg, "DB2").Generate()
	if len(accesses) != len(em3d)+len(db2) {
		t.Fatalf("mix-sci-com emitted %d accesses, want %d (em3d) + %d (db2)", len(accesses), len(em3d), len(db2))
	}
	// Per-part subsequences must be preserved: filtering the mix by region
	// family must reproduce each part's own stream.
	const regionShift = 32
	var gotEM3D, gotDB2 []mem.Access
	for _, a := range accesses {
		switch r := int(uint64(a.Addr) >> regionShift); r {
		case regionEM3DValues:
			gotEM3D = append(gotEM3D, a)
		case regionOLTPMeta, regionOLTPRecords, regionOLTPHeap, regionOLTPLocks:
			gotDB2 = append(gotDB2, a)
		default:
			t.Fatalf("mix-sci-com emitted access in unexpected region %d", r)
		}
	}
	if len(gotEM3D) != len(em3d) || len(gotDB2) != len(db2) {
		t.Fatalf("mix-sci-com split %d/%d accesses by region, want %d/%d", len(gotEM3D), len(gotDB2), len(em3d), len(db2))
	}
	for i := range em3d {
		if gotEM3D[i] != em3d[i] {
			t.Fatalf("mix-sci-com reordered the em3d subsequence at %d", i)
		}
	}
	for i := range db2 {
		if gotDB2[i] != db2[i] {
			t.Fatalf("mix-sci-com reordered the db2 subsequence at %d", i)
		}
	}
}

// TestMixStopsOnYieldError: the mix's producer goroutines must shut down
// promptly when the consumer fails (no leak, error returned).
func TestMixStopsOnYieldError(t *testing.T) {
	sentinel := errors.New("downstream dead")
	seen := 0
	err := NewMix(testConfig()).Emit(func(mem.Access) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if seen != 1 {
		t.Fatalf("mix yielded %d accesses after the error", seen)
	}
}

// TestRepeatLengthensTrace: Repeat must multiply the run length without
// changing the Repeat=1 sequence (which is what keeps the goldens pinned)
// and, for the phase-structured workloads, without changing the problem
// footprint.
func TestRepeatLengthensTrace(t *testing.T) {
	base := testConfig()
	double := base
	double.Repeat = 2
	for _, name := range []string{"em3d", "db2", "memkv", "cdn", "mix", "mix-sci-com"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		one := spec.New(base).Generate()
		two := spec.New(double).Generate()
		if len(two) < 3*len(one)/2 {
			t.Errorf("%s: Repeat=2 produced %d accesses vs %d at Repeat=1; run length did not grow",
				name, len(two), len(one))
		}
		explicit := base
		explicit.Repeat = 1
		same := spec.New(explicit).Generate()
		if len(same) != len(one) {
			t.Errorf("%s: explicit Repeat=1 changed the trace length", name)
		}
	}
}

// TestPaperPresetsCoverRegistry: every registered workload must have a paper
// preset, and every preset must name a registered workload.
func TestPaperPresetsCoverRegistry(t *testing.T) {
	for _, spec := range Registry() {
		p, ok := PaperPreset(spec.Name)
		if !ok {
			t.Errorf("no paper preset for %q", spec.Name)
			continue
		}
		if p.Scale <= 0 || p.Repeat <= 0 {
			t.Errorf("%s: preset %+v not positive", spec.Name, p)
		}
	}
	if len(paperPresets) != len(Registry()) {
		t.Errorf("%d presets for %d workloads", len(paperPresets), len(Registry()))
	}
	if _, ok := PaperPreset("bogus"); ok {
		t.Error("PaperPreset of unknown workload should fail")
	}
}
