// Package interconnect models the 2D torus interconnection network of the
// DSM system (Table 1: 4x4 2D torus, 25 ns per hop, 128 GB/s peak bisection
// bandwidth). It provides deterministic dimension-order routing distances,
// per-message-class latency, and traffic accounting used to reproduce
// Figure 11 (interconnect bisection bandwidth overhead).
package interconnect

import (
	"fmt"

	"tsm/internal/mem"
)

// MessageClass categorises traffic for accounting. The TSE overhead
// categories follow Section 5.4: the dominant overhead component is
// streaming addresses between nodes, plus CMOB pointer updates, stream
// requests and erroneously streamed (discarded) data blocks. Correctly
// streamed blocks replace baseline coherent read misses one-for-one and are
// therefore not overhead.
type MessageClass int

const (
	// ClassRequest is a coherence request (read, write, upgrade).
	ClassRequest MessageClass = iota
	// ClassData is a data response carrying one cache block.
	ClassData
	// ClassControl is a coherence control message (ack, invalidate).
	ClassControl
	// ClassCMOBPointer is a TSE CMOB pointer update to the directory.
	ClassCMOBPointer
	// ClassStreamRequest is a TSE stream request from directory to a
	// recent consumer node.
	ClassStreamRequest
	// ClassStreamAddresses is a TSE message carrying a batch of stream
	// addresses.
	ClassStreamAddresses
	// ClassStreamedData is a TSE-streamed data block. Only discarded
	// blocks count as overhead; useful ones replace baseline misses.
	ClassStreamedData
	numClasses
)

// String implements fmt.Stringer.
func (c MessageClass) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassData:
		return "data"
	case ClassControl:
		return "control"
	case ClassCMOBPointer:
		return "cmob-pointer"
	case ClassStreamRequest:
		return "stream-request"
	case ClassStreamAddresses:
		return "stream-addresses"
	case ClassStreamedData:
		return "streamed-data"
	default:
		return fmt.Sprintf("MessageClass(%d)", int(c))
	}
}

// IsTSEOverhead reports whether traffic of this class counts toward the TSE
// overhead bars of Figure 11.
func (c MessageClass) IsTSEOverhead() bool {
	switch c {
	case ClassCMOBPointer, ClassStreamRequest, ClassStreamAddresses, ClassStreamedData:
		return true
	default:
		return false
	}
}

// Config describes the torus.
type Config struct {
	// Width and Height are the torus dimensions (4x4 in the paper).
	Width, Height int
	// HopLatencyCycles is the per-hop latency in processor cycles.
	// The paper's 25 ns per hop at 4 GHz is 100 cycles.
	HopLatencyCycles uint64
	// LinkBandwidthGBs is the per-direction link bandwidth in GB/s used
	// to derive the peak bisection bandwidth. The paper quotes 128 GB/s
	// peak bisection bandwidth for its model.
	PeakBisectionGBs float64
}

// DefaultConfig returns the Table 1 torus parameters for a 16-node system
// with a 4 GHz clock.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatencyCycles: 100, PeakBisectionGBs: 128}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("interconnect: dimensions must be positive, got %dx%d", c.Width, c.Height)
	}
	if c.HopLatencyCycles == 0 {
		return fmt.Errorf("interconnect: hop latency must be positive")
	}
	return nil
}

// Nodes returns the number of nodes in the torus.
func (c Config) Nodes() int { return c.Width * c.Height }

// Torus is a 2D torus network model.
type Torus struct {
	cfg     Config
	traffic [numClasses]uint64 // bytes by class
	msgs    [numClasses]uint64 // messages by class
	// hopBytes accumulates bytes*hops, a flit-distance product used to
	// approximate link utilisation and bisection crossing.
	hopBytes [numClasses]uint64
}

// New builds a torus. It panics on an invalid configuration.
func New(cfg Config) *Torus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Torus{cfg: cfg}
}

// Config returns the torus configuration.
func (t *Torus) Config() Config { return t.cfg }

// coord returns the (x, y) coordinate of a node.
func (t *Torus) coord(n mem.NodeID) (int, int) {
	return int(n) % t.cfg.Width, int(n) / t.cfg.Width
}

// Hops returns the dimension-order routing distance between two nodes,
// taking the shorter way around each ring.
func (t *Torus) Hops(from, to mem.NodeID) int {
	fx, fy := t.coord(from)
	tx, ty := t.coord(to)
	dx := ringDistance(fx, tx, t.cfg.Width)
	dy := ringDistance(fy, ty, t.cfg.Height)
	return dx + dy
}

func ringDistance(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := size - d; wrap < d {
		return wrap
	}
	return d
}

// Latency returns the network latency in cycles for a message from one node
// to another (zero hops for a node talking to itself).
func (t *Torus) Latency(from, to mem.NodeID) uint64 {
	return uint64(t.Hops(from, to)) * t.cfg.HopLatencyCycles
}

// AverageHops returns the mean routing distance over all ordered pairs of
// distinct nodes; the timing model uses it for latency estimates when the
// communicating pair is not explicitly simulated.
func (t *Torus) AverageHops() float64 {
	n := t.cfg.Nodes()
	if n <= 1 {
		return 0
	}
	var total, pairs int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			total += t.Hops(mem.NodeID(i), mem.NodeID(j))
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// Send records a message of the given class and size travelling between two
// nodes and returns its latency in cycles. Traffic accounting assumes each
// byte traverses every hop on the path.
func (t *Torus) Send(from, to mem.NodeID, class MessageClass, bytes int) uint64 {
	if class < 0 || class >= numClasses {
		class = ClassControl
	}
	hops := t.Hops(from, to)
	t.traffic[class] += uint64(bytes)
	t.msgs[class]++
	t.hopBytes[class] += uint64(bytes) * uint64(hops)
	return uint64(hops) * t.cfg.HopLatencyCycles
}

// TrafficBytes returns the total bytes injected for a class.
func (t *Torus) TrafficBytes(class MessageClass) uint64 { return t.traffic[class] }

// Messages returns the number of messages injected for a class.
func (t *Torus) Messages(class MessageClass) uint64 { return t.msgs[class] }

// HopBytes returns the bytes*hops product for a class.
func (t *Torus) HopBytes(class MessageClass) uint64 { return t.hopBytes[class] }

// TotalBytes returns the total bytes injected across all classes.
func (t *Torus) TotalBytes() uint64 {
	var sum uint64
	for _, b := range t.traffic {
		sum += b
	}
	return sum
}

// OverheadBytes returns the bytes injected by TSE overhead classes.
func (t *Torus) OverheadBytes() uint64 {
	var sum uint64
	for c := MessageClass(0); c < numClasses; c++ {
		if c.IsTSEOverhead() {
			sum += t.traffic[c]
		}
	}
	return sum
}

// BaseBytes returns the bytes injected by non-overhead (baseline coherence)
// classes.
func (t *Torus) BaseBytes() uint64 { return t.TotalBytes() - t.OverheadBytes() }

// BisectionFraction estimates the fraction of hop-bytes that cross the
// bisection of the torus. For a symmetric torus under uniform traffic this
// is approximately (average hops crossing the cut)/(total hops); we use the
// standard approximation that half of all traffic crosses the bisection.
const BisectionFraction = 0.5

// BandwidthGBs converts a byte count accumulated over a number of cycles at
// the given clock rate (GHz) into GB/s of bisection bandwidth demand.
func BandwidthGBs(bytes uint64, cycles uint64, clockGHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / (clockGHz * 1e9)
	return float64(bytes) * BisectionFraction / seconds / 1e9
}

// Reset clears all traffic accounting.
func (t *Torus) Reset() {
	t.traffic = [numClasses]uint64{}
	t.msgs = [numClasses]uint64{}
	t.hopBytes = [numClasses]uint64{}
}
