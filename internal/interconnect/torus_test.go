package interconnect

import (
	"testing"
	"testing/quick"

	"tsm/internal/mem"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Nodes() != 16 {
		t.Fatalf("Nodes() = %d, want 16", cfg.Nodes())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 4, HopLatencyCycles: 1},
		{Width: 4, Height: -1, HopLatencyCycles: 1},
		{Width: 4, Height: 4, HopLatencyCycles: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestHops(t *testing.T) {
	tor := New(Config{Width: 4, Height: 4, HopLatencyCycles: 100})
	cases := []struct {
		from, to mem.NodeID
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wraparound in x
		{0, 12, 1}, // wraparound in y
		{0, 15, 2}, // (3,3): 1+1 with wraparound
		{0, 5, 2},
		{0, 10, 4}, // (2,2): 2+2
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := tor.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestHopsSymmetricAndBounded(t *testing.T) {
	tor := New(Config{Width: 4, Height: 4, HopLatencyCycles: 100})
	f := func(a, b uint8) bool {
		from := mem.NodeID(int(a) % 16)
		to := mem.NodeID(int(b) % 16)
		h := tor.Hops(from, to)
		if h != tor.Hops(to, from) {
			return false
		}
		if h < 0 || h > 4 { // max 2+2 in a 4x4 torus
			return false
		}
		return (h == 0) == (from == to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAndSend(t *testing.T) {
	tor := New(Config{Width: 4, Height: 4, HopLatencyCycles: 100})
	if l := tor.Latency(0, 10); l != 400 {
		t.Fatalf("Latency(0,10) = %d, want 400", l)
	}
	lat := tor.Send(0, 1, ClassData, 64)
	if lat != 100 {
		t.Fatalf("Send latency = %d, want 100", lat)
	}
	if tor.TrafficBytes(ClassData) != 64 || tor.Messages(ClassData) != 1 {
		t.Fatal("traffic accounting wrong after Send")
	}
	if tor.HopBytes(ClassData) != 64 {
		t.Fatalf("HopBytes = %d, want 64", tor.HopBytes(ClassData))
	}
}

func TestOverheadClassification(t *testing.T) {
	tor := New(DefaultConfig())
	tor.Send(0, 1, ClassRequest, 8)
	tor.Send(0, 1, ClassData, 64)
	tor.Send(1, 0, ClassStreamAddresses, 48)
	tor.Send(1, 0, ClassCMOBPointer, 8)
	if tor.BaseBytes() != 72 {
		t.Fatalf("BaseBytes = %d, want 72", tor.BaseBytes())
	}
	if tor.OverheadBytes() != 56 {
		t.Fatalf("OverheadBytes = %d, want 56", tor.OverheadBytes())
	}
	if tor.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d, want 128", tor.TotalBytes())
	}
	tor.Reset()
	if tor.TotalBytes() != 0 {
		t.Fatal("Reset should clear traffic")
	}
}

func TestMessageClassStrings(t *testing.T) {
	classes := []MessageClass{ClassRequest, ClassData, ClassControl, ClassCMOBPointer,
		ClassStreamRequest, ClassStreamAddresses, ClassStreamedData}
	seen := map[string]bool{}
	for _, c := range classes {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("class %d has empty or duplicate string %q", c, s)
		}
		seen[s] = true
	}
	if MessageClass(99).String() == "" {
		t.Fatal("unknown class should produce a string")
	}
	if ClassRequest.IsTSEOverhead() || ClassData.IsTSEOverhead() {
		t.Fatal("baseline classes must not be overhead")
	}
	if !ClassStreamAddresses.IsTSEOverhead() || !ClassStreamedData.IsTSEOverhead() {
		t.Fatal("stream classes must be overhead")
	}
}

func TestAverageHops(t *testing.T) {
	tor := New(Config{Width: 4, Height: 4, HopLatencyCycles: 100})
	avg := tor.AverageHops()
	// For a 4x4 torus the mean distance over distinct pairs is 32/15.
	want := 32.0 / 15.0
	if diff := avg - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("AverageHops = %v, want %v", avg, want)
	}
	single := New(Config{Width: 1, Height: 1, HopLatencyCycles: 1})
	if single.AverageHops() != 0 {
		t.Fatal("single-node torus should have zero average hops")
	}
}

func TestBandwidthGBs(t *testing.T) {
	// 1e9 bytes over 1e9 cycles at 1 GHz = 1 second -> 0.5 GB/s after
	// bisection fraction.
	got := BandwidthGBs(1e9, 1e9, 1.0)
	if diff := got - 0.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("BandwidthGBs = %v, want 0.5", got)
	}
	if BandwidthGBs(100, 0, 1.0) != 0 {
		t.Fatal("zero cycles should yield zero bandwidth")
	}
}
