package tsm

// Configurable file replay: how a saved trace is opened and decoded. Version
// 3 trace files carry a chunk index (internal/stream, codec.go), so they can
// be decoded by a pool of parallel per-chunk workers and replayed from an
// arbitrary event range without streaming the prefix. ReplayConfig selects
// those behaviours; the zero value is the classic serial streaming decode.
// Every replay entry point funnels through the *With functions here —
// EvaluateTSEFile and friends are thin wrappers over a zero ReplayConfig —
// so serial and parallel decode share one code path and stay bit-identical
// (pinned by differential tests at 1/4/8 workers across all workloads).

import (
	"errors"
	"fmt"
	"path/filepath"

	"tsm/internal/obs"
	"tsm/internal/stream"
)

// ReplayConfig selects how a trace file is decoded during replay. The zero
// value reproduces the classic behaviour: one streaming decode pass over the
// whole file.
type ReplayConfig struct {
	// DecodeWorkers selects parallel-by-chunk decode over the version 3
	// chunk index: > 0 uses that many decode goroutines (1 still takes the
	// indexed path, just without concurrency), < 0 picks one per core, and 0
	// keeps the serial streaming decoder. On version 1/2 files — which have
	// no index — parallel requests quietly fall back to the serial decoder
	// unless an event range is set (ranged replay needs the index).
	DecodeWorkers int
	// From and To bound replay to events with sequence numbers in
	// [From, To); To == 0 means the end of the trace. Events keep the
	// sequence numbers they have in the full trace. Requires a version 3
	// (indexed) trace file.
	From, To uint64
	// Mmap maps the trace file into memory (stream.OpenFileMmap) so decode
	// workers parse chunks straight out of the mapped pages — no per-chunk
	// read syscall, no copy. It implies the indexed open (per-core decode
	// workers unless DecodeWorkers says otherwise, like From/To); on
	// platforms without mmap support the mapping quietly degrades to ReadAt,
	// and on version 1/2 files the request falls back to the serial decoder
	// like any other parallel request. Output is byte-identical either way.
	Mmap bool
}

// ranged reports whether the config restricts replay to an event sub-range.
func (rc ReplayConfig) ranged() bool { return rc.From > 0 || rc.To > 0 }

// wantsIndex reports whether the config needs the indexed (seeking) open at
// all — any parallel-decode request, event range or mmap request does.
func (rc ReplayConfig) wantsIndex() bool {
	return rc.DecodeWorkers != 0 || rc.ranged() || rc.Mmap
}

// replaySource is what file replay needs from an open trace: the event
// stream, the embedded generation metadata, a completion fraction for
// progress/ETA, and a Close. Both the serial stream.FileReader and the
// parallel stream.ParallelReader satisfy it.
type replaySource interface {
	EventSource
	Meta() TraceMeta
	Fraction() float64
	Close() error
}

// openReplaySource opens path according to rc: the indexed parallel reader
// when parallel decode or an event range was requested, the serial streaming
// reader otherwise — or as the fallback when a parallel request hits a
// pre-index (version 1/2) file. A ranged request on an unindexed file is an
// error rather than a silently ignored range.
func openReplaySource(path string, rc ReplayConfig, ins Instrumentation) (replaySource, error) {
	if !rc.wantsIndex() {
		return stream.OpenFile(path)
	}
	workers := rc.DecodeWorkers
	if workers < 0 {
		workers = 0 // one per core
	}
	pr, err := stream.OpenFileParallel(path, stream.ParallelOptions{
		Workers: workers,
		From:    rc.From,
		To:      rc.To,
		Mmap:    rc.Mmap,
		Metrics: ins.Metrics,
		Tracer:  ins.Tracer,
	})
	if err == nil {
		return pr, nil
	}
	if errors.Is(err, stream.ErrNoIndex) && !rc.ranged() {
		return stream.OpenFile(path)
	}
	if errors.Is(err, stream.ErrNoIndex) {
		return nil, fmt.Errorf("tsm: replaying %s from event %d: %w (regenerate the trace, or replay without -from/-to)", path, rc.From, err)
	}
	return nil, err
}

// beginFileRun primes the provenance-side attachments before a file replay:
// the manifest records the trace's header-level identity and the replay
// settings, and — when the file is indexed, so the total event count is known
// up front — an attached SeriesSet with no explicit interval is auto-sized to
// land about obs.DefaultSeriesPoints samples across the run. Describe reads
// only the header and index footer, so this is cheap; describe errors are
// swallowed here because the open that follows reports them properly.
func (ins Instrumentation) beginFileRun(op, path, sweep string, rc ReplayConfig) {
	if ins.Series == nil && ins.Manifest == nil {
		return
	}
	info, err := stream.Describe(path)
	ins.Manifest.begin(op, path, rc, sweep, info, err)
	if ins.Series != nil && err == nil && info.Indexed && info.Events > 0 {
		n := info.Events
		if rc.ranged() {
			lo, hi := rc.From, rc.To
			if hi == 0 || hi > n {
				hi = n
			}
			if lo < hi {
				n = hi - lo
			}
		}
		interval := n / obs.DefaultSeriesPoints
		if interval == 0 {
			interval = 1
		}
		ins.Series.EnsureInterval(interval)
	}
}

// finishFileRun completes the manifest after the run: the trace content hash
// (its own timed stage) and the final metrics snapshot from the registry the
// engine actually wrote to.
func (ins Instrumentation) finishFileRun(m *Metrics) {
	ins.Manifest.finalize(m)
}

// EvaluateTSEFileWith is EvaluateTSEFile under an explicit replay
// configuration and instrumentation: the same fused single-pass evaluation,
// with the decode side configured by rc — parallel per-chunk workers over
// the version 3 index, or a bounded event range. The Report for a full-range
// replay is bit-identical at any worker count.
func EvaluateTSEFileWith(path string, rc ReplayConfig, ins Instrumentation) (Report, error) {
	ins.beginFileRun("replay-tse", path, "", rc)
	openDone := ins.Manifest.stage("open")
	f, err := openReplaySource(path, rc, ins)
	openDone()
	if err != nil {
		return Report{}, err
	}
	pcfg, m := ins.pipelineConfig(tseConsumerNames())
	p := ins.startProgress("replay "+filepath.Base(path), m, f.Fraction)
	runDone := ins.Manifest.stage("replay")
	rep, err := evaluateTSESourceWith(pcfg, f, f.Meta())
	runDone()
	p.Stop()
	if err = stream.CloseMerge(f, err); err != nil {
		return Report{}, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	ins.finishFileRun(m)
	return rep, nil
}

// EvaluateAllFileWith is EvaluateAllFile under an explicit replay
// configuration and instrumentation (see EvaluateTSEFileWith).
func EvaluateAllFileWith(path string, rc ReplayConfig, ins Instrumentation) ([]Report, error) {
	ins.beginFileRun("replay-all", path, "", rc)
	openDone := ins.Manifest.stage("open")
	f, err := openReplaySource(path, rc, ins)
	openDone()
	if err != nil {
		return nil, err
	}
	pcfg, m := ins.pipelineConfig(nil) // names resolved from the model specs
	p := ins.startProgress("replay "+filepath.Base(path), m, f.Fraction)
	runDone := ins.Manifest.stage("replay")
	reports, err := evaluateAllSourceWith(pcfg, f, f.Meta())
	runDone()
	p.Stop()
	if err = stream.CloseMerge(f, err); err != nil {
		return nil, fmt.Errorf("tsm: replaying %s: %w", path, err)
	}
	ins.finishFileRun(m)
	return reports, nil
}

// EvaluateTSESweepFileWith is EvaluateTSESweepFile under an explicit replay
// configuration and instrumentation: the whole sweep still rides ONE pass
// over the file, but that pass may itself be decoded by parallel per-chunk
// workers, or bounded to an event range.
func EvaluateTSESweepFileWith(path, sweep string, rc ReplayConfig, ins Instrumentation) ([]SweepCell, error) {
	ins.beginFileRun("sweep", path, sweep, rc)
	openDone := ins.Manifest.stage("open")
	f, err := openReplaySource(path, rc, ins)
	openDone()
	if err != nil {
		return nil, err
	}
	pcfg, m := ins.pipelineConfig(nil) // names resolved from the cell labels
	p := ins.startProgress("sweep "+filepath.Base(path), m, f.Fraction)
	runDone := ins.Manifest.stage("sweep")
	cells, err := evaluateTSESweepSourceWith(pcfg, f, f.Meta(), sweep)
	runDone()
	p.Stop()
	if err = stream.CloseMerge(f, err); err != nil {
		return nil, fmt.Errorf("tsm: sweeping %s: %w", path, err)
	}
	ins.finishFileRun(m)
	return cells, nil
}
