// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each figure/table benchmark runs the corresponding experiment
// driver end to end (workload generation, coherence classification, model
// evaluation) and reports the headline metric of that figure as a custom
// benchmark metric, so `go test -bench=. -benchmem` regenerates every result
// in one pass. EXPERIMENTS.md records a full-scale reference run produced
// with cmd/tsesim.
//
// The benchmarks use a reduced workload scale so the whole suite completes
// in minutes; pass -benchscale to change it, e.g.
//
//	go test -bench=Fig12 -benchtime=1x -benchscale=1.0
package tsm

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"tsm/internal/analysis"
	"tsm/internal/experiments"
	"tsm/internal/mem"
	"tsm/internal/pipeline"
	"tsm/internal/stream"
	"tsm/internal/timing"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

var benchScale = flag.Float64("benchscale", 0.1, "workload scale factor for benchmarks")

// benchWorkspace builds a fresh workspace covering every workload at the
// benchmark scale.
func benchWorkspace() *experiments.Workspace {
	return experiments.NewWorkspace(experiments.Options{Nodes: 16, Scale: *benchScale, Seed: 1})
}

// parsePercentCell converts an experiment table cell like "83.4%" to 83.4.
func parsePercentCell(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v
}

// runExperiment executes one experiment driver b.N times and returns the
// final table.
func runExperiment(b *testing.B, run experiments.Runner) experiments.Table {
	b.Helper()
	var tbl experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		w := benchWorkspace()
		tbl, err = run(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// averageColumn averages a percentage column over all rows, optionally
// filtered by a predicate on the row.
func averageColumn(b *testing.B, tbl experiments.Table, col int, keep func(row []string) bool) float64 {
	b.Helper()
	var sum float64
	var n int
	for _, row := range tbl.Rows {
		if keep != nil && !keep(row) {
			continue
		}
		sum += parsePercentCell(b, row[col])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable1 regenerates the Table 1 system-parameter listing.
func BenchmarkTable1(b *testing.B) {
	tbl := runExperiment(b, experiments.Table1)
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkTable2 regenerates Table 2 (applications and trace sizes).
func BenchmarkTable2(b *testing.B) {
	tbl := runExperiment(b, experiments.Table2)
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkFig6 regenerates Figure 6 and reports the mean fraction of
// temporally correlated consumptions at distance ±8 for the scientific and
// commercial halves of the suite.
func BenchmarkFig6(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig6)
	isScientific := func(row []string) bool {
		return row[0] == "em3d" || row[0] == "moldyn" || row[0] == "ocean"
	}
	b.ReportMetric(averageColumn(b, tbl, 4, isScientific), "sci_corr_pct@8")
	b.ReportMetric(averageColumn(b, tbl, 4, func(r []string) bool { return !isScientific(r) }), "com_corr_pct@8")
}

// BenchmarkFig7 regenerates Figure 7 and reports the mean commercial discard
// rate with one and with two compared streams — the accuracy mechanism's
// headline effect.
func BenchmarkFig7(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig7)
	commercial := map[string]bool{"apache": true, "db2": true, "oracle": true, "zeus": true}
	discardsFor := func(streams string) float64 {
		return averageColumn(b, tbl, 3, func(row []string) bool {
			return commercial[row[0]] && row[1] == streams
		})
	}
	b.ReportMetric(discardsFor("1"), "com_discards_pct@1stream")
	b.ReportMetric(discardsFor("2"), "com_discards_pct@2streams")
}

// BenchmarkFig8 regenerates Figure 8 and reports the mean commercial discard
// rate at the smallest and largest lookahead.
func BenchmarkFig8(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig8)
	commercial := func(row []string) bool {
		return row[0] == "apache" || row[0] == "db2" || row[0] == "oracle" || row[0] == "zeus"
	}
	b.ReportMetric(averageColumn(b, tbl, 1, commercial), "com_discards_pct@la1")
	b.ReportMetric(averageColumn(b, tbl, len(tbl.Columns)-1, commercial), "com_discards_pct@la24")
}

// BenchmarkFig9 regenerates Figure 9 and reports mean coverage with a 512 B
// SVB and with an unlimited SVB.
func BenchmarkFig9(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig9)
	covFor := func(size string) float64 {
		return averageColumn(b, tbl, 2, func(row []string) bool { return row[1] == size })
	}
	b.ReportMetric(covFor("512B"), "coverage_pct@512B")
	b.ReportMetric(covFor("inf"), "coverage_pct@inf")
}

// BenchmarkFig10 regenerates Figure 10 and reports the mean fraction of peak
// coverage at the smallest and largest CMOB capacities.
func BenchmarkFig10(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig10)
	b.ReportMetric(averageColumn(b, tbl, 1, nil), "peakfrac_pct@192B")
	b.ReportMetric(averageColumn(b, tbl, len(tbl.Columns)-1, nil), "peakfrac_pct@3MB")
}

// BenchmarkFig11 regenerates Figure 11 and reports the mean interconnect
// overhead ratio.
func BenchmarkFig11(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig11)
	b.ReportMetric(averageColumn(b, tbl, 2, nil), "overhead_vs_base_pct")
}

// BenchmarkFig12 regenerates Figure 12 and reports mean coverage per
// technique across the suite.
func BenchmarkFig12(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig12)
	covFor := func(tech string) float64 {
		return averageColumn(b, tbl, 2, func(row []string) bool { return row[1] == tech })
	}
	b.ReportMetric(covFor("Stride"), "stride_coverage_pct")
	b.ReportMetric(covFor("GHB G/DC"), "ghb_gdc_coverage_pct")
	b.ReportMetric(covFor("GHB G/AC"), "ghb_gac_coverage_pct")
	b.ReportMetric(covFor("TSE"), "tse_coverage_pct")
}

// BenchmarkFig13 regenerates Figure 13 and reports the mean fraction of SVB
// hits from streams of at most 8 blocks for the commercial workloads.
func BenchmarkFig13(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig13)
	commercial := func(row []string) bool {
		return row[0] == "apache" || row[0] == "db2" || row[0] == "oracle" || row[0] == "zeus"
	}
	b.ReportMetric(averageColumn(b, tbl, 3, commercial), "com_hits_pct@len<=8")
}

// BenchmarkTable3 regenerates Table 3 and reports mean trace coverage and
// mean full (timely) coverage.
func BenchmarkTable3(b *testing.B) {
	tbl := runExperiment(b, experiments.Table3)
	b.ReportMetric(averageColumn(b, tbl, 1, nil), "trace_coverage_pct")
	b.ReportMetric(averageColumn(b, tbl, 4, nil), "full_coverage_pct")
}

// BenchmarkFig14 regenerates Figure 14 and reports the em3d and DB2 speedups
// (the paper's best scientific and best commercial results).
func BenchmarkFig14(b *testing.B) {
	tbl := runExperiment(b, experiments.Fig14)
	speedupOf := func(name string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == name {
				v, err := strconv.ParseFloat(row[3], 64)
				if err != nil {
					b.Fatalf("bad speedup cell %q", row[3])
				}
				return v
			}
		}
		return 0
	}
	b.ReportMetric(speedupOf("em3d"), "em3d_speedup")
	b.ReportMetric(speedupOf("db2"), "db2_speedup")
}

// --- Ablation benchmarks -------------------------------------------------
//
// These vary the design choices DESIGN.md calls out, on the DB2 workload
// (the commercial workload TSE helps most), and report the resulting
// coverage/discard trade-off.

// ablationTrace prepares the DB2 trace and its timing profile once per
// benchmark iteration set.
func ablationData(b *testing.B) (*experiments.WorkloadData, *experiments.Workspace) {
	b.Helper()
	w := benchWorkspace()
	d, err := w.Data("db2")
	if err != nil {
		b.Fatal(err)
	}
	return d, w
}

func ablationConfig(w *experiments.Workspace, d *experiments.WorkloadData) tse.Config {
	cfg := w.System().DefaultTSE()
	cfg.Lookahead = d.Generator.Timing().Lookahead
	return cfg
}

// BenchmarkAblationComparedStreams sweeps the number of compared streams.
func BenchmarkAblationComparedStreams(b *testing.B) {
	for _, streams := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(streams), func(b *testing.B) {
			d, w := ablationData(b)
			var cov analysis.CoverageResult
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(w, d)
				cfg.ComparedStreams = streams
				cov, _ = analysis.EvaluateTSE(cfg, d.Trace)
			}
			b.ReportMetric(100*cov.Coverage(), "coverage_pct")
			b.ReportMetric(100*cov.DiscardRate(), "discards_pct")
		})
	}
}

// BenchmarkAblationLookahead sweeps the stream lookahead against the fixed
// Table 3 choice.
func BenchmarkAblationLookahead(b *testing.B) {
	for _, la := range []int{4, 8, 16, 24} {
		b.Run(strconv.Itoa(la), func(b *testing.B) {
			d, w := ablationData(b)
			var cov analysis.CoverageResult
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(w, d)
				cfg.Lookahead = la
				cov, _ = analysis.EvaluateTSE(cfg, d.Trace)
			}
			b.ReportMetric(100*cov.Coverage(), "coverage_pct")
			b.ReportMetric(100*cov.DiscardRate(), "discards_pct")
		})
	}
}

// BenchmarkAblationSVBReplacement compares LRU and FIFO SVB replacement.
func BenchmarkAblationSVBReplacement(b *testing.B) {
	for _, fifo := range []bool{false, true} {
		name := "LRU"
		if fifo {
			name = "FIFO"
		}
		b.Run(name, func(b *testing.B) {
			d, w := ablationData(b)
			var cov analysis.CoverageResult
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(w, d)
				cfg.SVBFIFOReplacement = fifo
				cov, _ = analysis.EvaluateTSE(cfg, d.Trace)
			}
			b.ReportMetric(100*cov.Coverage(), "coverage_pct")
			b.ReportMetric(100*cov.DiscardRate(), "discards_pct")
		})
	}
}

// BenchmarkAblationStreamOnSingle compares streaming immediately from a lone
// recorded history against waiting for a confirming second stream.
func BenchmarkAblationStreamOnSingle(b *testing.B) {
	for _, single := range []bool{true, false} {
		name := "stream"
		if !single {
			name = "wait"
		}
		b.Run(name, func(b *testing.B) {
			d, w := ablationData(b)
			var cov analysis.CoverageResult
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(w, d)
				cfg.StreamOnSingle = single
				cov, _ = analysis.EvaluateTSE(cfg, d.Trace)
			}
			b.ReportMetric(100*cov.Coverage(), "coverage_pct")
			b.ReportMetric(100*cov.DiscardRate(), "discards_pct")
		})
	}
}

// BenchmarkAblationCMOBPointers compares one directory CMOB pointer per
// entry against the default two.
func BenchmarkAblationCMOBPointers(b *testing.B) {
	for _, ptrs := range []int{1, 2} {
		b.Run(strconv.Itoa(ptrs), func(b *testing.B) {
			d, w := ablationData(b)
			var cov analysis.CoverageResult
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(w, d)
				cfg.ComparedStreams = ptrs
				cov, _ = analysis.EvaluateTSE(cfg, d.Trace)
			}
			b.ReportMetric(100*cov.Coverage(), "coverage_pct")
			b.ReportMetric(100*cov.DiscardRate(), "discards_pct")
		})
	}
}

// --- Streaming and parallelism benchmarks --------------------------------
//
// These measure the internal/stream subsystem: streamed versus materialized
// model evaluation, the binary codec, node-sharded parallel evaluation, and
// parallel versus serial experiment batches over a shared Workspace.

// BenchmarkStreamedEvaluation compares evaluating one model over (a) the
// materialized in-memory trace, (b) a Source iterator over that trace, and
// (c) a decoded binary stream — the cross-process replay path. All three
// produce identical results; the deltas are the iterator and codec costs.
func BenchmarkStreamedEvaluation(b *testing.B) {
	d, w := ablationData(b)
	nodes := w.Options().Nodes
	spec := analysis.BaselineSpecs(nodes)[2] // GHB G/AC, the busiest baseline
	var encoded bytes.Buffer
	enc, err := stream.NewWriter(&encoded, stream.Meta{Workload: "db2", Nodes: nodes, Scale: *benchScale, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := stream.Copy(enc, stream.TraceSource(d.Trace)); err != nil {
		b.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		b.Fatal(err)
	}
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := analysis.EvaluateModel(spec.New(), d.Trace)
			b.ReportMetric(100*res.Coverage(), "coverage_pct")
		}
	})
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := analysis.EvaluateModelStream(spec.New(), stream.TraceSource(d.Trace))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Coverage(), "coverage_pct")
		}
	})
	b.Run("streamed-codec", func(b *testing.B) {
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			res, err := analysis.EvaluateModelStream(spec.New(), r)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Coverage(), "coverage_pct")
		}
	})
}

// BenchmarkShardedEvaluation compares serial and node-sharded parallel
// evaluation of the per-node-state baselines on one trace. The sharded
// results are bit-identical; the win is wall-clock.
func BenchmarkShardedEvaluation(b *testing.B) {
	d, w := ablationData(b)
	nodes := w.Options().Nodes
	spec := analysis.BaselineSpecs(nodes)[2]
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.EvaluateModel(spec.New(), d.Trace)
		}
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.EvaluateModelSharded(spec, d.Trace, nodes)
		}
	})
}

// BenchmarkCodec measures raw encode/decode throughput of the binary trace
// format.
func BenchmarkCodec(b *testing.B) {
	d, _ := ablationData(b)
	meta := stream.Meta{Workload: "db2", Nodes: 16, Scale: *benchScale, Seed: 1}
	var encoded bytes.Buffer
	w, err := stream.NewWriter(&encoded, meta)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := stream.Copy(w, stream.TraceSource(d.Trace)); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	bytesPerEvent := float64(encoded.Len()) / float64(d.Trace.Len())
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			w, err := stream.NewWriter(&buf, meta)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stream.Copy(w, stream.TraceSource(d.Trace)); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(bytesPerEvent, "bytes/event")
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stream.Collect(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(bytesPerEvent, "bytes/event")
	})
}

// BenchmarkWorkspaceExperiments runs the full table/figure suite over a
// fresh shared Workspace, serially versus in parallel (parallel trace
// generation via Prefetch, then concurrent experiment drivers). The
// parallel path must win on a multi-core machine; the tables are identical.
func BenchmarkWorkspaceExperiments(b *testing.B) {
	exps := experiments.All()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := benchWorkspace()
			for _, exp := range exps {
				if _, err := exp.Run(w); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := benchWorkspace()
			if err := w.Prefetch(); err != nil {
				b.Fatal(err)
			}
			if _, err := experiments.RunAll(w, exps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTimingModel measures the raw cost of the DSM timing model on one
// workload trace (baseline and with TSE).
func BenchmarkTimingModel(b *testing.B) {
	d, w := ablationData(b)
	prof := d.Generator.Timing()
	cfg := ablationConfig(w, d)
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.Simulate(d.Trace, timing.Params{
				System: w.System(), Profile: prof, Nodes: 16,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.Simulate(d.Trace, timing.Params{
				System: w.System(), Profile: prof, Nodes: 16, TSE: &cfg,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Streamed-generation allocation benchmarks ----------------------------
//
// The constant-memory proof for the streamed emission path: Repeat lengthens
// the trace WITHOUT growing generator state, so on the streamed path B/op
// must stay flat as the trace gets longer (the only allocations are the
// generator's fixed problem state), while the materializing reference path
// grows linearly with the access count. CI publishes both in the BENCH JSON
// artifact and gates on their presence.

// benchGenConfig fixes the problem footprint; repeat scales only the length.
func benchGenConfig(repeat float64) workload.Config {
	return workload.Config{Nodes: 16, Seed: 1, Scale: 0.05, Repeat: repeat}
}

// BenchmarkGenerateStream drives a generator's Emit end to end, counting
// accesses but never buffering them. B/op is O(1) in the trace length.
func BenchmarkGenerateStream(b *testing.B) {
	spec, _ := workload.ByName("db2")
	for _, repeat := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("repeat=%g", repeat), func(b *testing.B) {
			b.ReportAllocs()
			var accesses int
			for i := 0; i < b.N; i++ {
				accesses = 0
				gen := spec.New(benchGenConfig(repeat))
				if err := gen.Emit(func(a mem.Access) error {
					accesses++
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(accesses), "accesses")
		})
	}
}

// BenchmarkGenerateMaterialize is the reference path: collect the whole
// access slice. B/op grows with the trace length.
func BenchmarkGenerateMaterialize(b *testing.B) {
	spec, _ := workload.ByName("db2")
	for _, repeat := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("repeat=%g", repeat), func(b *testing.B) {
			b.ReportAllocs()
			var accesses int
			for i := 0; i < b.N; i++ {
				gen := spec.New(benchGenConfig(repeat))
				accesses = len(gen.Generate())
			}
			b.ReportMetric(float64(accesses), "accesses")
		})
	}
}

// --- Sweep / broadcast benchmarks -----------------------------------------
//
// BenchmarkSweep measures the N-consumer fan-out that whole-sensitivity
// sweeps ride, under both broadcast strategies and at sweep widths of
// 4/16/64 consumers. The "broadcast" group isolates the engine itself with
// drain-only consumers: with ReportAllocs it shows the ring allocating
// O(ring) — the fixed slot buffers, reused lap after lap, independent of
// both the consumer count and the trace length — where the channels
// reference allocates a fresh chunk per broadcast and pays one channel send
// per consumer per chunk. The "tse" group is the realistic end: one full TSE
// model per cell riding the shared pass (analysis.SweepWith).
func BenchmarkSweep(b *testing.B) {
	d, w := ablationData(b)
	strategyConfigs := []struct {
		name string
		s    pipeline.Strategy
	}{{"ring", pipeline.Ring}, {"channels", pipeline.Channels}}

	for _, consumers := range []int{4, 16, 64} {
		for _, strat := range strategyConfigs {
			b.Run(fmt.Sprintf("broadcast/%s/consumers=%d", strat.name, consumers), func(b *testing.B) {
				b.ReportAllocs()
				events := d.Trace.Len()
				for i := 0; i < b.N; i++ {
					sinks := make([]pipeline.Consumer, consumers)
					for j := range sinks {
						sinks[j] = pipeline.ConsumerFunc(func(src stream.Source) error {
							for {
								if _, err := src.Next(); err != nil {
									if err == io.EOF {
										return nil
									}
									return err
								}
							}
						})
					}
					cfg := pipeline.Config{Strategy: strat.s}
					if err := cfg.Run(stream.TraceSource(d.Trace), sinks...); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(events), "events")
				b.ReportMetric(float64(consumers), "consumers")
			})
		}
	}

	// The realistic sweep: one TSE configuration per consumer (lookaheads
	// cycled), every cell evaluated over the single shared pass.
	for _, consumers := range []int{4, 16, 64} {
		lookaheads := []int{1, 2, 4, 8, 16, 24}
		cfgs := make([]tse.Config, consumers)
		for i := range cfgs {
			cfg := ablationConfig(w, d)
			cfg.Lookahead = lookaheads[i%len(lookaheads)]
			cfgs[i] = cfg
		}
		for _, strat := range strategyConfigs {
			b.Run(fmt.Sprintf("tse/%s/consumers=%d", strat.name, consumers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := analysis.SweepWith(pipeline.Config{Strategy: strat.s}, cfgs, stream.TraceSource(d.Trace))
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(100*res[0].Coverage.Coverage(), "coverage_pct")
				}
				b.ReportMetric(float64(consumers), "consumers")
			})
		}
	}
}

// BenchmarkWorkloadGeneration measures raw workload generation plus
// coherence classification throughput for each workload.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := experiments.NewWorkspace(experiments.Options{
					Nodes: 16, Scale: *benchScale, Seed: int64(i + 1), Workloads: []string{name},
				})
				d, err := w.Data(name)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Consumptions), "consumptions")
			}
		})
	}
}

// BenchmarkFileReplay compares the three full-pipeline file-replay paths:
// the materializing one (LoadTrace + EvaluateTSE), the multipass streamed
// reference (EvaluateTSEFileMultipass — one bounded-memory decode pass per
// consumer, three in total), and the fused streamed engine (EvaluateTSEFile
// — ONE decode pass teed into all three consumers by internal/pipeline).
// The reports are bit-identical; the fused path removes two of the three
// codec passes that dominate streamed replay cost while keeping the memory
// footprint independent of the trace length.
func BenchmarkFileReplay(b *testing.B) {
	opts := Options{Nodes: 16, Scale: *benchScale, Seed: 1}
	tr, gen, err := GenerateTrace("db2", opts)
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/db2.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		b.Fatal(err)
	}
	b.Run("inmem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loaded, meta, err := LoadTrace(path)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := GeneratorFor(meta)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := EvaluateTSE(loaded, gen, OptionsFor(meta))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Coverage, "coverage_pct")
		}
	})
	b.Run("multipass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := EvaluateTSEFileMultipass(path)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Coverage, "coverage_pct")
			b.ReportMetric(3, "decode_passes")
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := EvaluateTSEFile(path)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Coverage, "coverage_pct")
			b.ReportMetric(1, "decode_passes")
		}
	})
	// The fused path with the decode side itself parallelised over the v3
	// chunk index: still one decode pass, split across per-chunk workers.
	// Identical reports at any worker count; the delta is decode wall time.
	// decode_mevents_per_cpu_s is the decode side's own throughput (events
	// over worker busy time, from the stream.decode.* counters) — the number
	// the SoA batch decoder is gated on, isolated from consumer cost.
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("fused-decode%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := NewMetrics()
				rep, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: workers}, Instrumentation{Metrics: m})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Coverage, "coverage_pct")
				b.ReportMetric(1, "decode_passes")
				b.ReportMetric(float64(workers), "decode_workers")
				reportDecodeThroughput(b, m)
			}
		})
	}
	// The fused path over an mmap'd file: the decode workers parse chunks
	// zero-copy from the mapped pages into SoA regions, and every consumer
	// sweeps the columns. Identical reports; this is the all-in hot path.
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("soa-mmap%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := NewMetrics()
				rep, err := EvaluateTSEFileWith(path, ReplayConfig{DecodeWorkers: workers, Mmap: true}, Instrumentation{Metrics: m})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Coverage, "coverage_pct")
				b.ReportMetric(1, "decode_passes")
				b.ReportMetric(float64(workers), "decode_workers")
				reportDecodeThroughput(b, m)
			}
		})
	}
	// The fused path under the channels broadcast (the pre-ring reference):
	// same single decode, one channel send per consumer per chunk instead of
	// the shared ring. Identical reports; the delta is broadcast cost.
	b.Run("fused-channels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := stream.OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := evaluateTSESourceWith(pipeline.Config{Strategy: pipeline.Channels}, f, f.Meta())
			if err = stream.CloseMerge(f, err); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Coverage, "coverage_pct")
			b.ReportMetric(1, "decode_passes")
		}
	})
	// A whole sensitivity sweep over the file: every cell rides the same
	// single decode (lookahead sweep, 6 TSE consumers, ring broadcast).
	b.Run("sweep-lookahead", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells, err := EvaluateTSESweepFile(path, "lookahead")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(cells)), "cells")
			b.ReportMetric(1, "decode_passes")
		}
	})
	// The Figure 12 comparison fans out to four models; fused still decodes
	// once, multipass four times (in parallel over the worker pool).
	b.Run("compare-multipass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvaluateAllFileMultipass(path); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(4, "decode_passes")
		}
	})
	b.Run("compare-fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvaluateAllFile(path); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(1, "decode_passes")
		}
	})
}

// BenchmarkParallelDecode isolates the decode side: drain a trace file
// through the indexed per-chunk worker pool at 1 and 4 workers, with
// allocation reporting — the free-list recycling must keep allocs/op
// O(workers·chunk), independent of how many chunks the file has (the CI
// bench gate greps these numbers).
func BenchmarkParallelDecode(b *testing.B) {
	opts := Options{Nodes: 16, Scale: *benchScale, Seed: 1}
	tr, gen, err := GenerateTrace("db2", opts)
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/db2.tsm"
	if err := SaveTrace(path, tr, gen, opts); err != nil {
		b.Fatal(err)
	}
	drain := func(b *testing.B, src EventSource) uint64 {
		var n uint64
		for {
			_, err := src.Next()
			if err == io.EOF {
				return n
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := stream.OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			n := drain(b, f)
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(n), "events")
		}
	})
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := stream.OpenFileParallel(path, stream.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				n := drain(b, f)
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(n), "events")
				b.ReportMetric(float64(workers), "decode_workers")
			}
		})
	}
	// The same indexed decode drained as struct-of-arrays columns
	// (NextChunkSoA) instead of one Next call per event — how the pipeline
	// and the columnar consumers actually consume the decoder.
	drainSoA := func(b *testing.B, src stream.SoASource) uint64 {
		var n uint64
		for {
			ch, err := src.NextChunkSoA()
			if err == io.EOF {
				return n
			}
			if err != nil {
				b.Fatal(err)
			}
			n += uint64(ch.Len())
		}
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("soa%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := stream.OpenFileParallel(path, stream.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				n := drainSoA(b, f)
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(n), "events")
				b.ReportMetric(float64(workers), "decode_workers")
			}
		})
	}
	// The indexed decode over an mmap'd file: zero-copy chunk regions, no
	// per-chunk read syscall. Falls back to ReadAt where mmap is unsupported.
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("mmap%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := stream.OpenFileParallel(path, stream.ParallelOptions{Workers: workers, Mmap: true})
				if err != nil {
					b.Fatal(err)
				}
				n := drainSoA(b, f)
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(n), "events")
				b.ReportMetric(float64(workers), "decode_workers")
			}
		})
	}
}

// reportDecodeThroughput derives the decode side's own throughput from the
// stream.decode.* counters a replay collected: million events decoded per
// second of decode-worker busy time.
func reportDecodeThroughput(b *testing.B, m *Metrics) {
	b.Helper()
	s := m.Snapshot()
	events := s.Counters["stream.decode.events"]
	var busyNs uint64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "stream.decode.worker.") && strings.HasSuffix(name, ".busy_ns") {
			busyNs += v
		}
	}
	if busyNs > 0 {
		b.ReportMetric(float64(events)*1e3/float64(busyNs), "decode_mevents_per_cpu_s")
	}
}
