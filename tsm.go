// Package tsm is the public facade of the Temporal Streaming of Shared
// Memory reproduction. It wraps the internal packages — workload generation,
// the functional coherence engine, the Temporal Streaming Engine (TSE), the
// baseline prefetchers, the trace analyses and the DSM timing model — behind
// a small API suitable for the runnable examples and for downstream users
// who want to evaluate temporal streaming on their own consumption traces.
//
// The typical flow is:
//
//	trace, gen, err := tsm.GenerateTrace("db2", tsm.Options{Nodes: 16, Scale: 0.25})
//	report, err := tsm.EvaluateTSE(trace, gen, tsm.Options{Nodes: 16})
//	fmt.Println(report)
//
// or, to regenerate one of the paper's tables or figures directly:
//
//	table, err := tsm.RunExperiment("fig12", tsm.Options{Scale: 0.25})
//	fmt.Println(table)
package tsm

import (
	"fmt"
	"math"
	"strings"

	"tsm/internal/analysis"
	"tsm/internal/coherence"
	"tsm/internal/config"
	"tsm/internal/experiments"
	"tsm/internal/prefetch"
	"tsm/internal/stream"
	"tsm/internal/timing"
	"tsm/internal/trace"
	"tsm/internal/tse"
	"tsm/internal/workload"
)

// Options control workload generation and model evaluation.
type Options struct {
	// Nodes is the number of DSM nodes (default 16, as in the paper).
	Nodes int
	// Scale scales the synthetic problem sizes (default 1.0).
	Scale float64
	// Repeat multiplies the workload run length — iterations, transactions,
	// requests — without growing the generator's data-structure state
	// (default 1.0). With streamed generation this lengthens traces at
	// constant memory; see workload.PaperPreset for the paper-scale
	// combinations of Scale and Repeat.
	Repeat float64
	// Seed makes generation deterministic (default 1).
	Seed int64
	// Lookahead overrides the per-workload stream lookahead (0 = use the
	// workload's Table 3 value).
	Lookahead int
}

func (o Options) normalize() Options {
	if o.Nodes <= 0 {
		o.Nodes = 16
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Repeat <= 0 {
		o.Repeat = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Validate rejects structurally invalid options with an explicit error.
// Zero values are "use the default" and remain valid; negative values are
// almost always a caller bug (a subtraction gone wrong, a misparsed flag)
// and are reported instead of being silently normalized away.
func (o Options) Validate() error {
	if o.Nodes < 0 {
		return fmt.Errorf("tsm: Options.Nodes is negative (%d); use 0 for the default of 16", o.Nodes)
	}
	if o.Scale < 0 {
		return fmt.Errorf("tsm: Options.Scale is negative (%g); use 0 for the default of 1.0", o.Scale)
	}
	if math.IsNaN(o.Scale) || math.IsInf(o.Scale, 0) {
		return fmt.Errorf("tsm: Options.Scale is not finite (%v)", o.Scale)
	}
	if o.Repeat < 0 {
		return fmt.Errorf("tsm: Options.Repeat is negative (%g); use 0 for the default of 1.0", o.Repeat)
	}
	if math.IsNaN(o.Repeat) || math.IsInf(o.Repeat, 0) {
		return fmt.Errorf("tsm: Options.Repeat is not finite (%v)", o.Repeat)
	}
	if o.Lookahead < 0 {
		return fmt.Errorf("tsm: Options.Lookahead is negative (%d); use 0 for the workload's Table 3 value", o.Lookahead)
	}
	return nil
}

// checked validates and then normalizes, the entry gate of every facade
// function that can report errors.
func (o Options) checked() (Options, error) {
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o.normalize(), nil
}

// Workloads returns the names of the default workload suite — the paper's
// seven applications followed by the extended scenario matrix — in
// presentation order. The cross-workload mixes are addressable by name in
// every entry point but are not part of the default suite; AllWorkloads
// includes them.
func Workloads() []string { return workload.Names() }

// AllWorkloads returns every registered workload name, including the
// cross-workload mixes ("mix": memkv + cdn colocated; "mix-sci-com": em3d +
// db2, a scientific texture phase-alternating with a commercial one).
func AllWorkloads() []string { return workload.AllNames() }

// Experiments returns the identifiers of every reproducible table and figure.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// Trace is a globally ordered consumption/write event stream.
type Trace = trace.Trace

// Generator produces workload access streams; it also carries the
// workload's timing profile.
type Generator = workload.Generator

// Event is one classified trace event (a consumption or a write), the unit
// every EventSource yields and every EventSink accepts.
type Event = trace.Event

// EventSource is a pull-based event iterator (io.EOF ends the stream).
type EventSource = stream.Source

// EventSink consumes events one at a time; Close finalises it.
type EventSink = stream.Sink

// TraceMeta records how a saved trace was generated, so a separate process
// can rebuild the matching generator and options.
type TraceMeta = stream.Meta

// newGenerator builds the named workload's generator at the given
// (normalized) options.
func newGenerator(name string, opts Options) (Generator, error) {
	spec, ok := workload.ByName(strings.ToLower(name))
	if !ok {
		return nil, fmt.Errorf("tsm: unknown workload %q (known: %s)", name, strings.Join(AllWorkloads(), ", "))
	}
	return spec.New(workload.Config{Nodes: opts.Nodes, Seed: opts.Seed, Scale: opts.Scale, Repeat: opts.Repeat}), nil
}

// StreamTrace builds the named workload and streams the classified trace
// events into sink as the functional coherence engine produces them. Neither
// the access stream nor the trace is ever materialized — the generator's
// Emit feeds the engine one access at a time and each classified event goes
// straight to the sink — so arbitrarily large workloads stream in constant
// memory end to end. It returns the generator (for timing profiles) and the
// number of events emitted. The sink is not closed.
func StreamTrace(name string, opts Options, sink EventSink) (Generator, uint64, error) {
	opts, err := opts.checked()
	if err != nil {
		return nil, 0, err
	}
	gen, err := newGenerator(name, opts)
	if err != nil {
		return nil, 0, err
	}
	eng := coherence.New(coherence.Config{Nodes: opts.Nodes, Geometry: config.DefaultSystem().Geometry, PointersPerEntry: 2})
	var n uint64
	err = eng.RunSource(gen.Emit, func(e trace.Event) error {
		if err := sink.Write(e); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return gen, n, fmt.Errorf("tsm: streaming %s trace: %w", name, err)
	}
	return gen, n, nil
}

// traceMeta derives the file metadata for a generated trace.
func traceMeta(gen Generator, opts Options) TraceMeta {
	return TraceMeta{Workload: strings.ToLower(gen.Name()), Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed, Repeat: opts.Repeat}
}

// SaveTrace writes a trace to path in the versioned binary stream format
// (see internal/stream), embedding the generation metadata so LoadTrace and
// cmd/tsesim can evaluate it in another process.
func SaveTrace(path string, tr *Trace, gen Generator, opts Options) error {
	opts, err := opts.checked()
	if err != nil {
		return err
	}
	if tr == nil || gen == nil {
		return fmt.Errorf("tsm: SaveTrace requires a trace and a generator")
	}
	_, err = stream.WriteFile(path, traceMeta(gen, opts), stream.TraceSource(tr))
	return err
}

// LoadTrace reads a trace file written by SaveTrace or cmd/tracegen and
// returns the events together with the embedded generation metadata.
func LoadTrace(path string) (*Trace, TraceMeta, error) {
	return stream.LoadFile(path)
}

// GeneratorFor reconstructs the workload generator a trace file's metadata
// describes. Generation is not re-run; the generator is only needed for its
// timing profile (and per-workload lookahead).
func GeneratorFor(meta TraceMeta) (Generator, error) {
	spec, ok := workload.ByName(strings.ToLower(meta.Workload))
	if !ok {
		return nil, fmt.Errorf("tsm: trace metadata names unknown workload %q (known: %s)", meta.Workload, strings.Join(AllWorkloads(), ", "))
	}
	return spec.New(workload.Config{Nodes: meta.Nodes, Seed: meta.Seed, Scale: meta.Scale, Repeat: meta.Repeat}), nil
}

// OptionsFor converts a trace file's metadata back into evaluation options.
func OptionsFor(meta TraceMeta) Options {
	return Options{Nodes: meta.Nodes, Scale: meta.Scale, Seed: meta.Seed, Repeat: meta.Repeat}.normalize()
}

// GenerateTrace builds the named workload at the given options, runs it
// through the functional coherence engine, and returns the classified trace
// together with the generator (whose Timing profile the timing model needs).
// The raw access stream is never materialized — only the classified trace
// the caller asked for is.
func GenerateTrace(name string, opts Options) (*Trace, Generator, error) {
	opts, err := opts.checked()
	if err != nil {
		return nil, nil, err
	}
	gen, err := newGenerator(name, opts)
	if err != nil {
		return nil, nil, err
	}
	eng := coherence.New(coherence.Config{Nodes: opts.Nodes, Geometry: config.DefaultSystem().Geometry, PointersPerEntry: 2})
	tr, err := eng.RunFrom(gen.Emit)
	if err != nil {
		return nil, nil, fmt.Errorf("tsm: generating %s trace: %w", name, err)
	}
	return tr, gen, nil
}

// Report is a compact evaluation summary for one model on one trace.
type Report struct {
	// Model names the evaluated technique ("TSE", "Stride", "GHB G/AC"...).
	Model string
	// Consumptions is the number of coherent read misses evaluated.
	Consumptions uint64
	// Coverage is the fraction of consumptions eliminated.
	Coverage float64
	// Discards is the number of erroneously fetched blocks as a fraction
	// of consumptions.
	Discards float64
	// Speedup is the timing-model speedup over the baseline system
	// (only set by EvaluateTSE).
	Speedup float64
	// SpeedupCI is the 95% confidence half-width of the speedup.
	SpeedupCI float64
}

// String renders the report in one line.
func (r Report) String() string {
	s := fmt.Sprintf("%-8s consumptions=%d coverage=%.1f%% discards=%.1f%%",
		r.Model, r.Consumptions, 100*r.Coverage, 100*r.Discards)
	if r.Speedup > 0 {
		s += fmt.Sprintf(" speedup=%.2f (±%.3f)", r.Speedup, r.SpeedupCI)
	}
	return s
}

// tseConfig derives the paper's TSE configuration for the options and
// generator.
func tseConfig(gen Generator, opts Options) tse.Config {
	cfg := config.DefaultSystem().DefaultTSE()
	cfg.Nodes = opts.Nodes
	if opts.Lookahead > 0 {
		cfg.Lookahead = opts.Lookahead
	} else if gen != nil {
		cfg.Lookahead = gen.Timing().Lookahead
	}
	return cfg
}

// timingParams builds the baseline timing parameters for a generator at the
// given (normalized) options; setting params.TSE afterwards selects the TSE
// run.
func timingParams(gen Generator, opts Options) timing.Params {
	sys := config.DefaultSystem()
	sys.Nodes = opts.Nodes
	return timing.Params{System: sys, Profile: gen.Timing(), Nodes: opts.Nodes}
}

// tseReport assembles the facade Report from a coverage pass and the paired
// baseline/TSE timing passes. It is the single definition of this
// arithmetic: the in-memory pipeline (EvaluateTSE) and the streamed file
// pipeline (EvaluateTSEFile) both end here, which is what keeps their
// reports bit-identical by construction.
func tseReport(cov analysis.CoverageResult, base, withTSE timing.Result) Report {
	speedup := timing.Speedup(base, withTSE)
	_, ci := timing.SpeedupConfidence(base, withTSE)
	return Report{
		Model:        "TSE",
		Consumptions: cov.Consumptions,
		Coverage:     cov.Coverage(),
		Discards:     cov.DiscardRate(),
		Speedup:      speedup,
		SpeedupCI:    ci,
	}
}

// EvaluateTSE runs the paper's TSE configuration over a trace: the
// trace-driven coverage/discard model plus the timing model (baseline vs.
// TSE) for the speedup.
func EvaluateTSE(tr *Trace, gen Generator, opts Options) (Report, error) {
	opts, err := opts.checked()
	if err != nil {
		return Report{}, err
	}
	if tr == nil || gen == nil {
		return Report{}, fmt.Errorf("tsm: EvaluateTSE requires a trace and a generator")
	}
	cfg := tseConfig(gen, opts)
	cov, _ := analysis.EvaluateTSE(cfg, tr)

	params := timingParams(gen, opts)
	base, err := timing.Simulate(tr, params)
	if err != nil {
		return Report{}, err
	}
	params.TSE = &cfg
	withTSE, err := timing.Simulate(tr, params)
	if err != nil {
		return Report{}, err
	}
	return tseReport(cov, base, withTSE), nil
}

// ComparePrefetchers evaluates the stride stream buffer, both GHB variants
// and TSE on the same trace — the Figure 12 comparison — and returns one
// report per technique, in that order.
func ComparePrefetchers(tr *Trace, gen Generator, opts Options) ([]Report, error) {
	opts, err := opts.checked()
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("tsm: ComparePrefetchers requires a trace")
	}
	var reports []Report

	strideCfg := prefetch.DefaultStrideConfig()
	strideCfg.Nodes = opts.Nodes
	models := []prefetch.Model{
		prefetch.NewStride(strideCfg),
	}
	gdc := prefetch.DefaultGHBConfig(prefetch.GDC)
	gdc.Nodes = opts.Nodes
	gac := prefetch.DefaultGHBConfig(prefetch.GAC)
	gac.Nodes = opts.Nodes
	models = append(models, prefetch.NewGHB(gdc), prefetch.NewGHB(gac))

	for _, m := range models {
		r := analysis.EvaluateModel(m, tr)
		reports = append(reports, Report{
			Model: r.Name, Consumptions: r.Consumptions,
			Coverage: r.Coverage(), Discards: r.DiscardRate(),
		})
	}

	cfg := tseConfig(gen, opts)
	cov, _ := analysis.EvaluateTSE(cfg, tr)
	reports = append(reports, Report{
		Model: cov.Name, Consumptions: cov.Consumptions,
		Coverage: cov.Coverage(), Discards: cov.DiscardRate(),
	})
	return reports, nil
}

// EvaluateAll runs the Figure 12 comparison — stride, both GHB variants and
// TSE — over one trace with the models evaluated in parallel: the per-node-
// state baselines are sharded by consuming node across the worker pool and
// TSE runs concurrently on its own worker. The reports are identical to
// ComparePrefetchers (which evaluates serially), in the same order.
func EvaluateAll(tr *Trace, gen Generator, opts Options) ([]Report, error) {
	opts, err := opts.checked()
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("tsm: EvaluateAll requires a trace")
	}
	cfg := tseConfig(gen, opts)
	results, _ := analysis.EvaluateSuite(cfg, tr, opts.Nodes)
	reports := make([]Report, len(results))
	for i, r := range results {
		reports[i] = Report{
			Model: r.Name, Consumptions: r.Consumptions,
			Coverage: r.Coverage(), Discards: r.DiscardRate(),
		}
	}
	return reports, nil
}

// CorrelationOpportunity runs the Figure 6 opportunity analysis and returns
// the cumulative fraction of consumptions within each temporal correlation
// distance 1..16.
func CorrelationOpportunity(tr *Trace, opts Options) []float64 {
	opts = opts.normalize()
	res := analysis.CorrelationDistance(tr, opts.Nodes)
	out := make([]float64, analysis.MaxCorrelationDistance)
	for d := 1; d <= analysis.MaxCorrelationDistance; d++ {
		out[d-1] = res.CumulativeFraction(d)
	}
	return out
}

// RunExperiment regenerates one of the paper's tables or figures (see
// Experiments for the identifiers) and returns its rendered text.
func RunExperiment(id string, opts Options) (string, error) {
	opts, err := opts.checked()
	if err != nil {
		return "", err
	}
	exp, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("tsm: unknown experiment %q (known: %s)", id, strings.Join(Experiments(), ", "))
	}
	w := experiments.NewWorkspace(experiments.Options{Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed})
	tbl, err := exp.Run(w)
	if err != nil {
		return "", err
	}
	return tbl.String(), nil
}

// RunExperiments regenerates a batch of the paper's tables and figures over
// one shared workspace, with the independent experiments running in
// parallel and each workload's trace generated exactly once. The rendered
// tables are returned in the order requested and are identical to running
// each experiment serially. An empty ids slice selects every experiment.
func RunExperiments(ids []string, opts Options) ([]string, error) {
	opts, err := opts.checked()
	if err != nil {
		return nil, err
	}
	var exps []experiments.Experiment
	if len(ids) == 0 {
		exps = experiments.All()
	} else {
		for _, id := range ids {
			exp, ok := experiments.ByID(id)
			if !ok {
				return nil, fmt.Errorf("tsm: unknown experiment %q (known: %s)", id, strings.Join(Experiments(), ", "))
			}
			exps = append(exps, exp)
		}
	}
	w := experiments.NewWorkspace(experiments.Options{Nodes: opts.Nodes, Scale: opts.Scale, Seed: opts.Seed})
	tables, err := experiments.RunAll(w, exps)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(tables))
	for i, tbl := range tables {
		out[i] = tbl.String()
	}
	return out, nil
}
