// Custom trace: evaluate temporal streaming on a hand-built consumption
// trace instead of one of the bundled workloads. This is the integration
// path for users who already have shared-memory miss traces from their own
// simulator: produce a tsm.Trace (consumptions and writes in global order)
// and compare TSE against the baseline prefetchers on it.
//
// The trace built here is a migratory work queue: node 0 produces a batch of
// irregularly-addressed work items, and nodes 1..3 then walk the batch in
// the same order — exactly the temporal address correlation TSE exploits and
// stride/GHB prefetchers cannot.
//
// Run with:
//
//	go run ./examples/custom_trace
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tsm"
	"tsm/internal/mem"
	"tsm/internal/trace"
)

func main() {
	const (
		nodes     = 4
		batchSize = 2000
		batches   = 5
	)
	rng := rand.New(rand.NewSource(42))

	var tr tsm.Trace
	for b := 0; b < batches; b++ {
		// Node 0 produces a batch of work items at irregular addresses.
		items := make([]mem.BlockAddr, batchSize)
		for i := range items {
			items[i] = mem.BlockAddr(uint64(rng.Intn(1<<22)) * 64)
			tr.Append(trace.Event{Kind: trace.KindWrite, Node: 0, Block: items[i]})
		}
		// Nodes 1..3 consume the batch in production order.
		for n := 1; n < nodes; n++ {
			for _, blk := range items {
				tr.Append(trace.Event{
					Kind: trace.KindConsumption, Node: mem.NodeID(n), Block: blk, Producer: 0,
				})
			}
		}
	}

	opts := tsm.Options{Nodes: nodes, Lookahead: 8}
	reports, err := tsm.ComparePrefetchers(&tr, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migratory work-queue trace: %d events, %d consumptions\n\n",
		tr.Len(), tr.ConsumptionCount())
	for _, r := range reports {
		fmt.Println(r)
	}

	curve := tsm.CorrelationOpportunity(&tr, opts)
	fmt.Printf("\ntemporally correlated consumptions within distance 1: %.1f%%\n", 100*curve[0])
}
