// Quickstart: generate a small OLTP workload trace, run the Temporal
// Streaming Engine over it, and print coverage, discards and the timing
// model's speedup — the headline result of the paper in a few lines of code.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsm"
)

func main() {
	opts := tsm.Options{Nodes: 16, Scale: 0.1, Seed: 1}

	// Generate the DB2/TPC-C-like workload and classify its memory accesses
	// into coherent read misses ("consumptions") and writes.
	trace, gen, err := tsm.GenerateTrace("db2", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d events (%d consumptions) for %q\n",
		trace.Len(), trace.ConsumptionCount(), "db2")

	// Evaluate the paper's TSE configuration: trace-driven coverage plus the
	// DSM timing model's speedup over the baseline system.
	report, err := tsm.EvaluateTSE(trace, gen, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// How much of the opportunity is there to begin with? (Figure 6.)
	curve := tsm.CorrelationOpportunity(trace, opts)
	fmt.Printf("temporally correlated consumptions: %.1f%% at distance 1, %.1f%% within distance 8\n",
		100*curve[0], 100*curve[7])
}
