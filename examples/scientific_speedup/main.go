// Scientific speedup: run the three scientific workloads (em3d, moldyn,
// ocean) through the full pipeline and report the Figure 14 quantities:
// coverage, discards and speedup. em3d — communication bound, with
// near-perfect temporal correlation — should show by far the largest
// speedup; ocean's bursty, bandwidth-bound boundary exchanges limit its
// gain even though its trace coverage is high.
//
// Run with:
//
//	go run ./examples/scientific_speedup
package main

import (
	"fmt"
	"log"

	"tsm"
)

func main() {
	opts := tsm.Options{Nodes: 16, Scale: 0.15, Seed: 3}

	fmt.Printf("%-8s %12s %10s %10s %10s\n", "workload", "consumptions", "coverage", "discards", "speedup")
	for _, name := range []string{"em3d", "moldyn", "ocean"} {
		trace, gen, err := tsm.GenerateTrace(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		report, err := tsm.EvaluateTSE(trace, gen, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12d %9.1f%% %9.1f%% %9.2fx\n",
			name, report.Consumptions, 100*report.Coverage, 100*report.Discards, report.Speedup)
	}
}
