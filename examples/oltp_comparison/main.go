// OLTP comparison: reproduce the qualitative Figure 12 result on the OLTP
// workloads — temporal streaming eliminates roughly half of the coherent
// read misses of a database workload, while a stride prefetcher barely fires
// and a node-local Global History Buffer cannot see the streams that recur
// at other nodes.
//
// Run with:
//
//	go run ./examples/oltp_comparison
package main

import (
	"fmt"
	"log"

	"tsm"
)

func main() {
	opts := tsm.Options{Nodes: 16, Scale: 0.15, Seed: 2}

	for _, name := range []string{"db2", "oracle"} {
		trace, gen, err := tsm.GenerateTrace(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (%d consumptions) ---\n", name, trace.ConsumptionCount())

		reports, err := tsm.ComparePrefetchers(trace, gen, opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			fmt.Printf("  %s\n", r)
		}

		// The same workload through the timing model: how much execution
		// time does the eliminated miss latency buy back?
		tseReport, err := tsm.EvaluateTSE(trace, gen, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  timing-model speedup: %.2f (±%.3f)\n\n", tseReport.Speedup, tseReport.SpeedupCI)
	}
}
